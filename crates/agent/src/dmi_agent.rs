//! The GUI+DMI agent.
//!
//! Prompts instruct the LLM to prefer DMI (§5.1): `visit` calls carry
//! whole batches of declarative commands resolved against the navigation
//! forest (global planning — targets need not be visible), state and
//! observation declarations each take one turn (mixing with `visit` in
//! the same turn is disallowed, §3.4), and imperative GUI primitives
//! remain as the slow-path fallback (§6).
//!
//! Imperfect instruction following is simulated per §3.4: calls sometimes
//! include navigation nodes (filtered by DMI, harmless) or omit the entry
//! reference for shared-subtree targets (structured error, one extra
//! round trip).

use crate::grounding::ground;
use crate::task::AgentTask;
use dmi_core::interface::{observe as obs, state};
use dmi_core::screen::label_screen;
use dmi_core::topology::Forest;
use dmi_core::{tokens, Dmi};
use dmi_gui::Session;
use dmi_llm::{FailureCause, PlanStep, SimLlm, TargetQuery, VisitTarget};
use serde_json::json;

/// Fixed prompt cost of the DMI system prompt (interface docs, rules).
pub const DMI_BASE_PROMPT_TOKENS: usize = 1300;

/// Result of the DMI agent loop.
pub struct DmiRunResult {
    /// Failure that ended the run, if any.
    pub failure: Option<FailureCause>,
    /// Whether every plan step executed.
    pub completed: bool,
    /// Whether the GUI fallback was used.
    pub fallback_used: bool,
}

/// Resolves a semantic target against the forest: the functional-leaf id
/// plus the entry references needed for shared subtrees.
pub fn resolve_target(forest: &Forest, q: &TargetQuery) -> Option<(u64, Vec<u64>)> {
    let names_match = |path: &[usize], u: &str| path.iter().any(|&a| forest.nodes[a].name == u);
    let mut fallback: Option<(u64, Vec<u64>)> = None;
    for n in &forest.nodes {
        if n.name != q.name || !forest.is_functional_leaf(n.id) {
            continue;
        }
        match forest.in_shared_subtree(n.id) {
            None => {
                let path = forest.path_to(n.id);
                match &q.under {
                    Some(u) if !names_match(&path, u) => {
                        if fallback.is_none() {
                            fallback = Some((n.id as u64, Vec::new()));
                        }
                    }
                    _ => return Some((n.id as u64, Vec::new())),
                }
            }
            Some(root) => {
                let refs = forest.references_to(root);
                let inner = forest.path_to(n.id);
                // The disambiguator may name a node inside the subtree
                // (e.g. "Fill Color" inside the Format Background dialog)
                // or along one entry's chain (e.g. "Page Color" leading to
                // the shared Colors dialog) — both are how an LLM reads
                // the description plus entry map (§3.3).
                let ref_match = q.under.as_deref().and_then(|u| {
                    refs.iter().copied().find(|&r| names_match(&forest.path_to(r), u))
                });
                let inner_ok = match &q.under {
                    Some(u) => names_match(&inner, u),
                    None => true,
                };
                if let Some(r) = ref_match {
                    return Some((n.id as u64, vec![r as u64]));
                }
                if inner_ok {
                    if let Some(&r0) = refs.first() {
                        return Some((n.id as u64, vec![r0 as u64]));
                    }
                }
                if fallback.is_none() {
                    if let Some(&r0) = refs.first() {
                        fallback = Some((n.id as u64, vec![r0 as u64]));
                    }
                }
            }
        }
    }
    fallback
}

fn visit_json(
    forest: &Forest,
    targets: &[(u64, Vec<u64>, &VisitTarget)],
    with_nav_noise: Option<u64>,
    omit_entries: bool,
) -> String {
    let mut cmds = Vec::new();
    if let Some(nav) = with_nav_noise {
        // Imperfect instruction following: a navigational node sneaks in.
        cmds.push(json!({ "id": nav }));
    }
    for (id, entries, t) in targets {
        let mut obj = serde_json::Map::new();
        obj.insert("id".into(), json!(id));
        if !entries.is_empty() && !omit_entries {
            obj.insert("entry_ref_id".into(), json!(entries));
        }
        if let Some(text) = &t.text {
            obj.insert("text".into(), json!(text));
        }
        cmds.push(serde_json::Value::Object(obj));
        if let Some(k) = &t.then_shortcut {
            cmds.push(json!({ "shortcut_key": k }));
        }
    }
    let _ = forest;
    serde_json::to_string(&cmds).expect("visit commands serialize")
}

fn prompt_tokens(session: &mut Session, dmi: &Dmi) -> usize {
    let snap = session.snapshot();
    let screen = label_screen(&snap);
    let passive = obs::get_texts_passive(&snap, &obs::PassiveConfig::default());
    DMI_BASE_PROMPT_TOKENS
        + tokens::count(&screen.to_prompt_text())
        + dmi.core_tokens()
        + tokens::count(&passive.to_prompt_text())
}

/// The resumable AppAgent loop state: the prepared declarative plan plus
/// the cursor into it. One [`DmiState::step`] executes exactly one plan
/// step (a `visit` batch or one state/observation declaration) and
/// returns at the LLM-call boundary — the suspension point the gateway
/// uses to overlap simulated model latency across tenants. The
/// sequential [`run`] drives the same state machine to completion, so
/// both paths execute byte-identical traces by construction.
pub struct DmiState {
    plan: Vec<PlanStep>,
    idx: usize,
    queried: bool,
    fallback_used: bool,
}

impl DmiState {
    /// Prepares the declarative plan (the LLM's first planning pass —
    /// this consumes RNG and must happen exactly once, right after the
    /// HostAgent call).
    pub fn plan(task: &AgentTask, llm: &mut SimLlm) -> DmiState {
        DmiState {
            plan: llm.prepare_plan(&task.plan, &task.mutations).dmi,
            idx: 0,
            queried: false,
            fallback_used: false,
        }
    }

    /// One plan step. Returns `None` while more steps remain,
    /// `Some(result)` when the run ended (plan exhausted, failure, or
    /// step cap).
    pub fn step(
        &mut self,
        task: &AgentTask,
        session: &mut Session,
        llm: &mut SimLlm,
        dmi: &Dmi,
        step_cap: usize,
    ) -> Option<DmiRunResult> {
        if self.idx >= self.plan.len() {
            return Some(DmiRunResult {
                failure: None,
                completed: true,
                fallback_used: self.fallback_used,
            });
        }
        if llm.calls() + 2 >= step_cap {
            return Some(DmiRunResult {
                failure: Some(FailureCause::StepLimitExceeded),
                completed: false,
                fallback_used: self.fallback_used,
            });
        }
        let outcome = match &self.plan[self.idx] {
            PlanStep::Visit(targets) => run_visit(
                task,
                session,
                llm,
                dmi,
                targets,
                &mut self.queried,
                &mut self.fallback_used,
            ),
            PlanStep::StateScrollbar { surface, percent } => {
                run_state(session, llm, dmi, |s, screen| {
                    let e = screen
                        .find_by_name(surface)
                        .map(|e| e.label.clone())
                        .ok_or(FailureCause::WeakVisualSemantic)?;
                    state::set_scrollbar_pos(s, screen, &e, *percent)
                        .map_err(|_| FailureCause::TopologyInaccuracy)?;
                    Ok(())
                })
            }
            PlanStep::StateSelectLines { surface, start, end } => {
                run_state(session, llm, dmi, |s, screen| {
                    let e = screen
                        .find_by_name(surface)
                        .map(|e| e.label.clone())
                        .ok_or(FailureCause::WeakVisualSemantic)?;
                    state::select_lines(s, screen, &e, *start, *end)
                        .map_err(|_| FailureCause::TopologyInaccuracy)?;
                    Ok(())
                })
            }
            PlanStep::StateSelectControls { names } => run_state(session, llm, dmi, |s, screen| {
                let labels: Option<Vec<String>> =
                    names.iter().map(|n| screen.find_by_name(n).map(|e| e.label.clone())).collect();
                let labels = labels.ok_or(FailureCause::WeakVisualSemantic)?;
                let refs: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();
                state::select_controls(s, screen, &refs)
                    .map_err(|_| FailureCause::TopologyInaccuracy)?;
                Ok(())
            }),
            PlanStep::StateToggle { name, on } => run_state(session, llm, dmi, |s, screen| {
                let e = screen
                    .find_by_name(name)
                    .map(|e| e.label.clone())
                    .ok_or(FailureCause::WeakVisualSemantic)?;
                state::set_toggle_state(s, screen, &e, *on)
                    .map_err(|_| FailureCause::TopologyInaccuracy)?;
                Ok(())
            }),
            PlanStep::ObserveTexts { names } => run_state(session, llm, dmi, |s, screen| {
                let labels: Option<Vec<String>> =
                    names.iter().map(|n| screen.find_by_name(n).map(|e| e.label.clone())).collect();
                let labels = labels.ok_or(FailureCause::WeakVisualSemantic)?;
                let refs: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();
                obs::get_texts_active(s, screen, &refs)
                    .map_err(|_| FailureCause::TopologyInaccuracy)?;
                Ok(())
            }),
        };
        if let Err(cause) = outcome {
            return Some(DmiRunResult {
                failure: Some(cause),
                completed: false,
                fallback_used: self.fallback_used,
            });
        }
        self.idx += 1;
        None
    }
}

/// Runs the declarative plan through the AppAgent loop to completion.
pub fn run(
    task: &AgentTask,
    session: &mut Session,
    llm: &mut SimLlm,
    dmi: &Dmi,
    step_cap: usize,
) -> DmiRunResult {
    let mut state = DmiState::plan(task, llm);
    loop {
        if let Some(result) = state.step(task, session, llm, dmi, step_cap) {
            return result;
        }
    }
}

/// One state/observation declaration turn.
fn run_state(
    session: &mut Session,
    llm: &mut SimLlm,
    dmi: &Dmi,
    f: impl FnOnce(&mut Session, &dmi_core::LabeledScreen) -> Result<(), FailureCause>,
) -> Result<(), FailureCause> {
    let prompt = prompt_tokens(session, dmi);
    llm.record_call(prompt, 30);
    let snap = session.snapshot();
    let screen = label_screen(&snap);
    f(session, &screen)
}

/// One (or more, after chunking/noise) `visit` turns.
#[allow(clippy::too_many_arguments)]
fn run_visit(
    task: &AgentTask,
    session: &mut Session,
    llm: &mut SimLlm,
    dmi: &Dmi,
    targets: &[VisitTarget],
    queried: &mut bool,
    fallback_used: &mut bool,
) -> Result<(), FailureCause> {
    // Resolve every target against the forest (the LLM reading the
    // topology text).
    let mut resolved: Vec<(u64, Vec<u64>, &VisitTarget)> = Vec::new();
    let mut unresolved: Vec<&VisitTarget> = Vec::new();
    for t in targets {
        match resolve_target(&dmi.forest, &t.query) {
            Some((id, refs)) => resolved.push((id, refs, t)),
            None => unresolved.push(t),
        }
    }

    // The pruned core may hide some targets: one further_query round
    // fetches the needed branches (§3.3 query on demand).
    if !*queried && resolved.iter().any(|(id, _, _)| !dmi.core_includes(*id as usize)) {
        *queried = true;
        let prompt = prompt_tokens(session, dmi);
        llm.record_call(prompt, 16);
        let out = dmi.visit_json(session, r#"[{"further_query": [-1]}]"#);
        debug_assert!(out.ok());
    }

    // Chunk by the model's bundling horizon.
    let chunks: Vec<&[(u64, Vec<u64>, &VisitTarget)]> =
        resolved.chunks(llm.profile.bundle_limit.max(1)).collect();
    for chunk in chunks {
        let prompt = prompt_tokens(session, dmi);
        // Imperfect instruction following (§3.4).
        let (nav_noise, omit_entries) = if llm.sample_instruction_noise() {
            if llm.coin() {
                // Include a navigational node: DMI filters it.
                let nav = chunk
                    .first()
                    .and_then(|(id, _, _)| dmi.forest.nodes[*id as usize].parent)
                    .map(|p| p as u64);
                (nav, false)
            } else {
                // Omit entry references: DMI reports a structured error.
                (None, chunk.iter().any(|(_, e, _)| !e.is_empty()))
            }
        } else {
            (None, false)
        };
        let json = visit_json(&dmi.forest, chunk, nav_noise, omit_entries);
        llm.record_call(prompt, tokens::count(&json));
        let mut outcome = dmi.visit_json(session, &json);
        if let Some(dmi_core::DmiError::AmbiguousEntry { .. }) = outcome.error {
            // Structured feedback consumed: reissue with entries.
            let prompt = prompt_tokens(session, dmi);
            let json = visit_json(&dmi.forest, chunk, None, false);
            llm.record_call(prompt, tokens::count(&json));
            outcome = dmi.visit_json(session, &json);
        }
        if let Some(err) = outcome.error {
            // One retry turn on transient UI errors, then the GUI
            // fallback for the failing chunk (§6 fast-path/slow-path).
            let prompt = prompt_tokens(session, dmi);
            let json = visit_json(&dmi.forest, chunk, None, false);
            llm.record_call(prompt, tokens::count(&json));
            let retry = dmi.visit_json(session, &json);
            if retry.error.is_some() {
                let _ = err;
                *fallback_used = true;
                gui_fallback_chunk(task, session, llm, chunk)?;
            }
        }
    }

    // Targets DMI could not resolve at all (e.g. dynamically renamed
    // controls missing from the topology): GUI fallback.
    if !unresolved.is_empty() {
        *fallback_used = true;
        let prompt = prompt_tokens(session, dmi);
        llm.record_call(prompt, 40);
        for t in unresolved {
            let snap = session.snapshot();
            let screen = label_screen(&snap);
            let Some((_, entry)) = ground(&screen, &t.query) else {
                return Err(FailureCause::TopologyInaccuracy);
            };
            let wid = session.widget_of(entry.runtime);
            if session.click(wid).is_err() {
                return Err(FailureCause::TopologyInaccuracy);
            }
            if let Some(text) = &t.text {
                if session.type_text(text).is_err() {
                    return Err(FailureCause::TopologyInaccuracy);
                }
            }
            if let Some(k) = &t.then_shortcut {
                let _ = session.press(k);
            }
        }
    }
    Ok(())
}

/// Imperative fallback for one failed chunk: navigate by clicking the
/// modeled path elements that are visible, like the baseline would.
fn gui_fallback_chunk(
    task: &AgentTask,
    session: &mut Session,
    llm: &mut SimLlm,
    chunk: &[(u64, Vec<u64>, &VisitTarget)],
) -> Result<(), FailureCause> {
    let _ = task;
    let prompt = DMI_BASE_PROMPT_TOKENS;
    llm.record_call(prompt, 30);
    for (_, _, t) in chunk {
        let snap = session.snapshot();
        let screen = label_screen(&snap);
        let Some((_, entry)) = ground(&screen, &t.query) else {
            return Err(FailureCause::TopologyInaccuracy);
        };
        let wid = session.widget_of(entry.runtime);
        if session.click(wid).is_err() {
            return Err(FailureCause::TopologyInaccuracy);
        }
    }
    Ok(())
}
