//! The multi-tenant agent gateway: fleet-style online serving over
//! shared ripped UNGs.
//!
//! PRs 1–6 made the *offline* phase (ripping the UNG) parallel and
//! provably deterministic; this module is the online half of the north
//! star — many concurrent agent tasks, from many tenants, served against
//! a handful of shared application models. The architecture deliberately
//! mirrors the fleet ripper ([`dmi_core::parallel`]):
//!
//! - **Shared fairness policy.** Admission runs on the same
//!   [`FairQueue`] the rip dispatch queue uses: one lane per tenant,
//!   urgent-first, then greatest cost-aware weight (queued backlog ×
//!   EWMA of the tenant's *simulated* task latency), ties round-robin.
//!   Because the serve EWMA is fed from deterministic simulated seconds
//!   (not wall clocks), the entire admission schedule is a pure function
//!   of the request list — reproducible run to run.
//! - **Pooled sessions.** Each app brings one *donor* session holding
//!   its pristine launch image. Tenant sessions are checked out of a
//!   per-app pool: an idle session is [`Session::recycle`]d back to
//!   launch state under the new tenant's instability model, or a fresh
//!   [`Session::fork_from_pristine`] fork is taken while the pool is
//!   under its cap — exactly how fleet `ExploreUnit`s work. All of an
//!   app's sessions (donor included) share one [`CapturePool`], so
//!   capture work amortizes across tenants; pool keys fingerprint the
//!   instability model, so tenants can never alias each other's
//!   captures. An app that cannot fork serves at capacity one on its
//!   donor; a session that cannot attest a pristine reset is forfeited,
//!   never reused.
//! - **Suspension at LLM-call boundaries.** Tasks run as resumable
//!   [`TaskState`] machines. Each scheduling round steps every in-flight
//!   task exactly once (on the worker pool when `workers > 1`, inline
//!   otherwise) and suspends it at the next LLM-call boundary. The
//!   round's calls form one [`LlmBatch`]: simulated model latency
//!   overlaps across tenants — the round costs its slowest call, not the
//!   sum — which is what turns N sequential task-times into a served
//!   throughput curve.
//! - **Deterministic virtual timeline.** Throughput and latency are
//!   accounted on a virtual clock advanced by `max` per round. Real
//!   thread completion order never feeds the clock, the fairness state,
//!   or any trace: the reported tasks/sec, p50/p99, and every per-task
//!   [`RunTrace`] are identical at every worker count and every
//!   concurrency level.
//!
//! # Trace-identity determinism argument
//!
//! A task's trace is a fold over its own LLM stream (seeded from the
//! task id and run seed alone) and its own session. The gateway changes
//! *where* the session comes from (pool instead of launch) and *when*
//! steps run (interleaved instead of back to back), but neither input:
//! recycling restores launch state under the tenant's own instability
//! model, capture sharing is capture-transparent, and suspension points
//! hold no RNG. Hence each task's [`RunTrace`] is byte-identical to its
//! single-session sequential run at every concurrency level — the
//! release-gated serve oracle in `tests/identity.rs` asserts exactly
//! this, and the fuzz harness drives a drifting tenant through the same
//! pools to prove failure stays contained.

use crate::runner::{RunConfig, StepStatus, TaskState};
use crate::task::AgentTask;
use crate::trace::RunTrace;
use dmi_core::parallel::FairQueue;
use dmi_core::{Dmi, DmiBuildConfig};
use dmi_gui::{CapturePool, Session};
use dmi_llm::LlmBatch;
use dmi_store::{Store, StoreError};
use std::collections::BTreeMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One served application: its identifier, the donor session holding the
/// pristine launch image tenant sessions fork from, and the shared
/// offline model every tenant of the app reads.
pub struct ServeApp {
    /// App identifier requests name via [`ServeRequest::app`].
    pub id: String,
    /// The donor session (pristine launch state).
    pub donor: Session,
    /// The ripped offline model, shared by reference across tenants.
    pub dmi: Option<Arc<Dmi>>,
}

impl ServeApp {
    /// Wraps a launched session as a servable app.
    pub fn new(id: impl Into<String>, donor: Session, dmi: Option<Arc<Dmi>>) -> ServeApp {
        ServeApp { id: id.into(), donor, dmi }
    }

    /// Warm-boots a servable app from a persistent [`Store`]: the DMI is
    /// rebuilt from the stored UNG (no rip), and the donor's capture pool
    /// is seeded from the stored capture export when one is present.
    ///
    /// The stored rip's pristine signature must structurally match the
    /// live donor ([`StoreError::PristineMismatch`] otherwise): serving a
    /// model ripped from a different build would silently desynchronize
    /// traces from a rip-booted gateway. Capture warming is best-effort —
    /// a store without a capture artifact still boots, just cold.
    pub fn from_store(
        id: impl Into<String>,
        store: &Store,
        mut donor: Session,
        config: &DmiBuildConfig,
    ) -> Result<ServeApp, StoreError> {
        let id = id.into();
        let stored = store.load_rip(&id)?;
        if dmi_core::pristine_signature(&mut donor) != stored.pristine {
            return Err(StoreError::PristineMismatch { app: id });
        }
        let (dmi, _) = Dmi::from_ung(stored.ung, config);
        donor.set_capture_pool(Some(CapturePool::shared()));
        match dmi_store::warm_session(store, &id, &mut donor) {
            // A missing capture artifact is a cold (but valid) boot.
            Ok(_) | Err(StoreError::Io(_)) => {}
            Err(e) => return Err(e),
        }
        Ok(ServeApp { id, donor, dmi: Some(Arc::new(dmi)) })
    }
}

/// One tenant request: run `task` against `app` under `cfg`.
#[derive(Clone)]
pub struct ServeRequest {
    /// Tenant identifier (the fairness lane).
    pub tenant: String,
    /// Which [`ServeApp`] to run against.
    pub app: String,
    /// The task, shared so thousands of requests can reuse one
    /// definition.
    pub task: Arc<AgentTask>,
    /// The per-run configuration (profile, mode, seed, instability).
    pub cfg: RunConfig,
}

/// Gateway sizing.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Worker threads stepping suspended tasks. `0` or `1` steps inline
    /// on the caller thread (byte-identical results either way).
    pub workers: usize,
    /// Session-pool cap per app: the most tenant sessions one app keeps
    /// live at once.
    pub sessions_per_app: usize,
    /// Admission cap: the most tasks in flight at once (defaults to
    /// `4 × workers` when zero).
    pub max_in_flight: usize,
}

impl Default for GatewayConfig {
    fn default() -> GatewayConfig {
        GatewayConfig { workers: 2, sessions_per_app: 4, max_in_flight: 0 }
    }
}

impl GatewayConfig {
    fn in_flight_cap(&self) -> usize {
        if self.max_in_flight > 0 {
            self.max_in_flight
        } else {
            self.workers.max(1) * 4
        }
    }
}

/// One request's result.
pub struct ServeOutcome {
    /// Tenant the task ran for.
    pub tenant: String,
    /// App it ran against.
    pub app: String,
    /// The run trace — byte-identical to the task's sequential run.
    /// `None` when the task could not produce one (panic, no session).
    pub trace: Option<RunTrace>,
    /// The contained fault when the task died without a trace: a worker
    /// panic payload or an admission error.
    pub fault: Option<String>,
    /// Virtual-clock admission time (requests all arrive at 0; the gap
    /// is queueing delay under admission control).
    pub admit_vt: f64,
    /// Virtual-clock completion time. Per-task serving latency is
    /// `finish_vt` itself, queueing included.
    pub finish_vt: f64,
}

/// Aggregate gateway counters for one [`Gateway::serve`] call.
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Requests served (outcome count).
    pub tasks: usize,
    /// Requests that produced a trace.
    pub completed: usize,
    /// Requests that died to a contained fault.
    pub faulted: usize,
    /// Sessions forked fresh from a donor's pristine image.
    pub session_forks: usize,
    /// Sessions served from the pool via recycle.
    pub session_reuses: usize,
    /// Cross-session capture-pool hits across all tenant sessions.
    pub capture_pool_hits: u64,
    /// Cross-session capture-pool misses across all tenant sessions.
    pub capture_pool_misses: u64,
    /// Scheduling rounds executed.
    pub rounds: usize,
    /// Virtual makespan: LLM latency with per-round batching overlap.
    pub virtual_secs: f64,
    /// The same calls run back to back (the no-overlap baseline).
    pub serialized_secs: f64,
    /// Real wall-clock seconds spent serving.
    pub wall_secs: f64,
}

impl ServeStats {
    /// Tasks per simulated second at the virtual makespan.
    pub fn tasks_per_sec(&self) -> f64 {
        if self.virtual_secs > 0.0 {
            self.completed as f64 / self.virtual_secs
        } else {
            0.0
        }
    }

    /// Session-pool hit rate: reuses over all checkouts.
    pub fn session_reuse_rate(&self) -> f64 {
        let total = self.session_forks + self.session_reuses;
        if total > 0 {
            self.session_reuses as f64 / total as f64
        } else {
            0.0
        }
    }

    /// Capture-pool hit rate across tenant sessions.
    pub fn capture_hit_rate(&self) -> f64 {
        let total = self.capture_pool_hits + self.capture_pool_misses;
        if total > 0 {
            self.capture_pool_hits as f64 / total as f64
        } else {
            0.0
        }
    }
}

/// The result of one [`Gateway::serve`] call: per-request outcomes in
/// request order plus aggregate counters.
pub struct ServeReport {
    /// One outcome per request, in the order requests were submitted.
    pub outcomes: Vec<ServeOutcome>,
    /// Aggregate counters.
    pub stats: ServeStats,
}

impl ServeReport {
    /// The `p`-th percentile (0–100) of per-task serving latency
    /// (virtual seconds, queueing included) over completed tasks.
    pub fn latency_percentile(&self, p: f64) -> f64 {
        let mut lat: Vec<f64> =
            self.outcomes.iter().filter(|o| o.trace.is_some()).map(|o| o.finish_vt).collect();
        if lat.is_empty() {
            return 0.0;
        }
        lat.sort_by(|a, b| a.total_cmp(b));
        let idx = ((p / 100.0) * (lat.len() - 1) as f64).round() as usize;
        lat[idx.min(lat.len() - 1)]
    }
}

/// The per-app session pool behind the gateway (see module docs).
struct AppPool {
    dmi: Option<Arc<Dmi>>,
    /// The fork source. `None` once lent to an unforkable checkout.
    donor: Option<Session>,
    /// Parked sessions awaiting recycle.
    idle: Vec<Session>,
    /// Sessions currently checked out.
    live: usize,
    cap: usize,
    forks: usize,
    reuses: usize,
    pool_hits: u64,
    pool_misses: u64,
}

impl AppPool {
    fn new(mut app: ServeApp, cap: usize) -> AppPool {
        // All of the app's tenant sessions share one capture pool; forks
        // inherit it from the donor. A donor that already carries a pool
        // (store warm boot) keeps it — replacing it would drop the
        // imported captures.
        if app.donor.capture_pool().is_none() {
            app.donor.set_capture_pool(Some(CapturePool::shared()));
        }
        AppPool {
            dmi: app.dmi,
            donor: Some(app.donor),
            idle: Vec::new(),
            live: 0,
            cap: cap.max(1),
            forks: 0,
            reuses: 0,
            pool_hits: 0,
            pool_misses: 0,
        }
    }

    /// Checks a session out for a tenant, preferring recycle over fork.
    /// `None` when the app is at capacity (try again when a flight
    /// lands).
    fn checkout(&mut self, cfg: &RunConfig) -> Option<Session> {
        while let Some(mut s) = self.idle.pop() {
            if s.recycle(cfg.instability_model()) {
                self.reuses += 1;
                self.live += 1;
                return Some(s);
            }
            // No pristine attestation: nothing proves the next tenant
            // would start from launch state. Forfeit the session.
        }
        if self.live >= self.cap {
            return None;
        }
        if let Some(donor) = &self.donor {
            if let Some(mut fork) = donor.fork_from_pristine() {
                // The fork inherited the donor's instability model;
                // retarget the still-undriven session to the tenant's.
                fork.set_instability(cfg.instability_model());
                self.forks += 1;
                self.live += 1;
                return Some(fork);
            }
        }
        // Unforkable app: lend the donor itself — capacity one, returned
        // through the idle pool and recycled like any other session. The
        // lend recycles too (the donor carries whatever model it was
        // built with); a donor that cannot attest pristine is forfeited
        // like any pooled session.
        if let Some(mut donor) = self.donor.take() {
            if donor.recycle(cfg.instability_model()) {
                self.live += 1;
                return Some(donor);
            }
        }
        None
    }

    /// Returns a finished session to the pool, harvesting (and zeroing)
    /// its capture counters. Taking — not just reading — the counters is
    /// what makes each capture event count exactly once: the end-of-serve
    /// idle sweep used to re-read counters already harvested here,
    /// double-counting every session that finished a task.
    fn checkin(&mut self, mut session: Session) {
        self.live -= 1;
        let cs = session.take_capture_stats();
        self.pool_hits += cs.pool_hits;
        self.pool_misses += cs.pool_misses;
        self.idle.push(session);
    }

    /// A checked-out session died with its task (worker panic).
    fn forfeit(&mut self) {
        self.live -= 1;
    }

    /// Whether a checkout could *ever* succeed again.
    fn exhausted(&self) -> bool {
        self.live == 0 && self.idle.is_empty() && self.donor.is_none()
    }
}

/// One queued request (its outcome slot rides along).
struct Pending {
    slot: usize,
    lane: usize,
    req: ServeRequest,
}

/// One in-flight task.
struct Flight {
    slot: usize,
    lane: usize,
    tenant: String,
    app: String,
    task: Arc<AgentTask>,
    state: Option<TaskState>,
    admit_vt: f64,
    sim_before: f64,
}

/// A step job shipped to a worker thread.
struct StepJob {
    pos: usize,
    state: TaskState,
    task: Arc<AgentTask>,
    dmi: Option<Arc<Dmi>>,
}

type StepReply = (usize, Result<(TaskState, StepStatus), String>);

fn panic_payload(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("non-string panic payload")
    }
}

fn run_step(job: StepJob) -> StepReply {
    let StepJob { pos, mut state, task, dmi } = job;
    let stepped = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let status = state.step(&task, dmi.as_deref());
        (state, status)
    }));
    match stepped {
        Ok(ok) => (pos, Ok(ok)),
        Err(payload) => (pos, Err(panic_payload(payload.as_ref()))),
    }
}

fn worker_loop(jobs: Arc<Mutex<Receiver<StepJob>>>, replies: Sender<StepReply>) {
    loop {
        let job = match jobs.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        let Ok(job) = job else { return };
        if replies.send(run_step(job)).is_err() {
            return;
        }
    }
}

/// The multi-tenant gateway: holds the per-app session pools and serves
/// request batches against them.
pub struct Gateway {
    pools: BTreeMap<String, AppPool>,
    config: GatewayConfig,
}

impl Gateway {
    /// Builds a gateway over the given apps.
    pub fn new(apps: Vec<ServeApp>, config: GatewayConfig) -> Gateway {
        let cap = config.sessions_per_app;
        let pools = apps.into_iter().map(|a| (a.id.clone(), AppPool::new(a, cap))).collect();
        Gateway { pools, config }
    }

    /// Serves a batch of concurrent requests to completion, returning
    /// per-request outcomes (request order) and aggregate stats. All
    /// requests are considered to arrive at virtual time zero; admission
    /// control and fairness decide who waits.
    pub fn serve(&mut self, requests: Vec<ServeRequest>) -> ServeReport {
        let wall_start = Instant::now();
        let n = requests.len();
        let _serve_span = dmi_obs::span(dmi_obs::Cat::Gateway, "serve", n as u64);

        // Tenant lanes in first-appearance order (deterministic).
        let mut lane_of: BTreeMap<String, usize> = BTreeMap::new();
        let mut lanes = 0usize;
        let lane_ids: Vec<usize> = requests
            .iter()
            .map(|r| {
                *lane_of.entry(r.tenant.clone()).or_insert_with(|| {
                    lanes += 1;
                    lanes - 1
                })
            })
            .collect();
        let mut queue: FairQueue<Pending> = FairQueue::new(lanes);
        for (slot, (req, lane)) in requests.into_iter().zip(lane_ids).enumerate() {
            queue.push_back(lane, Pending { slot, lane, req });
            queue.set_depth(lane, queue.lane_len(lane) as u64);
        }

        let mut outcomes: Vec<Option<ServeOutcome>> = (0..n).map(|_| None).collect();
        let mut stats = ServeStats { tasks: n, ..ServeStats::default() };
        let mut in_flight: Vec<Flight> = Vec::new();
        let mut batch = LlmBatch::new();
        let mut vt = 0.0f64;

        // Worker pool (inline when 0/1 — identical results, see module
        // docs).
        let threaded = self.config.workers > 1;
        let (job_tx, reply_rx, worker_handles) = if threaded {
            let (jtx, jrx) = channel::<StepJob>();
            let (rtx, rrx) = channel::<StepReply>();
            let jrx = Arc::new(Mutex::new(jrx));
            let handles: Vec<_> = (0..self.config.workers)
                .map(|_| {
                    let jrx = Arc::clone(&jrx);
                    let rtx = rtx.clone();
                    std::thread::spawn(move || worker_loop(jrx, rtx))
                })
                .collect();
            (Some(jtx), Some(rrx), handles)
        } else {
            (None, None, Vec::new())
        };

        let cap = self.config.in_flight_cap();
        loop {
            // Admission: pop under the fairness policy while slots are
            // free; requests whose app is saturated go back to their
            // lane front (urgent — they were next in line).
            let mut blocked: Vec<Pending> = Vec::new();
            while in_flight.len() < cap {
                let Some(p) = queue.pop() else { break };
                queue.set_depth(p.lane, queue.lane_len(p.lane) as u64);
                let Some(pool) = self.pools.get_mut(&p.req.app) else {
                    outcomes[p.slot] = Some(ServeOutcome {
                        tenant: p.req.tenant.clone(),
                        app: p.req.app.clone(),
                        trace: None,
                        fault: Some(format!("unknown app `{}`", p.req.app)),
                        admit_vt: vt,
                        finish_vt: vt,
                    });
                    stats.faulted += 1;
                    continue;
                };
                match pool.checkout(&p.req.cfg) {
                    Some(session) => {
                        dmi_obs::tally("gateway.admitted", 1);
                        let state = TaskState::with_session(&p.req.task, session, &p.req.cfg);
                        let sim_before = state.sim_secs();
                        in_flight.push(Flight {
                            slot: p.slot,
                            lane: p.lane,
                            tenant: p.req.tenant.clone(),
                            app: p.req.app.clone(),
                            task: Arc::clone(&p.req.task),
                            state: Some(state),
                            admit_vt: vt,
                            sim_before,
                        });
                    }
                    None if pool.exhausted() => {
                        outcomes[p.slot] = Some(ServeOutcome {
                            tenant: p.req.tenant.clone(),
                            app: p.req.app.clone(),
                            trace: None,
                            fault: Some(format!(
                                "app `{}` has no serviceable sessions left",
                                p.req.app
                            )),
                            admit_vt: vt,
                            finish_vt: vt,
                        });
                        stats.faulted += 1;
                    }
                    None => blocked.push(p),
                }
            }
            for p in blocked.into_iter().rev() {
                let lane = p.lane;
                queue.push_front(lane, p);
                queue.set_depth(lane, queue.lane_len(lane) as u64);
            }

            if in_flight.is_empty() {
                if queue.is_empty() {
                    break;
                }
                // Backlog remains but nothing is in flight and nothing
                // could be admitted: every remaining app is wedged.
                while let Some(p) = queue.pop() {
                    outcomes[p.slot] = Some(ServeOutcome {
                        tenant: p.req.tenant.clone(),
                        app: p.req.app.clone(),
                        trace: None,
                        fault: Some(format!(
                            "app `{}` has no serviceable sessions left",
                            p.req.app
                        )),
                        admit_vt: vt,
                        finish_vt: vt,
                    });
                    stats.faulted += 1;
                }
                break;
            }

            // One scheduling round: step every in-flight task once,
            // suspending each at its next LLM-call boundary. The round's
            // calls batch — virtual time advances by the slowest.
            stats.rounds += 1;
            let round_start = dmi_obs::now_us();
            let mut replies: Vec<StepReply> = Vec::with_capacity(in_flight.len());
            if threaded {
                let tx = job_tx.as_ref().expect("job channel");
                let rx = reply_rx.as_ref().expect("reply channel");
                let mut sent = 0usize;
                for (pos, f) in in_flight.iter_mut().enumerate() {
                    let state = f.state.take().expect("state present between rounds");
                    f.sim_before = state.sim_secs();
                    let dmi = self.pools.get(&f.app).and_then(|p| p.dmi.clone());
                    tx.send(StepJob { pos, state, task: Arc::clone(&f.task), dmi })
                        .expect("workers alive");
                    sent += 1;
                }
                for _ in 0..sent {
                    replies.push(rx.recv().expect("worker reply"));
                }
            } else {
                for (pos, f) in in_flight.iter_mut().enumerate() {
                    let state = f.state.take().expect("state present between rounds");
                    f.sim_before = state.sim_secs();
                    let dmi = self.pools.get(&f.app).and_then(|p| p.dmi.clone());
                    replies.push(run_step(StepJob { pos, state, task: Arc::clone(&f.task), dmi }));
                }
            }
            // Deterministic settlement order regardless of worker timing.
            replies.sort_by_key(|(pos, _)| *pos);

            let mut finished: Vec<(usize, Result<TaskState, String>)> = Vec::new();
            for (pos, reply) in replies {
                match reply {
                    Ok((state, status)) => {
                        batch.push(state.sim_secs() - in_flight[pos].sim_before);
                        if status == StepStatus::Finished {
                            finished.push((pos, Ok(state)));
                        } else {
                            in_flight[pos].state = Some(state);
                        }
                    }
                    Err(payload) => finished.push((pos, Err(payload))),
                }
            }
            let (overlapped, serialized) = batch.settle();
            let vt_before = vt;
            vt += overlapped;
            stats.virtual_secs += overlapped;
            stats.serialized_secs += serialized;
            dmi_obs::complete_span(
                dmi_obs::Cat::Gateway,
                "round",
                stats.rounds as u64,
                round_start,
                dmi_obs::now_us(),
            );
            dmi_obs::vt_span(dmi_obs::Cat::Gateway, "round.vt", stats.rounds as u64, vt_before, vt);

            // Land finished flights (descending position keeps
            // swap_remove indices valid).
            finished.sort_by_key(|(pos, _)| std::cmp::Reverse(*pos));
            for (pos, result) in finished {
                let f = in_flight.swap_remove(pos);
                match result {
                    Ok(state) => {
                        let (trace, session) = state.finish(&f.task);
                        let pool = self.pools.get_mut(&f.app).expect("pool exists");
                        pool.checkin(session);
                        // Feed the tenant's cost model from deterministic
                        // simulated latency.
                        queue.observe_latency(f.lane, trace.sim_secs);
                        stats.completed += 1;
                        dmi_obs::tally("gateway.completed", 1);
                        dmi_obs::vt_span(
                            dmi_obs::Cat::Gateway,
                            "task",
                            f.lane as u64,
                            f.admit_vt,
                            vt,
                        );
                        outcomes[f.slot] = Some(ServeOutcome {
                            tenant: f.tenant.clone(),
                            app: f.app.clone(),
                            trace: Some(trace),
                            fault: None,
                            admit_vt: f.admit_vt,
                            finish_vt: vt,
                        });
                    }
                    Err(payload) => {
                        // The session died mid-unwind with its task; the
                        // pool shrinks, sibling tenants are untouched.
                        let pool = self.pools.get_mut(&f.app).expect("pool exists");
                        pool.forfeit();
                        stats.faulted += 1;
                        dmi_obs::tally("gateway.faulted", 1);
                        dmi_obs::instant(dmi_obs::Cat::Gateway, "task.fault", f.lane as u64);
                        outcomes[f.slot] = Some(ServeOutcome {
                            tenant: f.tenant.clone(),
                            app: f.app.clone(),
                            trace: None,
                            fault: Some(payload),
                            admit_vt: f.admit_vt,
                            finish_vt: vt,
                        });
                    }
                }
            }
        }

        drop(job_tx);
        for h in worker_handles {
            let _ = h.join();
        }

        for pool in self.pools.values_mut() {
            stats.session_forks += pool.forks;
            stats.session_reuses += pool.reuses;
            pool.forks = 0;
            pool.reuses = 0;
            // Sweep counters parked in idle sessions that never went
            // through `checkin` this serve (taken, so a later sweep or
            // checkin can never see them again).
            for s in &mut pool.idle {
                let cs = s.take_capture_stats();
                pool.pool_hits += cs.pool_hits;
                pool.pool_misses += cs.pool_misses;
            }
            stats.capture_pool_hits += pool.pool_hits;
            stats.capture_pool_misses += pool.pool_misses;
            pool.pool_hits = 0;
            pool.pool_misses = 0;
        }
        stats.wall_secs = wall_start.elapsed().as_secs_f64();

        let outcomes: Vec<ServeOutcome> = outcomes
            .into_iter()
            .enumerate()
            .map(|(i, o)| o.unwrap_or_else(|| panic!("request {i} produced no outcome")))
            .collect();
        ServeReport { outcomes, stats }
    }
}
