//! Visual grounding: how an LLM locates a named control on screen.
//!
//! Under imperative GUI use, the model must map its intent ("click Font
//! Color") to a labeled screen element. Humans do this with robust vision;
//! LLMs are comparatively weak (§2.1 Mismatch #2), which the simulation
//! models as a per-action grounding-error rate plus name-similarity-based
//! matching (tolerant of live-name variation, unlike exact string match).

use dmi_core::screen::{LabeledScreen, ScreenEntry};
use dmi_llm::TargetQuery;
use dmi_uia::ident::string_similarity;

/// Minimum name similarity for a visual match.
pub const GROUNDING_SIMILARITY: f64 = 0.8;

/// Finds the on-screen entry for a query, by name similarity.
///
/// Returns the index into `screen.entries`. Prefers exact matches, then
/// the highest-similarity entry above the threshold. Disabled controls
/// still ground (clicking them fails, realistically).
pub fn ground<'a>(screen: &'a LabeledScreen, q: &TargetQuery) -> Option<(usize, &'a ScreenEntry)> {
    // A user looking for something to click prefers interactive elements
    // over same-named containers (ribbon groups often share their
    // dialog-launcher's name).
    let mut best: Option<(usize, f64, bool)> = None; // (idx, score, clickable)
    for (i, e) in screen.entries.iter().enumerate() {
        let clickable = dmi_core::interface::is_clickable(e.control_type);
        let s = if e.name == q.name { 1.0 } else { string_similarity(&e.name, &q.name) };
        if s < GROUNDING_SIMILARITY {
            continue;
        }
        let better = match best {
            None => true,
            Some((_, bs, bc)) => (clickable, s) > (bc, bs),
        };
        if better {
            best = Some((i, s, clickable));
        }
    }
    best.map(|(i, _, _)| (i, &screen.entries[i]))
}

/// Whether every query in a batch grounds on the current screen (the
/// UFO2-as constraint: action sequences may only reference currently
/// visible controls).
pub fn all_visible(screen: &LabeledScreen, queries: &[&TargetQuery]) -> bool {
    queries.iter().all(|q| ground(screen, q).is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmi_core::label_screen;
    use dmi_gui::Session;

    fn screen() -> LabeledScreen {
        let mut s = Session::new(dmi_apps::AppKind::Word.launch_small());
        let snap = s.snapshot();
        label_screen(&snap)
    }

    #[test]
    fn exact_name_grounds() {
        let sc = screen();
        let (_, e) = ground(&sc, &TargetQuery::name("Bold")).unwrap();
        assert_eq!(e.name, "Bold");
    }

    #[test]
    fn similar_name_grounds() {
        let sc = screen();
        // A trailing-space or ellipsis variant still grounds.
        let (_, e) = ground(&sc, &TargetQuery::name("Font Color ")).unwrap();
        assert!(e.name.starts_with("Font Color"));
    }

    #[test]
    fn unrelated_name_does_not_ground() {
        let sc = screen();
        assert!(ground(&sc, &TargetQuery::name("Quantum Flux Capacitor")).is_none());
    }

    #[test]
    fn hidden_menu_items_are_not_visible() {
        let sc = screen();
        // Color cells live inside a closed menu: not on screen.
        assert!(ground(&sc, &TargetQuery::under("Blue", "Font Color")).is_none());
        let q1 = TargetQuery::name("Bold");
        let q2 = TargetQuery::under("Blue", "Font Color");
        assert!(!all_visible(&sc, &[&q1, &q2]));
        assert!(all_visible(&sc, &[&q1]));
    }
}
