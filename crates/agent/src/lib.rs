//! Computer-use agents: the UFO2-like GUI baseline, the forest-knowledge
//! ablation, and the GUI+DMI agent.
//!
//! The agent skeleton follows the paper's §5.3 description of UFO-2: a
//! HostAgent decomposes the user task and activates the application
//! (1 call), an AppAgent executes the delegated subtask over one or more
//! turns, the AppAgent verifies and hands off (1 call), and the HostAgent
//! verifies overall completion (1 call) — a fixed 3-call framework
//! overhead around the core turns.
//!
//! Three interface conditions share the skeleton ([`InterfaceMode`]):
//!
//! - **GUI-only**: each turn, the labeled accessibility tree is sent to
//!   the LLM, which replies with an *action sequence* restricted to
//!   currently visible controls;
//! - **GUI-only + Nav.forest**: same, with the DMI navigation forest
//!   pasted into the prompt as static knowledge (§5.5 ablation);
//! - **GUI + DMI**: the LLM plans over the declarative interfaces
//!   (`visit`, state, observation declarations) and may fall back to
//!   imperative GUI primitives.

pub mod dmi_agent;
pub mod gateway;
pub mod grounding;
pub mod runner;
pub mod task;
pub mod trace;
pub mod ufo;

pub use dmi_llm::{CapabilityProfile, FailureCause, FailureLevel, InterfaceMode};
pub use gateway::{
    Gateway, GatewayConfig, ServeApp, ServeOutcome, ServeReport, ServeRequest, ServeStats,
};
pub use runner::{run_task, RunConfig, StepStatus, TaskState};
pub use task::AgentTask;
pub use trace::{aggregate, normalized_core_steps, Aggregate, RunTrace};
