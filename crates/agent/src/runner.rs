//! The top-level task runner: UFO-2 skeleton around the mode-specific
//! agent loops, producing a [`RunTrace`] per `(task, mode, profile, seed)`.
//!
//! The skeleton is a resumable state machine, [`TaskState`]: each
//! [`TaskState::step`] performs one bounded quantum of work ending at an
//! LLM-call boundary — the HostAgent call, one AppAgent turn, one
//! verification call — and returns control to the caller. The sequential
//! [`run_task`] drives the machine to completion on one thread; the
//! multi-tenant gateway ([`crate::gateway`]) suspends tasks between
//! steps to overlap simulated model latency across tenants. Both paths
//! execute the identical step sequence against the identical per-task
//! RNG stream, so their [`RunTrace`]s are byte-identical by
//! construction — the serve oracle in `tests/identity.rs` gates it.

use crate::dmi_agent;
use crate::task::AgentTask;
use crate::trace::RunTrace;
use crate::ufo;
use dmi_core::{tokens, Dmi};
use dmi_gui::{InstabilityModel, Session};
use dmi_llm::{CapabilityProfile, FailureCause, InterfaceMode, SimLlm};
use std::sync::Arc;

/// Configuration for one run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The LLM capability profile.
    pub profile: CapabilityProfile,
    /// The interface condition.
    pub mode: InterfaceMode,
    /// Run seed (the paper averages 3 runs).
    pub seed: u64,
    /// Step cap (paper: 30).
    pub step_cap: usize,
    /// Launch small app instances (fast tests) instead of full-size.
    pub small_apps: bool,
    /// UI instability: (late-load probability, name-variation
    /// probability).
    pub instability: (f64, f64),
}

impl RunConfig {
    /// The evaluation defaults (§5.1 methodology).
    pub fn evaluation(profile: CapabilityProfile, mode: InterfaceMode, seed: u64) -> Self {
        RunConfig {
            profile,
            mode,
            seed,
            step_cap: 30,
            small_apps: false,
            instability: (0.06, 0.02),
        }
    }

    /// Fast test configuration on small apps.
    pub fn test(profile: CapabilityProfile, mode: InterfaceMode, seed: u64) -> Self {
        RunConfig { profile, mode, seed, step_cap: 30, small_apps: true, instability: (0.0, 0.0) }
    }

    /// The instability model a run under this configuration applies to
    /// its session — the single definition shared by the sequential
    /// runner and the gateway's pooled-session recycling, so both paths
    /// perturb the UI identically.
    pub fn instability_model(&self) -> InstabilityModel {
        InstabilityModel::new(self.seed.wrapping_add(17), self.instability.0, self.instability.1)
    }
}

/// HostAgent prompt cost.
const HOST_PROMPT_TOKENS: usize = 600;
/// Verification prompt cost (AppAgent + HostAgent closing calls).
const VERIFY_PROMPT_TOKENS: usize = 800;

/// What a [`TaskState::step`] left behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepStatus {
    /// More steps remain; the task can be suspended here.
    Running,
    /// The run ended — call [`TaskState::finish`].
    Finished,
}

/// The phase the resumable skeleton is suspended in.
enum Phase {
    /// Before the HostAgent decomposition call.
    Host,
    /// In the GUI (or GUI+forest) AppAgent loop.
    Gui(ufo::GuiState),
    /// In the DMI AppAgent loop.
    Dmi(dmi_agent::DmiState),
    /// The two closing verification calls (0 = AppAgent, 1 = HostAgent).
    Verify(u8),
    Done,
}

/// One suspended agent task: the per-task simulated LLM (its RNG stream,
/// token ledger, and latency clock), the GUI session it drives, and the
/// phase to resume in.
pub struct TaskState {
    llm: SimLlm,
    session: Session,
    phase: Phase,
    /// `(failure, completed, fallback_used)` from the AppAgent loop.
    outcome: (Option<FailureCause>, bool, bool),
    cfg: RunConfig,
}

impl TaskState {
    /// Builds a fresh task: launches the app, applies the configured
    /// instability, runs the task's setup. No LLM work happens here.
    pub fn new(task: &AgentTask, cfg: &RunConfig) -> TaskState {
        let app = if cfg.small_apps { task.app.launch_small() } else { task.app.launch() };
        let session = Session::with_instability(app, cfg.instability_model());
        TaskState::with_session(task, session, cfg)
    }

    /// Builds a task on a caller-provided session — the gateway's pooled
    /// checkout. The session must be indistinguishable from a fresh
    /// launch of the task's app with [`RunConfig::instability_model`]
    /// applied (`Session::recycle` establishes exactly that); the serve
    /// trace-identity oracle gates the equivalence end to end.
    pub fn with_session(task: &AgentTask, mut session: Session, cfg: &RunConfig) -> TaskState {
        let llm = SimLlm::new(cfg.profile.clone(), cfg.mode, &task.id, cfg.seed);
        if let Some(setup) = task.setup {
            setup(&mut session);
        }
        TaskState {
            llm,
            session,
            phase: Phase::Host,
            outcome: (None, false, false),
            cfg: cfg.clone(),
        }
    }

    /// Simulated seconds of model latency accumulated so far.
    pub fn sim_secs(&self) -> f64 {
        self.llm.clock_secs
    }

    /// Performs one quantum of work, stopping at the next LLM-call
    /// boundary.
    ///
    /// `dmi` must be the offline model for the task's app when the mode
    /// uses forest knowledge or the declarative interfaces — the same
    /// shared [`Arc`] every tenant of the app reads.
    pub fn step(&mut self, task: &AgentTask, dmi: Option<&Dmi>) -> StepStatus {
        match &mut self.phase {
            Phase::Host => {
                // Step 1: HostAgent decomposes the task and activates the
                // app, then the AppAgent prepares its plan (the first
                // RNG consumption — order is part of the trace identity).
                self.llm.record_call(HOST_PROMPT_TOKENS + tokens::count(&task.description), 60);
                self.phase = match self.cfg.mode {
                    InterfaceMode::GuiOnly | InterfaceMode::GuiPlusForest => {
                        let forest_tokens = if self.cfg.mode.has_forest_knowledge() {
                            dmi.map(|d| d.core_tokens()).unwrap_or(0)
                        } else {
                            0
                        };
                        Phase::Gui(ufo::GuiState::plan(task, &mut self.llm, forest_tokens))
                    }
                    InterfaceMode::GuiPlusDmi => {
                        Phase::Dmi(dmi_agent::DmiState::plan(task, &mut self.llm))
                    }
                };
                StepStatus::Running
            }
            Phase::Gui(state) => {
                match state.turn(&mut self.session, &mut self.llm, self.cfg.step_cap) {
                    None => StepStatus::Running,
                    Some(r) => {
                        self.outcome = (r.failure, r.completed, false);
                        self.phase = Phase::Verify(0);
                        StepStatus::Running
                    }
                }
            }
            Phase::Dmi(state) => {
                let d = dmi.expect("GUI+DMI requires the offline DMI model");
                match state.step(task, &mut self.session, &mut self.llm, d, self.cfg.step_cap) {
                    None => StepStatus::Running,
                    Some(r) => {
                        self.outcome = (r.failure, r.completed, r.fallback_used);
                        self.phase = Phase::Verify(0);
                        StepStatus::Running
                    }
                }
            }
            // Steps n-1, n: AppAgent result verification, HostAgent
            // completion verification (the fixed framework overhead,
            // §5.3).
            Phase::Verify(0) => {
                self.llm.record_call(VERIFY_PROMPT_TOKENS, 40);
                self.phase = Phase::Verify(1);
                StepStatus::Running
            }
            Phase::Verify(_) => {
                self.llm.record_call(VERIFY_PROMPT_TOKENS, 40);
                self.phase = Phase::Done;
                StepStatus::Finished
            }
            Phase::Done => StepStatus::Finished,
        }
    }

    /// Verifies the task outcome, attributes the root cause, and builds
    /// the [`RunTrace`]. Returns the session too so a pooled caller can
    /// recycle it.
    pub fn finish(self, task: &AgentTask) -> (RunTrace, Session) {
        let (failure, completed, fallback_used) = self.outcome;
        let verified = completed && failure.is_none() && (task.verify)(&self.session);
        // Root-cause attribution follows the paper's methodology (§5.6):
        // execution results combined with the LLM's own chain-of-thought
        // summary — a corrupted plan is the root cause even when a
        // mechanism error also surfaced downstream.
        let failure = if verified {
            None
        } else {
            self.llm.injected.or(failure).or(Some(FailureCause::SubtleTaskSemantics))
        };
        let trace = RunTrace {
            task_id: task.id.clone(),
            mode: self.cfg.mode,
            profile: self.cfg.profile.label(),
            seed: self.cfg.seed,
            success: verified,
            llm_calls: self.llm.calls(),
            core_calls: self.llm.calls().saturating_sub(3),
            sim_secs: self.llm.clock_secs,
            prompt_tokens: self.llm.ledger.total_prompt(),
            output_tokens: self.llm.ledger.total_output(),
            failure,
            fallback_used,
        };
        (trace, self.session)
    }
}

/// Runs one task under one configuration, start to finish, on the
/// calling thread.
///
/// `dmi` must be the offline model for the task's app when the mode uses
/// forest knowledge or the declarative interfaces. It is taken as a
/// shared [`Arc`] so one ripped forest serves every caller — the
/// sequential runner here, all tenants of the gateway — without clones.
pub fn run_task(task: &AgentTask, dmi: Option<&Arc<Dmi>>, cfg: &RunConfig) -> RunTrace {
    let mut state = TaskState::new(task, cfg);
    let dmi = dmi.map(Arc::as_ref);
    while state.step(task, dmi) == StepStatus::Running {}
    state.finish(task).0
}
