//! The top-level task runner: UFO-2 skeleton around the mode-specific
//! agent loops, producing a [`RunTrace`] per `(task, mode, profile, seed)`.

use crate::dmi_agent;
use crate::task::AgentTask;
use crate::trace::RunTrace;
use crate::ufo;
use dmi_core::{tokens, Dmi};
use dmi_gui::{InstabilityModel, Session};
use dmi_llm::{CapabilityProfile, FailureCause, InterfaceMode, SimLlm};

/// Configuration for one run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The LLM capability profile.
    pub profile: CapabilityProfile,
    /// The interface condition.
    pub mode: InterfaceMode,
    /// Run seed (the paper averages 3 runs).
    pub seed: u64,
    /// Step cap (paper: 30).
    pub step_cap: usize,
    /// Launch small app instances (fast tests) instead of full-size.
    pub small_apps: bool,
    /// UI instability: (late-load probability, name-variation
    /// probability).
    pub instability: (f64, f64),
}

impl RunConfig {
    /// The evaluation defaults (§5.1 methodology).
    pub fn evaluation(profile: CapabilityProfile, mode: InterfaceMode, seed: u64) -> Self {
        RunConfig {
            profile,
            mode,
            seed,
            step_cap: 30,
            small_apps: false,
            instability: (0.06, 0.02),
        }
    }

    /// Fast test configuration on small apps.
    pub fn test(profile: CapabilityProfile, mode: InterfaceMode, seed: u64) -> Self {
        RunConfig { profile, mode, seed, step_cap: 30, small_apps: true, instability: (0.0, 0.0) }
    }
}

/// HostAgent prompt cost.
const HOST_PROMPT_TOKENS: usize = 600;
/// Verification prompt cost (AppAgent + HostAgent closing calls).
const VERIFY_PROMPT_TOKENS: usize = 800;

/// Runs one task under one configuration.
///
/// `dmi` must be the offline model for the task's app when the mode uses
/// forest knowledge or the declarative interfaces.
pub fn run_task(task: &AgentTask, dmi: Option<&Dmi>, cfg: &RunConfig) -> RunTrace {
    let mut llm = SimLlm::new(cfg.profile.clone(), cfg.mode, &task.id, cfg.seed);
    let app = if cfg.small_apps { task.app.launch_small() } else { task.app.launch() };
    let mut session = Session::with_instability(
        app,
        InstabilityModel::new(cfg.seed.wrapping_add(17), cfg.instability.0, cfg.instability.1),
    );
    if let Some(setup) = task.setup {
        setup(&mut session);
    }

    // Step 1: HostAgent decomposes the task and activates the app.
    llm.record_call(HOST_PROMPT_TOKENS + tokens::count(&task.description), 60);

    let (failure, completed, fallback_used) = match cfg.mode {
        InterfaceMode::GuiOnly | InterfaceMode::GuiPlusForest => {
            let forest_tokens = if cfg.mode.has_forest_knowledge() {
                dmi.map(|d| d.core_tokens()).unwrap_or(0)
            } else {
                0
            };
            let r = ufo::run(task, &mut session, &mut llm, forest_tokens, cfg.step_cap);
            (r.failure, r.completed, false)
        }
        InterfaceMode::GuiPlusDmi => {
            let d = dmi.expect("GUI+DMI requires the offline DMI model");
            let r = dmi_agent::run(task, &mut session, &mut llm, d, cfg.step_cap);
            (r.failure, r.completed, r.fallback_used)
        }
    };

    // Steps n-1, n: AppAgent result verification, HostAgent completion
    // verification (the fixed framework overhead, §5.3).
    llm.record_call(VERIFY_PROMPT_TOKENS, 40);
    llm.record_call(VERIFY_PROMPT_TOKENS, 40);

    let verified = completed && failure.is_none() && (task.verify)(&session);
    // Root-cause attribution follows the paper's methodology (§5.6):
    // execution results combined with the LLM's own chain-of-thought
    // summary — a corrupted plan is the root cause even when a mechanism
    // error also surfaced downstream.
    let failure = if verified {
        None
    } else {
        llm.injected.or(failure).or(Some(FailureCause::SubtleTaskSemantics))
    };

    RunTrace {
        task_id: task.id.clone(),
        mode: cfg.mode,
        profile: cfg.profile.label(),
        seed: cfg.seed,
        success: verified,
        llm_calls: llm.calls(),
        core_calls: llm.calls().saturating_sub(3),
        sim_secs: llm.clock_secs,
        prompt_tokens: llm.ledger.total_prompt(),
        output_tokens: llm.ledger.total_output(),
        failure,
        fallback_used,
    }
}
