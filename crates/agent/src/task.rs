//! The task contract between the benchmark suite and the agents.

use dmi_apps::AppKind;
use dmi_gui::Session;
use dmi_llm::{PlanMutation, TaskPlan};

/// One benchmark task: description, setup, oracle plan, verifier, and the
/// plausible wrong plans error injection may choose from.
pub struct AgentTask {
    /// Stable identifier (e.g. `"ppt-background-all"`).
    pub id: String,
    /// Target application.
    pub app: AppKind,
    /// The user instruction (what the LLM is asked to do).
    pub description: String,
    /// Optional pre-state mutation (e.g. select a slide).
    pub setup: Option<fn(&mut Session)>,
    /// End-state verifier over the application model (OSWorld-style).
    pub verify: fn(&Session) -> bool,
    /// Oracle plan in both lowerings.
    pub plan: TaskPlan,
    /// Plausible-but-wrong plan edits (§5.6 failure flavours).
    pub mutations: Vec<PlanMutation>,
}

impl AgentTask {
    /// Launches a fresh session for this task's app (full-size app).
    pub fn launch(&self) -> Session {
        Session::new(self.app.launch())
    }

    /// Launches with the small app configuration (fast tests).
    pub fn launch_small(&self) -> Session {
        Session::new(self.app.launch_small())
    }
}

impl std::fmt::Debug for AgentTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AgentTask")
            .field("id", &self.id)
            .field("app", &self.app)
            .field("dmi_steps", &self.plan.dmi.len())
            .field("gui_steps", &self.plan.gui.len())
            .finish()
    }
}
