//! Run traces and evaluation aggregation (Table 3 / Figure 5 metrics).

use dmi_llm::{FailureCause, FailureLevel, InterfaceMode};
use std::collections::{BTreeMap, BTreeSet};

/// The record of one task run.
#[derive(Debug, Clone)]
pub struct RunTrace {
    /// Task identifier.
    pub task_id: String,
    /// Interface condition.
    pub mode: InterfaceMode,
    /// Profile label (e.g. `"GPT-5 (Medium)"`).
    pub profile: String,
    /// Run seed.
    pub seed: u64,
    /// Whether the verifier accepted the end state.
    pub success: bool,
    /// Total LLM calls (the paper's Steps metric).
    pub llm_calls: usize,
    /// Calls minus the fixed 3-call framework overhead.
    pub core_calls: usize,
    /// Simulated completion time in seconds.
    pub sim_secs: f64,
    /// Total prompt tokens.
    pub prompt_tokens: usize,
    /// Total output tokens.
    pub output_tokens: usize,
    /// Failure cause when unsuccessful.
    pub failure: Option<FailureCause>,
    /// Whether the DMI agent fell back to GUI primitives.
    pub fallback_used: bool,
}

impl RunTrace {
    /// The canonical byte rendering of the trace, covering every field —
    /// what the trace-identity oracles compare. Two runs are equivalent
    /// exactly when these bytes match.
    pub fn identity_bytes(&self) -> String {
        format!("{self:?}")
    }
}

/// Aggregated metrics for one (mode, profile) cell of Table 3.
#[derive(Debug, Clone, Default)]
pub struct Aggregate {
    /// Number of runs.
    pub runs: usize,
    /// Success rate over all runs.
    pub sr: f64,
    /// Average LLM calls over *successful* runs (paper methodology).
    pub avg_steps: f64,
    /// Average simulated time over successful runs (seconds).
    pub avg_secs: f64,
    /// Average total tokens per run (prompt + output), all runs.
    pub avg_tokens: f64,
    /// Fraction of successful runs completed in ≤ 4 calls (one core call).
    pub one_shot_frac: f64,
    /// Failure-cause histogram over failed runs.
    pub failures: BTreeMap<FailureCause, usize>,
}

impl Aggregate {
    /// Policy-level share of failures (Figure 6).
    pub fn policy_failure_frac(&self) -> f64 {
        let total: usize = self.failures.values().sum();
        if total == 0 {
            return 0.0;
        }
        let policy: usize = self
            .failures
            .iter()
            .filter(|(c, _)| c.level() == FailureLevel::Policy)
            .map(|(_, n)| n)
            .sum();
        policy as f64 / total as f64
    }

    /// Total failures recorded.
    pub fn failure_count(&self) -> usize {
        self.failures.values().sum()
    }
}

/// Aggregates traces into Table 3 metrics.
pub fn aggregate(traces: &[RunTrace]) -> Aggregate {
    let runs = traces.len();
    if runs == 0 {
        return Aggregate::default();
    }
    let successes: Vec<&RunTrace> = traces.iter().filter(|t| t.success).collect();
    let sr = successes.len() as f64 / runs as f64;
    let avg = |f: &dyn Fn(&RunTrace) -> f64, set: &[&RunTrace]| -> f64 {
        if set.is_empty() {
            0.0
        } else {
            set.iter().map(|t| f(t)).sum::<f64>() / set.len() as f64
        }
    };
    let avg_steps = avg(&|t| t.llm_calls as f64, &successes);
    let avg_secs = avg(&|t| t.sim_secs, &successes);
    let all: Vec<&RunTrace> = traces.iter().collect();
    let avg_tokens = avg(&|t| (t.prompt_tokens + t.output_tokens) as f64, &all);
    let one_shot = successes.iter().filter(|t| t.llm_calls <= 4).count();
    let one_shot_frac =
        if successes.is_empty() { 0.0 } else { one_shot as f64 / successes.len() as f64 };
    let mut failures = BTreeMap::new();
    for t in traces.iter().filter(|t| !t.success) {
        if let Some(c) = t.failure {
            *failures.entry(c).or_insert(0) += 1;
        }
    }
    Aggregate { runs, sr, avg_steps, avg_secs, avg_tokens, one_shot_frac, failures }
}

/// Figure 5b's normalized core steps: average core calls per mode over the
/// intersection of `(task, seed)` runs every mode solved.
pub fn normalized_core_steps(
    by_mode: &BTreeMap<InterfaceMode, Vec<RunTrace>>,
) -> BTreeMap<InterfaceMode, f64> {
    // Key solved sets by (task, seed).
    let mut solved: Vec<BTreeSet<(String, u64)>> = Vec::new();
    for traces in by_mode.values() {
        solved.push(
            traces.iter().filter(|t| t.success).map(|t| (t.task_id.clone(), t.seed)).collect(),
        );
    }
    let intersection: BTreeSet<(String, u64)> = match solved.split_first() {
        Some((first, rest)) => {
            rest.iter().fold(first.clone(), |acc, s| acc.intersection(s).cloned().collect())
        }
        None => BTreeSet::new(),
    };
    let mut out = BTreeMap::new();
    for (mode, traces) in by_mode {
        let subset: Vec<&RunTrace> = traces
            .iter()
            .filter(|t| t.success && intersection.contains(&(t.task_id.clone(), t.seed)))
            .collect();
        let avg = if subset.is_empty() {
            0.0
        } else {
            subset.iter().map(|t| t.core_calls as f64).sum::<f64>() / subset.len() as f64
        };
        out.insert(*mode, avg);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tr(task: &str, mode: InterfaceMode, seed: u64, success: bool, calls: usize) -> RunTrace {
        RunTrace {
            task_id: task.into(),
            mode,
            profile: "test".into(),
            seed,
            success,
            llm_calls: calls,
            core_calls: calls.saturating_sub(3),
            sim_secs: calls as f64 * 40.0,
            prompt_tokens: 1000 * calls,
            output_tokens: 50 * calls,
            failure: if success { None } else { Some(FailureCause::ControlLocalization) },
            fallback_used: false,
        }
    }

    #[test]
    fn aggregate_basic_metrics() {
        let traces = vec![
            tr("a", InterfaceMode::GuiOnly, 0, true, 4),
            tr("b", InterfaceMode::GuiOnly, 0, true, 8),
            tr("c", InterfaceMode::GuiOnly, 0, false, 30),
        ];
        let a = aggregate(&traces);
        assert_eq!(a.runs, 3);
        assert!((a.sr - 2.0 / 3.0).abs() < 1e-9);
        assert!((a.avg_steps - 6.0).abs() < 1e-9, "steps over successes only");
        assert!((a.one_shot_frac - 0.5).abs() < 1e-9);
        assert_eq!(a.failure_count(), 1);
        assert_eq!(a.policy_failure_frac(), 0.0);
    }

    #[test]
    fn empty_aggregate_is_zeroed() {
        let a = aggregate(&[]);
        assert_eq!(a.runs, 0);
        assert_eq!(a.sr, 0.0);
    }

    #[test]
    fn normalized_steps_use_intersection() {
        let mut by_mode = BTreeMap::new();
        by_mode.insert(
            InterfaceMode::GuiOnly,
            vec![
                tr("a", InterfaceMode::GuiOnly, 0, true, 10),
                tr("b", InterfaceMode::GuiOnly, 0, false, 30),
            ],
        );
        by_mode.insert(
            InterfaceMode::GuiPlusDmi,
            vec![
                tr("a", InterfaceMode::GuiPlusDmi, 0, true, 4),
                tr("b", InterfaceMode::GuiPlusDmi, 0, true, 4),
            ],
        );
        let n = normalized_core_steps(&by_mode);
        // Only task "a" (seed 0) is solved by both; GUI avg = 7, DMI avg = 1.
        assert!((n[&InterfaceMode::GuiOnly] - 7.0).abs() < 1e-9);
        assert!((n[&InterfaceMode::GuiPlusDmi] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn policy_fraction_counts_levels() {
        let mut t1 = tr("a", InterfaceMode::GuiPlusDmi, 0, false, 5);
        t1.failure = Some(FailureCause::AmbiguousTask);
        let t2 = tr("b", InterfaceMode::GuiPlusDmi, 0, false, 5);
        let a = aggregate(&[t1, t2]);
        assert!((a.policy_failure_frac() - 0.5).abs() < 1e-9);
    }
}
