//! The GUI-only baseline agent (UFO2-as).
//!
//! Each AppAgent turn sends the labeled accessibility tree to the LLM and
//! receives an *action sequence* — as many upcoming imperative actions as
//! are (a) within the model's planning horizon and (b) grounded on
//! currently visible controls (the UFO2-as constraint; §5.1). Actions
//! execute with per-action mechanism-error sampling: visual grounding
//! errors for clicks, composite-interaction errors for drags. Recovered
//! errors cost an extra round trip; unrecovered errors fail the task with
//! a mechanism-level cause (§5.6).

use crate::grounding::ground;
use crate::task::AgentTask;
use dmi_core::screen::{label_screen, LabeledScreen};
use dmi_core::tokens;
use dmi_gui::Session;
use dmi_llm::{FailureCause, GuiStep, SimLlm};
use dmi_uia::Snapshot;

/// Fixed prompt cost of the GUI system prompt (instructions, few-shot).
pub const GUI_BASE_PROMPT_TOKENS: usize = 900;

/// Output tokens per planned action, plus a fixed envelope.
fn output_tokens(batch_len: usize) -> usize {
    24 + 18 * batch_len
}

/// Result of the core GUI loop.
pub struct GuiRunResult {
    /// Mechanism failure, if one ended the run.
    pub failure: Option<FailureCause>,
    /// Whether every plan action executed.
    pub completed: bool,
}

fn observe(session: &mut Session) -> (std::sync::Arc<Snapshot>, LabeledScreen) {
    let snap = session.snapshot();
    let screen = label_screen(&snap);
    (snap, screen)
}

/// The resumable AppAgent loop state: the prepared plan plus the cursor
/// into it. One [`GuiState::turn`] performs exactly one planning round
/// trip (plus any recovery round trip inside it) and returns to the
/// caller at the LLM-call boundary — the suspension point the gateway
/// uses to overlap simulated model latency across tenants. The
/// sequential [`run`] drives the same state machine to completion, so
/// both paths execute byte-identical traces by construction.
pub struct GuiState {
    plan: Vec<GuiStep>,
    cursor: usize,
    /// Navigation-forest prompt knowledge (§5.5 ablation), fixed at plan
    /// time.
    forest_tokens: usize,
}

impl GuiState {
    /// Prepares the imperative plan (the LLM's first planning pass —
    /// this consumes RNG and must happen exactly once, right after the
    /// HostAgent call).
    pub fn plan(task: &AgentTask, llm: &mut SimLlm, forest_tokens: usize) -> GuiState {
        GuiState {
            plan: llm.prepare_plan(&task.plan, &task.mutations).gui,
            cursor: 0,
            forest_tokens,
        }
    }

    /// One AppAgent turn: observe, plan an action sequence, execute it.
    /// Returns `None` while more turns remain, `Some(result)` when the
    /// run ended (plan exhausted, failure, or step cap).
    pub fn turn(
        &mut self,
        session: &mut Session,
        llm: &mut SimLlm,
        step_cap: usize,
    ) -> Option<GuiRunResult> {
        if self.cursor >= self.plan.len() {
            return Some(GuiRunResult { failure: None, completed: true });
        }
        // Reserve the two verification calls within the cap.
        if llm.calls() + 2 >= step_cap {
            return Some(GuiRunResult {
                failure: Some(FailureCause::StepLimitExceeded),
                completed: false,
            });
        }
        let (snap, screen) = observe(session);
        // The baseline observation carries the full exposed accessibility
        // tree (§5.1), not just the on-screen subset.
        let prompt = GUI_BASE_PROMPT_TOKENS
            + tokens::count(&dmi_core::screen::full_tree_prompt_text(&snap))
            + self.forest_tokens;

        // Plan an action sequence: the maximal prefix of remaining actions
        // whose targets are all currently visible, within the horizon.
        let mut batch = 0usize;
        while self.cursor + batch < self.plan.len() && batch < llm.profile.gui_bundle_limit {
            if step_groundable(&screen, &self.plan[self.cursor + batch]) {
                batch += 1;
            } else {
                break;
            }
        }
        llm.record_call(prompt, output_tokens(batch.max(1)));

        if batch == 0 {
            // The next target is not on screen: mis-aligned state. Try to
            // re-orient (close popups/dialogs) and re-plan, or give up.
            if llm.sample_recover() {
                let _ = session.press("Esc");
                let _ = session.press("Esc");
                return None;
            }
            return Some(GuiRunResult {
                failure: Some(FailureCause::ControlLocalization),
                completed: false,
            });
        }

        // Execute the sequence, re-grounding each action on a fresh
        // snapshot (the screen the LLM planned on goes stale mid-batch).
        for _ in 0..batch {
            let step = &self.plan[self.cursor];
            match execute_step(session, llm, step) {
                Exec::Ok => {
                    self.cursor += 1;
                }
                Exec::Stale => {
                    // Prior actions changed the UI; re-plan next turn.
                    break;
                }
                Exec::RecoveredError => {
                    // Wrong interaction, noticed: dismiss, take a
                    // re-orientation round trip (observe the damage), and
                    // retry the same action next turn.
                    let _ = session.press("Esc");
                    let (snap, _) = observe(session);
                    let prompt = GUI_BASE_PROMPT_TOKENS
                        + tokens::count(&dmi_core::screen::full_tree_prompt_text(&snap))
                        + self.forest_tokens;
                    llm.record_call(prompt, 20);
                    break;
                }
                Exec::Failed(cause) => {
                    return Some(GuiRunResult { failure: Some(cause), completed: false });
                }
            }
            if session.is_trapped() {
                return Some(GuiRunResult {
                    failure: Some(FailureCause::ControlLocalization),
                    completed: false,
                });
            }
        }
        None
    }
}

/// Runs the imperative plan through the AppAgent loop to completion.
///
/// `forest_tokens` is non-zero in the ablation (§5.5): the navigation
/// forest is prompt knowledge but no declarative interface exists.
pub fn run(
    task: &AgentTask,
    session: &mut Session,
    llm: &mut SimLlm,
    forest_tokens: usize,
    step_cap: usize,
) -> GuiRunResult {
    let mut state = GuiState::plan(task, llm, forest_tokens);
    loop {
        if let Some(result) = state.turn(session, llm, step_cap) {
            return result;
        }
    }
}

fn step_groundable(screen: &LabeledScreen, step: &GuiStep) -> bool {
    match step {
        GuiStep::Click(q) | GuiStep::ClickAndType { target: q, .. } => ground(screen, q).is_some(),
        GuiStep::Press(_) => true,
        GuiStep::DragScrollbarTo { name, .. } => {
            ground(screen, &dmi_llm::TargetQuery::name(name.clone())).is_some()
        }
        GuiStep::DragSelectLines { surface, .. } => {
            ground(screen, &dmi_llm::TargetQuery::name(surface.clone())).is_some()
        }
    }
}

enum Exec {
    Ok,
    Stale,
    RecoveredError,
    Failed(FailureCause),
}

fn execute_step(session: &mut Session, llm: &mut SimLlm, step: &GuiStep) -> Exec {
    let (_snap, screen) = observe(session);
    match step {
        GuiStep::Click(q) => click_with_grounding(session, llm, &screen, q, None),
        GuiStep::ClickAndType { target, text } => {
            click_with_grounding(session, llm, &screen, target, Some(text))
        }
        GuiStep::Press(k) => match session.press(k) {
            Ok(()) => Exec::Ok,
            Err(_) => Exec::Stale,
        },
        GuiStep::DragScrollbarTo { name, percent } => {
            let q = dmi_llm::TargetQuery::name(name.clone());
            let Some((_, entry)) = ground(&screen, &q) else {
                return Exec::Stale;
            };
            let r = entry.rect;
            let pct = if llm.sample_composite_error() {
                // Misjudged drop point: off by a visually plausible margin.
                let off = if llm.coin() { 30.0 } else { -30.0 };
                let wrong = (percent + off).clamp(0.0, 100.0);
                if !llm.sample_recover() {
                    let y = r.y + (r.h as f64 * wrong / 100.0) as i32;
                    let _ = session.drag(r.center(), (r.center().0, y));
                    return Exec::Failed(FailureCause::CompositeInteraction);
                }
                let y = r.y + (r.h as f64 * wrong / 100.0) as i32;
                let _ = session.drag(r.center(), (r.center().0, y));
                return Exec::RecoveredError;
            } else {
                *percent
            };
            let y = r.y + (r.h as f64 * pct / 100.0) as i32;
            match session.drag(r.center(), (r.center().0, y)) {
                Ok(()) => Exec::Ok,
                Err(_) => Exec::Stale,
            }
        }
        GuiStep::DragSelectLines { surface, start, end } => {
            let q = dmi_llm::TargetQuery::name(surface.clone());
            let Some((_, entry)) = ground(&screen, &q) else {
                return Exec::Stale;
            };
            let r = entry.rect;
            let (mut s, mut e) = (*start, *end);
            if llm.sample_composite_error() {
                // Off-by-one row on either end (precise coordinates are
                // exactly what LLMs are bad at, §2.1).
                s += 1;
                e += 1;
                if !llm.sample_recover() {
                    let _ = drag_rows(session, r, s, e);
                    return Exec::Failed(FailureCause::CompositeInteraction);
                }
                let _ = drag_rows(session, r, s, e);
                return Exec::RecoveredError;
            }
            match drag_rows(session, r, s, e) {
                Ok(()) => Exec::Ok,
                Err(_) => Exec::Stale,
            }
        }
    }
}

fn drag_rows(
    session: &mut Session,
    r: dmi_uia::Rect,
    start: usize,
    end: usize,
) -> Result<(), dmi_gui::AppError> {
    let row_h = dmi_gui::layout::ROW_H;
    let y0 = r.y + 2 + start as i32 * row_h;
    let y1 = r.y + 2 + end as i32 * row_h;
    // The x offset lands inside the surface's child rows (indented one
    // level), so rows beyond the first still hit the document.
    session.drag((r.x + 12, y0), (r.x + 12, y1))
}

fn click_with_grounding(
    session: &mut Session,
    llm: &mut SimLlm,
    screen: &LabeledScreen,
    q: &dmi_llm::TargetQuery,
    text: Option<&str>,
) -> Exec {
    let Some((idx, _)) = ground(screen, q) else {
        return Exec::Stale;
    };
    let target_idx = if llm.sample_grounding_error() {
        // Visual mis-grounding: a different visible control is clicked.
        llm.wrong_index(screen.entries.len(), idx)
    } else {
        idx
    };
    let entry = &screen.entries[target_idx];
    let wid = session.widget_of(entry.runtime);
    let click = session.click(wid);
    if target_idx != idx {
        // Wrong control was activated; can the model tell?
        return if llm.sample_recover() {
            Exec::RecoveredError
        } else {
            Exec::Failed(FailureCause::ControlLocalization)
        };
    }
    match click {
        Ok(()) => {
            if let Some(t) = text {
                if session.type_text(t).is_err() {
                    return Exec::Stale;
                }
            }
            Exec::Ok
        }
        Err(_) => Exec::Stale,
    }
}
