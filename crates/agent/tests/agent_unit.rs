//! Unit-level agent tests on a minimal inline task (the full-suite
//! behaviour is covered by the workspace integration tests).

use dmi_agent::{
    run_task, AgentTask, Gateway, GatewayConfig, InterfaceMode, RunConfig, ServeApp, ServeRequest,
};
use dmi_apps::AppKind;
use dmi_llm::{CapabilityProfile, GuiStep, PlanStep, TargetQuery, TaskPlan, VisitTarget};
use std::sync::Arc;

fn perfect() -> CapabilityProfile {
    let mut p = CapabilityProfile::gpt5_medium();
    p.policy_err = 0.0;
    p.dmi_mech_err = 0.0;
    p.grounding_err = 0.0;
    p.composite_err = 0.0;
    p.instruction_noise = 0.0;
    p
}

/// A two-action task whose GUI actions are co-visible from the start
/// (both live on the Home tab), so a wide action-sequence horizon can
/// bundle them into one turn.
fn bold_italic_task() -> AgentTask {
    AgentTask {
        id: "unit-bold-italic".into(),
        app: AppKind::Word,
        description: "Make the first paragraph bold and italic.".into(),
        setup: Some(|s| {
            let surf = s.app().tree().find_by_automation_id("Body").unwrap();
            s.select_lines(surf, 0, 0).unwrap();
        }),
        verify: |s| {
            let w = s.app().as_any().downcast_ref::<dmi_apps::WordApp>().unwrap();
            w.doc.paragraphs[0].format.bold && w.doc.paragraphs[0].format.italic
        },
        plan: TaskPlan {
            dmi: vec![PlanStep::Visit(vec![
                VisitTarget::click(TargetQuery::under("Bold", "Font")),
                VisitTarget::click(TargetQuery::under("Italic", "Font")),
            ])],
            gui: vec![
                GuiStep::Click(TargetQuery::under("Bold", "Font")),
                GuiStep::Click(TargetQuery::under("Italic", "Font")),
            ],
        },
        mutations: vec![dmi_llm::PlanMutation::DropLast],
    }
}

#[test]
fn wide_horizon_bundles_covisible_actions() {
    let task = bold_italic_task();
    let mut narrow = perfect();
    narrow.gui_bundle_limit = 1;
    let mut wide = perfect();
    wide.gui_bundle_limit = 4;
    let t_narrow = run_task(&task, None, &RunConfig::test(narrow, InterfaceMode::GuiOnly, 0));
    let t_wide = run_task(&task, None, &RunConfig::test(wide, InterfaceMode::GuiOnly, 0));
    assert!(t_narrow.success && t_wide.success);
    // Narrow horizon: host + 2 action turns + 2 verify = 5.
    assert_eq!(t_narrow.llm_calls, 5);
    // Wide horizon: both actions ride one action sequence (UFO2-as).
    assert_eq!(t_wide.llm_calls, 4);
}

#[test]
fn dmi_run_is_single_core_call_either_way() {
    let task = bold_italic_task();
    let mut s = dmi_gui::Session::new(AppKind::Word.launch_small());
    let (dmi, _) = dmi_core::Dmi::build(&mut s, &dmi_core::DmiBuildConfig::office("Word"));
    let dmi = std::sync::Arc::new(dmi);
    let trace =
        run_task(&task, Some(&dmi), &RunConfig::test(perfect(), InterfaceMode::GuiPlusDmi, 0));
    assert!(trace.success);
    assert_eq!(trace.llm_calls, 4, "one visit call for both targets");
    assert_eq!(trace.core_calls, 1);
}

#[test]
fn trace_records_mode_profile_and_tokens() {
    let task = bold_italic_task();
    let trace = run_task(&task, None, &RunConfig::test(perfect(), InterfaceMode::GuiOnly, 9));
    assert_eq!(trace.mode, InterfaceMode::GuiOnly);
    assert_eq!(trace.profile, "GPT-5 (Medium)");
    assert_eq!(trace.seed, 9);
    assert!(trace.prompt_tokens > 1000, "prompts accounted: {}", trace.prompt_tokens);
    assert!(trace.sim_secs > 0.0);
    assert!(!trace.fallback_used);
}

#[test]
fn gateway_traces_match_sequential_runs_at_any_worker_count() {
    let task = Arc::new(bold_italic_task());
    let mut s = dmi_gui::Session::new(AppKind::Word.launch_small());
    let (dmi, _) = dmi_core::Dmi::build(&mut s, &dmi_core::DmiBuildConfig::office("Word"));
    let dmi = Arc::new(dmi);

    // Three tenants, mixed modes and seeds, all against one shared app.
    let requests: Vec<ServeRequest> = (0..6u64)
        .map(|i| ServeRequest {
            tenant: format!("tenant-{}", i % 3),
            app: "word".into(),
            task: Arc::clone(&task),
            cfg: RunConfig::test(
                perfect(),
                if i % 2 == 0 { InterfaceMode::GuiPlusDmi } else { InterfaceMode::GuiOnly },
                i,
            ),
        })
        .collect();

    let sequential: Vec<String> =
        requests.iter().map(|r| run_task(&r.task, Some(&dmi), &r.cfg).identity_bytes()).collect();

    for workers in [1usize, 4] {
        let donor = dmi_gui::Session::new(AppKind::Word.launch_small());
        let mut gw = Gateway::new(
            vec![ServeApp::new("word", donor, Some(Arc::clone(&dmi)))],
            GatewayConfig { workers, sessions_per_app: 2, max_in_flight: 0 },
        );
        let report = gw.serve(requests.clone());
        assert_eq!(report.stats.completed, 6);
        assert_eq!(report.stats.faulted, 0);
        assert!(report.stats.session_reuses > 0, "pool cap 2 forces recycling for 6 tasks");
        for (outcome, expect) in report.outcomes.iter().zip(&sequential) {
            let got = outcome.trace.as_ref().expect("trace present").identity_bytes();
            assert_eq!(&got, expect, "workers={workers} tenant={}", outcome.tenant);
        }
        // Batching overlaps latency: the virtual makespan undercuts the
        // serialized baseline whenever two tasks ever share a round.
        assert!(report.stats.virtual_secs < report.stats.serialized_secs);
        assert!(report.latency_percentile(99.0) >= report.latency_percentile(50.0));
    }
}

/// Forwards everything to the wrapped app except `fork` (always `None`),
/// exercising the gateway's donor-lending path. `as_any` passes through
/// so task verifiers still downcast to the concrete app.
struct Unforkable(Box<dyn dmi_gui::GuiApp>);

impl dmi_gui::GuiApp for Unforkable {
    fn name(&self) -> &str {
        self.0.name()
    }
    fn tree(&self) -> &dmi_gui::UiTree {
        self.0.tree()
    }
    fn tree_mut(&mut self) -> &mut dmi_gui::UiTree {
        self.0.tree_mut()
    }
    fn dispatch(
        &mut self,
        source: dmi_gui::WidgetId,
        binding: &dmi_gui::CommandBinding,
    ) -> Result<(), dmi_gui::AppError> {
        self.0.dispatch(source, binding)
    }
    fn on_window_close(
        &mut self,
        root: dmi_gui::WidgetId,
        commit: dmi_gui::CommitKind,
    ) -> Result<(), dmi_gui::AppError> {
        self.0.on_window_close(root, commit)
    }
    fn reset(&mut self) {
        self.0.reset()
    }
    fn pristine_token(&self) -> Option<u64> {
        self.0.pristine_token()
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self.0.as_any()
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self.0.as_any_mut()
    }
}

#[test]
fn gateway_serves_unforkable_apps_on_the_lent_donor() {
    let task = Arc::new(bold_italic_task());
    let requests: Vec<ServeRequest> = (0..3u64)
        .map(|i| ServeRequest {
            tenant: "solo".into(),
            app: "word".into(),
            task: Arc::clone(&task),
            cfg: RunConfig::test(perfect(), InterfaceMode::GuiOnly, i),
        })
        .collect();
    let sequential: Vec<String> =
        requests.iter().map(|r| run_task(&r.task, None, &r.cfg).identity_bytes()).collect();

    // An unforkable donor: capacity one, every task recycles the donor.
    let donor = dmi_gui::Session::new(Box::new(Unforkable(AppKind::Word.launch_small())));
    let mut gw = Gateway::new(
        vec![ServeApp::new("word", donor, None)],
        GatewayConfig { workers: 1, sessions_per_app: 4, max_in_flight: 0 },
    );
    let report = gw.serve(requests);
    assert_eq!(report.stats.completed, 3);
    assert_eq!(report.stats.session_forks, 0, "nothing forked off an unforkable app");
    for (outcome, expect) in report.outcomes.iter().zip(&sequential) {
        assert_eq!(&outcome.trace.as_ref().expect("trace").identity_bytes(), expect);
    }
}

#[test]
fn gui_plus_forest_requires_no_dmi_but_uses_its_tokens() {
    let task = bold_italic_task();
    let mut s = dmi_gui::Session::new(AppKind::Word.launch_small());
    let (dmi, _) = dmi_core::Dmi::build(&mut s, &dmi_core::DmiBuildConfig::office("Word"));
    let dmi = std::sync::Arc::new(dmi);
    let with =
        run_task(&task, Some(&dmi), &RunConfig::test(perfect(), InterfaceMode::GuiPlusForest, 0));
    let without = run_task(&task, None, &RunConfig::test(perfect(), InterfaceMode::GuiOnly, 0));
    assert!(with.success && without.success);
    assert!(
        with.prompt_tokens > without.prompt_tokens + 1000,
        "forest knowledge inflates prompts: {} vs {}",
        with.prompt_tokens,
        without.prompt_tokens
    );
}
