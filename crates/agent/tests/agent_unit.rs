//! Unit-level agent tests on a minimal inline task (the full-suite
//! behaviour is covered by the workspace integration tests).

use dmi_agent::{run_task, AgentTask, InterfaceMode, RunConfig};
use dmi_apps::AppKind;
use dmi_llm::{CapabilityProfile, GuiStep, PlanStep, TargetQuery, TaskPlan, VisitTarget};

fn perfect() -> CapabilityProfile {
    let mut p = CapabilityProfile::gpt5_medium();
    p.policy_err = 0.0;
    p.dmi_mech_err = 0.0;
    p.grounding_err = 0.0;
    p.composite_err = 0.0;
    p.instruction_noise = 0.0;
    p
}

/// A two-action task whose GUI actions are co-visible from the start
/// (both live on the Home tab), so a wide action-sequence horizon can
/// bundle them into one turn.
fn bold_italic_task() -> AgentTask {
    AgentTask {
        id: "unit-bold-italic".into(),
        app: AppKind::Word,
        description: "Make the first paragraph bold and italic.".into(),
        setup: Some(|s| {
            let surf = s.app().tree().find_by_automation_id("Body").unwrap();
            s.select_lines(surf, 0, 0).unwrap();
        }),
        verify: |s| {
            let w = s.app().as_any().downcast_ref::<dmi_apps::WordApp>().unwrap();
            w.doc.paragraphs[0].format.bold && w.doc.paragraphs[0].format.italic
        },
        plan: TaskPlan {
            dmi: vec![PlanStep::Visit(vec![
                VisitTarget::click(TargetQuery::under("Bold", "Font")),
                VisitTarget::click(TargetQuery::under("Italic", "Font")),
            ])],
            gui: vec![
                GuiStep::Click(TargetQuery::under("Bold", "Font")),
                GuiStep::Click(TargetQuery::under("Italic", "Font")),
            ],
        },
        mutations: vec![dmi_llm::PlanMutation::DropLast],
    }
}

#[test]
fn wide_horizon_bundles_covisible_actions() {
    let task = bold_italic_task();
    let mut narrow = perfect();
    narrow.gui_bundle_limit = 1;
    let mut wide = perfect();
    wide.gui_bundle_limit = 4;
    let t_narrow = run_task(&task, None, &RunConfig::test(narrow, InterfaceMode::GuiOnly, 0));
    let t_wide = run_task(&task, None, &RunConfig::test(wide, InterfaceMode::GuiOnly, 0));
    assert!(t_narrow.success && t_wide.success);
    // Narrow horizon: host + 2 action turns + 2 verify = 5.
    assert_eq!(t_narrow.llm_calls, 5);
    // Wide horizon: both actions ride one action sequence (UFO2-as).
    assert_eq!(t_wide.llm_calls, 4);
}

#[test]
fn dmi_run_is_single_core_call_either_way() {
    let task = bold_italic_task();
    let mut s = dmi_gui::Session::new(AppKind::Word.launch_small());
    let (dmi, _) = dmi_core::Dmi::build(&mut s, &dmi_core::DmiBuildConfig::office("Word"));
    let trace =
        run_task(&task, Some(&dmi), &RunConfig::test(perfect(), InterfaceMode::GuiPlusDmi, 0));
    assert!(trace.success);
    assert_eq!(trace.llm_calls, 4, "one visit call for both targets");
    assert_eq!(trace.core_calls, 1);
}

#[test]
fn trace_records_mode_profile_and_tokens() {
    let task = bold_italic_task();
    let trace = run_task(&task, None, &RunConfig::test(perfect(), InterfaceMode::GuiOnly, 9));
    assert_eq!(trace.mode, InterfaceMode::GuiOnly);
    assert_eq!(trace.profile, "GPT-5 (Medium)");
    assert_eq!(trace.seed, 9);
    assert!(trace.prompt_tokens > 1000, "prompts accounted: {}", trace.prompt_tokens);
    assert!(trace.sim_secs > 0.0);
    assert!(!trace.fallback_used);
}

#[test]
fn gui_plus_forest_requires_no_dmi_but_uses_its_tokens() {
    let task = bold_italic_task();
    let mut s = dmi_gui::Session::new(AppKind::Word.launch_small());
    let (dmi, _) = dmi_core::Dmi::build(&mut s, &dmi_core::DmiBuildConfig::office("Word"));
    let with =
        run_task(&task, Some(&dmi), &RunConfig::test(perfect(), InterfaceMode::GuiPlusForest, 0));
    let without = run_task(&task, None, &RunConfig::test(perfect(), InterfaceMode::GuiOnly, 0));
    assert!(with.success && without.success);
    assert!(
        with.prompt_tokens > without.prompt_tokens + 1000,
        "forest knowledge inflates prompts: {} vs {}",
        with.prompt_tokens,
        without.prompt_tokens
    );
}
