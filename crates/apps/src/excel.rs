//! The simulated Excel application.
//!
//! The workbook grid is the dominant control population (rows × cols
//! `DataItem` cells, like real Excel under UIA), complemented by the ribbon,
//! the Conditional Formatting menu tree (the paper's §5.6 policy-pitfall
//! example), the Name Box edit that commits on Enter (§5.7 "Rich control
//! descriptions" example), sort/filter machinery, and the Format Cells
//! dialog shared by several launchers (a merge node).

use crate::model::sheet::{Addr, CondRule, Range, Sheet};
use crate::office::{self, commands, Chrome, Pristine};
use dmi_gui::{
    AppError, Behavior, CommandBinding, GuiApp, UiTree, Widget, WidgetBuilder, WidgetId,
};
use dmi_uia::{ControlType as CT, PatternKind};
use std::sync::Arc;

/// Build-time options for the simulated Excel instance.
#[derive(Debug, Clone)]
pub struct ExcelConfig {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Rows visible in the grid viewport.
    pub viewport_rows: usize,
}

impl Default for ExcelConfig {
    fn default() -> Self {
        ExcelConfig { rows: 110, cols: 26, viewport_rows: 30 }
    }
}

/// The mutable model state captured in the pristine launch image: the
/// workbook plus every session-scoped scalar `dispatch` can change. Kept
/// as one struct so `reset` restores from the capture instead of
/// re-listing constructor defaults.
#[derive(Debug, Clone)]
struct ExcelState {
    sheet: Sheet,
    active: Addr,
    color_target: String,
    cond_threshold: f64,
    cond_fill: String,
}

/// The simulated Excel application.
pub struct ExcelApp {
    config: ExcelConfig,
    tree: UiTree,
    /// The workbook model.
    pub sheet: Sheet,
    /// Active cell (Name Box target).
    pub active: Addr,
    color_target: String,
    /// Staged threshold typed into a conditional-formatting dialog.
    cond_threshold: f64,
    /// Staged fill color for conditional formatting.
    cond_fill: String,
    chrome: Chrome,
    grid: WidgetId,
    name_box: WidgetId,
    formula_bar: WidgetId,
    /// Cell widget ids by (row, col).
    cell_widgets: Vec<Vec<WidgetId>>,
    /// Launch-state image `reset` clones from (no arena reconstruction).
    pristine: Arc<Pristine<ExcelState>>,
}

impl ExcelApp {
    /// Creates the app with the default 100×26 sheet and seeded data.
    pub fn new() -> Self {
        Self::with_config(ExcelConfig::default())
    }

    /// Creates the app with explicit options.
    pub fn with_config(config: ExcelConfig) -> Self {
        let mut sheet = Sheet::new(config.rows, config.cols);
        seed_data(&mut sheet);
        let mut tree = UiTree::new();
        let chrome = office::build_chrome(&mut tree, "Book1 - Excel");
        office::build_backstage(&mut tree, chrome.main);
        let built = build_ui(&mut tree, &chrome, &config, &sheet);
        let state = ExcelState {
            sheet,
            active: Addr { row: 0, col: 0 },
            color_target: "fill".into(),
            cond_threshold: 0.0,
            cond_fill: "Red".into(),
        };
        let pristine = Pristine::capture(&tree, &state);
        ExcelApp {
            config,
            tree,
            sheet: state.sheet,
            active: state.active,
            color_target: state.color_target,
            cond_threshold: state.cond_threshold,
            cond_fill: state.cond_fill,
            chrome,
            grid: built.grid,
            name_box: built.name_box,
            formula_bar: built.formula_bar,
            cell_widgets: built.cell_widgets,
            pristine,
        }
    }

    /// The grid widget.
    pub fn grid(&self) -> WidgetId {
        self.grid
    }

    /// The Name Box edit.
    pub fn name_box(&self) -> WidgetId {
        self.name_box
    }

    /// The formula bar edit.
    pub fn formula_bar(&self) -> WidgetId {
        self.formula_bar
    }

    /// The chrome handles.
    pub fn chrome(&self) -> Chrome {
        self.chrome
    }

    /// The widget backing a grid cell.
    pub fn cell_widget(&self, a: Addr) -> Option<WidgetId> {
        self.cell_widgets.get(a.row).and_then(|r| r.get(a.col)).copied()
    }

    /// Refreshes cell widget values from the model (after mutation).
    fn sync_grid(&mut self) {
        for r in 0..self.config.rows {
            for c in 0..self.config.cols {
                let a = Addr { row: r, col: c };
                let v = self.sheet.cell(a).value;
                let id = self.cell_widgets[r][c];
                if self.tree.widget(id).value != v {
                    self.tree.widget_mut(id).value = v;
                }
            }
        }
    }

    fn selection_or_active(&self) -> Range {
        self.sheet.selection.unwrap_or(Range::cell(self.active))
    }

    fn apply_fill(&mut self, color: &str) {
        let range = self.selection_or_active();
        for a in range.iter().collect::<Vec<_>>() {
            self.sheet.cell_mut(a).fill = Some(color.to_string());
        }
    }

    fn add_staged_cond_rule(&mut self, kind: &str) {
        let rule = CondRule {
            kind: kind.to_string(),
            threshold: self.cond_threshold,
            fill: self.cond_fill.clone(),
            range: self.selection_or_active(),
        };
        self.sheet.add_cond_rule(rule);
    }
}

impl Default for ExcelApp {
    fn default() -> Self {
        Self::new()
    }
}

/// Seeds a small data table (used by sort/filter/conditional tasks).
fn seed_data(sheet: &mut Sheet) {
    let header = ["Product", "Region", "Units", "Revenue"];
    for (c, h) in header.iter().enumerate() {
        if c < sheet.cols {
            sheet.set_value(Addr { row: 0, col: c }, h);
        }
    }
    let rows: [(&str, &str, i64, i64); 8] = [
        ("Widget", "East", 30, 1500),
        ("Gadget", "West", 4, 200),
        ("Widget", "West", 100, 5000),
        ("Sprocket", "East", 55, 2750),
        ("Gadget", "East", 12, 600),
        ("Sprocket", "West", 70, 3500),
        ("Widget", "North", 8, 400),
        ("Gadget", "South", 41, 2050),
    ];
    for (r, (p, reg, u, rev)) in rows.iter().enumerate() {
        let row = r + 1;
        if row < sheet.rows && sheet.cols >= 4 {
            sheet.set_value(Addr { row, col: 0 }, p);
            sheet.set_value(Addr { row, col: 1 }, reg);
            sheet.set_value(Addr { row, col: 2 }, &u.to_string());
            sheet.set_value(Addr { row, col: 3 }, &rev.to_string());
        }
    }
}

struct Built {
    grid: WidgetId,
    name_box: WidgetId,
    formula_bar: WidgetId,
    cell_widgets: Vec<Vec<WidgetId>>,
}

fn build_ui(tree: &mut UiTree, chrome: &Chrome, config: &ExcelConfig, sheet: &Sheet) -> Built {
    let fonts = office::font_names();

    // ---------------- Home tab ----------------
    let home = office::add_tab(tree, chrome.ribbon, "Home", true);
    let clip = office::add_group(tree, home, "Clipboard");
    office::button(tree, clip, "Cut", "cut", None);
    office::button(tree, clip, "Copy", "copy", None);
    let paste = office::button(tree, clip, "Paste", "paste", None);
    tree.widget_mut(paste).enabled = false;

    let font_grp = office::add_group(tree, home, "Font");
    office::gallery(tree, font_grp, "Font Name", &fonts, "set_font");
    office::toggle_button(tree, font_grp, "Bold", "bold");
    office::toggle_button(tree, font_grp, "Italic", "italic");
    office::toggle_button(tree, font_grp, "Underline", "underline");
    let border_opts: Vec<String> = [
        "Bottom Border",
        "Top Border",
        "Left Border",
        "Right Border",
        "All Borders",
        "Outside Borders",
        "Thick Box Border",
        "No Border",
    ]
    .map(String::from)
    .to_vec();
    office::gallery(tree, font_grp, "Borders", &border_opts, "set_borders");
    office::color_menu(tree, font_grp, "Fill Color", "set_fill_color", "fill");
    office::color_menu(tree, font_grp, "Font Color", "set_font_color", "font");

    let align_grp = office::add_group(tree, home, "Alignment");
    for (n, a) in [("Align Left", "Left"), ("Center", "Center"), ("Align Right", "Right")] {
        office::button(tree, align_grp, n, "set_cell_alignment", Some(a));
    }
    office::checkbox(tree, align_grp, "Wrap Text", "wrap_text");
    let merge_opts: Vec<String> =
        ["Merge & Center", "Merge Across", "Merge Cells", "Unmerge Cells"]
            .map(String::from)
            .to_vec();
    office::gallery(tree, align_grp, "Merge", &merge_opts, "merge_cells");

    let num_grp = office::add_group(tree, home, "Number");
    let formats: Vec<String> = [
        "General",
        "Number",
        "Currency",
        "Accounting",
        "Short Date",
        "Long Date",
        "Time",
        "Percentage",
        "Fraction",
        "Scientific",
        "Text",
    ]
    .map(String::from)
    .to_vec();
    office::gallery(tree, num_grp, "Number Format", &formats, "set_number_format");
    office::button(tree, num_grp, "Percent Style", "set_number_format", Some("Percentage"));
    office::button(tree, num_grp, "Comma Style", "set_number_format", Some("Number"));
    office::button(tree, num_grp, "Increase Decimal", "increase_decimal", None);
    office::button(tree, num_grp, "Decrease Decimal", "decrease_decimal", None);
    // Format Cells dialog: a shared merge node reachable from several
    // launchers.
    let (fc_dlg, fc_body) = office::dialog(tree, "Format Cells");
    for tab_name in ["Number", "Alignment", "Font", "Border", "Fill", "Protection"] {
        let t = tree.add(
            fc_body,
            WidgetBuilder::new(tab_name, CT::TabItem).on_click(Behavior::SwitchTab).build(),
        );
        match tab_name {
            "Number" => {
                for f in &formats {
                    tree.add(
                        t,
                        WidgetBuilder::new(f.clone(), CT::ListItem)
                            .on_click(Behavior::Command(CommandBinding::with_arg(
                                "set_number_format",
                                f.clone(),
                            )))
                            .build(),
                    );
                }
            }
            "Fill" => {
                for c in crate::model::color::STANDARD {
                    tree.add(
                        t,
                        WidgetBuilder::new(c, CT::ListItem)
                            .on_click(Behavior::Command(CommandBinding::with_arg(
                                "set_fill_color",
                                c,
                            )))
                            .build(),
                    );
                }
            }
            _ => {
                for i in 0..6 {
                    tree.add(t, Widget::new(format!("{tab_name} Option {i}"), CT::CheckBox));
                }
            }
        }
    }
    office::dialog_launcher(tree, num_grp, "Number Format Settings", fc_dlg);

    let styles_grp = office::add_group(tree, home, "Styles");
    // Conditional Formatting menu tree.
    let cf = tree.add(
        styles_grp,
        WidgetBuilder::new("Conditional Formatting", CT::SplitButton)
            .automation_id("ConditionalFormatting")
            .help("Highlight interesting cells with rules.")
            .popup()
            .on_click(Behavior::OpenMenu)
            .build(),
    );
    let hc = tree.add(
        cf,
        WidgetBuilder::new("Highlight Cells Rules", CT::MenuItem)
            .popup()
            .on_click(Behavior::OpenMenu)
            .build(),
    );
    for (label, kind) in [
        ("Greater Than...", "greater_than"),
        ("Less Than...", "less_than"),
        ("Equal To...", "equal"),
    ] {
        let (dlg, body) = office::dialog(tree, label.trim_end_matches("..."));
        office::edit_field(tree, body, "Format cells that are", "set_cond_threshold");
        let fills: Vec<String> =
            ["Light Red Fill", "Yellow Fill", "Green Fill", "Red", "Yellow", "Green"]
                .map(String::from)
                .to_vec();
        office::gallery(tree, body, "with", &fills, "set_cond_fill");
        office::button(tree, body, "Apply Rule", "apply_cond_rule", Some(kind));
        tree.add(
            hc,
            WidgetBuilder::new(label, CT::MenuItem).on_click(Behavior::OpenDialog(dlg)).build(),
        );
    }
    let tb = tree.add(
        cf,
        WidgetBuilder::new("Top/Bottom Rules", CT::MenuItem)
            .popup()
            .on_click(Behavior::OpenMenu)
            .build(),
    );
    for l in [
        "Top 10 Items...",
        "Top 10%...",
        "Bottom 10 Items...",
        "Bottom 10%...",
        "Above Average...",
        "Below Average...",
    ] {
        tree.add(
            tb,
            WidgetBuilder::new(l, CT::MenuItem)
                .on_click(Behavior::CommandAndDismiss(CommandBinding::with_arg(
                    "apply_top_bottom",
                    l,
                )))
                .build(),
        );
    }
    for (name, n) in [("Data Bars", 12), ("Color Scales", 12), ("Icon Sets", 20)] {
        let m = tree.add(
            cf,
            WidgetBuilder::new(name, CT::MenuItem).popup().on_click(Behavior::OpenMenu).build(),
        );
        for i in 0..n {
            tree.add(
                m,
                WidgetBuilder::new(format!("{name} {i}"), CT::ListItem)
                    .on_click(Behavior::CommandAndDismiss(CommandBinding::with_arg(
                        "apply_visual_rule",
                        format!("{name} {i}"),
                    )))
                    .build(),
            );
        }
    }
    let table_styles: Vec<String> = (0..60).map(|i| format!("Table Style {i}")).collect();
    office::gallery(tree, styles_grp, "Format as Table", &table_styles, "format_as_table");
    let cell_styles: Vec<String> = (0..48).map(|i| format!("Cell Style {i}")).collect();
    office::gallery(tree, styles_grp, "Cell Styles", &cell_styles, "apply_cell_style");

    let cells_grp = office::add_group(tree, home, "Cells");
    let fmt_menu = tree.add(
        cells_grp,
        WidgetBuilder::new("Format", CT::SplitButton).popup().on_click(Behavior::OpenMenu).build(),
    );
    let (rh_dlg, rh_body) = office::dialog(tree, "Row Height");
    office::edit_field(tree, rh_body, "Row height", "set_row_height");
    tree.add(
        fmt_menu,
        WidgetBuilder::new("Row Height...", CT::MenuItem)
            .on_click(Behavior::OpenDialog(rh_dlg))
            .build(),
    );
    let (rn_dlg, rn_body) = office::dialog(tree, "Rename Sheet");
    office::edit_field(tree, rn_body, "Sheet name", "rename_sheet");
    tree.add(
        fmt_menu,
        WidgetBuilder::new("Rename Sheet", CT::MenuItem)
            .on_click(Behavior::OpenDialog(rn_dlg))
            .build(),
    );
    tree.add(
        fmt_menu,
        WidgetBuilder::new("Format Cells...", CT::MenuItem)
            .on_click(Behavior::OpenDialog(fc_dlg))
            .build(),
    );
    office::color_menu(tree, fmt_menu, "Tab Color", "set_tab_color", "tab");

    let edit_grp = office::add_group(tree, home, "Editing");
    let autosum = tree.add(
        edit_grp,
        WidgetBuilder::new("AutoSum", CT::SplitButton).popup().on_click(Behavior::OpenMenu).build(),
    );
    for f in ["Sum", "Average", "Count Numbers", "Max", "Min"] {
        tree.add(
            autosum,
            WidgetBuilder::new(f, CT::MenuItem)
                .on_click(Behavior::CommandAndDismiss(CommandBinding::with_arg("autosum", f)))
                .build(),
        );
    }
    let sf = tree.add(
        edit_grp,
        WidgetBuilder::new("Sort & Filter", CT::SplitButton)
            .automation_id("SortFilter")
            .popup()
            .on_click(Behavior::OpenMenu)
            .build(),
    );
    tree.add(
        sf,
        WidgetBuilder::new("Sort A to Z", CT::MenuItem)
            .on_click(Behavior::CommandAndDismiss(CommandBinding::with_arg("sort", "asc")))
            .build(),
    );
    tree.add(
        sf,
        WidgetBuilder::new("Sort Z to A", CT::MenuItem)
            .on_click(Behavior::CommandAndDismiss(CommandBinding::with_arg("sort", "desc")))
            .build(),
    );
    let (sort_dlg, sort_body) = office::dialog(tree, "Sort");
    let col_names: Vec<String> = (0..config.cols.min(26))
        .map(|c| format!("Column {}", Addr { row: 0, col: c }.to_a1().trim_end_matches('1')))
        .collect();
    office::gallery(tree, sort_body, "Sort by", &col_names, "set_sort_column");
    office::radio_group(tree, sort_body, "Order", &["Ascending", "Descending"], "set_sort_order");
    office::button(tree, sort_body, "Apply Sort", "apply_custom_sort", None);
    tree.add(
        sf,
        WidgetBuilder::new("Custom Sort...", CT::MenuItem)
            .on_click(Behavior::OpenDialog(sort_dlg))
            .build(),
    );
    tree.add(
        sf,
        WidgetBuilder::new("Filter", CT::MenuItem)
            .on_click(Behavior::CommandAndDismiss(CommandBinding::new("toggle_filter")))
            .build(),
    );

    // ---------------- Insert / Formulas / Data / View tabs ----------------
    let insert = office::add_tab(tree, chrome.ribbon, "Insert", false);
    let charts_grp = office::add_group(tree, insert, "Charts");
    for kind in ["Column", "Line", "Pie", "Bar"] {
        let items: Vec<String> = (0..12).map(|i| format!("{kind} Chart {i}")).collect();
        office::gallery(tree, charts_grp, &format!("Insert {kind} Chart"), &items, "insert_chart");
    }
    let tables_grp = office::add_group(tree, insert, "Tables");
    office::button(tree, tables_grp, "PivotTable", "insert_pivot", None);
    office::button(tree, tables_grp, "Table", "insert_table", None);

    let formulas = office::add_tab(tree, chrome.ribbon, "Formulas", false);
    let lib = office::add_group(tree, formulas, "Function Library");
    for cat in [
        "Financial",
        "Logical",
        "Text",
        "Date & Time",
        "Lookup",
        "Math & Trig",
        "Statistical",
        "Engineering",
    ] {
        let items: Vec<String> = (0..24).map(|i| format!("{cat} Function {i}")).collect();
        office::gallery(tree, lib, cat, &items, "insert_function");
    }

    let data = office::add_tab(tree, chrome.ribbon, "Data", false);
    let dg = office::add_group(tree, data, "Sort & Filter");
    office::button(tree, dg, "Sort Ascending", "sort", Some("asc"));
    office::button(tree, dg, "Sort Descending", "sort", Some("desc"));
    office::button(tree, dg, "Filter", "toggle_filter", None);
    let tools = office::add_group(tree, data, "Data Tools");
    office::button(tree, tools, "Remove Duplicates", "remove_duplicates", None);
    // A wizard that cannot be escaped — rip blocklist candidate.
    tree.add(
        tools,
        WidgetBuilder::new("Text to Columns", CT::Button).on_click(Behavior::Trap).build(),
    );

    let view = office::add_tab(tree, chrome.ribbon, "View", false);
    let wg = office::add_group(tree, view, "Window");
    let freeze = tree.add(
        wg,
        WidgetBuilder::new("Freeze Panes", CT::SplitButton)
            .automation_id("FreezePanes")
            .popup()
            .on_click(Behavior::OpenMenu)
            .build(),
    );
    for (l, a) in [
        ("Freeze Panes", "both"),
        ("Freeze Top Row", "top_row"),
        ("Freeze First Column", "first_col"),
    ] {
        tree.add(
            freeze,
            WidgetBuilder::new(l, CT::MenuItem)
                .on_click(Behavior::CommandAndDismiss(CommandBinding::with_arg("freeze", a)))
                .build(),
        );
    }
    let sg = office::add_group(tree, view, "Show");
    office::checkbox(tree, sg, "Gridlines", "show_gridlines");
    office::checkbox(tree, sg, "Formula Bar", "show_formula_bar");
    office::checkbox(tree, sg, "Headings", "show_headings");

    // ---------------- Name box, formula bar, grid ----------------
    let bar = tree.add(chrome.main, Widget::new("Formula Bar Area", CT::Pane));
    let name_box = tree.add(
        bar,
        WidgetBuilder::new("Name Box", CT::Edit)
            .automation_id("NameBox")
            .help("Type a cell reference and press Enter to go to it.")
            .on_click(Behavior::FocusEdit)
            .binding(CommandBinding::new("name_box_goto"))
            .build(),
    );
    let formula_bar = tree.add(
        bar,
        WidgetBuilder::new("Formula Bar", CT::Edit)
            .automation_id("FormulaBar")
            .help("Edit the active cell's value; press Enter to commit.")
            .on_click(Behavior::FocusEdit)
            .binding(CommandBinding::new("commit_formula"))
            .build(),
    );

    let grid = tree.add(
        chrome.main,
        WidgetBuilder::new("Sheet1 Grid", CT::Table)
            .automation_id("Grid")
            .scrollable(config.viewport_rows)
            .pattern(PatternKind::Grid)
            .pattern(PatternKind::Selection)
            .build(),
    );
    let header_row = tree.add(grid, Widget::new("Column Headers", CT::Header));
    for c in 0..config.cols {
        let name = Addr { row: 0, col: c }.to_a1().trim_end_matches('1').to_string();
        tree.add(
            header_row,
            WidgetBuilder::new(format!("Column {name}"), CT::HeaderItem)
                .on_click(Behavior::Command(CommandBinding::with_arg(
                    "select_column",
                    name.clone(),
                )))
                .build(),
        );
    }
    let mut cell_widgets = Vec::with_capacity(config.rows);
    for r in 0..config.rows {
        let row = tree.add(grid, Widget::new(format!("Row {}", r + 1), CT::Custom));
        let mut row_ids = Vec::with_capacity(config.cols);
        for c in 0..config.cols {
            let a = Addr { row: r, col: c };
            let id = tree.add(
                row,
                WidgetBuilder::new(a.to_a1(), CT::DataItem)
                    .value(sheet.cell(a).value)
                    .on_click(Behavior::Command(CommandBinding::with_arg("select_cell", a.to_a1())))
                    .build(),
            );
            row_ids.push(id);
        }
        cell_widgets.push(row_ids);
    }
    tree.add(
        chrome.main,
        WidgetBuilder::new("Vertical Scroll Bar", CT::ScrollBar)
            .automation_id("VScroll")
            .scroll_target(grid)
            .build(),
    );

    Built { grid, name_box, formula_bar, cell_widgets }
}

impl GuiApp for ExcelApp {
    fn name(&self) -> &str {
        "Excel"
    }

    fn process_id(&self) -> u32 {
        2002
    }

    fn tree(&self) -> &UiTree {
        &self.tree
    }

    fn tree_mut(&mut self) -> &mut UiTree {
        &mut self.tree
    }

    fn dispatch(&mut self, src: WidgetId, b: &CommandBinding) -> Result<(), AppError> {
        let arg = b.arg.as_deref();
        match b.command.as_str() {
            "select_cell" => {
                let a = Addr::parse(arg.unwrap_or_default()).ok_or_else(|| {
                    AppError::InvalidArgument { message: format!("bad cell ref {arg:?}") }
                })?;
                self.active = a;
                self.sheet.selection = Some(Range::cell(a));
                let v = self.sheet.cell(a).value;
                let fb = self.formula_bar;
                self.tree.widget_mut(fb).value = v;
                Ok(())
            }
            "select_column" => {
                let col_letter = arg.unwrap_or("A");
                let a = Addr::parse(&format!("{col_letter}1")).ok_or_else(|| {
                    AppError::InvalidArgument { message: format!("bad column {col_letter}") }
                })?;
                self.sheet.selection = Some(Range {
                    from: Addr { row: 0, col: a.col },
                    to: Addr { row: self.config.rows - 1, col: a.col },
                });
                Ok(())
            }
            "name_box_goto" => {
                let text = self.tree.widget(src).value.clone();
                let range = Range::parse(&text).ok_or_else(|| AppError::InvalidArgument {
                    message: format!("'{text}' is not a valid reference"),
                })?;
                self.sheet.selection = Some(range);
                self.active = range.from;
                Ok(())
            }
            "commit_formula" => {
                let text = self.tree.widget(src).value.clone();
                let a = self.active;
                self.sheet.set_value(a, &text);
                self.sync_grid();
                Ok(())
            }
            "set_cell_value" => {
                // Direct programmatic path used when typing into a cell.
                let a = self.active;
                self.sheet.set_value(a, arg.unwrap_or_default());
                self.sync_grid();
                Ok(())
            }
            "set_fill_color" => {
                self.apply_fill(arg.unwrap_or_default());
                Ok(())
            }
            "set_font_color" | "set_tab_color" => Ok(()),
            commands::OPEN_MORE_COLORS => {
                self.color_target = arg.unwrap_or("fill").to_string();
                let dlg = self.chrome.more_colors;
                self.tree.open_window(dlg, true);
                Ok(())
            }
            commands::APPLY_COLOR_CTX => {
                if self.color_target == "fill" {
                    self.apply_fill(arg.unwrap_or_default());
                }
                Ok(())
            }
            "toggle_format" => {
                if arg == Some("bold") {
                    let range = self.selection_or_active();
                    for a in range.iter().collect::<Vec<_>>() {
                        let cell = self.sheet.cell_mut(a);
                        cell.bold = !cell.bold;
                    }
                }
                Ok(())
            }
            "set_number_format" => {
                let f = arg.unwrap_or("General").to_string();
                let range = self.selection_or_active();
                for a in range.iter().collect::<Vec<_>>() {
                    self.sheet.cell_mut(a).number_format = Some(f.clone());
                }
                Ok(())
            }
            "set_cond_threshold" => {
                let text = self.tree.widget(src).value.clone();
                self.cond_threshold = text.parse().map_err(|_| AppError::InvalidArgument {
                    message: format!("'{text}' is not a number"),
                })?;
                Ok(())
            }
            "set_cond_fill" => {
                let f = arg.unwrap_or("Red");
                self.cond_fill = f.trim_end_matches(" Fill").replace("Light Red", "Red");
                Ok(())
            }
            "apply_cond_rule" => {
                self.add_staged_cond_rule(arg.unwrap_or("greater_than"));
                Ok(())
            }
            "sort" => {
                let asc = arg != Some("desc");
                let col = self.selection_or_active().from.col;
                self.sheet.sort_by_column(col, asc);
                self.sync_grid();
                Ok(())
            }
            "set_sort_column" => {
                let letter = arg.unwrap_or("Column A").trim_start_matches("Column ").to_string();
                if let Some(a) = Addr::parse(&format!("{letter}1")) {
                    self.active = Addr { row: 0, col: a.col };
                }
                Ok(())
            }
            "set_sort_order" => {
                self.cond_threshold = if arg == Some("Descending") { 1.0 } else { 0.0 };
                Ok(())
            }
            "apply_custom_sort" => {
                let desc = self.cond_threshold > 0.5;
                let col = self.active.col;
                self.sheet.sort_by_column(col, !desc);
                self.sync_grid();
                Ok(())
            }
            "toggle_filter" => {
                self.sheet.filter_on = !self.sheet.filter_on;
                Ok(())
            }
            "freeze" => {
                match arg {
                    Some("top_row") => self.sheet.frozen_rows = 1,
                    Some("first_col") => self.sheet.frozen_cols = 1,
                    _ => {
                        self.sheet.frozen_rows = self.active.row;
                        self.sheet.frozen_cols = self.active.col;
                    }
                }
                Ok(())
            }
            "rename_sheet" => {
                self.sheet.name = self.tree.widget(src).value.clone();
                Ok(())
            }
            "insert_chart" => {
                self.sheet.charts.push(arg.unwrap_or("Chart").to_string());
                Ok(())
            }
            "autosum" => {
                let f = match arg.unwrap_or("Sum") {
                    "Average" => "AVERAGE",
                    "Count Numbers" => "COUNT",
                    "Max" => "MAX",
                    "Min" => "MIN",
                    _ => "SUM",
                };
                // Sum the column above the active cell.
                let a = self.active;
                if a.row > 0 {
                    let range = Range {
                        from: Addr { row: 0, col: a.col },
                        to: Addr { row: a.row - 1, col: a.col },
                    };
                    let formula = format!("={f}({}:{})", range.from.to_a1(), range.to.to_a1());
                    self.sheet.set_value(a, &formula);
                    self.sync_grid();
                }
                Ok(())
            }
            "set_row_height" | "apply_top_bottom" | "apply_visual_rule" | "format_as_table"
            | "apply_cell_style" | "merge_cells" | "wrap_text" | "increase_decimal"
            | "decrease_decimal" | "set_borders" | "set_font" | "set_cell_alignment"
            | "insert_pivot" | "insert_table" | "insert_function" | "remove_duplicates"
            | "save" | "save_as" | "undo" | "redo" | "print" | "cut" | "copy" | "paste"
            | "new_from_template" | "open_recent" => Ok(()),
            other => {
                Err(AppError::Command { command: other.into(), reason: "unknown command".into() })
            }
        }
    }

    fn reset(&mut self) {
        let pristine = Arc::clone(&self.pristine);
        self.tree.clone_from(pristine.tree());
        let state = pristine.doc();
        self.sheet.clone_from(&state.sheet);
        self.active = state.active;
        self.color_target.clone_from(&state.color_target);
        self.cond_threshold = state.cond_threshold;
        self.cond_fill.clone_from(&state.cond_fill);
    }

    fn fork(&self) -> Option<Box<dyn GuiApp>> {
        // A launch-state twin off the shared pristine image: no
        // `build_ui` re-run; widget handles are stable arena indices.
        let pristine = Arc::clone(&self.pristine);
        let state = pristine.doc().clone();
        Some(Box::new(ExcelApp {
            config: self.config.clone(),
            tree: pristine.tree().clone(),
            sheet: state.sheet,
            active: state.active,
            color_target: state.color_target,
            cond_threshold: state.cond_threshold,
            cond_fill: state.cond_fill,
            chrome: self.chrome,
            grid: self.grid,
            name_box: self.name_box,
            formula_bar: self.formula_bar,
            cell_widgets: self.cell_widgets.clone(),
            pristine,
        }))
    }

    fn pristine_token(&self) -> Option<u64> {
        // `reset` restores exactly this image, so its address identifies
        // the post-restart state for the lifetime of the app (and of all
        // of its forks, which share the `Arc`).
        Some(Arc::as_ptr(&self.pristine) as u64)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmi_gui::Session;

    fn session() -> Session {
        Session::new(Box::new(ExcelApp::with_config(ExcelConfig {
            rows: 12,
            cols: 6,
            viewport_rows: 6,
        })))
    }

    fn excel(s: &Session) -> &ExcelApp {
        s.app().as_any().downcast_ref::<ExcelApp>().unwrap()
    }

    fn click_by_name(s: &mut Session, name: &str) {
        let shown: Vec<_> = s
            .app()
            .tree()
            .iter()
            .filter(|(i, w)| w.name == name && s.app().tree().is_shown(*i))
            .map(|(i, _)| i)
            .collect();
        assert!(!shown.is_empty(), "no visible '{name}'");
        s.click(shown[0]).unwrap();
    }

    #[test]
    fn default_tree_exceeds_4k_controls() {
        let app = ExcelApp::new();
        assert!(app.tree.len() > 4000, "Excel tree has {} widgets", app.tree.len());
    }

    #[test]
    fn name_box_selects_range() {
        let mut s = session();
        let nb = excel(&s).name_box();
        s.click(nb).unwrap();
        s.type_text("B2:C4").unwrap();
        s.press("Enter").unwrap();
        let sel = excel(&s).sheet.selection.unwrap();
        assert_eq!(sel.from, Addr { row: 1, col: 1 });
        assert_eq!(sel.to, Addr { row: 3, col: 2 });
    }

    #[test]
    fn name_box_requires_enter_to_commit() {
        let mut s = session();
        let nb = excel(&s).name_box();
        s.click(nb).unwrap();
        s.type_text("B2").unwrap();
        // No Enter: selection unchanged.
        assert_eq!(excel(&s).sheet.selection, None);
    }

    #[test]
    fn formula_bar_sets_active_cell() {
        let mut s = session();
        let a1 = excel(&s).cell_widget(Addr::parse("F10").unwrap()).unwrap();
        // Cell is offscreen in the 6-row viewport? F10 row 9 beyond viewport;
        // scroll first.
        let grid = excel(&s).grid();
        s.scroll_to(grid, 100.0).unwrap();
        s.click(a1).unwrap();
        let fb = excel(&s).formula_bar();
        s.click(fb).unwrap();
        s.type_text("=SUM(C2:C9)").unwrap();
        s.press("Enter").unwrap();
        let v = excel(&s).sheet.cell(Addr::parse("F10").unwrap()).value.clone();
        assert!(!v.starts_with('='), "formula evaluated, got {v}");
    }

    #[test]
    fn fill_color_applies_to_selection() {
        let mut s = session();
        let nb = excel(&s).name_box();
        s.click(nb).unwrap();
        s.type_text("A1:B2").unwrap();
        s.press("Enter").unwrap();
        click_by_name(&mut s, "Fill Color");
        click_by_name(&mut s, "Yellow");
        let sheet = &excel(&s).sheet;
        assert_eq!(sheet.cell(Addr::parse("A1").unwrap()).fill.as_deref(), Some("Yellow"));
        assert_eq!(sheet.cell(Addr::parse("B2").unwrap()).fill.as_deref(), Some("Yellow"));
        assert_eq!(sheet.cell(Addr::parse("C3").unwrap()).fill, None);
    }

    #[test]
    fn conditional_rule_through_dialog_hits_blanks() {
        let mut s = session();
        let nb = excel(&s).name_box();
        s.click(nb).unwrap();
        s.type_text("C1:C12").unwrap();
        s.press("Enter").unwrap();
        click_by_name(&mut s, "Conditional Formatting");
        click_by_name(&mut s, "Highlight Cells Rules");
        click_by_name(&mut s, "Less Than...");
        click_by_name(&mut s, "Format cells that are");
        s.type_text("10").unwrap();
        s.press("Enter").unwrap();
        click_by_name(&mut s, "Apply Rule");
        click_by_name(&mut s, "OK");
        let sheet = &excel(&s).sheet;
        assert_eq!(sheet.cond_rules.len(), 1);
        // C11/C12 are blank -> matched (the paper's pitfall).
        assert!(sheet.cell(Addr::parse("C11").unwrap()).fill.is_some());
    }

    #[test]
    fn sort_via_menu() {
        let mut s = session();
        let nb = excel(&s).name_box();
        s.click(nb).unwrap();
        s.type_text("C1").unwrap();
        s.press("Enter").unwrap();
        click_by_name(&mut s, "Sort & Filter");
        click_by_name(&mut s, "Sort A to Z");
        assert_eq!(excel(&s).sheet.last_sort, Some((2, true)));
        let units: Vec<String> =
            (1..9).map(|r| excel(&s).sheet.cell(Addr { row: r, col: 2 }).value.clone()).collect();
        let mut sorted = units.clone();
        sorted.sort_by_key(|v| v.parse::<i64>().unwrap_or(i64::MAX));
        assert_eq!(units, sorted);
    }

    #[test]
    fn freeze_top_row() {
        let mut s = session();
        click_by_name(&mut s, "View");
        click_by_name(&mut s, "Freeze Panes");
        // Inside the open menu, the item shares the button's name.
        let shown: Vec<_> = s
            .app()
            .tree()
            .iter()
            .filter(|(i, w)| w.name == "Freeze Top Row" && s.app().tree().is_shown(*i))
            .map(|(i, _)| i)
            .collect();
        s.click(shown[0]).unwrap();
        assert_eq!(excel(&s).sheet.frozen_rows, 1);
    }

    #[test]
    fn rename_sheet_dialog() {
        let mut s = session();
        click_by_name(&mut s, "Format");
        click_by_name(&mut s, "Rename Sheet");
        click_by_name(&mut s, "Sheet name");
        s.type_text("Budget").unwrap();
        s.press("Enter").unwrap();
        click_by_name(&mut s, "OK");
        assert_eq!(excel(&s).sheet.name, "Budget");
    }

    #[test]
    fn grid_cells_are_dataitems_with_values() {
        let mut s = session();
        let snap = s.snapshot();
        let b1 = snap.find_all(|n| n.props.name == "B1");
        assert_eq!(b1.len(), 1);
        assert_eq!(snap.node(b1[0]).props.value, "Region");
        assert_eq!(snap.node(b1[0]).props.control_type, CT::DataItem);
    }

    #[test]
    fn text_to_columns_traps_ui() {
        let mut s = session();
        click_by_name(&mut s, "Data");
        click_by_name(&mut s, "Text to Columns");
        assert!(s.is_trapped());
        assert!(s.press("Esc").is_err());
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;
    use dmi_gui::Session;

    fn session() -> Session {
        Session::new(Box::new(ExcelApp::with_config(ExcelConfig {
            rows: 14,
            cols: 7,
            viewport_rows: 8,
        })))
    }

    fn excel(s: &Session) -> &ExcelApp {
        s.app().as_any().downcast_ref::<ExcelApp>().unwrap()
    }

    fn click_visible(s: &mut Session, name: &str) {
        let tree = s.app().tree();
        let id = tree
            .iter()
            .filter(|(i, w)| {
                w.name == name && tree.is_shown(*i) && w.on_click != dmi_gui::Behavior::None
            })
            .map(|(i, _)| i)
            .next()
            .unwrap_or_else(|| panic!("no visible actionable '{name}'"));
        s.click(id).unwrap();
    }

    fn goto(s: &mut Session, r: &str) {
        let nb = excel(s).name_box();
        s.click(nb).unwrap();
        s.type_text(r).unwrap();
        s.press("Enter").unwrap();
    }

    #[test]
    fn clicking_a_cell_selects_it_and_fills_formula_bar() {
        let mut s = session();
        let b1 = excel(&s).cell_widget(Addr::parse("B1").unwrap()).unwrap();
        s.click(b1).unwrap();
        assert_eq!(excel(&s).active, Addr::parse("B1").unwrap());
        let fb = excel(&s).formula_bar();
        assert_eq!(s.app().tree().widget(fb).value, "Region");
    }

    #[test]
    fn autosum_average_uses_column_above() {
        let mut s = session();
        goto(&mut s, "C11");
        click_visible(&mut s, "AutoSum");
        click_visible(&mut s, "Average");
        let v = excel(&s).sheet.cell(Addr::parse("C11").unwrap()).value.clone();
        assert_eq!(v, "40"); // 320 over 8 numeric rows.
    }

    #[test]
    fn custom_sort_descending_via_dialog() {
        let mut s = session();
        click_visible(&mut s, "Sort & Filter");
        click_visible(&mut s, "Custom Sort...");
        click_visible(&mut s, "Sort by");
        click_visible(&mut s, "Column D");
        click_visible(&mut s, "Descending");
        click_visible(&mut s, "Apply Sort");
        click_visible(&mut s, "OK");
        assert_eq!(excel(&s).sheet.last_sort, Some((3, false)));
        let top = excel(&s).sheet.cell(Addr::parse("D2").unwrap()).value.clone();
        assert_eq!(top, "5000");
    }

    #[test]
    fn greater_than_rule_only_hits_matches() {
        let mut s = session();
        goto(&mut s, "D1:D14");
        click_visible(&mut s, "Conditional Formatting");
        click_visible(&mut s, "Highlight Cells Rules");
        click_visible(&mut s, "Greater Than...");
        click_visible(&mut s, "Format cells that are");
        s.type_text("2500").unwrap();
        s.press("Enter").unwrap();
        click_visible(&mut s, "Apply Rule");
        click_visible(&mut s, "OK");
        let sheet = &excel(&s).sheet;
        assert!(sheet.cell(Addr::parse("D4").unwrap()).fill.is_some()); // 5000
        assert!(sheet.cell(Addr::parse("D3").unwrap()).fill.is_none()); // 200
    }

    #[test]
    fn filter_toggle_via_menu() {
        let mut s = session();
        click_visible(&mut s, "Sort & Filter");
        click_visible(&mut s, "Filter");
        assert!(excel(&s).sheet.filter_on);
    }

    #[test]
    fn number_format_gallery_applies_to_selection() {
        let mut s = session();
        goto(&mut s, "C2:C4");
        click_visible(&mut s, "Number Format");
        click_visible(&mut s, "Currency");
        let sheet = &excel(&s).sheet;
        assert_eq!(
            sheet.cell(Addr::parse("C3").unwrap()).number_format.as_deref(),
            Some("Currency")
        );
        assert_eq!(sheet.cell(Addr::parse("C5").unwrap()).number_format, None);
    }
}
