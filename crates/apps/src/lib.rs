//! Simulated Office-like applications: Word, Excel, PowerPoint.
//!
//! These are the substrate substitution for Microsoft Office (see
//! `DESIGN.md`): feature-rich GUI applications built on `dmi-gui` that
//! reproduce the structural properties the paper's evaluation depends on —
//! thousands of controls, navigation depth over ten, popup galleries,
//! nested modal dialogs, shared dialogs forming merge nodes with
//! path-dependent semantics, context-conditional tabs, dynamic renames,
//! and scrollable content with off-screen elements.
//!
//! Each app exposes its document model (`WordDoc`, `Sheet`, `Deck`) so
//! benchmark verifiers check end state exactly, the way OSWorld getter
//! scripts do.

pub mod excel;
pub mod model;
pub mod office;
pub mod powerpoint;
#[doc(hidden)]
pub mod testkit;
pub mod word;

pub use excel::{ExcelApp, ExcelConfig};
pub use powerpoint::{PowerPointApp, PowerPointConfig};
pub use word::{WordApp, WordConfig};

/// The three case-study applications (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AppKind {
    Word,
    Excel,
    PowerPoint,
}

impl AppKind {
    /// All apps.
    pub const ALL: [AppKind; 3] = [AppKind::Word, AppKind::Excel, AppKind::PowerPoint];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Word => "Word",
            AppKind::Excel => "Excel",
            AppKind::PowerPoint => "PowerPoint",
        }
    }

    /// Instantiates the app with default configuration.
    pub fn launch(self) -> Box<dyn dmi_gui::GuiApp> {
        match self {
            AppKind::Word => Box::new(WordApp::new()),
            AppKind::Excel => Box::new(ExcelApp::new()),
            AppKind::PowerPoint => Box::new(PowerPointApp::new()),
        }
    }

    /// Instantiates the app with a small configuration (fast tests).
    pub fn launch_small(self) -> Box<dyn dmi_gui::GuiApp> {
        self.launch_small_version(0)
    }

    /// Instantiates "version `v`" of the app with a small configuration:
    /// same build, progressively larger documents — a stand-in for the
    /// fleet-ripping scenario of serving several versions of one
    /// application concurrently (their UNGs genuinely differ, so each
    /// version needs its own rip). Version 0 is [`AppKind::launch_small`].
    pub fn launch_small_version(self, v: usize) -> Box<dyn dmi_gui::GuiApp> {
        match self {
            AppKind::Word => Box::new(WordApp::with_config(WordConfig {
                paragraphs: 12 + 3 * v,
                viewport_rows: 6,
            })),
            AppKind::Excel => Box::new(ExcelApp::with_config(ExcelConfig {
                rows: 12 + 3 * v,
                cols: 8,
                viewport_rows: 6,
            })),
            AppKind::PowerPoint => Box::new(PowerPointApp::with_config(PowerPointConfig {
                slides: 5 + v,
                viewport_rows: 5,
            })),
        }
    }
}

impl std::fmt::Display for AppKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}
