//! The shared color palette used by all three applications.
//!
//! Office-style palettes: 10 theme colors × 6 tint/shade variants, plus 10
//! standard colors. Palette cells carry their color as a string; document
//! models store the same strings, so task verifiers compare exactly.

/// The 10 theme base colors.
pub const THEME_BASES: [&str; 10] =
    ["White", "Black", "Gray", "Dark Blue", "Blue", "Red", "Orange", "Gold", "Green", "Purple"];

/// The 6 tint/shade variant labels applied to each theme base.
pub const VARIANTS: [&str; 6] =
    ["", "Lighter 80%", "Lighter 60%", "Lighter 40%", "Darker 25%", "Darker 50%"];

/// The 10 standard colors shown below the theme grid.
pub const STANDARD: [&str; 10] = [
    "Dark Red",
    "Red",
    "Orange",
    "Yellow",
    "Light Green",
    "Green",
    "Light Blue",
    "Blue",
    "Dark Blue",
    "Purple",
];

/// Full display name of the theme cell at (base, variant).
pub fn theme_color(base: usize, variant: usize) -> String {
    let b = THEME_BASES[base % THEME_BASES.len()];
    let v = VARIANTS[variant % VARIANTS.len()];
    if v.is_empty() {
        b.to_string()
    } else {
        format!("{b}, {v}")
    }
}

/// Every color in palette order: 60 theme cells then 10 standard cells.
pub fn all_palette_colors() -> Vec<String> {
    let mut out = Vec::with_capacity(70);
    for v in 0..VARIANTS.len() {
        for b in 0..THEME_BASES.len() {
            out.push(theme_color(b, v));
        }
    }
    for s in STANDARD {
        // Theme row 0 already contains some of these names (e.g. "Blue");
        // Office palettes show them twice too, so keep duplicates — they
        // are distinct controls with identical names, which is exactly the
        // ambiguity the paper's hierarchical descriptions resolve.
        out.push(s.to_string());
    }
    out
}

/// Whether a color string is a member of the palette.
pub fn is_palette_color(c: &str) -> bool {
    all_palette_colors().iter().any(|p| p == c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn palette_has_70_cells() {
        assert_eq!(all_palette_colors().len(), 70);
    }

    #[test]
    fn theme_color_formatting() {
        assert_eq!(theme_color(4, 0), "Blue");
        assert_eq!(theme_color(4, 1), "Blue, Lighter 80%");
    }

    #[test]
    fn standard_blue_is_in_palette() {
        assert!(is_palette_color("Blue"));
        assert!(is_palette_color("Dark Red"));
        assert!(!is_palette_color("Chartreuse"));
    }

    #[test]
    fn duplicate_names_exist_by_design() {
        let all = all_palette_colors();
        let blues = all.iter().filter(|c| c.as_str() == "Blue").count();
        assert!(blues >= 2, "palette should contain ambiguous duplicate names");
    }
}
