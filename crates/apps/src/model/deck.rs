//! The PowerPoint-like presentation model.

use serde::{Deserialize, Serialize};

/// A shape placed on a slide.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Shape {
    /// `"textbox"`, `"image"`, `"title"`, `"rectangle"`, ...
    pub kind: String,
    pub text: String,
    pub font_size: f64,
    /// Animation effect applied to the shape, if any.
    pub animation: Option<String>,
    /// Visual style applied to the shape (picture/shape quick styles).
    pub style: Option<String>,
}

impl Shape {
    /// A shape of the given kind with text.
    pub fn new(kind: impl Into<String>, text: impl Into<String>) -> Self {
        Shape {
            kind: kind.into(),
            text: text.into(),
            font_size: 18.0,
            animation: None,
            style: None,
        }
    }
}

/// One slide.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Slide {
    pub background: Option<String>,
    pub shapes: Vec<Shape>,
    pub notes: String,
    pub transition: Option<String>,
    pub layout: String,
}

impl Slide {
    /// A slide with a title shape.
    pub fn titled(title: impl Into<String>) -> Self {
        Slide {
            background: None,
            shapes: vec![Shape::new("title", title)],
            notes: String::new(),
            transition: None,
            layout: "Title and Content".into(),
        }
    }
}

/// The presentation deck.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Deck {
    pub slides: Vec<Slide>,
    /// Index of the slide open in the editor.
    pub current: usize,
    pub theme: String,
    /// Slide size: `"Standard (4:3)"` or `"Widescreen (16:9)"`.
    pub slide_size: String,
    /// Index of the currently selected shape on the current slide.
    pub selected_shape: Option<usize>,
}

impl Deck {
    /// A deck of `n` generated slides.
    pub fn with_slides(n: usize) -> Self {
        let slides = (0..n).map(|i| Slide::titled(format!("Slide {} title", i + 1))).collect();
        Deck {
            slides,
            current: 0,
            theme: "Office".into(),
            slide_size: "Widescreen (16:9)".into(),
            selected_shape: None,
        }
    }

    /// The current slide.
    pub fn current_slide(&self) -> &Slide {
        &self.slides[self.current]
    }

    /// Mutable current slide.
    pub fn current_slide_mut(&mut self) -> &mut Slide {
        &mut self.slides[self.current]
    }

    /// Sets the background of the current slide, or of all slides.
    pub fn set_background(&mut self, color: &str, all: bool) {
        if all {
            for s in &mut self.slides {
                s.background = Some(color.to_string());
            }
        } else {
            self.current_slide_mut().background = Some(color.to_string());
        }
    }

    /// Moves a slide from one index to another.
    pub fn reorder(&mut self, from: usize, to: usize) {
        if from < self.slides.len() && to < self.slides.len() && from != to {
            let s = self.slides.remove(from);
            self.slides.insert(to, s);
            if self.current == from {
                self.current = to;
            }
        }
    }

    /// The currently selected shape, if any.
    pub fn selected(&self) -> Option<&Shape> {
        self.selected_shape.and_then(|i| self.current_slide().shapes.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_slides_titles() {
        let d = Deck::with_slides(3);
        assert_eq!(d.slides.len(), 3);
        assert_eq!(d.slides[2].shapes[0].text, "Slide 3 title");
    }

    #[test]
    fn background_current_vs_all() {
        let mut d = Deck::with_slides(3);
        d.current = 1;
        d.set_background("Blue", false);
        assert_eq!(d.slides[1].background.as_deref(), Some("Blue"));
        assert_eq!(d.slides[0].background, None);
        d.set_background("Green", true);
        assert!(d.slides.iter().all(|s| s.background.as_deref() == Some("Green")));
    }

    #[test]
    fn reorder_moves_and_tracks_current() {
        let mut d = Deck::with_slides(4);
        d.current = 0;
        d.reorder(0, 2);
        assert_eq!(d.slides[2].shapes[0].text, "Slide 1 title");
        assert_eq!(d.current, 2);
        // Out-of-range reorder is a no-op.
        d.reorder(0, 99);
        assert_eq!(d.slides.len(), 4);
    }

    #[test]
    fn selected_shape_lookup() {
        let mut d = Deck::with_slides(1);
        assert!(d.selected().is_none());
        d.current_slide_mut().shapes.push(Shape::new("image", "logo.png"));
        d.selected_shape = Some(1);
        assert_eq!(d.selected().unwrap().kind, "image");
    }
}
