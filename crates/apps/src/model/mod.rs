//! Document models for the three simulated applications.

pub mod color;
pub mod deck;
pub mod sheet;
pub mod word_doc;
