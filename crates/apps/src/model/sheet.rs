//! The Excel-like workbook model.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A cell address: 0-based row and column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Addr {
    pub row: usize,
    pub col: usize,
}

impl Addr {
    /// Parses an A1-style reference (e.g. `"B7"`).
    pub fn parse(s: &str) -> Option<Addr> {
        let s = s.trim().to_uppercase();
        let split = s.find(|c: char| c.is_ascii_digit())?;
        let (letters, digits) = s.split_at(split);
        if letters.is_empty() || digits.is_empty() {
            return None;
        }
        let mut col = 0usize;
        for c in letters.chars() {
            if !c.is_ascii_uppercase() {
                return None;
            }
            col = col * 26 + (c as usize - 'A' as usize + 1);
        }
        let row: usize = digits.parse().ok()?;
        if row == 0 {
            return None;
        }
        Some(Addr { row: row - 1, col: col - 1 })
    }

    /// Formats as an A1-style reference.
    pub fn to_a1(self) -> String {
        let mut col = self.col + 1;
        let mut letters = String::new();
        while col > 0 {
            let rem = (col - 1) % 26;
            letters.insert(0, (b'A' + rem as u8) as char);
            col = (col - 1) / 26;
        }
        format!("{}{}", letters, self.row + 1)
    }
}

// Addresses key the serialized sparse cell map.
impl serde::SerKey for Addr {
    fn to_key(&self) -> String {
        self.to_a1()
    }

    fn from_key(s: &str) -> Result<Self, serde::Error> {
        Addr::parse(s).ok_or_else(|| serde::Error::msg(format!("bad cell address `{s}`")))
    }
}

/// A rectangular cell range, inclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Range {
    pub from: Addr,
    pub to: Addr,
}

impl Range {
    /// A single-cell range.
    pub fn cell(a: Addr) -> Range {
        Range { from: a, to: a }
    }

    /// Parses `"A1"` or `"A1:B5"`.
    pub fn parse(s: &str) -> Option<Range> {
        match s.split_once(':') {
            Some((a, b)) => Some(Range { from: Addr::parse(a)?, to: Addr::parse(b)? }),
            None => Addr::parse(s).map(Range::cell),
        }
    }

    /// Iterates over every address in the range, row-major.
    pub fn iter(&self) -> impl Iterator<Item = Addr> + '_ {
        let (r0, r1) = (self.from.row.min(self.to.row), self.from.row.max(self.to.row));
        let (c0, c1) = (self.from.col.min(self.to.col), self.from.col.max(self.to.col));
        (r0..=r1).flat_map(move |r| (c0..=c1).map(move |c| Addr { row: r, col: c }))
    }

    /// Whether the range contains an address.
    pub fn contains(&self, a: Addr) -> bool {
        let (r0, r1) = (self.from.row.min(self.to.row), self.from.row.max(self.to.row));
        let (c0, c1) = (self.from.col.min(self.to.col), self.from.col.max(self.to.col));
        a.row >= r0 && a.row <= r1 && a.col >= c0 && a.col <= c1
    }
}

/// One cell's content and formatting.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Cell {
    pub value: String,
    pub fill: Option<String>,
    pub bold: bool,
    pub number_format: Option<String>,
}

/// A conditional formatting rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CondRule {
    /// `"greater_than"`, `"less_than"`, or `"equal"`.
    pub kind: String,
    /// Comparison threshold.
    pub threshold: f64,
    /// Fill applied to matching cells.
    pub fill: String,
    /// The range the rule applies to.
    pub range: Range,
}

/// The workbook: a single sheet grid with formatting state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sheet {
    pub name: String,
    pub rows: usize,
    pub cols: usize,
    cells: BTreeMap<Addr, Cell>,
    pub selection: Option<Range>,
    pub frozen_rows: usize,
    pub frozen_cols: usize,
    pub cond_rules: Vec<CondRule>,
    /// (column, ascending) of the last sort.
    pub last_sort: Option<(usize, bool)>,
    /// Inserted chart kinds.
    pub charts: Vec<String>,
    /// Whether filter dropdowns are shown on the header row.
    pub filter_on: bool,
}

impl Sheet {
    /// An empty sheet of the given size.
    pub fn new(rows: usize, cols: usize) -> Self {
        Sheet {
            name: "Sheet1".into(),
            rows,
            cols,
            cells: BTreeMap::new(),
            selection: None,
            frozen_rows: 0,
            frozen_cols: 0,
            cond_rules: Vec::new(),
            last_sort: None,
            charts: Vec::new(),
            filter_on: false,
        }
    }

    /// Reads a cell (default-empty).
    pub fn cell(&self, a: Addr) -> Cell {
        self.cells.get(&a).cloned().unwrap_or_default()
    }

    /// Mutable access to a cell, creating it when absent.
    pub fn cell_mut(&mut self, a: Addr) -> &mut Cell {
        self.cells.entry(a).or_default()
    }

    /// Sets a cell's value; evaluates `=SUM(range)` and `=AVERAGE(range)`
    /// formulas immediately (value-storing model).
    pub fn set_value(&mut self, a: Addr, value: &str) {
        let stored =
            if let Some(result) = self.eval_formula(value) { result } else { value.to_string() };
        self.cell_mut(a).value = stored;
    }

    /// Evaluates supported formulas, returning the computed value.
    fn eval_formula(&self, v: &str) -> Option<String> {
        let body = v.strip_prefix('=')?;
        let (func, rest) = body.split_once('(')?;
        let range_str = rest.strip_suffix(')')?;
        let range = Range::parse(range_str)?;
        let nums: Vec<f64> =
            range.iter().filter_map(|a| self.cell(a).value.parse::<f64>().ok()).collect();
        match func.to_uppercase().as_str() {
            "SUM" => Some(format_num(nums.iter().sum())),
            "AVERAGE" if !nums.is_empty() => {
                Some(format_num(nums.iter().sum::<f64>() / nums.len() as f64))
            }
            "COUNT" => Some(format_num(nums.len() as f64)),
            "MAX" => nums
                .iter()
                .cloned()
                .fold(None, |m: Option<f64>, x| Some(m.map_or(x, |m| m.max(x))))
                .map(format_num),
            "MIN" => nums
                .iter()
                .cloned()
                .fold(None, |m: Option<f64>, x| Some(m.map_or(x, |m| m.min(x))))
                .map(format_num),
            _ => None,
        }
    }

    /// All non-empty cells.
    pub fn non_empty(&self) -> impl Iterator<Item = (&Addr, &Cell)> {
        self.cells.iter().filter(|(_, c)| !c.value.is_empty() || c.fill.is_some())
    }

    /// Sorts rows `1..rows` by the given column (row 0 is the header).
    pub fn sort_by_column(&mut self, col: usize, ascending: bool) {
        let mut data_rows: Vec<Vec<Cell>> = Vec::new();
        let mut present: Vec<usize> = Vec::new();
        for r in 1..self.rows {
            let any = (0..self.cols).any(|c| !self.cell(Addr { row: r, col: c }).value.is_empty());
            if any {
                present.push(r);
                data_rows
                    .push((0..self.cols).map(|c| self.cell(Addr { row: r, col: c })).collect());
            }
        }
        data_rows.sort_by(|a, b| {
            let av = &a[col].value;
            let bv = &b[col].value;
            let ord = match (av.parse::<f64>(), bv.parse::<f64>()) {
                (Ok(x), Ok(y)) => x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal),
                _ => av.cmp(bv),
            };
            if ascending {
                ord
            } else {
                ord.reverse()
            }
        });
        for (slot, row_cells) in present.iter().zip(data_rows) {
            for (c, cell) in row_cells.into_iter().enumerate() {
                if cell == Cell::default() {
                    self.cells.remove(&Addr { row: *slot, col: c });
                } else {
                    self.cells.insert(Addr { row: *slot, col: c }, cell);
                }
            }
        }
        self.last_sort = Some((col, ascending));
    }

    /// Adds a conditional rule and applies its fill to matching cells.
    ///
    /// Faithfully reproduces the Office semantics the paper calls out as a
    /// policy pitfall (§5.6): the rule applies to *all* cells in the
    /// selected range, including blanks (blank cells compare as 0).
    pub fn add_cond_rule(&mut self, rule: CondRule) {
        for a in rule.range.iter().collect::<Vec<_>>() {
            let v = self.cell(a).value.parse::<f64>().unwrap_or(0.0);
            let hit = match rule.kind.as_str() {
                "greater_than" => v > rule.threshold,
                "less_than" => v < rule.threshold,
                _ => (v - rule.threshold).abs() < f64::EPSILON,
            };
            if hit {
                self.cell_mut(a).fill = Some(rule.fill.clone());
            }
        }
        self.cond_rules.push(rule);
    }
}

fn format_num(x: f64) -> String {
    if (x - x.round()).abs() < 1e-9 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_parse_and_format() {
        assert_eq!(Addr::parse("A1"), Some(Addr { row: 0, col: 0 }));
        assert_eq!(Addr::parse("b7"), Some(Addr { row: 6, col: 1 }));
        assert_eq!(Addr::parse("AA10"), Some(Addr { row: 9, col: 26 }));
        assert_eq!(Addr { row: 9, col: 26 }.to_a1(), "AA10");
        assert_eq!(Addr::parse("1A"), None);
        assert_eq!(Addr::parse(""), None);
        assert_eq!(Addr::parse("A0"), None);
    }

    #[test]
    fn range_parse_and_iter() {
        let r = Range::parse("A1:B2").unwrap();
        let cells: Vec<String> = r.iter().map(|a| a.to_a1()).collect();
        assert_eq!(cells, vec!["A1", "B1", "A2", "B2"]);
        assert!(r.contains(Addr::parse("B1").unwrap()));
        assert!(!r.contains(Addr::parse("C1").unwrap()));
    }

    #[test]
    fn set_and_get_values() {
        let mut s = Sheet::new(10, 5);
        s.set_value(Addr::parse("A1").unwrap(), "42");
        assert_eq!(s.cell(Addr::parse("A1").unwrap()).value, "42");
        assert_eq!(s.cell(Addr::parse("B9").unwrap()).value, "");
    }

    #[test]
    fn sum_formula_evaluates() {
        let mut s = Sheet::new(10, 5);
        s.set_value(Addr::parse("A1").unwrap(), "1");
        s.set_value(Addr::parse("A2").unwrap(), "2");
        s.set_value(Addr::parse("A3").unwrap(), "3.5");
        s.set_value(Addr::parse("B1").unwrap(), "=SUM(A1:A3)");
        assert_eq!(s.cell(Addr::parse("B1").unwrap()).value, "6.5");
        s.set_value(Addr::parse("B2").unwrap(), "=AVERAGE(A1:A2)");
        assert_eq!(s.cell(Addr::parse("B2").unwrap()).value, "1.5");
        s.set_value(Addr::parse("B3").unwrap(), "=MAX(A1:A3)");
        assert_eq!(s.cell(Addr::parse("B3").unwrap()).value, "3.5");
    }

    #[test]
    fn sort_rows_numeric_and_descending() {
        let mut s = Sheet::new(5, 2);
        for (i, v) in ["Name", "30", "4", "100"].iter().enumerate() {
            s.set_value(Addr { row: i, col: 0 }, v);
        }
        s.sort_by_column(0, true);
        let vals: Vec<String> = (1..4).map(|r| s.cell(Addr { row: r, col: 0 }).value).collect();
        assert_eq!(vals, vec!["4", "30", "100"]);
        s.sort_by_column(0, false);
        let vals: Vec<String> = (1..4).map(|r| s.cell(Addr { row: r, col: 0 }).value).collect();
        assert_eq!(vals, vec!["100", "30", "4"]);
        assert_eq!(s.last_sort, Some((0, false)));
    }

    #[test]
    fn cond_rule_includes_blank_cells() {
        // The paper's §5.6 failure example: blank cells compare as 0 and
        // match "less_than 10".
        let mut s = Sheet::new(4, 1);
        s.set_value(Addr { row: 0, col: 0 }, "5");
        // Row 1 left blank.
        s.set_value(Addr { row: 2, col: 0 }, "50");
        s.add_cond_rule(CondRule {
            kind: "less_than".into(),
            threshold: 10.0,
            fill: "Red".into(),
            range: Range::parse("A1:A4").unwrap(),
        });
        assert_eq!(s.cell(Addr { row: 0, col: 0 }).fill.as_deref(), Some("Red"));
        assert_eq!(s.cell(Addr { row: 1, col: 0 }).fill.as_deref(), Some("Red"), "blank matched");
        assert_eq!(s.cell(Addr { row: 2, col: 0 }).fill, None);
    }
}
