//! The Word-like document model.

use serde::{Deserialize, Serialize};

/// Paragraph alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Alignment {
    Left,
    Center,
    Right,
    Justify,
}

/// Character/paragraph formatting state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParaFormat {
    pub font: String,
    pub size: f64,
    pub bold: bool,
    pub italic: bool,
    pub underline: bool,
    pub subscript: bool,
    pub superscript: bool,
    pub color: String,
    pub highlight: Option<String>,
    pub style: String,
    pub alignment: Alignment,
    pub line_spacing: f64,
}

impl Default for ParaFormat {
    fn default() -> Self {
        ParaFormat {
            font: "Calibri".into(),
            size: 11.0,
            bold: false,
            italic: false,
            underline: false,
            subscript: false,
            superscript: false,
            color: "Black".into(),
            highlight: None,
            style: "Normal".into(),
            alignment: Alignment::Left,
            line_spacing: 1.0,
        }
    }
}

/// One paragraph of document text.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Paragraph {
    pub text: String,
    pub format: ParaFormat,
}

impl Paragraph {
    /// A paragraph with default formatting.
    pub fn new(text: impl Into<String>) -> Self {
        Paragraph { text: text.into(), format: ParaFormat::default() }
    }
}

/// Page setup state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PageSettings {
    /// Margins in inches: top, bottom, left, right.
    pub margins: (f64, f64, f64, f64),
    pub orientation_landscape: bool,
    /// Page background color ("Page Color").
    pub background: Option<String>,
}

impl Default for PageSettings {
    fn default() -> Self {
        PageSettings {
            margins: (1.0, 1.0, 1.0, 1.0),
            orientation_landscape: false,
            background: None,
        }
    }
}

/// Current selection: a contiguous paragraph range (the line granularity
/// maps 1:1 to paragraphs in this model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Selection {
    pub start: usize,
    /// Inclusive end.
    pub end: usize,
}

/// The document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WordDoc {
    pub paragraphs: Vec<Paragraph>,
    pub page: PageSettings,
    pub header: Option<String>,
    pub footer: Option<String>,
    pub watermark: Option<String>,
    pub selection: Option<Selection>,
    /// Number of replacements performed by the last Replace All.
    pub last_replace_count: usize,
}

impl WordDoc {
    /// A document with `n` generated paragraphs.
    pub fn with_paragraphs(n: usize) -> Self {
        let paragraphs = (0..n)
            .map(|i| {
                Paragraph::new(format!(
                    "Paragraph {i}: the quick brown fox jumps over the lazy dog."
                ))
            })
            .collect();
        WordDoc {
            paragraphs,
            page: PageSettings::default(),
            header: None,
            footer: None,
            watermark: None,
            selection: None,
            last_replace_count: 0,
        }
    }

    /// The paragraph indexes covered by the current selection (empty when
    /// nothing is selected).
    pub fn selected_range(&self) -> Vec<usize> {
        match self.selection {
            Some(s) => (s.start..=s.end.min(self.paragraphs.len().saturating_sub(1))).collect(),
            None => Vec::new(),
        }
    }

    /// Applies a formatting mutation to every selected paragraph; returns
    /// how many paragraphs changed. With no selection, nothing changes.
    pub fn format_selection(&mut self, f: impl Fn(&mut ParaFormat)) -> usize {
        let range = self.selected_range();
        for &i in &range {
            f(&mut self.paragraphs[i].format);
        }
        range.len()
    }

    /// Selects a contiguous paragraph range (clamped to the document).
    pub fn select(&mut self, start: usize, end: usize) {
        if self.paragraphs.is_empty() {
            self.selection = None;
            return;
        }
        let max = self.paragraphs.len() - 1;
        self.selection = Some(Selection { start: start.min(max), end: end.min(max) });
    }

    /// Replace-all over every paragraph; returns the replacement count and
    /// records it in `last_replace_count`.
    pub fn replace_all(&mut self, find: &str, replace: &str) -> usize {
        if find.is_empty() {
            self.last_replace_count = 0;
            return 0;
        }
        let mut count = 0;
        for p in &mut self.paragraphs {
            let c = p.text.matches(find).count();
            if c > 0 {
                p.text = p.text.replace(find, replace);
                count += c;
            }
        }
        self.last_replace_count = count;
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_clamps_to_document() {
        let mut d = WordDoc::with_paragraphs(3);
        d.select(1, 99);
        assert_eq!(d.selected_range(), vec![1, 2]);
    }

    #[test]
    fn format_selection_applies_only_in_range() {
        let mut d = WordDoc::with_paragraphs(5);
        d.select(1, 2);
        let n = d.format_selection(|f| f.bold = true);
        assert_eq!(n, 2);
        assert!(!d.paragraphs[0].format.bold);
        assert!(d.paragraphs[1].format.bold);
        assert!(d.paragraphs[2].format.bold);
        assert!(!d.paragraphs[3].format.bold);
    }

    #[test]
    fn format_without_selection_is_noop() {
        let mut d = WordDoc::with_paragraphs(2);
        assert_eq!(d.format_selection(|f| f.italic = true), 0);
        assert!(!d.paragraphs[0].format.italic);
    }

    #[test]
    fn replace_all_counts_matches() {
        let mut d = WordDoc::with_paragraphs(3);
        let n = d.replace_all("fox", "cat");
        assert_eq!(n, 3);
        assert_eq!(d.last_replace_count, 3);
        assert!(d.paragraphs[0].text.contains("cat"));
        assert_eq!(d.replace_all("", "x"), 0);
    }

    #[test]
    fn empty_document_selection() {
        let mut d = WordDoc::with_paragraphs(0);
        d.select(0, 5);
        assert!(d.selected_range().is_empty());
    }
}
