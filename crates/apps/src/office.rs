//! Shared Office-style UI scaffolding.
//!
//! All three simulated applications are assembled from the same chrome:
//! a ribbon (tab strip + groups), popup galleries, color-picker split
//! buttons, modal dialogs with OK/Cancel, and a File backstage. The
//! builders here deliberately reproduce the *structural hazards* the paper
//! evaluates against:
//!
//! - **merge nodes**: shared dialogs (the "Colors" dialog, "Format
//!   Cells") reachable from several openers, with path-dependent semantics
//!   carried through application state set by the opener;
//! - **cycles**: OK/Cancel/Close buttons re-reveal the controls the modal
//!   dialog hid, producing back-edges during ripping;
//! - **ambiguous names**: palette cells named "Blue" exist under many
//!   menus; "OK" exists in every dialog;
//! - **rip hazards**: `Account`-style buttons jump to external apps.

use crate::model::color;
use dmi_gui::{Behavior, CommandBinding, CommitKind, UiTree, Widget, WidgetBuilder, WidgetId};
use dmi_uia::{ControlType as CT, PatternKind};
use std::sync::Arc;

/// A prebuilt launch-state image of an application: the fully constructed
/// widget arena plus the document model. `GuiApp::reset` restores from
/// this with `clone_from` instead of re-running widget-tree construction —
/// rebuilding a Word-size arena runs thousands of `format!`s and builder
/// calls, while the restore recycles the live arena's `String`/`Vec`
/// buffers widget-by-widget (`UiTree`'s manual `clone_from`), so a reset
/// allocates nothing for unchanged widgets. Held behind an [`Arc`] so the
/// immutable image is shared, never rebuilt, for the lifetime of the app.
#[derive(Debug)]
pub struct Pristine<D: Clone> {
    tree: UiTree,
    doc: D,
}

impl<D: Clone> Pristine<D> {
    /// Captures the launch state. Call once, at the end of construction.
    pub fn capture(tree: &UiTree, doc: &D) -> Arc<Pristine<D>> {
        Arc::new(Pristine { tree: tree.clone(), doc: doc.clone() })
    }

    /// The captured widget arena. Restore with `clone_from`: the manual
    /// impl recycles the destination's buffers and advances the tree's
    /// capture epochs past both lineages, so stale cached captures can
    /// never validate against the restored state.
    pub fn tree(&self) -> &UiTree {
        &self.tree
    }

    /// The captured document model.
    pub fn doc(&self) -> &D {
        &self.doc
    }
}

/// Well-known command names shared across the apps.
pub mod commands {
    /// Opens the shared "Colors" dialog; arg = color target property.
    pub const OPEN_MORE_COLORS: &str = "open_more_colors";
    /// Applies a color to the property selected by the opener; arg = color.
    pub const APPLY_COLOR_CTX: &str = "apply_color_ctx";
}

/// Handles to the chrome every app shares.
#[derive(Debug, Clone, Copy)]
pub struct Chrome {
    /// Main window root.
    pub main: WidgetId,
    /// Ribbon tab strip.
    pub ribbon: WidgetId,
    /// The shared "Colors" (more colors) dialog root.
    pub more_colors: WidgetId,
    /// The status bar.
    pub status_bar: WidgetId,
}

/// Builds the main window, title bar, quick-access toolbar, ribbon strip,
/// shared Colors dialog, and status bar.
pub fn build_chrome(tree: &mut UiTree, title: &str) -> Chrome {
    let main =
        tree.add_root(WidgetBuilder::new(title, CT::Window).automation_id("AppWindow").build());
    let tb = tree.add(main, Widget::new("Title Bar", CT::TitleBar));
    tree.add(
        tb,
        WidgetBuilder::new("Account", CT::Button)
            .automation_id("AccountButton")
            .help("Sign in to your account (opens a web browser).")
            .on_click(Behavior::OpenExternal)
            .build(),
    );
    tree.add(tb, WidgetBuilder::new("Minimize", CT::Button).on_click(Behavior::None).build());
    tree.add(tb, WidgetBuilder::new("Restore Down", CT::Button).on_click(Behavior::None).build());
    // Quick access toolbar.
    let qat = tree.add(main, Widget::new("Quick Access Toolbar", CT::ToolBar));
    for (name, cmd) in [("Save", "save"), ("Undo", "undo"), ("Redo", "redo")] {
        tree.add(
            qat,
            WidgetBuilder::new(name, CT::Button)
                .on_click(Behavior::Command(CommandBinding::new(cmd)))
                .build(),
        );
    }
    let ribbon =
        tree.add(main, WidgetBuilder::new("Ribbon", CT::Tab).automation_id("RibbonTabs").build());
    let more_colors = build_more_colors_dialog(tree);
    let status_bar = tree.add(main, Widget::new("Status Bar", CT::StatusBar));
    tree.add(status_bar, Widget::new("Page 1 of 1", CT::Text));
    tree.add(status_bar, Widget::new("100%", CT::Text));
    Chrome { main, ribbon, more_colors, status_bar }
}

/// Adds a ribbon tab. The first selected tab hosts the default panel.
pub fn add_tab(tree: &mut UiTree, ribbon: WidgetId, name: &str, selected: bool) -> WidgetId {
    let mut b = WidgetBuilder::new(name, CT::TabItem)
        .automation_id(format!("Tab{}", name.replace(' ', "")))
        .help(format!("{name} tab."))
        .on_click(Behavior::SwitchTab);
    if selected {
        b = b.selected();
    }
    tree.add(ribbon, b.build())
}

/// Adds a context tab shown only while `ctx` is active.
pub fn add_context_tab(tree: &mut UiTree, ribbon: WidgetId, name: &str, ctx: &str) -> WidgetId {
    tree.add(
        ribbon,
        WidgetBuilder::new(name, CT::TabItem)
            .automation_id(format!("Tab{}", name.replace(' ', "")))
            .on_click(Behavior::SwitchTab)
            .visible_when(ctx)
            .build(),
    )
}

/// Adds a ribbon group under a tab.
pub fn add_group(tree: &mut UiTree, tab: WidgetId, name: &str) -> WidgetId {
    tree.add(tab, WidgetBuilder::new(name, CT::Group).help(format!("{name} group.")).build())
}

/// Adds a command button.
pub fn button(
    tree: &mut UiTree,
    parent: WidgetId,
    name: &str,
    command: &str,
    arg: Option<&str>,
) -> WidgetId {
    let binding = match arg {
        Some(a) => CommandBinding::with_arg(command, a),
        None => CommandBinding::new(command),
    };
    tree.add(
        parent,
        WidgetBuilder::new(name, CT::Button)
            .help(format!("{name}."))
            .on_click(Behavior::Command(binding))
            .build(),
    )
}

/// Adds a toggle button bound to a command (arg carries the property name).
pub fn toggle_button(tree: &mut UiTree, parent: WidgetId, name: &str, prop: &str) -> WidgetId {
    tree.add(
        parent,
        WidgetBuilder::new(name, CT::Button)
            .automation_id(format!("Toggle{}", prop))
            .help(format!("Toggle {name}."))
            .toggle_state(false)
            .on_click(Behavior::Toggle)
            .binding(CommandBinding::with_arg("toggle_format", prop))
            .build(),
    )
}

/// Adds a popup gallery: a split button whose children are item cells that
/// dispatch `command` with the item label as the argument and dismiss.
pub fn gallery(
    tree: &mut UiTree,
    parent: WidgetId,
    name: &str,
    items: &[String],
    command: &str,
) -> WidgetId {
    let g = tree.add(
        parent,
        WidgetBuilder::new(name, CT::SplitButton)
            .automation_id(format!("Gallery{}", name.replace([' ', '&'], "")))
            .help(format!("{name} gallery."))
            .popup()
            .on_click(Behavior::OpenMenu)
            .build(),
    );
    for item in items {
        tree.add(
            g,
            WidgetBuilder::new(item.clone(), CT::ListItem)
                .help(format!("{item}. Option in the {name} gallery; click to apply."))
                .on_click(Behavior::CommandAndDismiss(CommandBinding::with_arg(
                    command,
                    item.clone(),
                )))
                .build(),
        );
    }
    g
}

/// Adds a dropdown menu of named entries with explicit behaviors.
pub fn menu(
    tree: &mut UiTree,
    parent: WidgetId,
    name: &str,
    entries: &[(&str, Behavior)],
) -> WidgetId {
    let m = tree.add(
        parent,
        WidgetBuilder::new(name, CT::SplitButton)
            .help(format!("{name} menu."))
            .popup()
            .on_click(Behavior::OpenMenu)
            .build(),
    );
    for (label, behavior) in entries {
        tree.add(m, WidgetBuilder::new(*label, CT::MenuItem).on_click(behavior.clone()).build());
    }
    m
}

/// Adds a full color-picker split button: 60 theme cells + 10 standard
/// cells dispatching `command` directly, plus a "More Colors..." entry that
/// routes through the shared Colors dialog with `target` as the color
/// context (the merge-node path semantics).
pub fn color_menu(
    tree: &mut UiTree,
    parent: WidgetId,
    name: &str,
    command: &str,
    target: &str,
) -> WidgetId {
    let m = tree.add(
        parent,
        WidgetBuilder::new(name, CT::SplitButton)
            .automation_id(format!("Color{}", target.replace(' ', "")))
            .help(format!("{name}: pick a color."))
            .popup()
            .on_click(Behavior::OpenMenu)
            .build(),
    );
    let theme = tree.add(m, Widget::new("Theme Colors", CT::Group));
    for v in 0..color::VARIANTS.len() {
        for b in 0..color::THEME_BASES.len() {
            let c = color::theme_color(b, v);
            tree.add(
                theme,
                WidgetBuilder::new(c.clone(), CT::ListItem)
                    .help(format!("{c}. Theme color swatch under {name}."))
                    .on_click(Behavior::CommandAndDismiss(CommandBinding::with_arg(command, c)))
                    .build(),
            );
        }
    }
    let std_grp = tree.add(m, Widget::new("Standard Colors", CT::Group));
    for s in color::STANDARD {
        tree.add(
            std_grp,
            WidgetBuilder::new(s, CT::ListItem)
                .help(format!("{s}. Standard color swatch under {name}."))
                .on_click(Behavior::CommandAndDismiss(CommandBinding::with_arg(command, s)))
                .build(),
        );
    }
    tree.add(
        m,
        WidgetBuilder::new("More Colors...", CT::MenuItem)
            .help("Choose a custom color.")
            .on_click(Behavior::CommandAndDismiss(CommandBinding::with_arg(
                commands::OPEN_MORE_COLORS,
                target,
            )))
            .build(),
    );
    m
}

/// Builds the shared "Colors" dialog (a merge node: reachable from every
/// color menu). Cells dispatch [`commands::APPLY_COLOR_CTX`]; the target
/// property was chosen by the opener.
fn build_more_colors_dialog(tree: &mut UiTree) -> WidgetId {
    let dlg = tree.add_root(
        WidgetBuilder::new("Colors", CT::Window).automation_id("MoreColorsDialog").build(),
    );
    let honeycomb = tree.add(dlg, Widget::new("Custom Colors", CT::List));
    for i in 0..24 {
        let c = format!("Custom {i}");
        tree.add(
            honeycomb,
            WidgetBuilder::new(c.clone(), CT::ListItem)
                .on_click(Behavior::Command(CommandBinding::with_arg(commands::APPLY_COLOR_CTX, c)))
                .build(),
        );
    }
    tree.add(
        dlg,
        WidgetBuilder::new("OK", CT::Button)
            .on_click(Behavior::CloseWindow(CommitKind::Ok))
            .build(),
    );
    tree.add(
        dlg,
        WidgetBuilder::new("Cancel", CT::Button)
            .on_click(Behavior::CloseWindow(CommitKind::Cancel))
            .build(),
    );
    dlg
}

/// Builds a modal dialog skeleton with OK and Cancel buttons. Returns
/// `(dialog root, body pane)`.
pub fn dialog(tree: &mut UiTree, title: &str) -> (WidgetId, WidgetId) {
    let dlg = tree.add_root(
        WidgetBuilder::new(title, CT::Window)
            .automation_id(format!("Dialog{}", title.replace([' ', '.'], "")))
            .build(),
    );
    let body = tree.add(dlg, Widget::new("Body", CT::Pane));
    tree.add(
        dlg,
        WidgetBuilder::new("OK", CT::Button)
            .on_click(Behavior::CloseWindow(CommitKind::Ok))
            .build(),
    );
    tree.add(
        dlg,
        WidgetBuilder::new("Cancel", CT::Button)
            .on_click(Behavior::CloseWindow(CommitKind::Cancel))
            .build(),
    );
    (dlg, body)
}

/// Adds an opener button for a dialog.
pub fn dialog_launcher(tree: &mut UiTree, parent: WidgetId, name: &str, dlg: WidgetId) -> WidgetId {
    tree.add(
        parent,
        WidgetBuilder::new(name, CT::Button)
            .help(format!("Open the {name} dialog."))
            .on_click(Behavior::OpenDialog(dlg))
            .build(),
    )
}

/// Adds a labeled edit field with a commit binding (Enter commits).
pub fn edit_field(
    tree: &mut UiTree,
    parent: WidgetId,
    name: &str,
    commit_command: &str,
) -> WidgetId {
    tree.add(
        parent,
        WidgetBuilder::new(name, CT::Edit)
            .help(format!("{name} (press Enter to commit)."))
            .on_click(Behavior::FocusEdit)
            .binding(CommandBinding::new(commit_command))
            .build(),
    )
}

/// Adds a checkbox bound to a command.
pub fn checkbox(tree: &mut UiTree, parent: WidgetId, name: &str, prop: &str) -> WidgetId {
    tree.add(
        parent,
        WidgetBuilder::new(name, CT::CheckBox)
            .toggle_state(false)
            .on_click(Behavior::Toggle)
            .binding(CommandBinding::with_arg("toggle_format", prop))
            .build(),
    )
}

/// Adds a radio button group; each option dispatches `command` with its
/// label.
pub fn radio_group(
    tree: &mut UiTree,
    parent: WidgetId,
    group_name: &str,
    options: &[&str],
    command: &str,
) -> WidgetId {
    let g = tree.add(parent, Widget::new(group_name, CT::Group));
    for o in options {
        tree.add(
            g,
            WidgetBuilder::new(*o, CT::RadioButton)
                .pattern(PatternKind::SelectionItem)
                .on_click(Behavior::Select)
                .binding(CommandBinding::with_arg(command, *o))
                .build(),
        );
    }
    g
}

/// The standard font list (a "large enumeration" the core topology prunes).
pub fn font_names() -> Vec<String> {
    let bases = [
        "Arial",
        "Calibri",
        "Cambria",
        "Candara",
        "Consolas",
        "Constantia",
        "Corbel",
        "Courier New",
        "Franklin Gothic",
        "Garamond",
        "Georgia",
        "Gill Sans",
        "Helvetica",
        "Impact",
        "Lato",
        "Lucida Sans",
        "Palatino",
        "Rockwell",
        "Segoe UI",
        "Tahoma",
        "Times New Roman",
        "Trebuchet MS",
        "Verdana",
        "Book Antiqua",
    ];
    let weights = [
        "",
        " Light",
        " Semibold",
        " Black",
        " Condensed",
        " Narrow",
        " Italic",
        " Display",
        " Text",
    ];
    let mut out = Vec::new();
    for b in bases {
        for w in weights {
            out.push(format!("{b}{w}"));
        }
    }
    out
}

/// The symbol gallery contents (another large enumeration).
pub fn symbol_names(count: usize) -> Vec<String> {
    (0..count).map(|i| format!("Symbol U+{:04X}", 0x2200 + i)).collect()
}

/// Builds the File backstage menu shared by the apps. Returns its id.
pub fn build_backstage(tree: &mut UiTree, main: WidgetId) -> WidgetId {
    let file = tree.add(
        main,
        WidgetBuilder::new("File", CT::MenuItem)
            .automation_id("FileTabButton")
            .help("File backstage.")
            .popup()
            .on_click(Behavior::OpenMenu)
            .build(),
    );
    let new_menu = tree.add(
        file,
        WidgetBuilder::new("New", CT::MenuItem).popup().on_click(Behavior::OpenMenu).build(),
    );
    for i in 0..24 {
        tree.add(
            new_menu,
            WidgetBuilder::new(format!("Template {i}"), CT::ListItem)
                .on_click(Behavior::CommandAndDismiss(CommandBinding::with_arg(
                    "new_from_template",
                    format!("Template {i}"),
                )))
                .build(),
        );
    }
    let open_menu = tree.add(
        file,
        WidgetBuilder::new("Open", CT::MenuItem).popup().on_click(Behavior::OpenMenu).build(),
    );
    for i in 0..16 {
        tree.add(
            open_menu,
            WidgetBuilder::new(format!("Recent Document {i}"), CT::ListItem)
                .on_click(Behavior::CommandAndDismiss(CommandBinding::with_arg(
                    "open_recent",
                    format!("{i}"),
                )))
                .build(),
        );
    }
    for (name, cmd) in [("Save", "save"), ("Save As", "save_as"), ("Print", "print")] {
        tree.add(
            file,
            WidgetBuilder::new(name, CT::MenuItem)
                .on_click(Behavior::CommandAndDismiss(CommandBinding::new(cmd)))
                .build(),
        );
    }
    // Feedback jumps to an external browser — a rip blocklist candidate.
    tree.add(
        file,
        WidgetBuilder::new("Feedback", CT::MenuItem).on_click(Behavior::OpenExternal).build(),
    );
    file
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_has_account_hazard() {
        let mut t = UiTree::new();
        let c = build_chrome(&mut t, "Word");
        let acct = t.find_by_automation_id("AccountButton").unwrap();
        assert!(t.widget(acct).on_click.is_rip_hazard());
        assert_eq!(t.widget(c.main).name, "Word");
    }

    #[test]
    fn color_menu_has_71_entries_plus_groups() {
        let mut t = UiTree::new();
        let c = build_chrome(&mut t, "X");
        let tab = add_tab(&mut t, c.ribbon, "Home", true);
        let grp = add_group(&mut t, tab, "Font");
        let m = color_menu(&mut t, grp, "Font Color", "set_font_color", "font");
        let cells = t
            .descendants(m)
            .into_iter()
            .filter(|&i| t.widget(i).control_type == CT::ListItem)
            .count();
        assert_eq!(cells, 70);
        let more =
            t.descendants(m).into_iter().find(|&i| t.widget(i).name == "More Colors...").unwrap();
        assert!(matches!(t.widget(more).on_click, Behavior::CommandAndDismiss(_)));
    }

    #[test]
    fn shared_colors_dialog_is_separate_root() {
        let mut t = UiTree::new();
        let c = build_chrome(&mut t, "X");
        assert_ne!(t.root_of(c.more_colors), c.main);
        assert!(!t.is_window_open(c.more_colors));
    }

    #[test]
    fn font_names_is_large_enumeration() {
        assert!(font_names().len() >= 200);
    }

    #[test]
    fn dialog_has_ok_cancel() {
        let mut t = UiTree::new();
        let _ = build_chrome(&mut t, "X");
        let (dlg, _body) = dialog(&mut t, "Paragraph");
        let names: Vec<String> =
            t.descendants(dlg).iter().map(|&i| t.widget(i).name.clone()).collect();
        assert!(names.contains(&"OK".to_string()));
        assert!(names.contains(&"Cancel".to_string()));
    }

    #[test]
    fn backstage_contains_external_jump() {
        let mut t = UiTree::new();
        let c = build_chrome(&mut t, "X");
        let f = build_backstage(&mut t, c.main);
        let fb = t.descendants(f).into_iter().find(|&i| t.widget(i).name == "Feedback").unwrap();
        assert!(t.widget(fb).on_click.is_rip_hazard());
    }

    #[test]
    fn gallery_items_dispatch_with_label() {
        let mut t = UiTree::new();
        let c = build_chrome(&mut t, "X");
        let items: Vec<String> = (0..5).map(|i| format!("Style {i}")).collect();
        let g = gallery(&mut t, c.main, "Styles", &items, "apply_style");
        let first = t.widget(g).children[0];
        match &t.widget(first).on_click {
            Behavior::CommandAndDismiss(b) => {
                assert_eq!(b.command, "apply_style");
                assert_eq!(b.arg.as_deref(), Some("Style 0"));
            }
            other => panic!("unexpected behavior {other:?}"),
        }
    }
}
