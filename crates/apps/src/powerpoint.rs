//! The simulated PowerPoint application.
//!
//! Carries the paper's running example (Table 1 Task 1: "make the
//! background blue on all slides" through Design → Format Background →
//! Solid fill → Fill Color → Blue → Apply to All), the context-dependent
//! "Picture Format" tab that appears only while an image is selected
//! (§4.1 context-aware exploration), slide thumbnails whose selection
//! reveals per-slide shapes, and presentation-mode controls that trap the
//! UI (rip blocklist candidates).

use crate::model::deck::{Deck, Shape};
use crate::office::{self, commands, Chrome, Pristine};
use dmi_gui::{AppError, Behavior, CommandBinding, GuiApp, UiTree, WidgetBuilder, WidgetId};
use dmi_uia::ControlType as CT;
use std::sync::Arc;

/// Build-time options for the simulated PowerPoint instance.
#[derive(Debug, Clone)]
pub struct PowerPointConfig {
    /// Number of slides in the deck.
    pub slides: usize,
    /// Thumbnails visible in the slide panel viewport.
    pub viewport_rows: usize,
}

impl Default for PowerPointConfig {
    fn default() -> Self {
        PowerPointConfig { slides: 20, viewport_rows: 10 }
    }
}

/// The simulated PowerPoint application.
pub struct PowerPointApp {
    tree: UiTree,
    /// The deck model.
    pub deck: Deck,
    color_target: String,
    chrome: Chrome,
    thumbnails: WidgetId,
    canvas: WidgetId,
    notes: WidgetId,
    /// Per-slide shape widgets (canvas children), toggled with the
    /// current slide.
    shape_widgets: Vec<Vec<WidgetId>>,
    /// Launch-state image `reset` clones from (no arena reconstruction).
    pristine: Arc<Pristine<PptState>>,
}

/// The model state captured alongside the widget arena for pristine
/// resets: the deck, the per-slide shape-widget map (inserting shapes at
/// runtime grows both), and every session-scoped scalar `dispatch` can
/// change. Kept as one struct so `reset` restores from the capture
/// instead of re-listing constructor defaults.
#[derive(Debug, Clone)]
struct PptState {
    deck: Deck,
    shape_widgets: Vec<Vec<WidgetId>>,
    color_target: String,
}

impl PowerPointApp {
    /// Creates the app with a default 20-slide deck.
    pub fn new() -> Self {
        Self::with_config(PowerPointConfig::default())
    }

    /// Creates the app with explicit options.
    pub fn with_config(config: PowerPointConfig) -> Self {
        let mut deck = Deck::with_slides(config.slides);
        // Give a middle slide an image so the context tab is reachable.
        if config.slides > 2 {
            deck.slides[1].shapes.push(Shape::new("image", "logo.png"));
        }
        let mut tree = UiTree::new();
        let chrome = office::build_chrome(&mut tree, "Presentation1 - PowerPoint");
        office::build_backstage(&mut tree, chrome.main);
        let built = build_ui(&mut tree, &chrome, &config, &deck);
        apply_slide_visibility(&mut tree, &deck, &built.shape_widgets);
        apply_selection_context(&mut tree, &deck);
        let state = PptState {
            deck,
            shape_widgets: built.shape_widgets,
            color_target: "background".into(),
        };
        let pristine = Pristine::capture(&tree, &state);
        PowerPointApp {
            tree,
            deck: state.deck,
            color_target: state.color_target,
            chrome,
            thumbnails: built.thumbnails,
            canvas: built.canvas,
            notes: built.notes,
            shape_widgets: state.shape_widgets,
            pristine,
        }
    }

    /// The slide-thumbnail list widget.
    pub fn thumbnails(&self) -> WidgetId {
        self.thumbnails
    }

    /// The slide canvas pane.
    pub fn canvas(&self) -> WidgetId {
        self.canvas
    }

    /// The notes edit control.
    pub fn notes_widget(&self) -> WidgetId {
        self.notes
    }

    /// The chrome handles.
    pub fn chrome(&self) -> Chrome {
        self.chrome
    }

    /// Toggles canvas shape visibility so only the current slide's shapes
    /// show, and syncs selection contexts.
    fn show_current_slide(&mut self) {
        apply_slide_visibility(&mut self.tree, &self.deck, &self.shape_widgets);
        self.sync_selection_context();
    }

    fn sync_selection_context(&mut self) {
        apply_selection_context(&mut self.tree, &self.deck);
    }
}

/// Shows only the current slide's shapes on the canvas.
fn apply_slide_visibility(tree: &mut UiTree, deck: &Deck, shape_widgets: &[Vec<WidgetId>]) {
    for (slide, shapes) in shape_widgets.iter().enumerate() {
        for &w in shapes {
            tree.widget_mut(w).visible = slide == deck.current;
        }
    }
}

/// Syncs the image/text selection contexts with the deck's selection.
fn apply_selection_context(tree: &mut UiTree, deck: &Deck) {
    let (img, txt) = match deck.selected() {
        Some(s) if s.kind == "image" => (true, false),
        Some(_) => (false, true),
        None => (false, false),
    };
    tree.set_context("image-selected", img);
    tree.set_context("text-selected", txt);
}

impl Default for PowerPointApp {
    fn default() -> Self {
        Self::new()
    }
}

struct Built {
    thumbnails: WidgetId,
    canvas: WidgetId,
    notes: WidgetId,
    shape_widgets: Vec<Vec<WidgetId>>,
}

fn build_ui(tree: &mut UiTree, chrome: &Chrome, config: &PowerPointConfig, deck: &Deck) -> Built {
    let fonts = office::font_names();

    // ---------------- Home tab ----------------
    let home = office::add_tab(tree, chrome.ribbon, "Home", true);
    let slides_grp = office::add_group(tree, home, "Slides");
    let layouts: Vec<String> = [
        "Title Slide",
        "Title and Content",
        "Section Header",
        "Two Content",
        "Comparison",
        "Title Only",
        "Blank",
        "Content with Caption",
        "Picture with Caption",
    ]
    .map(String::from)
    .to_vec();
    office::gallery(tree, slides_grp, "New Slide", &layouts, "new_slide");
    office::gallery(tree, slides_grp, "Layout", &layouts, "set_layout");
    office::button(tree, slides_grp, "Reset", "reset_slide", None);

    let font_grp = office::add_group(tree, home, "Font");
    office::gallery(tree, font_grp, "Font Name", &fonts, "set_font");
    let sizes: Vec<String> =
        [10, 12, 14, 16, 18, 20, 24, 28, 32, 36, 40, 44, 54, 60, 66, 72, 80, 88, 96]
            .map(|s| s.to_string())
            .to_vec();
    office::gallery(tree, font_grp, "Font Size", &sizes, "set_font_size");
    office::toggle_button(tree, font_grp, "Bold", "bold");
    office::toggle_button(tree, font_grp, "Italic", "italic");
    office::toggle_button(tree, font_grp, "Underline", "underline");
    office::color_menu(tree, font_grp, "Font Color", "set_font_color", "font");

    let draw_grp = office::add_group(tree, home, "Drawing");
    let shape_cats = [
        "Lines",
        "Rectangles",
        "Basic Shapes",
        "Block Arrows",
        "Flowchart",
        "Stars and Banners",
        "Callouts",
        "Action Buttons",
    ];
    let shapes_menu = tree.add(
        draw_grp,
        WidgetBuilder::new("Shapes", CT::SplitButton).popup().on_click(Behavior::OpenMenu).build(),
    );
    for cat in shape_cats {
        let sub = tree.add(
            shapes_menu,
            WidgetBuilder::new(cat, CT::MenuItem).popup().on_click(Behavior::OpenMenu).build(),
        );
        for i in 0..18 {
            tree.add(
                sub,
                WidgetBuilder::new(format!("{cat} Shape {i}"), CT::ListItem)
                    .on_click(Behavior::CommandAndDismiss(CommandBinding::with_arg(
                        "insert_shape",
                        format!("{cat} Shape {i}"),
                    )))
                    .build(),
            );
        }
    }
    let quick: Vec<String> = (0..42).map(|i| format!("Shape Style {i}")).collect();
    office::gallery(tree, draw_grp, "Quick Styles", &quick, "apply_shape_style");
    office::color_menu(tree, draw_grp, "Shape Fill", "set_shape_fill", "shape-fill");
    office::color_menu(tree, draw_grp, "Shape Outline", "set_shape_outline", "shape-outline");

    // ---------------- Insert tab ----------------
    let insert = office::add_tab(tree, chrome.ribbon, "Insert", false);
    let ig = office::add_group(tree, insert, "Images");
    let (pic_dlg, pic_body) = office::dialog(tree, "Insert Picture");
    office::edit_field(tree, pic_body, "File name", "set_picture_name");
    office::button(tree, pic_body, "Insert", "insert_picture", None);
    office::dialog_launcher(tree, ig, "Pictures", pic_dlg);
    let tg = office::add_group(tree, insert, "Text");
    office::button(tree, tg, "Text Box", "insert_textbox", None);
    let (hf_dlg, hf_body) = office::dialog(tree, "Header and Footer");
    office::checkbox(tree, hf_body, "Date and time", "hf_date");
    office::checkbox(tree, hf_body, "Slide number", "hf_number");
    office::edit_field(tree, hf_body, "Footer", "set_slide_footer");
    office::dialog_launcher(tree, tg, "Header & Footer", hf_dlg);
    let wordart: Vec<String> = (0..15).map(|i| format!("WordArt Style {i}")).collect();
    office::gallery(tree, tg, "WordArt", &wordart, "insert_wordart");
    let sg = office::add_group(tree, insert, "Symbols");
    office::gallery(tree, sg, "Symbol", &office::symbol_names(240), "insert_symbol");
    let ill = office::add_group(tree, insert, "Illustrations");
    let smart: Vec<String> = (0..48).map(|i| format!("SmartArt {i}")).collect();
    office::gallery(tree, ill, "SmartArt", &smart, "insert_smartart");
    let icons: Vec<String> = (0..150).map(|i| format!("Icon {i}")).collect();
    office::gallery(tree, ill, "Icons", &icons, "insert_icon");
    let models: Vec<String> = (0..60).map(|i| format!("3D Model {i}")).collect();
    office::gallery(tree, ill, "3D Models", &models, "insert_3d_model");
    let stock: Vec<String> = (0..100).map(|i| format!("Stock Image {i}")).collect();
    office::gallery(tree, ig, "Stock Images", &stock, "insert_stock_image");
    let charts: Vec<String> = ["Column", "Line", "Pie", "Bar"]
        .iter()
        .flat_map(|k| (0..12).map(move |i| format!("{k} Chart {i}")))
        .collect();
    office::gallery(tree, ill, "Chart", &charts, "insert_chart");

    // ---------------- Design tab ----------------
    let design = office::add_tab(tree, chrome.ribbon, "Design", false);
    let themes_grp = office::add_group(tree, design, "Themes");
    let themes: Vec<String> = (0..44).map(|i| format!("Theme {i}")).collect();
    office::gallery(tree, themes_grp, "Themes", &themes, "apply_theme");
    let var_grp = office::add_group(tree, design, "Variants");
    let variants: Vec<String> = (0..16).map(|i| format!("Variant {i}")).collect();
    office::gallery(tree, var_grp, "Variants", &variants, "apply_variant");
    let cust = office::add_group(tree, design, "Customize");
    // Slide Size menu.
    let (ss_dlg, ss_body) = office::dialog(tree, "Slide Size");
    office::radio_group(
        tree,
        ss_body,
        "Slide size",
        &["Standard (4:3)", "Widescreen (16:9)"],
        "set_slide_size",
    );
    let ss_menu = tree.add(
        cust,
        WidgetBuilder::new("Slide Size", CT::SplitButton)
            .automation_id("SlideSize")
            .popup()
            .on_click(Behavior::OpenMenu)
            .build(),
    );
    for o in ["Standard (4:3)", "Widescreen (16:9)"] {
        tree.add(
            ss_menu,
            WidgetBuilder::new(o, CT::MenuItem)
                .on_click(Behavior::CommandAndDismiss(CommandBinding::with_arg(
                    "set_slide_size",
                    o,
                )))
                .build(),
        );
    }
    tree.add(
        ss_menu,
        WidgetBuilder::new("Custom Slide Size...", CT::MenuItem)
            .on_click(Behavior::OpenDialog(ss_dlg))
            .build(),
    );
    // Format Background dialog: the Table 1 Task 1 path.
    let fb_dlg = tree.add_root(
        WidgetBuilder::new("Format Background", CT::Window)
            .automation_id("FormatBackgroundPane")
            .build(),
    );
    office::radio_group(
        tree,
        fb_dlg,
        "Fill",
        &["Solid fill", "Gradient fill", "Picture or texture fill", "Pattern fill"],
        "set_bg_fill_kind",
    );
    office::color_menu(tree, fb_dlg, "Fill Color", "set_bg_color", "background");
    office::button(tree, fb_dlg, "Apply to All", "bg_apply_to_all", None);
    office::button(tree, fb_dlg, "Reset Background", "bg_reset", None);
    tree.add(
        fb_dlg,
        WidgetBuilder::new("Close", CT::Button)
            .on_click(Behavior::CloseWindow(dmi_gui::CommitKind::Close))
            .build(),
    );
    office::dialog_launcher(tree, cust, "Format Background", fb_dlg);

    // ---------------- Transitions tab ----------------
    let trans = office::add_tab(tree, chrome.ribbon, "Transitions", false);
    let tt = office::add_group(tree, trans, "Transition to This Slide");
    let transitions: Vec<String> = [
        "None",
        "Morph",
        "Fade",
        "Push",
        "Wipe",
        "Split",
        "Reveal",
        "Random Bars",
        "Shape",
        "Uncover",
        "Cover",
        "Flash",
        "Fall Over",
        "Drape",
        "Curtains",
        "Wind",
        "Prestige",
        "Fracture",
        "Crush",
        "Peel Off",
        "Page Curl",
        "Airplane",
        "Origami",
        "Dissolve",
        "Checkerboard",
        "Blinds",
        "Clock",
        "Ripple",
        "Honeycomb",
        "Glitter",
        "Vortex",
        "Shred",
        "Switch",
        "Flip",
        "Gallery",
        "Cube",
        "Doors",
        "Box",
        "Comb",
        "Zoom",
        "Pan",
        "Ferris Wheel",
        "Conveyor",
        "Rotate",
        "Window",
        "Orbit",
        "Fly Through",
    ]
    .map(String::from)
    .to_vec();
    office::gallery(tree, tt, "Transition Styles", &transitions, "set_transition");
    let effect_opts: Vec<String> = [
        "From Right",
        "From Left",
        "From Top",
        "From Bottom",
        "Horizontal In",
        "Horizontal Out",
        "Vertical In",
        "Vertical Out",
    ]
    .map(String::from)
    .to_vec();
    office::gallery(tree, tt, "Effect Options", &effect_opts, "set_transition_effect");
    let timing = office::add_group(tree, trans, "Timing");
    office::button(tree, timing, "Apply To All", "transition_apply_all", None);
    office::edit_field(tree, timing, "Duration", "set_transition_duration");

    // ---------------- Animations tab ----------------
    let anim = office::add_tab(tree, chrome.ribbon, "Animations", false);
    let ag = office::add_group(tree, anim, "Animation");
    let animations: Vec<String> = [
        "Appear",
        "Fade",
        "Fly In",
        "Float In",
        "Split",
        "Wipe",
        "Shape",
        "Wheel",
        "Random Bars",
        "Grow & Turn",
        "Zoom",
        "Swivel",
        "Bounce",
        "Pulse",
        "Color Pulse",
        "Teeter",
        "Spin",
        "Grow/Shrink",
        "Desaturate",
        "Darken",
        "Lighten",
        "Transparency",
        "Object Color",
        "Complementary Color",
        "Line Color",
        "Fill Color",
    ]
    .map(String::from)
    .to_vec();
    office::gallery(tree, ag, "Animation Styles", &animations, "set_animation");
    office::gallery(tree, ag, "Add Animation", &animations, "set_animation");

    // ---------------- Slide Show tab (trap hazards) ----------------
    let show = office::add_tab(tree, chrome.ribbon, "Slide Show", false);
    let start = office::add_group(tree, show, "Start Slide Show");
    tree.add(
        start,
        WidgetBuilder::new("From Beginning", CT::Button).on_click(Behavior::Trap).build(),
    );
    tree.add(
        start,
        WidgetBuilder::new("From Current Slide", CT::Button).on_click(Behavior::Trap).build(),
    );

    // ---------------- View tab ----------------
    let view = office::add_tab(tree, chrome.ribbon, "View", false);
    let vg = office::add_group(tree, view, "Presentation Views");
    for v in ["Normal", "Outline View", "Slide Sorter", "Notes Page", "Reading View"] {
        office::button(tree, vg, v, "set_view", Some(v));
    }
    let show_grp = office::add_group(tree, view, "Show");
    office::checkbox(tree, show_grp, "Ruler", "show_ruler");
    office::checkbox(tree, show_grp, "Gridlines", "show_gridlines");
    office::checkbox(tree, show_grp, "Show Notes", "show_notes");

    // ---------------- Picture Format context tab ----------------
    let pic_tab = office::add_context_tab(tree, chrome.ribbon, "Picture Format", "image-selected");
    let ps = office::add_group(tree, pic_tab, "Picture Styles");
    let pstyles: Vec<String> = (0..28).map(|i| format!("Picture Style {i}")).collect();
    office::gallery(tree, ps, "Picture Quick Styles", &pstyles, "apply_picture_style");
    office::color_menu(tree, ps, "Picture Border", "set_picture_border", "picture-border");
    let adj = office::add_group(tree, pic_tab, "Adjust");
    office::button(tree, adj, "Remove Background", "remove_background", None);
    let corrections: Vec<String> = (0..12).map(|i| format!("Correction {i}")).collect();
    office::gallery(tree, adj, "Corrections", &corrections, "apply_correction");
    let size_grp = office::add_group(tree, pic_tab, "Size");
    office::button(tree, size_grp, "Crop", "crop_picture", None);
    office::edit_field(tree, size_grp, "Height", "set_picture_height");
    office::edit_field(tree, size_grp, "Width", "set_picture_width");

    // ---------------- Slide panel, canvas, notes ----------------
    let thumbnails = tree.add(
        chrome.main,
        WidgetBuilder::new("Slide Thumbnails", CT::List)
            .automation_id("SlidePanel")
            .scrollable(config.viewport_rows)
            .build(),
    );
    for i in 0..config.slides {
        tree.add(
            thumbnails,
            WidgetBuilder::new(format!("Slide {}", i + 1), CT::ListItem)
                .on_click(Behavior::Select)
                .binding(CommandBinding::with_arg("select_slide", i.to_string()))
                .build(),
        );
    }
    tree.add(
        chrome.main,
        WidgetBuilder::new("Slide Panel Scroll Bar", CT::ScrollBar)
            .automation_id("SlidePanelScroll")
            .scroll_target(thumbnails)
            .build(),
    );
    let canvas = tree.add(
        chrome.main,
        WidgetBuilder::new("Slide Canvas", CT::Pane).automation_id("SlideCanvas").build(),
    );
    let mut shape_widgets = Vec::with_capacity(config.slides);
    for (si, slide) in deck.slides.iter().enumerate() {
        let mut ids = Vec::new();
        for (pi, shape) in slide.shapes.iter().enumerate() {
            let id = tree.add(
                canvas,
                WidgetBuilder::new(format!("{} {}", shape.kind, pi + 1), CT::Image)
                    .value(shape.text.clone())
                    .pattern(dmi_uia::PatternKind::SelectionItem)
                    .on_click(Behavior::Select)
                    .binding(CommandBinding::with_arg("select_shape", format!("{si}:{pi}")))
                    .build(),
            );
            ids.push(id);
        }
        shape_widgets.push(ids);
    }
    let notes = tree.add(
        chrome.main,
        WidgetBuilder::new("Notes", CT::Edit)
            .automation_id("NotesPane")
            .help("Click to add notes; press Enter to commit.")
            .on_click(Behavior::FocusEdit)
            .binding(CommandBinding::new("set_notes"))
            .build(),
    );

    Built { thumbnails, canvas, notes, shape_widgets }
}

impl GuiApp for PowerPointApp {
    fn name(&self) -> &str {
        "PowerPoint"
    }

    fn process_id(&self) -> u32 {
        2003
    }

    fn tree(&self) -> &UiTree {
        &self.tree
    }

    fn tree_mut(&mut self) -> &mut UiTree {
        &mut self.tree
    }

    fn dispatch(&mut self, src: WidgetId, b: &CommandBinding) -> Result<(), AppError> {
        let arg = b.arg.as_deref();
        match b.command.as_str() {
            "select_slide" => {
                let i: usize = arg.unwrap_or("0").parse().unwrap_or(0);
                if i < self.deck.slides.len() {
                    self.deck.current = i;
                    self.deck.selected_shape = None;
                    self.show_current_slide();
                }
                Ok(())
            }
            "select_shape" => {
                let s = arg.unwrap_or("0:0");
                let (si, pi) = s.split_once(':').unwrap_or(("0", "0"));
                let si: usize = si.parse().unwrap_or(0);
                let pi: usize = pi.parse().unwrap_or(0);
                if si == self.deck.current {
                    self.deck.selected_shape = Some(pi);
                    self.sync_selection_context();
                }
                Ok(())
            }
            "set_bg_fill_kind" => Ok(()),
            "set_bg_color" => {
                let c = arg.unwrap_or_default();
                self.deck.set_background(c, false);
                Ok(())
            }
            "bg_apply_to_all" => {
                if let Some(c) = self.deck.current_slide().background.clone() {
                    self.deck.set_background(&c, true);
                }
                Ok(())
            }
            "bg_reset" => {
                self.deck.current_slide_mut().background = None;
                Ok(())
            }
            commands::OPEN_MORE_COLORS => {
                self.color_target = arg.unwrap_or("background").to_string();
                let dlg = self.chrome.more_colors;
                self.tree.open_window(dlg, true);
                Ok(())
            }
            commands::APPLY_COLOR_CTX => {
                if self.color_target == "background" {
                    self.deck.set_background(arg.unwrap_or_default(), false);
                }
                Ok(())
            }
            "set_transition" => {
                self.deck.current_slide_mut().transition = Some(arg.unwrap_or("Fade").to_string());
                Ok(())
            }
            "transition_apply_all" => {
                if let Some(t) = self.deck.current_slide().transition.clone() {
                    for s in &mut self.deck.slides {
                        s.transition = Some(t.clone());
                    }
                }
                Ok(())
            }
            "set_animation" => {
                let a = arg.unwrap_or("Fade").to_string();
                if let Some(pi) = self.deck.selected_shape {
                    if let Some(sh) = self.deck.current_slide_mut().shapes.get_mut(pi) {
                        sh.animation = Some(a);
                    }
                    Ok(())
                } else {
                    Err(AppError::Command {
                        command: "set_animation".into(),
                        reason: "no shape selected".into(),
                    })
                }
            }
            "insert_textbox" => {
                let cur = self.deck.current;
                self.deck.slides[cur].shapes.push(Shape::new("textbox", "New text box"));
                let pi = self.deck.slides[cur].shapes.len() - 1;
                let canvas = self.canvas;
                let id = self.tree.add(
                    canvas,
                    WidgetBuilder::new(format!("textbox {}", pi + 1), CT::Edit)
                        .on_click(Behavior::FocusEdit)
                        .binding(CommandBinding::with_arg("set_shape_text", format!("{cur}:{pi}")))
                        .build(),
                );
                self.shape_widgets[cur].push(id);
                self.deck.selected_shape = Some(pi);
                self.sync_selection_context();
                Ok(())
            }
            "set_shape_text" => {
                let text = self.tree.widget(src).value.clone();
                let s = b.arg.as_deref().unwrap_or("0:0");
                let (si, pi) = s.split_once(':').unwrap_or(("0", "0"));
                let si: usize = si.parse().unwrap_or(0);
                let pi: usize = pi.parse().unwrap_or(0);
                if let Some(sh) = self.deck.slides.get_mut(si).and_then(|s| s.shapes.get_mut(pi)) {
                    sh.text = text;
                }
                Ok(())
            }
            "insert_picture" => {
                let cur = self.deck.current;
                self.deck.slides[cur].shapes.push(Shape::new("image", "inserted.png"));
                let pi = self.deck.slides[cur].shapes.len() - 1;
                let canvas = self.canvas;
                let id = self.tree.add(
                    canvas,
                    WidgetBuilder::new(format!("image {}", pi + 1), CT::Image)
                        .pattern(dmi_uia::PatternKind::SelectionItem)
                        .on_click(Behavior::Select)
                        .binding(CommandBinding::with_arg("select_shape", format!("{cur}:{pi}")))
                        .build(),
                );
                self.shape_widgets[cur].push(id);
                self.deck.selected_shape = Some(pi);
                self.sync_selection_context();
                Ok(())
            }
            "set_font_size" => {
                let size: f64 = arg.unwrap_or("18").parse().unwrap_or(18.0);
                if let Some(pi) = self.deck.selected_shape {
                    if let Some(sh) = self.deck.current_slide_mut().shapes.get_mut(pi) {
                        sh.font_size = size;
                    }
                }
                Ok(())
            }
            "set_notes" => {
                self.deck.current_slide_mut().notes = self.tree.widget(src).value.clone();
                Ok(())
            }
            "set_slide_size" => {
                self.deck.slide_size = arg.unwrap_or("Widescreen (16:9)").to_string();
                Ok(())
            }
            "set_slide_footer" => {
                let text = self.tree.widget(src).value.clone();
                self.deck.current_slide_mut().notes = format!("footer:{text}");
                Ok(())
            }
            "new_slide" => {
                let mut slide = crate::model::deck::Slide::titled("New slide");
                slide.layout = arg.unwrap_or("Title and Content").to_string();
                self.deck.slides.push(slide);
                self.shape_widgets.push(Vec::new());
                Ok(())
            }
            "apply_picture_style" | "apply_shape_style" => {
                if let Some(pi) = self.deck.selected_shape {
                    let style = arg.unwrap_or_default().to_string();
                    if let Some(sh) = self.deck.current_slide_mut().shapes.get_mut(pi) {
                        sh.style = Some(style);
                    }
                }
                Ok(())
            }
            "set_layout" => {
                self.deck.current_slide_mut().layout = arg.unwrap_or_default().to_string();
                Ok(())
            }
            "apply_theme" => {
                self.deck.theme = arg.unwrap_or("Office").to_string();
                Ok(())
            }
            "move_slide" => {
                let s = arg.unwrap_or("0:0");
                let (f, t) = s.split_once(':').unwrap_or(("0", "0"));
                self.deck.reorder(f.parse().unwrap_or(0), t.parse().unwrap_or(0));
                self.show_current_slide();
                Ok(())
            }
            "set_font"
            | "set_font_color"
            | "toggle_format"
            | "set_shape_fill"
            | "set_shape_outline"
            | "apply_variant"
            | "reset_slide"
            | "insert_shape"
            | "insert_wordart"
            | "insert_symbol"
            | "insert_smartart"
            | "insert_chart"
            | "set_picture_border"
            | "remove_background"
            | "apply_correction"
            | "crop_picture"
            | "set_picture_height"
            | "set_picture_width"
            | "set_picture_name"
            | "set_view"
            | "set_transition_duration"
            | "set_transition_effect"
            | "insert_icon"
            | "insert_3d_model"
            | "insert_stock_image"
            | "save"
            | "save_as"
            | "undo"
            | "redo"
            | "print"
            | "new_from_template"
            | "open_recent" => Ok(()),
            other => {
                Err(AppError::Command { command: other.into(), reason: "unknown command".into() })
            }
        }
    }

    fn reset(&mut self) {
        let pristine = Arc::clone(&self.pristine);
        self.tree.clone_from(pristine.tree());
        let state = pristine.doc();
        self.deck.clone_from(&state.deck);
        self.shape_widgets.clone_from(&state.shape_widgets);
        self.color_target.clone_from(&state.color_target);
    }

    fn fork(&self) -> Option<Box<dyn GuiApp>> {
        // A launch-state twin off the shared pristine image: no
        // `build_ui` re-run; widget handles are stable arena indices.
        let pristine = Arc::clone(&self.pristine);
        let state = pristine.doc().clone();
        Some(Box::new(PowerPointApp {
            tree: pristine.tree().clone(),
            deck: state.deck,
            color_target: state.color_target,
            chrome: self.chrome,
            thumbnails: self.thumbnails,
            canvas: self.canvas,
            notes: self.notes,
            shape_widgets: state.shape_widgets,
            pristine,
        }))
    }

    fn pristine_token(&self) -> Option<u64> {
        // `reset` restores exactly this image, so its address identifies
        // the post-restart state for the lifetime of the app (and of all
        // of its forks, which share the `Arc`).
        Some(Arc::as_ptr(&self.pristine) as u64)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmi_gui::Session;

    fn session() -> Session {
        Session::new(Box::new(PowerPointApp::with_config(PowerPointConfig {
            slides: 5,
            viewport_rows: 5,
        })))
    }

    fn ppt(s: &Session) -> &PowerPointApp {
        s.app().as_any().downcast_ref::<PowerPointApp>().unwrap()
    }

    fn click_by_name(s: &mut Session, name: &str) {
        let shown: Vec<_> = s
            .app()
            .tree()
            .iter()
            .filter(|(i, w)| w.name == name && s.app().tree().is_shown(*i))
            .map(|(i, _)| i)
            .collect();
        assert!(!shown.is_empty(), "no visible '{name}'");
        s.click(shown[0]).unwrap();
    }

    #[test]
    fn table1_task1_blue_background_on_all_slides() {
        // The paper's Table 1 Task 1, executed imperatively.
        let mut s = session();
        click_by_name(&mut s, "Design");
        click_by_name(&mut s, "Format Background");
        click_by_name(&mut s, "Solid fill");
        click_by_name(&mut s, "Fill Color");
        // The standard "Blue" cell (two Blues exist; standard group's one).
        let tree = s.app().tree();
        let blues: Vec<_> = tree
            .iter()
            .filter(|(i, w)| w.name == "Blue" && tree.is_shown(*i))
            .map(|(i, _)| i)
            .collect();
        assert!(blues.len() >= 2, "ambiguous Blue cells visible");
        s.click(*blues.last().unwrap()).unwrap();
        click_by_name(&mut s, "Apply to All");
        assert!(ppt(&s).deck.slides.iter().all(|sl| sl.background.as_deref() == Some("Blue")));
    }

    #[test]
    fn thumbnail_selection_switches_slide_and_shapes() {
        let mut s = session();
        assert_eq!(ppt(&s).deck.current, 0);
        click_by_name(&mut s, "Slide 2");
        assert_eq!(ppt(&s).deck.current, 1);
        // Slide 2 has the seeded image; its canvas shape should be shown.
        let tree = s.app().tree();
        let img = tree.iter().find(|(i, w)| w.name == "image 2" && tree.is_shown(*i));
        assert!(img.is_some(), "slide 2's image shape visible on canvas");
    }

    #[test]
    fn picture_format_tab_is_context_gated() {
        let mut s = session();
        assert!(s.app().tree().find_by_name("Picture Format").is_some());
        let tab = s.app().tree().find_by_name("Picture Format").unwrap();
        assert!(!s.app().tree().is_shown(tab));
        click_by_name(&mut s, "Slide 2");
        click_by_name(&mut s, "image 2");
        assert!(s.app().tree().is_shown(tab), "context tab appears when image selected");
    }

    #[test]
    fn transition_apply_to_all() {
        let mut s = session();
        click_by_name(&mut s, "Transitions");
        click_by_name(&mut s, "Transition Styles");
        click_by_name(&mut s, "Fade");
        click_by_name(&mut s, "Apply To All");
        assert!(ppt(&s).deck.slides.iter().all(|sl| sl.transition.as_deref() == Some("Fade")));
    }

    #[test]
    fn notes_commit() {
        let mut s = session();
        let notes = ppt(&s).notes_widget();
        s.click(notes).unwrap();
        s.type_text("Remember to thank the team").unwrap();
        s.press("Enter").unwrap();
        assert_eq!(ppt(&s).deck.slides[0].notes, "Remember to thank the team");
    }

    #[test]
    fn slide_show_traps() {
        let mut s = session();
        click_by_name(&mut s, "Slide Show");
        click_by_name(&mut s, "From Beginning");
        assert!(s.is_trapped());
    }

    #[test]
    fn animation_requires_selected_shape() {
        let mut s = session();
        click_by_name(&mut s, "Animations");
        click_by_name(&mut s, "Animation Styles");
        let tree = s.app().tree();
        let fade: Vec<_> = tree
            .iter()
            .filter(|(i, w)| w.name == "Fade" && tree.is_shown(*i))
            .map(|(i, _)| i)
            .collect();
        let err = s.click(fade[0]).unwrap_err();
        assert!(err.to_string().contains("no shape selected"));
    }

    #[test]
    fn default_tree_is_large() {
        let app = PowerPointApp::new();
        assert!(app.tree.len() > 1900, "PowerPoint tree has {} widgets", app.tree.len());
    }
}
