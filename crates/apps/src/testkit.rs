//! Test-support fixtures shared by downstream crates' test suites.
//!
//! Hidden from docs: these are not part of the simulation surface, just
//! reusable scaffolding so e.g. the fleet engine's unit tests and the
//! release-gated identity oracles exercise the same minimal apps instead
//! of carrying divergent copies.

use dmi_gui::{
    AppError, Behavior, CommandBinding, GuiApp, UiTree, Widget, WidgetBuilder, WidgetId,
};
use dmi_uia::ControlType as CT;

/// A minimal application with **no pristine fork** (`GuiApp::fork` stays
/// `None`): one window, one popup menu with `items` no-op entries. Fleet
/// entries built on it must transparently ride the sequential fallback
/// engine.
pub struct UnforkableApp {
    tree: UiTree,
    items: usize,
}

impl UnforkableApp {
    /// Builds the app with `items` menu entries (`Item 0`, `Item 1`, …).
    pub fn new(items: usize) -> UnforkableApp {
        let mut t = UiTree::new();
        let main = t.add_root(Widget::new("Unforkable", CT::Window));
        let menu = t.add(
            main,
            WidgetBuilder::new("Menu", CT::SplitButton)
                .popup()
                .on_click(Behavior::OpenMenu)
                .build(),
        );
        for i in 0..items {
            t.add(
                menu,
                WidgetBuilder::new(format!("Item {i}"), CT::ListItem)
                    .on_click(Behavior::CommandAndDismiss(CommandBinding::new("noop")))
                    .build(),
            );
        }
        UnforkableApp { tree: t, items }
    }
}

impl GuiApp for UnforkableApp {
    fn name(&self) -> &str {
        "Unforkable"
    }
    fn tree(&self) -> &UiTree {
        &self.tree
    }
    fn tree_mut(&mut self) -> &mut UiTree {
        &mut self.tree
    }
    fn dispatch(&mut self, _src: WidgetId, _b: &CommandBinding) -> Result<(), AppError> {
        Ok(())
    }
    fn reset(&mut self) {
        *self = UnforkableApp::new(self.items);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A forkable application whose **forked instances panic** on their nth
/// dispatched command — a worker shard dying mid-task. The original
/// (and therefore any sequential reference rip) never panics, so fleet
/// fail-soft tests can compare a healthy baseline against the contained
/// failure. Structure: one window, one popup menu with `items` command
/// entries.
pub struct PanickyApp {
    tree: UiTree,
    items: usize,
    panic_at: u32,
    is_fork: bool,
    dispatches: u32,
}

impl PanickyApp {
    /// Builds the app with `items` menu entries; forks panic on dispatch
    /// number `panic_at` (1-based). `panic_at` larger than the rip's
    /// click count makes the app behave like a healthy fixture.
    pub fn new(items: usize, panic_at: u32) -> PanickyApp {
        let mut t = UiTree::new();
        let main = t.add_root(Widget::new("Panicky", CT::Window));
        let menu = t.add(
            main,
            WidgetBuilder::new("Menu", CT::SplitButton)
                .popup()
                .on_click(Behavior::OpenMenu)
                .build(),
        );
        for i in 0..items {
            t.add(
                menu,
                WidgetBuilder::new(format!("Item {i}"), CT::ListItem)
                    .on_click(Behavior::CommandAndDismiss(CommandBinding::new(format!("noop-{i}"))))
                    .build(),
            );
        }
        PanickyApp { tree: t, items, panic_at, is_fork: false, dispatches: 0 }
    }
}

impl GuiApp for PanickyApp {
    fn name(&self) -> &str {
        "Panicky"
    }
    fn tree(&self) -> &UiTree {
        &self.tree
    }
    fn tree_mut(&mut self) -> &mut UiTree {
        &mut self.tree
    }
    fn dispatch(&mut self, _src: WidgetId, _b: &CommandBinding) -> Result<(), AppError> {
        self.dispatches += 1;
        if self.is_fork && self.dispatches == self.panic_at {
            panic!("injected fault: fork dispatch #{} dies mid-click", self.panic_at);
        }
        Ok(())
    }
    fn reset(&mut self) {
        let dispatches = self.dispatches;
        let is_fork = self.is_fork;
        *self = PanickyApp::new(self.items, self.panic_at);
        self.dispatches = dispatches;
        self.is_fork = is_fork;
    }
    fn fork(&self) -> Option<Box<dyn GuiApp>> {
        let mut f = PanickyApp::new(self.items, self.panic_at);
        f.is_fork = true;
        Some(Box::new(f))
    }
    fn pristine_token(&self) -> Option<u64> {
        // The launch image really is restored by reset; panicking is a
        // crash fault, not a pristineness lie.
        Some(0x9a71_c355_0f2d_4b01 ^ self.items as u64 ^ ((self.panic_at as u64) << 32))
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
