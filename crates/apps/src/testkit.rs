//! Test-support fixtures shared by downstream crates' test suites.
//!
//! Hidden from docs: these are not part of the simulation surface, just
//! reusable scaffolding so e.g. the fleet engine's unit tests and the
//! release-gated identity oracles exercise the same minimal apps instead
//! of carrying divergent copies.

use dmi_gui::{
    AppError, Behavior, CommandBinding, GuiApp, UiTree, Widget, WidgetBuilder, WidgetId,
};
use dmi_uia::ControlType as CT;

/// A minimal application with **no pristine fork** (`GuiApp::fork` stays
/// `None`): one window, one popup menu with `items` no-op entries. Fleet
/// entries built on it must transparently ride the sequential fallback
/// engine.
pub struct UnforkableApp {
    tree: UiTree,
    items: usize,
}

impl UnforkableApp {
    /// Builds the app with `items` menu entries (`Item 0`, `Item 1`, …).
    pub fn new(items: usize) -> UnforkableApp {
        let mut t = UiTree::new();
        let main = t.add_root(Widget::new("Unforkable", CT::Window));
        let menu = t.add(
            main,
            WidgetBuilder::new("Menu", CT::SplitButton)
                .popup()
                .on_click(Behavior::OpenMenu)
                .build(),
        );
        for i in 0..items {
            t.add(
                menu,
                WidgetBuilder::new(format!("Item {i}"), CT::ListItem)
                    .on_click(Behavior::CommandAndDismiss(CommandBinding::new("noop")))
                    .build(),
            );
        }
        UnforkableApp { tree: t, items }
    }
}

impl GuiApp for UnforkableApp {
    fn name(&self) -> &str {
        "Unforkable"
    }
    fn tree(&self) -> &UiTree {
        &self.tree
    }
    fn tree_mut(&mut self) -> &mut UiTree {
        &mut self.tree
    }
    fn dispatch(&mut self, _src: WidgetId, _b: &CommandBinding) -> Result<(), AppError> {
        Ok(())
    }
    fn reset(&mut self) {
        *self = UnforkableApp::new(self.items);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
