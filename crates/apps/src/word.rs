//! The simulated Word application.
//!
//! A feature-rich text editor with the structural hazards the paper's
//! evaluation exercises: a deep ribbon, large galleries (fonts, symbols,
//! styles), four color pickers sharing the "Colors" dialog (merge nodes
//! with path-dependent semantics), the Find & Replace dialog whose "Next"
//! button renames itself on special input (§6 topology-inaccuracy example),
//! and a scrollable document surface with off-screen paragraphs.

use crate::model::word_doc::{Alignment, WordDoc};
use crate::office::{self, commands, Chrome, Pristine};
use dmi_gui::{
    AppError, Behavior, CommandBinding, GuiApp, UiTree, Widget, WidgetBuilder, WidgetId,
};
use dmi_uia::ControlType as CT;
use std::sync::Arc;

/// Build-time options for the simulated Word instance.
#[derive(Debug, Clone)]
pub struct WordConfig {
    /// Number of document paragraphs.
    pub paragraphs: usize,
    /// Rows visible in the document viewport.
    pub viewport_rows: usize,
}

impl Default for WordConfig {
    fn default() -> Self {
        WordConfig { paragraphs: 120, viewport_rows: 24 }
    }
}

/// The mutable model state captured in the pristine launch image: the
/// document plus every session-scoped scalar `dispatch` can change. Kept
/// as one struct so `reset` restores from the capture instead of
/// re-listing constructor defaults.
#[derive(Debug, Clone)]
struct WordState {
    doc: WordDoc,
    color_target: String,
    find_text: String,
    replace_text: String,
    find_subscript: bool,
}

/// The simulated Word application.
pub struct WordApp {
    tree: UiTree,
    /// The document model (task verifiers inspect this).
    pub doc: WordDoc,
    /// Color target chosen by the most recent color-menu opener.
    color_target: String,
    /// Find & Replace state.
    find_text: String,
    replace_text: String,
    /// The §5.6 pitfall flag: subscript checked inside Find & Replace
    /// applies to the find pattern, not the document selection.
    pub find_subscript: bool,
    chrome: Chrome,
    doc_surface: WidgetId,
    find_next_button: WidgetId,
    /// Launch-state image `reset` clones from (no arena reconstruction).
    pristine: Arc<Pristine<WordState>>,
}

impl WordApp {
    /// Creates the app with the default document.
    pub fn new() -> Self {
        Self::with_config(WordConfig::default())
    }

    /// Creates the app with explicit options.
    pub fn with_config(config: WordConfig) -> Self {
        let mut tree = UiTree::new();
        let doc = WordDoc::with_paragraphs(config.paragraphs);
        let chrome = office::build_chrome(&mut tree, "Document1 - Word");
        office::build_backstage(&mut tree, chrome.main);
        let (doc_surface, find_next_button) = build_ui(&mut tree, &chrome, &config, &doc);
        let state = WordState {
            doc,
            color_target: "font".into(),
            find_text: String::new(),
            replace_text: String::new(),
            find_subscript: false,
        };
        let pristine = Pristine::capture(&tree, &state);
        WordApp {
            tree,
            doc: state.doc,
            color_target: state.color_target,
            find_text: state.find_text,
            replace_text: state.replace_text,
            find_subscript: state.find_subscript,
            chrome,
            doc_surface,
            find_next_button,
            pristine,
        }
    }

    /// The document surface widget (a `Document` text surface).
    pub fn doc_surface(&self) -> WidgetId {
        self.doc_surface
    }

    /// The chrome handles.
    pub fn chrome(&self) -> Chrome {
        self.chrome
    }

    /// Looks up a widget by automation id (panics if missing — test aid).
    pub fn widget_by_auto(&self, auto: &str) -> WidgetId {
        self.tree
            .find_by_automation_id(auto)
            .unwrap_or_else(|| panic!("no widget with automation id {auto}"))
    }

    fn apply_color(&mut self, target: &str, color: &str) -> Result<(), AppError> {
        match target {
            "font" => {
                self.doc.format_selection(|f| f.color = color.to_string());
                Ok(())
            }
            "highlight" => {
                self.doc.format_selection(|f| f.highlight = Some(color.to_string()));
                Ok(())
            }
            "underline" => {
                // Underline color implies underline.
                self.doc.format_selection(|f| f.underline = true);
                Ok(())
            }
            "shading" => {
                self.doc.format_selection(|f| f.highlight = Some(color.to_string()));
                Ok(())
            }
            "page" => {
                self.doc.page.background = Some(color.to_string());
                Ok(())
            }
            other => Err(AppError::Command {
                command: "apply_color".into(),
                reason: format!("unknown color target '{other}'"),
            }),
        }
    }

    fn first_visible_row(&self) -> usize {
        let w = self.tree.widget(self.doc_surface);
        let n = w.children.len();
        let rows = w.viewport_rows.min(n);
        if n == 0 || rows == 0 {
            return 0;
        }
        let max_start = n - rows;
        ((w.scroll_pos / 100.0) * max_start as f64).round() as usize
    }

    fn parse_range(arg: Option<&str>) -> Result<(usize, usize), AppError> {
        let s = arg.ok_or_else(|| AppError::InvalidArgument { message: "missing range".into() })?;
        let (a, b) = s
            .split_once("..")
            .ok_or_else(|| AppError::InvalidArgument { message: format!("bad range '{s}'") })?;
        let a: usize = a
            .parse()
            .map_err(|_| AppError::InvalidArgument { message: format!("bad range '{s}'") })?;
        let b: usize = b
            .parse()
            .map_err(|_| AppError::InvalidArgument { message: format!("bad range '{s}'") })?;
        Ok((a, b))
    }
}

impl Default for WordApp {
    fn default() -> Self {
        Self::new()
    }
}

/// Builds the full Word UI; returns (document surface, find "Next" button).
fn build_ui(
    tree: &mut UiTree,
    chrome: &Chrome,
    config: &WordConfig,
    doc: &WordDoc,
) -> (WidgetId, WidgetId) {
    let fonts = office::font_names();
    let sizes: Vec<String> =
        [8, 9, 10, 11, 12, 14, 16, 18, 20, 24, 28, 32, 36, 48, 72].map(|s| s.to_string()).to_vec();

    // ---------------- Home tab ----------------
    let home = office::add_tab(tree, chrome.ribbon, "Home", true);
    let clip = office::add_group(tree, home, "Clipboard");
    let paste = office::button(tree, clip, "Paste", "paste", None);
    tree.widget_mut(paste).enabled = false; // Empty clipboard: structured-error demo.
    office::button(tree, clip, "Cut", "cut", None);
    office::button(tree, clip, "Copy", "copy", None);
    office::button(tree, clip, "Format Painter", "format_painter", None);

    let font_grp = office::add_group(tree, home, "Font");
    office::gallery(tree, font_grp, "Font Name", &fonts, "set_font");
    office::gallery(tree, font_grp, "Font Size", &sizes, "set_font_size");
    office::toggle_button(tree, font_grp, "Bold", "bold");
    office::toggle_button(tree, font_grp, "Italic", "italic");
    office::toggle_button(tree, font_grp, "Underline", "underline");
    office::toggle_button(tree, font_grp, "Strikethrough", "strikethrough");
    office::toggle_button(tree, font_grp, "Subscript", "subscript");
    office::toggle_button(tree, font_grp, "Superscript", "superscript");
    // Underline-style menu carries its own color picker: one of the paths
    // to "the same" colors with different semantics.
    let ul_menu = tree.add(
        font_grp,
        WidgetBuilder::new("Underline Style", CT::SplitButton)
            .popup()
            .on_click(Behavior::OpenMenu)
            .build(),
    );
    for style in ["Single", "Double", "Thick", "Dotted", "Dashed", "Wave"] {
        tree.add(
            ul_menu,
            WidgetBuilder::new(style, CT::MenuItem)
                .on_click(Behavior::CommandAndDismiss(CommandBinding::with_arg(
                    "set_underline_style",
                    style,
                )))
                .build(),
        );
    }
    office::color_menu(tree, ul_menu, "Underline Color", "set_underline_color", "underline");
    office::color_menu(tree, font_grp, "Font Color", "set_font_color", "font");
    let highlights: Vec<String> = [
        "Yellow",
        "Bright Green",
        "Turquoise",
        "Pink",
        "Blue",
        "Red",
        "Dark Blue",
        "Teal",
        "Green",
        "Violet",
        "Dark Red",
        "Dark Yellow",
        "Gray",
        "Black",
        "No Color",
    ]
    .map(String::from)
    .to_vec();
    office::gallery(tree, font_grp, "Text Highlight Color", &highlights, "set_highlight");
    let case_items: Vec<String> =
        ["Sentence case.", "lowercase", "UPPERCASE", "Capitalize Each Word", "tOGGLE cASE"]
            .map(String::from)
            .to_vec();
    office::gallery(tree, font_grp, "Change Case", &case_items, "change_case");
    office::button(tree, font_grp, "Clear All Formatting", "clear_formatting", None);
    // Font dialog (launcher; carries a second font enumeration).
    let (font_dlg, font_body) = office::dialog(tree, "Font");
    office::gallery(tree, font_body, "Font", &fonts, "set_font");
    office::gallery(tree, font_body, "Size", &sizes, "set_font_size");
    office::checkbox(tree, font_body, "Small caps", "smallcaps");
    office::checkbox(tree, font_body, "All caps", "allcaps");
    office::checkbox(tree, font_body, "Hidden", "hidden");
    office::dialog_launcher(tree, font_grp, "Font Settings", font_dlg);

    let para_grp = office::add_group(tree, home, "Paragraph");
    let bullets: Vec<String> = (0..12).map(|i| format!("Bullet Library {i}")).collect();
    office::gallery(tree, para_grp, "Bullets", &bullets, "set_bullets");
    let numbering: Vec<String> = (0..12).map(|i| format!("Numbering Library {i}")).collect();
    office::gallery(tree, para_grp, "Numbering", &numbering, "set_numbering");
    let multi: Vec<String> = (0..8).map(|i| format!("Multilevel List {i}")).collect();
    office::gallery(tree, para_grp, "Multilevel List", &multi, "set_multilevel");
    for (name, arg) in [
        ("Align Left", "Left"),
        ("Center", "Center"),
        ("Align Right", "Right"),
        ("Justify", "Justify"),
    ] {
        office::button(tree, para_grp, name, "set_alignment", Some(arg));
    }
    // Line-spacing menu plus the Paragraph dialog.
    let (para_dlg, para_body) = office::dialog(tree, "Paragraph");
    let spacing_opts: Vec<String> =
        ["1.0", "1.15", "1.5", "2.0", "2.5", "3.0"].map(String::from).to_vec();
    office::gallery(tree, para_body, "Line spacing", &spacing_opts, "set_line_spacing");
    let dlg_aligns: Vec<String> =
        ["Left", "Centered", "Right", "Justified"].map(String::from).to_vec();
    office::gallery(tree, para_body, "Alignment", &dlg_aligns, "set_alignment_dialog");
    let ls_menu = tree.add(
        para_grp,
        WidgetBuilder::new("Line and Paragraph Spacing", CT::SplitButton)
            .automation_id("LineSpacing")
            .popup()
            .on_click(Behavior::OpenMenu)
            .build(),
    );
    for opt in &spacing_opts {
        tree.add(
            ls_menu,
            WidgetBuilder::new(opt.clone(), CT::MenuItem)
                .on_click(Behavior::CommandAndDismiss(CommandBinding::with_arg(
                    "set_line_spacing",
                    opt.clone(),
                )))
                .build(),
        );
    }
    tree.add(
        ls_menu,
        WidgetBuilder::new("Line Spacing Options...", CT::MenuItem)
            .on_click(Behavior::OpenDialog(para_dlg))
            .build(),
    );
    office::color_menu(tree, para_grp, "Shading", "set_shading", "shading");
    let borders: Vec<String> = [
        "Bottom Border",
        "Top Border",
        "Left Border",
        "Right Border",
        "No Border",
        "All Borders",
        "Outside Borders",
        "Inside Borders",
    ]
    .map(String::from)
    .to_vec();
    office::gallery(tree, para_grp, "Borders", &borders, "set_borders");
    office::dialog_launcher(tree, para_grp, "Paragraph Settings", para_dlg);

    let styles_grp = office::add_group(tree, home, "Styles");
    let styles: Vec<String> = [
        "Normal",
        "No Spacing",
        "Heading 1",
        "Heading 2",
        "Heading 3",
        "Heading 4",
        "Title",
        "Subtitle",
        "Subtle Emphasis",
        "Emphasis",
        "Intense Emphasis",
        "Strong",
        "Quote",
        "Intense Quote",
        "Subtle Reference",
        "Intense Reference",
        "Book Title",
        "List Paragraph",
    ]
    .iter()
    .flat_map(|s| [(*s).to_string(), format!("{s} (linked)")])
    .collect();
    office::gallery(tree, styles_grp, "Styles", &styles, "apply_style");

    let edit_grp = office::add_group(tree, home, "Editing");
    // Find & Replace dialog with the renameable "Next" button.
    let (fr_dlg, fr_body) = office::dialog(tree, "Find and Replace");
    office::edit_field(tree, fr_body, "Find what", "set_find_text");
    office::edit_field(tree, fr_body, "Replace with", "set_replace_text");
    let next_btn = tree.add(
        fr_body,
        WidgetBuilder::new("Next", CT::Button)
            .help("Find the next occurrence.")
            .on_click(Behavior::Command(CommandBinding::new("find_next")))
            .build(),
    );
    office::button(tree, fr_body, "Replace", "replace_one", None);
    office::button(tree, fr_body, "Replace All", "replace_all", None);
    office::checkbox(tree, fr_body, "Match case", "find_match_case");
    office::checkbox(tree, fr_body, "Find whole words only", "find_whole_words");
    // The §5.6 pitfall: this subscript applies to the find pattern.
    let fmt_menu = tree.add(
        fr_body,
        WidgetBuilder::new("Format", CT::SplitButton).popup().on_click(Behavior::OpenMenu).build(),
    );
    office::checkbox(tree, fmt_menu, "Subscript", "find_subscript");
    office::checkbox(tree, fmt_menu, "Superscript", "find_superscript");
    let special: Vec<String> = [
        "Paragraph Mark",
        "Tab Character",
        "Any Character",
        "Any Digit",
        "Any Letter",
        "Caret Character",
        "Section Character",
        "Paragraph Character",
    ]
    .map(String::from)
    .to_vec();
    office::gallery(tree, fr_body, "Special", &special, "insert_special");
    office::dialog_launcher(tree, edit_grp, "Replace", fr_dlg);
    office::dialog_launcher(tree, edit_grp, "Find", fr_dlg);
    let select_menu = tree.add(
        edit_grp,
        WidgetBuilder::new("Select", CT::SplitButton).popup().on_click(Behavior::OpenMenu).build(),
    );
    tree.add(
        select_menu,
        WidgetBuilder::new("Select All", CT::MenuItem)
            .on_click(Behavior::CommandAndDismiss(CommandBinding::new("select_all")))
            .build(),
    );
    tree.add(
        select_menu,
        WidgetBuilder::new("Select Objects", CT::MenuItem)
            .on_click(Behavior::CommandAndDismiss(CommandBinding::new("select_objects")))
            .build(),
    );

    // ---------------- Insert tab ----------------
    let insert = office::add_tab(tree, chrome.ribbon, "Insert", false);
    let pages = office::add_group(tree, insert, "Pages");
    let covers: Vec<String> = (0..12).map(|i| format!("Cover Page {i}")).collect();
    office::gallery(tree, pages, "Cover Page", &covers, "insert_cover");
    office::button(tree, pages, "Blank Page", "insert_blank_page", None);
    office::button(tree, pages, "Page Break", "insert_page_break", None);
    let tables = office::add_group(tree, insert, "Tables");
    let grid: Vec<String> =
        (1..=8).flat_map(|r| (1..=8).map(move |c| format!("Table {r}x{c}"))).collect();
    office::gallery(tree, tables, "Table", &grid, "insert_table");
    let illus = office::add_group(tree, insert, "Illustrations");
    let (pic_dlg, pic_body) = office::dialog(tree, "Insert Picture");
    office::edit_field(tree, pic_body, "File name", "set_picture_name");
    office::button(tree, pic_body, "Insert", "insert_picture", None);
    office::dialog_launcher(tree, illus, "Pictures", pic_dlg);
    let shape_cats = [
        "Lines",
        "Rectangles",
        "Basic Shapes",
        "Block Arrows",
        "Equation Shapes",
        "Flowchart",
        "Stars and Banners",
        "Callouts",
    ];
    let shapes_menu = tree.add(
        illus,
        WidgetBuilder::new("Shapes", CT::SplitButton).popup().on_click(Behavior::OpenMenu).build(),
    );
    for cat in shape_cats {
        let sub = tree.add(
            shapes_menu,
            WidgetBuilder::new(cat, CT::MenuItem).popup().on_click(Behavior::OpenMenu).build(),
        );
        for i in 0..20 {
            tree.add(
                sub,
                WidgetBuilder::new(format!("{cat} Shape {i}"), CT::ListItem)
                    .on_click(Behavior::CommandAndDismiss(CommandBinding::with_arg(
                        "insert_shape",
                        format!("{cat} Shape {i}"),
                    )))
                    .build(),
            );
        }
    }
    let charts: Vec<String> = ["Column", "Line", "Pie", "Bar", "Area", "Scatter"]
        .iter()
        .flat_map(|k| (0..8).map(move |i| format!("{k} Chart {i}")))
        .collect();
    office::gallery(tree, illus, "Chart", &charts, "insert_chart");
    let hf = office::add_group(tree, insert, "Header & Footer");
    let headers: Vec<String> = (0..16).map(|i| format!("Header Design {i}")).collect();
    office::gallery(tree, hf, "Header", &headers, "set_header");
    let footers: Vec<String> = (0..16).map(|i| format!("Footer Design {i}")).collect();
    office::gallery(tree, hf, "Footer", &footers, "set_footer");
    let (hdr_dlg, hdr_body) = office::dialog(tree, "Edit Header");
    office::edit_field(tree, hdr_body, "Header text", "set_header_text");
    office::dialog_launcher(tree, hf, "Edit Header", hdr_dlg);
    let text_grp = office::add_group(tree, insert, "Text");
    let boxes: Vec<String> = (0..16).map(|i| format!("Text Box Style {i}")).collect();
    office::gallery(tree, text_grp, "Text Box", &boxes, "insert_textbox");
    let wordart: Vec<String> = (0..15).map(|i| format!("WordArt Style {i}")).collect();
    office::gallery(tree, text_grp, "WordArt", &wordart, "insert_wordart");
    let symbols_grp = office::add_group(tree, insert, "Symbols");
    let eqs: Vec<String> = (0..12).map(|i| format!("Equation {i}")).collect();
    office::gallery(tree, symbols_grp, "Equation", &eqs, "insert_equation");
    office::gallery(tree, symbols_grp, "Symbol", &office::symbol_names(280), "insert_symbol");
    let icons: Vec<String> = (0..150).map(|i| format!("Icon {i}")).collect();
    office::gallery(tree, illus, "Icons", &icons, "insert_icon");
    let models: Vec<String> = (0..60).map(|i| format!("3D Model {i}")).collect();
    office::gallery(tree, illus, "3D Models", &models, "insert_3d_model");
    let stock: Vec<String> = (0..100).map(|i| format!("Stock Image {i}")).collect();
    office::gallery(tree, illus, "Stock Images", &stock, "insert_stock_image");
    let quick_parts: Vec<String> = (0..40).map(|i| format!("Quick Part {i}")).collect();
    office::gallery(tree, text_grp, "Quick Parts", &quick_parts, "insert_quick_part");
    let pn_menu = tree.add(
        hf,
        WidgetBuilder::new("Page Number", CT::SplitButton)
            .popup()
            .on_click(Behavior::OpenMenu)
            .build(),
    );
    for pos in ["Top of Page", "Bottom of Page", "Page Margins", "Current Position"] {
        let sub = tree.add(
            pn_menu,
            WidgetBuilder::new(pos, CT::MenuItem).popup().on_click(Behavior::OpenMenu).build(),
        );
        for i in 0..20 {
            tree.add(
                sub,
                WidgetBuilder::new(format!("{pos} Number {i}"), CT::ListItem)
                    .on_click(Behavior::CommandAndDismiss(CommandBinding::with_arg(
                        "insert_page_number",
                        format!("{pos} {i}"),
                    )))
                    .build(),
            );
        }
    }

    // ---------------- Design tab ----------------
    let design = office::add_tab(tree, chrome.ribbon, "Design", false);
    let fmt = office::add_group(tree, design, "Document Formatting");
    let themes: Vec<String> = (0..44).map(|i| format!("Theme {i}")).collect();
    office::gallery(tree, fmt, "Themes", &themes, "apply_theme");
    let schemes: Vec<String> = (0..24).map(|i| format!("Color Scheme {i}")).collect();
    office::gallery(tree, fmt, "Colors", &schemes, "apply_color_scheme");
    let font_schemes: Vec<String> = (0..24).map(|i| format!("Font Scheme {i}")).collect();
    office::gallery(tree, fmt, "Theme Fonts", &font_schemes, "apply_font_scheme");
    let style_sets: Vec<String> = (0..36).map(|i| format!("Style Set {i}")).collect();
    office::gallery(tree, fmt, "Style Sets", &style_sets, "apply_style_set");
    let bg = office::add_group(tree, design, "Page Background");
    let marks: Vec<String> = [
        "CONFIDENTIAL 1",
        "CONFIDENTIAL 2",
        "DO NOT COPY 1",
        "DO NOT COPY 2",
        "DRAFT 1",
        "DRAFT 2",
        "SAMPLE 1",
        "SAMPLE 2",
        "ASAP 1",
        "URGENT 1",
    ]
    .map(String::from)
    .to_vec();
    office::gallery(tree, bg, "Watermark", &marks, "set_watermark");
    let (wm_dlg, wm_body) = office::dialog(tree, "Custom Watermark");
    office::edit_field(tree, wm_body, "Watermark text", "set_watermark_text");
    office::dialog_launcher(tree, bg, "Custom Watermark", wm_dlg);
    office::color_menu(tree, bg, "Page Color", "set_page_color", "page");
    let (border_dlg, border_body) = office::dialog(tree, "Borders and Shading");
    office::radio_group(
        tree,
        border_body,
        "Setting",
        &["None", "Box", "Shadow", "3-D"],
        "set_page_border",
    );
    office::dialog_launcher(tree, bg, "Page Borders", border_dlg);

    // ---------------- Layout tab ----------------
    let layout = office::add_tab(tree, chrome.ribbon, "Layout", false);
    let setup = office::add_group(tree, layout, "Page Setup");
    let margin_presets: Vec<String> =
        ["Normal", "Narrow", "Moderate", "Wide", "Mirrored"].map(String::from).to_vec();
    office::gallery(tree, setup, "Margins", &margin_presets, "set_margins");
    let (ps_dlg, ps_body) = office::dialog(tree, "Page Setup");
    office::edit_field(tree, ps_body, "Top", "set_margin_top");
    office::edit_field(tree, ps_body, "Bottom", "set_margin_bottom");
    office::edit_field(tree, ps_body, "Left", "set_margin_left");
    office::edit_field(tree, ps_body, "Right", "set_margin_right");
    office::radio_group(
        tree,
        ps_body,
        "Orientation",
        &["Portrait", "Landscape"],
        "set_orientation",
    );
    office::dialog_launcher(tree, setup, "Page Setup", ps_dlg);
    let orient_menu = tree.add(
        setup,
        WidgetBuilder::new("Orientation", CT::SplitButton)
            .popup()
            .on_click(Behavior::OpenMenu)
            .build(),
    );
    for o in ["Portrait", "Landscape"] {
        tree.add(
            orient_menu,
            WidgetBuilder::new(o, CT::MenuItem)
                .on_click(Behavior::CommandAndDismiss(CommandBinding::with_arg(
                    "set_orientation",
                    o,
                )))
                .build(),
        );
    }
    let sizes_g: Vec<String> =
        ["Letter", "Legal", "A3", "A4", "A5", "B4", "B5", "Executive", "Tabloid", "Statement"]
            .map(String::from)
            .to_vec();
    office::gallery(tree, setup, "Size", &sizes_g, "set_page_size");
    let cols: Vec<String> = ["One", "Two", "Three", "Left", "Right"].map(String::from).to_vec();
    office::gallery(tree, setup, "Columns", &cols, "set_columns");

    // ---------------- References / Review / View ----------------
    let refs = office::add_tab(tree, chrome.ribbon, "References", false);
    let toc_grp = office::add_group(tree, refs, "Table of Contents");
    let tocs: Vec<String> = (0..6).map(|i| format!("Automatic Table {i}")).collect();
    office::gallery(tree, toc_grp, "Table of Contents", &tocs, "insert_toc");
    let fn_grp = office::add_group(tree, refs, "Footnotes");
    office::button(tree, fn_grp, "Insert Footnote", "insert_footnote", None);
    office::button(tree, fn_grp, "Insert Endnote", "insert_endnote", None);

    let review = office::add_tab(tree, chrome.ribbon, "Review", false);
    let proof = office::add_group(tree, review, "Proofing");
    office::button(tree, proof, "Spelling & Grammar", "spellcheck", None);
    let (wc_dlg, wc_body) = office::dialog(tree, "Word Count");
    tree.add(wc_body, Widget::new("Statistics", CT::Text));
    office::dialog_launcher(tree, proof, "Word Count", wc_dlg);
    let track = office::add_group(tree, review, "Tracking");
    office::toggle_button(tree, track, "Track Changes", "track_changes");

    let view = office::add_tab(tree, chrome.ribbon, "View", false);
    let views_grp = office::add_group(tree, view, "Views");
    for v in ["Read Mode", "Print Layout", "Web Layout", "Outline", "Draft"] {
        office::button(tree, views_grp, v, "set_view", Some(v));
    }
    let show_grp = office::add_group(tree, view, "Show");
    office::checkbox(tree, show_grp, "Ruler", "show_ruler");
    office::checkbox(tree, show_grp, "Gridlines", "show_gridlines");
    office::checkbox(tree, show_grp, "Navigation Pane", "show_nav");

    // ---------------- Document area ----------------
    let doc_surface = tree.add(
        chrome.main,
        WidgetBuilder::new("Document", CT::Document)
            .automation_id("Body")
            .scrollable(config.viewport_rows)
            .text_surface()
            .build(),
    );
    for (i, p) in doc.paragraphs.iter().enumerate() {
        tree.add(
            doc_surface,
            WidgetBuilder::new(format!("Paragraph {i}"), CT::Text).value(p.text.clone()).build(),
        );
    }
    tree.add(
        chrome.main,
        WidgetBuilder::new("Vertical Scroll Bar", CT::ScrollBar)
            .automation_id("VScroll")
            .scroll_target(doc_surface)
            .build(),
    );

    (doc_surface, next_btn)
}

impl GuiApp for WordApp {
    fn name(&self) -> &str {
        "Word"
    }

    fn process_id(&self) -> u32 {
        2001
    }

    fn tree(&self) -> &UiTree {
        &self.tree
    }

    fn tree_mut(&mut self) -> &mut UiTree {
        &mut self.tree
    }

    fn dispatch(&mut self, src: WidgetId, b: &CommandBinding) -> Result<(), AppError> {
        let arg = b.arg.as_deref();
        match b.command.as_str() {
            "toggle_format" => {
                let prop = arg.unwrap_or_default().to_string();
                match prop.as_str() {
                    "bold" => self.doc.format_selection(|f| f.bold = !f.bold),
                    "italic" => self.doc.format_selection(|f| f.italic = !f.italic),
                    "underline" => self.doc.format_selection(|f| f.underline = !f.underline),
                    "strikethrough" => self.doc.format_selection(|_| {}), // cosmetic only
                    "subscript" => self.doc.format_selection(|f| f.subscript = !f.subscript),
                    "superscript" => self.doc.format_selection(|f| f.superscript = !f.superscript),
                    "find_subscript" => {
                        // The pitfall: applies to the find pattern only.
                        self.find_subscript = !self.find_subscript;
                        0
                    }
                    _ => 0,
                };
                Ok(())
            }
            "set_font" => {
                let font = arg.unwrap_or_default().to_string();
                self.doc.format_selection(|f| f.font = font.clone());
                Ok(())
            }
            "set_font_size" => {
                let size: f64 = arg.unwrap_or("11").parse().unwrap_or(11.0);
                self.doc.format_selection(|f| f.size = size);
                Ok(())
            }
            "set_font_color" => self.apply_color("font", arg.unwrap_or_default()),
            "set_highlight" => self.apply_color("highlight", arg.unwrap_or_default()),
            "set_shading" => self.apply_color("shading", arg.unwrap_or_default()),
            "set_page_color" => self.apply_color("page", arg.unwrap_or_default()),
            "set_underline_color" => self.apply_color("underline", arg.unwrap_or_default()),
            "set_underline_style" => {
                self.doc.format_selection(|f| f.underline = true);
                Ok(())
            }
            commands::OPEN_MORE_COLORS => {
                self.color_target = arg.unwrap_or("font").to_string();
                let dlg = self.chrome.more_colors;
                self.tree.open_window(dlg, true);
                Ok(())
            }
            commands::APPLY_COLOR_CTX => {
                let target = self.color_target.clone();
                self.apply_color(&target, arg.unwrap_or_default())
            }
            "apply_style" => {
                let style = arg.unwrap_or("Normal").trim_end_matches(" (linked)").to_string();
                self.doc.format_selection(|f| f.style = style.clone());
                Ok(())
            }
            "set_alignment" | "set_alignment_dialog" => {
                let a = match arg.unwrap_or("Left") {
                    "Center" | "Centered" => Alignment::Center,
                    "Right" => Alignment::Right,
                    "Justify" | "Justified" => Alignment::Justify,
                    _ => Alignment::Left,
                };
                self.doc.format_selection(|f| f.alignment = a);
                Ok(())
            }
            "set_line_spacing" => {
                let ls: f64 = arg.unwrap_or("1.0").parse().unwrap_or(1.0);
                self.doc.format_selection(|f| f.line_spacing = ls);
                Ok(())
            }
            "set_find_text" => {
                self.find_text = self.tree.widget(src).value.clone();
                // Special input dynamically renames "Next" -> "Go To"
                // (§6 "(In)accurate navigation topology").
                let renamed = self.find_text.starts_with('+');
                let btn = self.find_next_button;
                self.tree.widget_mut(btn).name =
                    if renamed { "Go To".into() } else { "Next".into() };
                Ok(())
            }
            "set_replace_text" => {
                self.replace_text = self.tree.widget(src).value.clone();
                Ok(())
            }
            "replace_all" => {
                let (f, r) = (self.find_text.clone(), self.replace_text.clone());
                self.doc.replace_all(&f, &r);
                Ok(())
            }
            "replace_one" | "find_next" => Ok(()),
            "insert_special" => {
                self.find_text.push('^');
                Ok(())
            }
            "select_all" => {
                let n = self.doc.paragraphs.len();
                if n > 0 {
                    self.doc.select(0, n - 1);
                }
                Ok(())
            }
            "ui.select_lines" | "ui.select_paragraphs" => {
                let (a, b2) = Self::parse_range(arg)?;
                self.doc.select(a, b2);
                Ok(())
            }
            "ui.select_lines_viewport" => {
                let (a, b2) = Self::parse_range(arg)?;
                let fv = self.first_visible_row();
                self.doc.select(a + fv, b2 + fv);
                Ok(())
            }
            "set_margins" => {
                self.doc.page.margins = match arg.unwrap_or("Normal") {
                    "Narrow" => (0.5, 0.5, 0.5, 0.5),
                    "Moderate" => (1.0, 1.0, 0.75, 0.75),
                    "Wide" => (1.0, 1.0, 2.0, 2.0),
                    "Mirrored" => (1.0, 1.0, 1.25, 1.0),
                    _ => (1.0, 1.0, 1.0, 1.0),
                };
                Ok(())
            }
            "set_margin_top" | "set_margin_bottom" | "set_margin_left" | "set_margin_right" => {
                let v: f64 =
                    self.tree.widget(src).value.parse().map_err(|_| AppError::InvalidArgument {
                        message: format!(
                            "margin '{}' is not a number",
                            self.tree.widget(src).value
                        ),
                    })?;
                let m = &mut self.doc.page.margins;
                match b.command.as_str() {
                    "set_margin_top" => m.0 = v,
                    "set_margin_bottom" => m.1 = v,
                    "set_margin_left" => m.2 = v,
                    _ => m.3 = v,
                }
                Ok(())
            }
            "set_orientation" => {
                self.doc.page.orientation_landscape = arg == Some("Landscape");
                Ok(())
            }
            "set_header" => {
                self.doc.header = Some(arg.unwrap_or_default().to_string());
                Ok(())
            }
            "set_footer" => {
                self.doc.footer = Some(arg.unwrap_or_default().to_string());
                Ok(())
            }
            "set_header_text" => {
                self.doc.header = Some(self.tree.widget(src).value.clone());
                Ok(())
            }
            "set_watermark" => {
                self.doc.watermark = Some(arg.unwrap_or_default().to_string());
                Ok(())
            }
            "set_watermark_text" => {
                self.doc.watermark = Some(self.tree.widget(src).value.clone());
                Ok(())
            }
            "clear_formatting" => {
                self.doc.format_selection(|f| *f = Default::default());
                Ok(())
            }
            // Benign no-ops (inserts tracked loosely; state not needed by
            // the benchmark verifiers).
            "save" | "save_as" | "undo" | "redo" | "print" | "cut" | "copy" | "paste"
            | "format_painter" | "new_from_template" | "open_recent" | "insert_cover"
            | "insert_blank_page" | "insert_page_break" | "insert_table" | "insert_shape"
            | "insert_chart" | "insert_textbox" | "insert_wordart" | "insert_equation"
            | "insert_symbol" | "insert_toc" | "insert_footnote" | "insert_endnote"
            | "spellcheck" | "set_view" | "set_bullets" | "set_numbering" | "set_multilevel"
            | "set_borders" | "apply_theme" | "apply_color_scheme" | "apply_font_scheme"
            | "set_page_border" | "set_page_size" | "set_columns" | "change_case"
            | "select_objects" | "set_picture_name" | "insert_picture" | "insert_icon"
            | "insert_3d_model" | "insert_stock_image" | "insert_quick_part"
            | "insert_page_number" | "apply_style_set" => Ok(()),
            other => {
                Err(AppError::Command { command: other.into(), reason: "unknown command".into() })
            }
        }
    }

    fn reset(&mut self) {
        let pristine = Arc::clone(&self.pristine);
        self.tree.clone_from(pristine.tree());
        let state = pristine.doc();
        self.doc.clone_from(&state.doc);
        self.color_target.clone_from(&state.color_target);
        self.find_text.clone_from(&state.find_text);
        self.replace_text.clone_from(&state.replace_text);
        self.find_subscript = state.find_subscript;
    }

    fn fork(&self) -> Option<Box<dyn GuiApp>> {
        // A launch-state twin off the shared pristine image: no
        // `build_ui` re-run; widget handles are stable arena indices.
        let pristine = Arc::clone(&self.pristine);
        let state = pristine.doc().clone();
        Some(Box::new(WordApp {
            tree: pristine.tree().clone(),
            doc: state.doc,
            color_target: state.color_target,
            find_text: state.find_text,
            replace_text: state.replace_text,
            find_subscript: state.find_subscript,
            chrome: self.chrome,
            doc_surface: self.doc_surface,
            find_next_button: self.find_next_button,
            pristine,
        }))
    }

    fn pristine_token(&self) -> Option<u64> {
        // `reset` restores exactly this image, so its address identifies
        // the post-restart state for the lifetime of the app (and of all
        // of its forks, which share the `Arc`).
        Some(Arc::as_ptr(&self.pristine) as u64)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmi_gui::Session;

    fn session() -> Session {
        Session::new(Box::new(WordApp::with_config(WordConfig {
            paragraphs: 10,
            viewport_rows: 4,
        })))
    }

    fn word(s: &Session) -> &WordApp {
        s.app().as_any().downcast_ref::<WordApp>().unwrap()
    }

    fn click_by_name(s: &mut Session, name: &str) {
        // Prefer visible widgets with a real behavior (ribbon groups share
        // names with dialog launchers; dialogs share button names).
        let tree = s.app().tree();
        let id = tree
            .iter()
            .filter(|(i, w)| {
                w.name == name && tree.is_shown(*i) && w.on_click != dmi_gui::Behavior::None
            })
            .map(|(i, _)| i)
            .next()
            .unwrap_or_else(|| panic!("no visible actionable '{name}'"));
        s.click(id).unwrap();
    }

    #[test]
    fn tree_is_large_and_deep() {
        let app = WordApp::new();
        assert!(app.tree.len() > 2400, "Word tree has {} widgets", app.tree.len());
    }

    #[test]
    fn bold_applies_to_selection() {
        let mut s = session();
        let surf = word(&s).doc_surface();
        s.select_lines(surf, 2, 4).unwrap();
        click_by_name(&mut s, "Bold");
        let d = &word(&s).doc;
        assert!(d.paragraphs[2].format.bold && d.paragraphs[4].format.bold);
        assert!(!d.paragraphs[1].format.bold);
    }

    #[test]
    fn font_color_via_menu() {
        let mut s = session();
        let surf = word(&s).doc_surface();
        s.select_lines(surf, 0, 0).unwrap();
        click_by_name(&mut s, "Font Color");
        // The first "Blue" cell under the open menu.
        let snap = s.snapshot();
        let blue = snap
            .find_all(|n| n.props.name == "Blue" && !n.props.offscreen)
            .into_iter()
            .next()
            .expect("a Blue cell is visible");
        let wid = s.widget_of(snap.node(blue).runtime_id);
        s.click(wid).unwrap();
        assert_eq!(word(&s).doc.paragraphs[0].format.color, "Blue");
    }

    #[test]
    fn more_colors_is_path_dependent() {
        let mut s = session();
        let surf = word(&s).doc_surface();
        s.select_lines(surf, 0, 1).unwrap();
        // Open via Page Color -> More Colors: should change the page.
        click_by_name(&mut s, "Design");
        click_by_name(&mut s, "Page Color");
        // Two "More Colors..." entries exist in the arena; pick the shown one.
        let shown: Vec<_> = s
            .app()
            .tree()
            .iter()
            .filter(|(i, w)| w.name == "More Colors..." && s.app().tree().is_shown(*i))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(shown.len(), 1);
        s.click(shown[0]).unwrap();
        click_by_name(&mut s, "Custom 3");
        let d = &word(&s).doc;
        assert_eq!(d.page.background.as_deref(), Some("Custom 3"));
        assert_eq!(d.paragraphs[0].format.color, "Black", "font untouched");
    }

    #[test]
    fn replace_all_via_dialog() {
        let mut s = session();
        click_by_name(&mut s, "Replace");
        click_by_name(&mut s, "Find what");
        s.type_text("fox").unwrap();
        s.press("Enter").unwrap();
        click_by_name(&mut s, "Replace with");
        s.type_text("cat").unwrap();
        s.press("Enter").unwrap();
        click_by_name(&mut s, "Replace All");
        assert_eq!(word(&s).doc.last_replace_count, 10);
    }

    #[test]
    fn special_find_text_renames_next_button() {
        let mut s = session();
        click_by_name(&mut s, "Replace");
        click_by_name(&mut s, "Find what");
        s.type_text("+1").unwrap();
        s.press("Enter").unwrap();
        assert!(s.app().tree().find_by_name("Go To").is_some());
        assert!(s.app().tree().find_by_name("Next").is_none());
    }

    #[test]
    fn find_subscript_does_not_touch_document() {
        let mut s = session();
        let surf = word(&s).doc_surface();
        s.select_lines(surf, 0, 0).unwrap();
        click_by_name(&mut s, "Replace");
        click_by_name(&mut s, "Format");
        // The Find & Replace "Subscript" checkbox (inside the Format menu).
        let tree = s.app().tree();
        let dlg_root = tree.top_window().root;
        let shown: Vec<_> = tree
            .iter()
            .filter(|(i, w)| {
                w.name == "Subscript"
                    && tree.is_shown(*i)
                    && tree.window_root_of(*i) == Some(dlg_root)
            })
            .map(|(i, _)| i)
            .collect();
        assert_eq!(shown.len(), 1, "exactly one subscript inside the dialog");
        s.click(shown[0]).unwrap();
        assert!(word(&s).find_subscript);
        assert!(!word(&s).doc.paragraphs[0].format.subscript, "pitfall: doc unchanged");
    }

    #[test]
    fn margins_presets_and_custom() {
        let mut s = session();
        click_by_name(&mut s, "Layout");
        click_by_name(&mut s, "Margins");
        click_by_name(&mut s, "Narrow");
        assert_eq!(word(&s).doc.page.margins, (0.5, 0.5, 0.5, 0.5));
        click_by_name(&mut s, "Page Setup");
        click_by_name(&mut s, "Top");
        s.type_text("2.5").unwrap();
        s.press("Enter").unwrap();
        assert_eq!(word(&s).doc.page.margins.0, 2.5);
    }

    #[test]
    fn paste_is_disabled_with_structured_reason() {
        let mut s = session();
        let paste = s.app().tree().find_by_name("Paste").unwrap();
        let e = s.click(paste).unwrap_err();
        assert!(e.to_string().contains("disabled"));
    }

    #[test]
    fn reset_restores_document_and_ui() {
        let mut s = session();
        let surf = word(&s).doc_surface();
        s.select_lines(surf, 0, 9).unwrap();
        click_by_name(&mut s, "Bold");
        s.restart();
        assert!(!word(&s).doc.paragraphs[0].format.bold);
        assert!(s.app().tree().find_by_name("Bold").is_some());
    }

    #[test]
    fn viewport_selection_respects_scroll() {
        let mut s = session();
        let surf = word(&s).doc_surface();
        s.scroll_to(surf, 100.0).unwrap();
        // Viewport rows 0..1 now map to paragraphs 6..7 (10 - 4 = 6 start).
        let snap = s.snapshot();
        let doc_idx = snap.find_by_name("Document").unwrap();
        let r = snap.node(doc_idx).props.rect;
        s.drag((r.x + 5, r.y + 2), (r.x + 5, r.y + 2 + dmi_gui::layout::ROW_H)).unwrap();
        let sel = word(&s).doc.selection.unwrap();
        assert_eq!((sel.start, sel.end), (6, 7));
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;
    use dmi_gui::Session;

    fn session() -> Session {
        Session::new(Box::new(WordApp::with_config(WordConfig { paragraphs: 8, viewport_rows: 4 })))
    }

    fn word(s: &Session) -> &WordApp {
        s.app().as_any().downcast_ref::<WordApp>().unwrap()
    }

    fn click_visible(s: &mut Session, name: &str) {
        let tree = s.app().tree();
        let id = tree
            .iter()
            .filter(|(i, w)| {
                w.name == name && tree.is_shown(*i) && w.on_click != dmi_gui::Behavior::None
            })
            .map(|(i, _)| i)
            .next()
            .unwrap_or_else(|| panic!("no visible actionable '{name}'"));
        s.click(id).unwrap();
    }

    #[test]
    fn alignment_buttons_apply_to_selection() {
        let mut s = session();
        let surf = word(&s).doc_surface();
        s.select_lines(surf, 1, 2).unwrap();
        click_visible(&mut s, "Center");
        let d = &word(&s).doc;
        assert_eq!(d.paragraphs[1].format.alignment, crate::model::word_doc::Alignment::Center);
        assert_eq!(d.paragraphs[0].format.alignment, crate::model::word_doc::Alignment::Left);
    }

    #[test]
    fn line_spacing_menu_applies() {
        let mut s = session();
        let surf = word(&s).doc_surface();
        s.select_lines(surf, 0, 7).unwrap();
        click_visible(&mut s, "Line and Paragraph Spacing");
        click_visible(&mut s, "1.5");
        assert!((word(&s).doc.paragraphs[3].format.line_spacing - 1.5).abs() < 1e-9);
    }

    #[test]
    fn style_gallery_applies_heading() {
        let mut s = session();
        let surf = word(&s).doc_surface();
        s.select_lines(surf, 0, 0).unwrap();
        click_visible(&mut s, "Styles");
        click_visible(&mut s, "Heading 1");
        assert_eq!(word(&s).doc.paragraphs[0].format.style, "Heading 1");
    }

    #[test]
    fn font_size_gallery_applies() {
        let mut s = session();
        let surf = word(&s).doc_surface();
        s.select_lines(surf, 0, 1).unwrap();
        click_visible(&mut s, "Font Size");
        click_visible(&mut s, "24");
        assert!((word(&s).doc.paragraphs[0].format.size - 24.0).abs() < 1e-9);
    }

    #[test]
    fn highlight_gallery_applies() {
        let mut s = session();
        let surf = word(&s).doc_surface();
        s.select_lines(surf, 2, 2).unwrap();
        click_visible(&mut s, "Text Highlight Color");
        click_visible(&mut s, "Yellow");
        assert_eq!(word(&s).doc.paragraphs[2].format.highlight.as_deref(), Some("Yellow"));
    }

    #[test]
    fn orientation_menu_sets_landscape() {
        let mut s = session();
        click_visible(&mut s, "Layout");
        click_visible(&mut s, "Orientation");
        click_visible(&mut s, "Landscape");
        assert!(word(&s).doc.page.orientation_landscape);
    }

    #[test]
    fn custom_watermark_text_via_dialog() {
        let mut s = session();
        click_visible(&mut s, "Design");
        click_visible(&mut s, "Custom Watermark");
        click_visible(&mut s, "Watermark text");
        s.type_text("INTERNAL USE").unwrap();
        s.press("Enter").unwrap();
        assert_eq!(word(&s).doc.watermark.as_deref(), Some("INTERNAL USE"));
    }

    #[test]
    fn select_all_then_clear_formatting() {
        let mut s = session();
        let surf = word(&s).doc_surface();
        s.select_lines(surf, 0, 7).unwrap();
        click_visible(&mut s, "Bold");
        assert!(word(&s).doc.paragraphs[5].format.bold);
        click_visible(&mut s, "Clear All Formatting");
        assert!(!word(&s).doc.paragraphs[5].format.bold);
    }
}
