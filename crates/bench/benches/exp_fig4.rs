//! Figure 4: navigation topology — graph vs tree vs forest.
//!
//! Two parts: (a) the real ripped applications (node counts after full
//! cloning vs cost-bounded externalization), and (b) a synthetic
//! diamond-chain showing the exponential blow-up that motivates the
//! cost-based algorithm, swept over externalization thresholds.

use dmi_bench::{models, report};
use dmi_core::graph::{ung_from_parts, Ung};
use dmi_core::topology::{build_forest, decycle, ForestConfig};
use dmi_uia::ControlType as CT;

fn diamond_chain(k: usize) -> Ung {
    let mut names: Vec<(String, CT)> = vec![("S".into(), CT::Button)];
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut prev = 0usize;
    for i in 0..k {
        let b = names.len();
        names.push((format!("L{i}"), CT::Button));
        names.push((format!("R{i}"), CT::Button));
        names.push((format!("J{i}"), CT::Button));
        edges.push((prev, b));
        edges.push((prev, b + 1));
        edges.push((b, b + 2));
        edges.push((b + 1, b + 2));
        prev = b + 2;
    }
    let named: Vec<(&str, CT)> = names.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    let mut g = ung_from_parts(&named, &edges);
    decycle(&mut g);
    g
}

fn main() {
    println!("{}", report::banner("Figure 4 (real apps): graph -> tree -> forest"));
    let mut rows = Vec::new();
    for (name, m) in models() {
        let tree_cfg = ForestConfig { externalize_threshold: usize::MAX };
        let forest_cfg = ForestConfig::default();
        // Rebuild from stats already captured plus a fresh clone pass.
        let dag_nodes = m.stats.forest.dag_nodes;
        let (_, tstats) = {
            // Re-derive the DAG through a fresh rip-free path: the stored
            // forest cannot be un-built, so re-rip smallly is avoided by
            // using recorded stats; clone blow-up measured on the DAG is
            // approximated through the synthetic sweep below for scale.
            (0, m.stats.forest)
        };
        let _ = (tree_cfg, forest_cfg, tstats);
        rows.push(vec![
            name.to_string(),
            dag_nodes.to_string(),
            m.stats.forest.merge_nodes.to_string(),
            m.stats.forest.externalized.to_string(),
            m.stats.forest.cloned.to_string(),
            m.stats.forest.forest_nodes.to_string(),
            format!("{:.2}x", m.stats.forest.forest_nodes as f64 / dag_nodes as f64),
        ]);
    }
    println!(
        "{}",
        report::table(
            &[
                "App",
                "DAG nodes",
                "Merge nodes",
                "Externalized",
                "Cloned",
                "Forest nodes",
                "Growth"
            ],
            &rows,
        )
    );

    println!("{}", report::banner("Figure 4 (synthetic): cloning blow-up vs forest"));
    let mut rows = Vec::new();
    for k in [4usize, 6, 8, 10, 12] {
        let g = diamond_chain(k);
        let (_, clone) = build_forest(&g, &ForestConfig { externalize_threshold: usize::MAX });
        let (_, forest) = build_forest(&g, &ForestConfig { externalize_threshold: 4 });
        rows.push(vec![
            k.to_string(),
            clone.dag_nodes.to_string(),
            clone.forest_nodes.to_string(),
            forest.forest_nodes.to_string(),
        ]);
    }
    println!(
        "{}",
        report::table(
            &["Diamond chain k", "DAG nodes", "Full-clone tree nodes", "Forest nodes"],
            &rows,
        )
    );

    println!("{}", report::banner("Threshold sweep on the k=10 chain"));
    let g = diamond_chain(10);
    let mut rows = Vec::new();
    for t in [0usize, 2, 4, 8, 16, 64, 1024, usize::MAX] {
        let (_, s) = build_forest(&g, &ForestConfig { externalize_threshold: t });
        let label = if t == usize::MAX { "inf".to_string() } else { t.to_string() };
        rows.push(vec![
            label,
            s.externalized.to_string(),
            s.cloned.to_string(),
            s.forest_nodes.to_string(),
        ]);
    }
    println!("{}", report::table(&["Threshold", "Externalized", "Cloned", "Total nodes"], &rows));
}
