//! Figure 5b: normalized core steps on the intersection of tasks solved
//! by all methods (GUI-only, ablation, GUI+DMI), per model profile.

use dmi_agent::normalized_core_steps;
use dmi_bench::{models, report, run_cell, EvalConfig};
use dmi_llm::{CapabilityProfile, InterfaceMode};
use std::collections::BTreeMap;

fn main() {
    let models = models();
    let cfg = EvalConfig::default();
    println!("{}", report::banner("Figure 5b: normalized core steps (intersection)"));
    let paper: BTreeMap<&str, (f64, f64, f64)> = BTreeMap::from([
        ("GPT-5 (Medium)", (4.94, 5.58, 1.60)),
        ("GPT-5 (Minimal)", (7.10, f64::NAN, 3.42)),
        ("GPT-5-mini (Medium)", (4.02, 3.26, 1.52)),
    ]);
    let mut rows = Vec::new();
    for profile in CapabilityProfile::evaluation_set() {
        let mut by_mode = BTreeMap::new();
        for mode in
            [InterfaceMode::GuiOnly, InterfaceMode::GuiPlusForest, InterfaceMode::GuiPlusDmi]
        {
            by_mode.insert(mode, run_cell(&profile, mode, models, &cfg));
        }
        let norm = normalized_core_steps(&by_mode);
        let label = profile.label();
        let p = paper.get(label.as_str()).copied().unwrap_or((f64::NAN, f64::NAN, f64::NAN));
        rows.push(vec![
            label,
            format!("{:.2} (paper {:.2})", norm[&InterfaceMode::GuiOnly], p.0),
            format!("{:.2} (paper {:.2})", norm[&InterfaceMode::GuiPlusForest], p.1),
            format!("{:.2} (paper {:.2})", norm[&InterfaceMode::GuiPlusDmi], p.2),
        ]);
    }
    println!("{}", report::table(&["Model", "GUI-only", "GUI+Nav.forest", "GUI+DMI"], &rows));
    println!("(Normalization: intersection of (task, seed) runs all three methods solved.)");
}
