//! Figure 6: failure-cause distribution (policy vs mechanism) for the
//! GUI+DMI condition and the GUI-only baseline in the core setting.

use dmi_agent::aggregate;
use dmi_bench::{models, report, run_cell, EvalConfig};
use dmi_llm::{CapabilityProfile, FailureLevel, InterfaceMode};

fn main() {
    let models = models();
    let cfg = EvalConfig::default();
    let med = CapabilityProfile::gpt5_medium();

    for (mode, paper_policy, paper_mech) in
        [(InterfaceMode::GuiPlusDmi, 81.0, 19.0), (InterfaceMode::GuiOnly, 46.7, 53.3)]
    {
        let agg = aggregate(&run_cell(&med, mode, models, &cfg));
        println!("{}", report::banner(&format!("Figure 6: {} failures", mode.label())));
        let total = agg.failure_count().max(1);
        let mut rows: Vec<Vec<String>> = agg
            .failures
            .iter()
            .map(|(cause, n)| {
                vec![
                    cause.to_string(),
                    format!("{:?}", cause.level()),
                    n.to_string(),
                    report::pct(*n as f64 / total as f64),
                ]
            })
            .collect();
        rows.sort_by(|a, b| b[2].parse::<usize>().unwrap().cmp(&a[2].parse::<usize>().unwrap()));
        println!("{}", report::table(&["Cause", "Level", "Count", "Share"], &rows));
        let policy = agg.policy_failure_frac();
        let mech: f64 = 1.0 - policy;
        println!(
            "Policy-level: {} (paper {paper_policy:.1}%)   Mechanism-level: {} (paper {paper_mech:.1}%)",
            report::pct(policy),
            report::pct(mech),
        );
        let _ = FailureLevel::Policy;
    }
}
