//! §5.2 offline phase: UI navigation modeling cost and model sizes.
//!
//! Paper reference: raw modeled graphs exceed 4K controls per app; core
//! topologies are Excel ~2K, Word ~1K, PowerPoint ~1K controls; automated
//! modeling takes < 3 hours per app on real Office (ours is simulated and
//! far faster — the shape to check is relative sizes).

use dmi_bench::{models, report};

fn main() {
    println!("{}", report::banner("§5.2: offline modeling cost and sizes"));
    let mut rows = Vec::new();
    for (name, m) in models() {
        rows.push(vec![
            name.to_string(),
            m.stats.rip_nodes.to_string(),
            m.stats.rip_edges.to_string(),
            m.stats.decycle.back_edges_removed.to_string(),
            m.stats.forest.forest_nodes.to_string(),
            m.stats.forest.externalized.to_string(),
            m.stats.core_controls.to_string(),
            m.stats.core_tokens.to_string(),
            format!("{:.1}", m.build_secs),
        ]);
    }
    println!(
        "{}",
        report::table(
            &[
                "App",
                "UNG nodes",
                "UNG edges",
                "Back edges",
                "Forest nodes",
                "Shared subtrees",
                "Core controls",
                "Core tokens",
                "Model time (s)"
            ],
            &rows,
        )
    );
    println!("Paper: raw graphs > 4K controls; core: Excel ~2K, Word ~1K, PPT ~1K controls.");

    println!("{}", report::banner("Ripper effort"));
    let mut rows = Vec::new();
    for (name, m) in models() {
        rows.push(vec![
            name.to_string(),
            m.stats.rip.clicks.to_string(),
            m.stats.rip.snapshots.to_string(),
            m.stats.rip.restarts.to_string(),
            m.stats.rip.blocklisted.to_string(),
            m.stats.rip.replay_failures.to_string(),
            m.stats.rip.windows_seen.to_string(),
        ]);
    }
    println!(
        "{}",
        report::table(
            &["App", "Clicks", "Snapshots", "Restarts", "Blocklisted", "Replay fails", "Windows"],
            &rows,
        )
    );
}
