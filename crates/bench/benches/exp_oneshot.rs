//! §5.3 one-shot task completion: with DMI, over 61% of successful trials
//! complete in 4 steps (1 core LLM call after the fixed 3-call framework
//! overhead).

use dmi_bench::{models, report, run_cell, EvalConfig};
use dmi_llm::{CapabilityProfile, InterfaceMode};
use std::collections::BTreeMap;

fn main() {
    let models = models();
    let cfg = EvalConfig::default();
    let med = CapabilityProfile::gpt5_medium();
    let traces = run_cell(&med, InterfaceMode::GuiPlusDmi, models, &cfg);
    let successes: Vec<_> = traces.iter().filter(|t| t.success).collect();

    println!("{}", report::banner("§5.3: one-shot completion (GUI+DMI, GPT-5 Medium)"));
    let mut hist: BTreeMap<usize, usize> = BTreeMap::new();
    for t in &successes {
        *hist.entry(t.llm_calls).or_insert(0) += 1;
    }
    let rows: Vec<Vec<String>> = hist
        .iter()
        .map(|(calls, n)| {
            vec![calls.to_string(), n.to_string(), report::pct(*n as f64 / successes.len() as f64)]
        })
        .collect();
    println!("{}", report::table(&["LLM calls", "Successful runs", "Share"], &rows));
    let one_shot = successes.iter().filter(|t| t.llm_calls <= 4).count();
    println!(
        "One-shot (<= 4 calls): {} / {} = {} (paper: > 61%)",
        one_shot,
        successes.len(),
        report::pct(one_shot as f64 / successes.len().max(1) as f64)
    );
    let fallback = traces.iter().filter(|t| t.fallback_used).count();
    println!("GUI fallback used in {fallback} / {} runs", traces.len());
}
