//! Robustness ablation (DESIGN.md design-choice ablations; §3.4).
//!
//! DMI ships three robustness mechanisms: fuzzy control matching, failure
//! retries for late-loading UIs, and structured error feedback. This
//! harness disables the first two and measures GUI+DMI success under
//! increasing UI instability, isolating each mechanism's contribution.

use dmi_agent::{aggregate, run_task, InterfaceMode, RunConfig};
use dmi_bench::{models, report, AppModel, EvalConfig};
use dmi_core::{Dmi, ExecutorConfig};
use dmi_llm::CapabilityProfile;
use dmi_uia::FuzzyMatcher;
use std::collections::BTreeMap;
use std::sync::Arc;

fn with_executor(dmi: &Dmi, exec: ExecutorConfig) -> Dmi {
    let mut d = dmi.clone();
    d.executor = exec;
    d
}

fn run_suite(
    models: &BTreeMap<&'static str, AppModel>,
    execs: &BTreeMap<&'static str, Arc<Dmi>>,
    instability: (f64, f64),
) -> f64 {
    let profile = CapabilityProfile::gpt5_medium();
    let cfg = EvalConfig::default();
    let mut traces = Vec::new();
    for task in &dmi_tasks::all_tasks() {
        for &seed in &cfg.seeds {
            let run_cfg = RunConfig {
                profile: profile.clone(),
                mode: InterfaceMode::GuiPlusDmi,
                seed,
                step_cap: 30,
                small_apps: false,
                instability,
            };
            traces.push(run_task(task, execs.get(task.app.name()), &run_cfg));
        }
    }
    let _ = models;
    aggregate(&traces).sr
}

fn main() {
    let models = models();
    println!("{}", report::banner("Robustness ablation: GUI+DMI SR under UI instability"));

    let full = ExecutorConfig::default();
    let no_retry = ExecutorConfig { retries: 0, ..ExecutorConfig::default() };
    let exact_only = ExecutorConfig {
        // A threshold above 1.0 disables fuzzy acceptance; exact matches
        // still resolve.
        matcher: FuzzyMatcher { threshold: 1.01, name_weight: 0.5 },
        ..ExecutorConfig::default()
    };
    let naive = ExecutorConfig {
        retries: 0,
        matcher: FuzzyMatcher { threshold: 1.01, name_weight: 0.5 },
        ..ExecutorConfig::default()
    };

    let configs: Vec<(&str, &ExecutorConfig)> = vec![
        ("full robustness", &full),
        ("no retries", &no_retry),
        ("exact match only", &exact_only),
        ("naive (neither)", &naive),
    ];
    let levels: Vec<(&str, (f64, f64))> = vec![
        ("stable UI", (0.0, 0.0)),
        ("mild (6% late, 2% rename)", (0.06, 0.02)),
        ("harsh (25% late, 10% rename)", (0.25, 0.10)),
    ];

    let mut rows = Vec::new();
    for (cname, exec) in &configs {
        let execs: BTreeMap<&'static str, Arc<Dmi>> = models
            .iter()
            .map(|(&k, m)| (k, Arc::new(with_executor(&m.dmi, (*exec).clone()))))
            .collect();
        let mut row = vec![cname.to_string()];
        for (_, inst) in &levels {
            row.push(report::pct(run_suite(models, &execs, *inst)));
        }
        rows.push(row);
    }
    let headers: Vec<&str> =
        std::iter::once("Executor").chain(levels.iter().map(|(l, _)| *l)).collect();
    println!("{}", report::table(&headers, &rows));
    println!("Expectation: retries absorb late loading; fuzzy matching absorbs renames;");
    println!("the naive executor degrades fastest as instability grows (§3.4).");
}
