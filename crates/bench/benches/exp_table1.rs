//! Table 1 / Figure 2: imperative GUI vs declarative DMI on the two
//! running examples — slide background (navigation chain vs `visit`) and
//! scroll-to-position (drag loop vs `set_scrollbar_pos`).

use dmi_agent::{run_task, InterfaceMode, RunConfig};
use dmi_bench::{models, report};
use dmi_llm::CapabilityProfile;

fn perfect() -> CapabilityProfile {
    let mut p = CapabilityProfile::gpt5_medium();
    p.policy_err = 0.0;
    p.dmi_mech_err = 0.0;
    p.grounding_err = 0.0;
    p.composite_err = 0.0;
    p.instruction_noise = 0.0;
    p
}

fn main() {
    let models = models();
    println!("{}", report::banner("Table 1: imperative GUI vs declarative DMI"));
    let mut rows = Vec::new();
    for (label, id, paper_gui, paper_dmi) in [
        (
            "Task 1: blue background on all slides",
            "ppt-background-all",
            "click(Design)->click(Format Background)->click(Solid fill)->click(Fill Color)->click(Blue)->click(Apply to All)",
            "visit([\"Blue\", \"Apply to All\"])",
        ),
        (
            "Task 2: show the area close to the end",
            "word-scroll-end",
            "iterative drag-and-drop",
            "set_scrollbar_pos(90%)",
        ),
    ] {
        let task = dmi_tasks::task_by_id(id).expect("task exists");
        let gui_actions = task.plan.gui.len();
        let dmi_turns = task.plan.dmi.len();
        let mut cfg = RunConfig::evaluation(perfect(), InterfaceMode::GuiOnly, 1);
        cfg.instability = (0.0, 0.0);
        let gui_trace = run_task(&task, models.get(task.app.name()).map(|m| &m.dmi), &cfg);
        let mut cfg = RunConfig::evaluation(perfect(), InterfaceMode::GuiPlusDmi, 1);
        cfg.instability = (0.0, 0.0);
        let dmi_trace = run_task(&task, models.get(task.app.name()).map(|m| &m.dmi), &cfg);
        assert!(gui_trace.success && dmi_trace.success, "oracle runs must succeed");
        rows.push(vec![
            label.to_string(),
            format!("{gui_actions} imperative actions / {} LLM calls", gui_trace.llm_calls),
            format!("{dmi_turns} declarative turn(s) / {} LLM calls", dmi_trace.llm_calls),
        ]);
        println!("paper GUI: {paper_gui}");
        println!("paper DMI: {paper_dmi}\n");
    }
    println!("{}", report::table(&["Task", "GUI (measured)", "DMI (measured)"], &rows));
}
