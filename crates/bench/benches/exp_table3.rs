//! Table 3 / Figure 5a: SR, Steps, and Time across interfaces and models.
//!
//! Prints the same rows the paper reports, side by side with the paper's
//! values. Absolute numbers come from the simulated substrate; the
//! reproduction target is the *shape* (ordering, ratios, crossovers).

use dmi_agent::aggregate;
use dmi_bench::{models, paper_table3, report, run_cell, table3_rows, EvalConfig};

fn main() {
    let models = models();
    let cfg = EvalConfig::default();
    let paper = paper_table3();

    println!("{}", report::banner("Table 3: results across interfaces and models"));
    let mut rows = Vec::new();
    for (profile, mode) in table3_rows() {
        let traces = run_cell(&profile, mode, models, &cfg);
        let agg = aggregate(&traces);
        let key = (profile.label(), mode.label().to_string());
        let paper_vals = paper
            .iter()
            .find(|((p, m), _)| *p == key.0 && *m == key.1)
            .map(|(_, v)| *v)
            .unwrap_or((0.0, 0.0, 0.0));
        rows.push(vec![
            mode.label().to_string(),
            profile.label(),
            report::pct(agg.sr),
            format!("{:.1}%", paper_vals.0),
            report::f2(agg.avg_steps),
            report::f2(paper_vals.1),
            format!("{:.0}", agg.avg_secs),
            format!("{:.0}", paper_vals.2),
        ]);
    }
    println!(
        "{}",
        report::table(
            &[
                "Interface",
                "Model",
                "SR",
                "SR(paper)",
                "Steps",
                "Steps(paper)",
                "Time(s)",
                "Time(paper)"
            ],
            &rows,
        )
    );

    // Figure 5a headline ratios.
    println!("{}", report::banner("Figure 5a: headline comparisons (GPT-5 Medium)"));
    let med = dmi_llm::CapabilityProfile::gpt5_medium();
    let gui = aggregate(&run_cell(&med, dmi_llm::InterfaceMode::GuiOnly, models, &cfg));
    let dmi = aggregate(&run_cell(&med, dmi_llm::InterfaceMode::GuiPlusDmi, models, &cfg));
    println!("SR improvement     : {:.2}x (paper: 1.67x)", dmi.sr / gui.sr.max(1e-9));
    println!(
        "Step reduction     : {:.1}% (paper: 43.5%)",
        (1.0 - dmi.avg_steps / gui.avg_steps.max(1e-9)) * 100.0
    );
    println!(
        "Time reduction     : {:.1}% (paper: 39%)",
        (1.0 - dmi.avg_secs / gui.avg_secs.max(1e-9)) * 100.0
    );
    println!(
        "Total tokens/task  : GUI {:.0} vs DMI {:.0} (paper: DMI lower in core scenario)",
        gui.avg_tokens, dmi.avg_tokens
    );
}
