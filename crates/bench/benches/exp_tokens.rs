//! §5.4 token cost: per-control description cost, core topology sizes,
//! and total tokens per task under each interface.

use dmi_agent::aggregate;
use dmi_bench::{models, report, run_cell, EvalConfig};
use dmi_core::describe;
use dmi_llm::{CapabilityProfile, InterfaceMode};

fn main() {
    let models = models();
    println!("{}", report::banner("§5.4: context token overhead"));
    let mut rows = Vec::new();
    for (name, m) in models {
        let full = describe::full_description(&m.dmi.forest, &m.dmi.describe);
        let per_control = full.tokens() as f64 / m.dmi.forest.len() as f64;
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", per_control),
            m.stats.core_tokens.to_string(),
            m.stats.core_controls.to_string(),
            full.tokens().to_string(),
        ]);
    }
    println!(
        "{}",
        report::table(
            &["App", "Tokens/control", "Core tokens", "Core controls", "Full tokens"],
            &rows,
        )
    );
    println!("Paper: ~15 tokens/control; core topologies ~30K (Excel), ~15K (Word), ~15K (PPT).");

    println!("{}", report::banner("Total token usage per task (GPT-5 Medium)"));
    let cfg = EvalConfig::default();
    let med = CapabilityProfile::gpt5_medium();
    let mut rows = Vec::new();
    for mode in [InterfaceMode::GuiOnly, InterfaceMode::GuiPlusForest, InterfaceMode::GuiPlusDmi] {
        let agg = aggregate(&run_cell(&med, mode, models, &cfg));
        rows.push(vec![
            mode.label().to_string(),
            format!("{:.0}", agg.avg_tokens),
            report::f2(agg.avg_steps),
        ]);
    }
    println!("{}", report::table(&["Interface", "Avg tokens/task", "Avg steps"], &rows));
    println!(
        "(Paper: DMI's fewer rounds keep total tokens below the baseline in the core scenario.)"
    );
}
