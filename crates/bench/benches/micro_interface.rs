//! Criterion micro-benchmarks for the online interfaces: command parsing,
//! path resolution, fuzzy matching, screen labeling, and visit execution.

use criterion::{criterion_group, criterion_main, Criterion};
use dmi_core::interface::{control_path, parse_commands};
use dmi_core::ripper::{rip, RipConfig};
use dmi_core::topology::{build_forest, decycle, Forest, ForestConfig};
use dmi_core::{label_screen, DescribeConfig, Dmi};
use dmi_gui::Session;
use dmi_uia::FuzzyMatcher;
use std::sync::OnceLock;

fn word_forest() -> &'static Forest {
    static F: OnceLock<Forest> = OnceLock::new();
    F.get_or_init(|| {
        let mut s = Session::new(dmi_apps::AppKind::Word.launch_small());
        let (mut g, _) = rip(&mut s, &RipConfig::office("Word"));
        decycle(&mut g);
        build_forest(&g, &ForestConfig::default()).0
    })
}

fn bench_parse(c: &mut Criterion) {
    let json = r#"[{"id": 7}, {"id": 12, "entry_ref_id": [3]}, {"id": 9, "text": "hello"}, {"shortcut_key": "Enter"}]"#;
    c.bench_function("parse_visit_commands", |b| {
        b.iter(|| std::hint::black_box(parse_commands(json).unwrap().len()))
    });
}

fn bench_control_path(c: &mut Criterion) {
    let f = word_forest();
    let target =
        f.nodes.iter().find(|n| n.name == "Narrow" && f.is_functional_leaf(n.id)).unwrap().id
            as u64;
    c.bench_function("control_path_resolution", |b| {
        b.iter(|| std::hint::black_box(control_path(f, target, &[]).unwrap().len()))
    });
}

fn bench_fuzzy(c: &mut Criterion) {
    let mut s = Session::new(dmi_apps::AppKind::Word.launch_small());
    let snap = s.snapshot();
    let f = word_forest();
    let bold = &f.nodes.iter().find(|n| n.name == "Bold").unwrap().control;
    let m = FuzzyMatcher::default();
    c.bench_function("fuzzy_best_match", |b| {
        b.iter(|| std::hint::black_box(m.best_match(&snap, bold).map(|r| r.index)))
    });
}

fn bench_label_screen(c: &mut Criterion) {
    let mut s = Session::new(dmi_apps::AppKind::Excel.launch_small());
    let snap = s.snapshot();
    c.bench_function("label_screen_excel", |b| {
        b.iter(|| std::hint::black_box(label_screen(&snap).len()))
    });
}

fn bench_visit(c: &mut Criterion) {
    let dmi = Dmi::from_forest(word_forest().clone(), DescribeConfig::default());
    let narrow = dmi
        .forest
        .nodes
        .iter()
        .find(|n| n.name == "Narrow" && dmi.forest.is_functional_leaf(n.id))
        .unwrap()
        .id;
    let json = format!(r#"[{{"id": {narrow}}}]"#);
    let mut group = c.benchmark_group("online");
    group.sample_size(20);
    group.bench_function("visit_margins_narrow", |b| {
        b.iter(|| {
            let mut s = Session::new(dmi_apps::AppKind::Word.launch_small());
            let out = dmi.visit_json(&mut s, &json);
            std::hint::black_box(out.ok())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_parse,
    bench_control_path,
    bench_fuzzy,
    bench_label_screen,
    bench_visit
);
criterion_main!(benches);
