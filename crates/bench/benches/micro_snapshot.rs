//! Criterion micro-benchmarks for the snapshot identity index: control
//! resolution latency, identity-index build cost, differential-capture
//! (record_diff-style) containment checks, and end-to-end rip throughput.
//!
//! The `*/string_*` benchmarks preserve the pre-index implementations
//! (linear scan with per-candidate path recomputation; encoded-string
//! sets) so the speedup is measured inside one binary.

use criterion::{criterion_group, criterion_main, Criterion};
use dmi_apps::AppKind;
use dmi_bench::report;
use dmi_core::parallel::{rip_fleet, rip_parallel, FleetEntry, ParRipConfig, RipStatus};
use dmi_core::ripper::{rip, RipConfig};
use dmi_gui::{CaptureConfig, Session};
use dmi_uia::{ControlId, Snapshot};
use std::collections::HashSet;
use std::hint::black_box;
use std::sync::OnceLock;

fn word_snapshot() -> &'static Snapshot {
    static SNAP: OnceLock<std::sync::Arc<Snapshot>> = OnceLock::new();
    SNAP.get_or_init(|| {
        let mut s = Session::new(AppKind::Word.launch());
        s.snapshot()
    })
}

/// Identifiers of every node, synthesized once.
fn word_targets() -> &'static Vec<ControlId> {
    static IDS: OnceLock<Vec<ControlId>> = OnceLock::new();
    IDS.get_or_init(|| {
        let snap = word_snapshot();
        snap.iter().map(|(i, _)| snap.control_id(i)).collect()
    })
}

/// The pre-index ancestor path: walk parents, join names.
fn walked_path(snap: &Snapshot, idx: usize) -> String {
    let mut names: Vec<&str> = Vec::new();
    let mut cur = snap.node(idx).parent;
    while let Some(p) = cur {
        let name = &snap.node(p).props.name;
        names.push(if name.is_empty() { "[Unnamed]" } else { name });
        cur = snap.node(p).parent;
    }
    names.reverse();
    names.join("/")
}

/// The pre-index resolver: O(n) scan recomputing paths per candidate.
fn linear_resolve(snap: &Snapshot, cid: &ControlId) -> Option<usize> {
    (0..snap.len()).find(|&i| {
        let props = &snap.node(i).props;
        props.primary_id() == cid.primary
            && props.control_type == cid.control_type
            && walked_path(snap, i) == cid.ancestor_path
    })
}

fn bench_resolve(c: &mut Criterion) {
    let snap = word_snapshot();
    let targets = word_targets();
    // Resolve a spread of controls: first, middle, last, and a miss.
    let picks: Vec<&ControlId> =
        vec![&targets[0], &targets[targets.len() / 2], &targets[targets.len() - 1]];
    let ghost = ControlId {
        primary: "No Such Control".into(),
        control_type: dmi_uia::ControlType::Button,
        ancestor_path: "Nowhere/At All".into(),
    };

    let mut group = c.benchmark_group("resolve");
    group.bench_function("string_linear_scan", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for cid in &picks {
                hits += usize::from(linear_resolve(snap, cid).is_some());
            }
            hits += usize::from(linear_resolve(snap, &ghost).is_some());
            black_box(hits)
        })
    });
    group.bench_function("indexed", |b| {
        snap.index().key_multimap(); // warm, as in a probed snapshot
        b.iter(|| {
            let mut hits = 0usize;
            for cid in &picks {
                hits += usize::from(snap.resolve(cid).is_some());
            }
            hits += usize::from(snap.resolve(&ghost).is_some());
            black_box(hits)
        })
    });
    group.finish();
}

fn bench_index_build(c: &mut Criterion) {
    let snap = word_snapshot();
    let mut group = c.benchmark_group("index_build");
    group.bench_function("core_columns", |b| {
        b.iter(|| black_box(dmi_uia::SnapIndex::build(snap).path(snap.len() - 1).len()))
    });
    group.bench_function("core_plus_multimap", |b| {
        b.iter(|| {
            let ix = dmi_uia::SnapIndex::build(snap);
            ix.key_multimap();
            black_box(ix.key(snap.len() - 1))
        })
    });
    group.finish();
}

/// The record_diff containment check over one (pre, post) snapshot pair.
fn bench_record_diff(c: &mut Criterion) {
    // Identical pre/post is the worst case for containment: every post
    // node probes and hits.
    let pre = word_snapshot();
    let post = word_snapshot();

    let mut group = c.benchmark_group("record_diff");
    group.bench_function("string_sets", |b| {
        b.iter(|| {
            let before: HashSet<String> = (0..pre.len())
                .filter(|&i| pre.is_available(i))
                .map(|i| {
                    let p = &pre.node(i).props;
                    format!(
                        "{}|{}|{}",
                        p.primary_id(),
                        p.control_type.as_str(),
                        walked_path(pre, i)
                    )
                })
                .collect();
            let mut new = 0usize;
            for (idx, _) in post.iter() {
                if !post.is_available(idx) {
                    continue;
                }
                let p = &post.node(idx).props;
                let enc = format!(
                    "{}|{}|{}",
                    p.primary_id(),
                    p.control_type.as_str(),
                    walked_path(post, idx)
                );
                if !before.contains(&enc) {
                    new += 1;
                }
            }
            black_box(new)
        })
    });
    group.bench_function("indexed", |b| {
        b.iter(|| {
            // Fresh indexes per iteration, as a rip click would pay.
            let pre_ix = dmi_uia::SnapIndex::build(pre);
            let post_ix = dmi_uia::SnapIndex::build(post);
            pre_ix.key_multimap();
            let mut new = 0usize;
            for (idx, node) in post.iter() {
                if !post.is_available(idx) {
                    continue;
                }
                let key = post_ix.key(idx);
                let existed = pre_ix.candidates(key).any(|i| {
                    let pn = &pre.node(i).props;
                    pre.is_available(i)
                        && pn.control_type == node.props.control_type
                        && pn.primary_id() == node.props.primary_id()
                        && pre_ix.path(i) == post_ix.path(idx)
                });
                if !existed {
                    new += 1;
                }
            }
            black_box(new)
        })
    });
    group.finish();
}

/// The capture pipeline itself: a cold full build, a pure cache hit, and
/// a partial rebuild where one (dialog) window is dirty and the big main
/// window is copied from the previous capture.
fn bench_snapshot_capture(c: &mut Criterion) {
    let mut group = c.benchmark_group("snap");
    group.bench_function("cold", |b| {
        let mut s = Session::new(AppKind::Word.launch());
        s.set_capture_config(CaptureConfig::full_rebuild());
        b.iter(|| black_box(s.snapshot().len()))
    });
    group.bench_function("cached", |b| {
        let mut s = Session::new(AppKind::Word.launch());
        let warm = s.snapshot();
        black_box(warm.len());
        b.iter(|| black_box(s.snapshot().len()))
    });
    group.bench_function("dirty_one_window", |b| {
        let mut s = Session::new(AppKind::Word.launch());
        // Open the Find and Replace dialog, then dirty only that window
        // each iteration: the main window's node block is copied forward.
        let tree = s.app().tree();
        let launcher = tree
            .iter()
            .find(|(i, w)| w.name == "Replace" && tree.is_shown(*i))
            .map(|(i, _)| i)
            .expect("Replace launcher");
        s.click(launcher).unwrap();
        let find_edit = s.app().tree().find_by_name("Find what").expect("dialog edit");
        let mut tick = 0u64;
        b.iter(|| {
            tick += 1;
            s.set_value(find_edit, if tick.is_multiple_of(2) { "alpha" } else { "beta" }).unwrap();
            black_box(s.snapshot().len())
        })
    });
    group.finish();
}

fn bench_rip(c: &mut Criterion) {
    let mut group = c.benchmark_group("rip");
    group.sample_size(10);
    // Default strategy: Esc-based fast state restoration + pristine-clone
    // reset (§4.1). The `*/full_restart` variants force the legacy
    // restart-replay recovery so the end-to-end speedup is measured inside
    // one binary; both produce byte-identical UNGs (see tests/identity.rs).
    for kind in AppKind::ALL {
        group.bench_function(&format!("small_{}", kind.name().to_lowercase()), |b| {
            b.iter(|| {
                let mut s = Session::new(kind.launch_small());
                let (g, stats) = rip(&mut s, &RipConfig::office(kind.name()));
                black_box((g.node_count(), stats.clicks))
            })
        });
        group.bench_function(&format!("small_{}_full_restart", kind.name().to_lowercase()), |b| {
            let mut cfg = RipConfig::office(kind.name());
            cfg.esc_recovery = false;
            b.iter(|| {
                let mut s = Session::new(kind.launch_small());
                let (g, stats) = rip(&mut s, &cfg);
                black_box((g.node_count(), stats.clicks))
            })
        });
    }
    // Capture-cache contribution in isolation: same Esc recovery, but every
    // snapshot eagerly rebuilt (the equivalence-oracle configuration).
    group.bench_function("small_word_full_rebuild", |b| {
        b.iter(|| {
            let mut s = Session::new(AppKind::Word.launch_small());
            s.set_capture_config(CaptureConfig::full_rebuild());
            let (g, stats) = rip(&mut s, &RipConfig::office("Word"));
            black_box((g.node_count(), stats.clicks))
        })
    });
    group.finish();
}

/// The parallel sharded rip engine vs the sequential `rip/*` baselines.
/// `rip_par/small_word` (4 worker shards) is the canonical comparison
/// point against `rip/small_word`; the `_wN` variants trace the scaling
/// curve. Every variant produces a byte-identical UNG (release-gated in
/// tests/identity.rs), so the comparison is pure engine overhead/speedup.
/// Scaling with shard count requires physical cores: on a single-CPU
/// container the variants measure scheduling overhead only.
fn bench_rip_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("rip_par");
    group.sample_size(10);
    for workers in [2usize, 4, 8] {
        let par = ParRipConfig { workers, speculation: 2, spec_walk: 4 };
        group.bench_function(&format!("small_word_w{workers}"), |b| {
            b.iter(|| {
                let mut s = Session::new(AppKind::Word.launch_small());
                let (g, stats) = rip_parallel(&mut s, &RipConfig::office("Word"), &par);
                black_box((g.node_count(), stats.clicks))
            })
        });
    }
    let par = ParRipConfig { workers: 4, speculation: 2, spec_walk: 4 };
    group.bench_function("small_word", |b| {
        b.iter(|| {
            let mut s = Session::new(AppKind::Word.launch_small());
            let (g, stats) = rip_parallel(&mut s, &RipConfig::office("Word"), &par);
            black_box((g.node_count(), stats.clicks))
        })
    });
    group.finish();
}

/// A fresh 3-app Office fleet (Word + Excel + PowerPoint, small).
fn office_fleet() -> Vec<FleetEntry> {
    AppKind::ALL
        .iter()
        .map(|k| {
            FleetEntry::new(k.name(), Session::new(k.launch_small()), RipConfig::office(k.name()))
        })
        .collect()
}

/// Fleet ripping: all three Office apps under one worker budget
/// (`office3_w{N}`), plus three versions of one app (`word_x3_versions`)
/// — the multi-user/multi-version production shape. Every entry's UNG is
/// byte-identical to its sequential rip (release-gated in
/// tests/identity.rs), so the curve measures pure engine behavior. At
/// `w1` each entry degrades to the sequential engine (the fallback
/// path); like `rip_par/*`, speedups over `rip/*` need physical cores —
/// on a single-CPU container the variants measure scheduling overhead.
fn bench_rip_fleet(c: &mut Criterion) {
    // One-shot shared-capture-pool efficacy + fault/recovery report (per
    // app, 2 workers), printed outside the timed loops — and only when
    // this group is actually selected by the bench name filter.
    fn report_pool_once() {
        static ONCE: OnceLock<()> = OnceLock::new();
        ONCE.get_or_init(|| {
            // Trace the reporting rip: the drained spans and tallies feed
            // one registry summary table below the per-app lines.
            dmi_obs::set_enabled(true);
            let mut entries = office_fleet();
            for o in
                rip_fleet(&mut entries, &ParRipConfig { workers: 2, speculation: 2, spec_walk: 4 })
            {
                eprintln!(
                    "{}",
                    report::pool_line(&o.app_id, o.stats.pool_hits, o.stats.pool_misses)
                );
                let status = match &o.status {
                    RipStatus::Parallel => "parallel",
                    RipStatus::FellBack => "fell-back",
                    RipStatus::Degraded(_) => "degraded",
                    RipStatus::Failed(_) => "failed",
                };
                eprintln!(
                    "{}",
                    report::fault_line(
                        &o.app_id,
                        status,
                        o.stats.restarts,
                        o.stats.esc_recoveries,
                        o.stats.poison_recoveries,
                    )
                );
                eprintln!(
                    "{}",
                    report::spec_line(
                        &o.app_id,
                        o.stats.spec_published,
                        o.stats.spec_adopted,
                        o.stats.spec_wasted,
                    )
                );
            }
            dmi_obs::set_enabled(false);
            let trace = dmi_obs::drain();
            let mut reg = dmi_obs::Registry::from_trace(&trace);
            for (name, v) in dmi_obs::tallies() {
                reg.inc(name, v);
            }
            dmi_obs::clear();
            eprint!("{}", reg.summary_table());
            eprintln!("{}", trace.text_summary());
        });
    }

    let mut group = c.benchmark_group("rip_fleet");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        let par = ParRipConfig { workers, speculation: 2, spec_walk: 4 };
        group.bench_function(&format!("office3_w{workers}"), |b| {
            report_pool_once();
            b.iter(|| {
                let mut entries = office_fleet();
                let out = rip_fleet(&mut entries, &par);
                black_box(out.iter().map(|o| o.graph.node_count()).sum::<usize>())
            })
        });
    }
    let par = ParRipConfig { workers: 4, speculation: 2, spec_walk: 4 };
    group.bench_function("word_x3_versions", |b| {
        report_pool_once();
        b.iter(|| {
            let mut entries: Vec<FleetEntry> = (0..3)
                .map(|v| {
                    FleetEntry::new(
                        format!("Word-v{v}"),
                        Session::new(AppKind::Word.launch_small_version(v)),
                        RipConfig::office("Word"),
                    )
                })
                .collect();
            let out = rip_fleet(&mut entries, &par);
            black_box(out.iter().map(|o| o.graph.node_count()).sum::<usize>())
        })
    });
    group.finish();
}

/// Worker-side subtree speculation on vs off, same 2-worker Office fleet.
/// On one CPU the wall-clock delta is mostly scheduling noise; the signal
/// is the traced `stall.reveal` total (see docs/observability.md), which
/// adoption-at-pop removes outright — `walk0` is the PR 9 dispatch-only
/// engine, `walk4` the default speculative one.
fn bench_rip_spec(c: &mut Criterion) {
    let mut group = c.benchmark_group("rip_spec");
    group.sample_size(10);
    for walk in [0usize, 4] {
        let par = ParRipConfig { workers: 2, speculation: 2, spec_walk: walk };
        group.bench_function(&format!("office3_w2_walk{walk}"), |b| {
            b.iter(|| {
                let mut entries = office_fleet();
                let out = rip_fleet(&mut entries, &par);
                black_box(out.iter().map(|o| o.graph.node_count()).sum::<usize>())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_resolve,
    bench_index_build,
    bench_record_diff,
    bench_snapshot_capture,
    bench_rip,
    bench_rip_parallel,
    bench_rip_fleet,
    bench_rip_spec
);
criterion_main!(benches);
