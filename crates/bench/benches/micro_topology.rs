//! Criterion micro-benchmarks for the offline pipeline: ripping,
//! decycling, forest transformation, and description rendering.

use criterion::{criterion_group, criterion_main, Criterion};
use dmi_core::describe::{self, DescribeConfig};
use dmi_core::ripper::{rip, RipConfig};
use dmi_core::topology::{build_forest, decycle, ForestConfig};
use dmi_gui::Session;
use std::sync::OnceLock;

fn word_graph() -> &'static dmi_core::Ung {
    static G: OnceLock<dmi_core::Ung> = OnceLock::new();
    G.get_or_init(|| {
        let mut s = Session::new(dmi_apps::AppKind::Word.launch_small());
        let (mut g, _) = rip(&mut s, &RipConfig::office("Word"));
        decycle(&mut g);
        g
    })
}

fn bench_rip_small(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline");
    group.sample_size(10);
    group.bench_function("rip_word_small", |b| {
        b.iter(|| {
            let mut s = Session::new(dmi_apps::AppKind::Word.launch_small());
            let (g, _) = rip(&mut s, &RipConfig::office("Word"));
            std::hint::black_box(g.node_count())
        })
    });
    group.finish();
}

fn bench_forest(c: &mut Criterion) {
    let g = word_graph();
    c.bench_function("build_forest_word", |b| {
        b.iter(|| {
            let (f, _) = build_forest(g, &ForestConfig::default());
            std::hint::black_box(f.len())
        })
    });
}

fn bench_describe(c: &mut Criterion) {
    let g = word_graph();
    let (forest, _) = build_forest(g, &ForestConfig::default());
    let cfg = DescribeConfig::default();
    c.bench_function("core_description_word", |b| {
        b.iter(|| std::hint::black_box(describe::core_description(&forest, &cfg).text.len()))
    });
    c.bench_function("full_description_word", |b| {
        b.iter(|| std::hint::black_box(describe::full_description(&forest, &cfg).text.len()))
    });
}

criterion_group!(benches, bench_rip_small, bench_forest, bench_describe);
criterion_main!(benches);
