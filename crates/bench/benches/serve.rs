//! Online serving benchmarks: the multi-tenant gateway over the three
//! shared ripped Office UNGs.
//!
//! `serve/office3_c{N}` offers N concurrent requests (all arriving at
//! once) drawn round-robin from the 27-task suite across 8 tenants, and
//! serves them through one gateway holding a session pool and one ripped
//! DMI model per app. Reported figures:
//!
//! - the criterion timing is real wall-clock engine cost per serve call;
//! - the one-shot `serve c=N:` lines (printed outside the timed loops)
//!   report the *virtual-time* serving metrics — tasks/sec against the
//!   deterministic simulated-latency makespan, p50/p99 per-task latency,
//!   session-pool and capture-pool hit rates, and the latency-overlap
//!   factor (serialized ÷ overlapped LLM seconds) that cross-tenant
//!   batching buys.
//!
//! Every per-task `RunTrace` is byte-identical to the task's sequential
//! single-session run at every concurrency level (release-gated in
//! tests/identity.rs), so the curve measures pure engine behavior. Like
//! `rip_par/*` and `rip_fleet/*`, wall-clock scaling with workers needs
//! physical cores — on a single-CPU container the curve is structural.
//!
//! The capture-pool rate reads 0% for this workload by design: suite
//! task setups use pattern operations (`select_lines`, `set_value`),
//! which poison the pristine-relative action trace, soundly disabling
//! cross-session capture sharing for the rest of the task. Workloads
//! driven purely by fingerprintable inputs (clicks, key presses) — the
//! rip fleet — do share; `rip_fleet/*` reports those rates.

use criterion::{criterion_group, criterion_main, Criterion};
use dmi_agent::{
    Gateway, GatewayConfig, InterfaceMode, RunConfig, ServeApp, ServeRequest, TaskState,
};
use dmi_apps::AppKind;
use dmi_bench::report;
use dmi_core::{Dmi, DmiBuildConfig};
use dmi_gui::Session;
use dmi_llm::CapabilityProfile;
use std::sync::{Arc, OnceLock};

/// The per-app ripped models, built once and shared by reference with
/// every gateway and every request (the whole point of serving over
/// shared UNGs).
fn office_models() -> &'static Vec<(AppKind, Arc<Dmi>)> {
    static MODELS: OnceLock<Vec<(AppKind, Arc<Dmi>)>> = OnceLock::new();
    MODELS.get_or_init(|| {
        AppKind::ALL
            .iter()
            .map(|&k| {
                let mut s = Session::new(k.launch_small());
                let (dmi, _) = Dmi::build(&mut s, &DmiBuildConfig::office(k.name()));
                (k, Arc::new(dmi))
            })
            .collect()
    })
}

/// The request mix: `n` requests round-robin over the 27-task suite,
/// spread across 8 tenants with per-request seeds.
fn request_mix(n: usize) -> Vec<ServeRequest> {
    static TASKS: OnceLock<Vec<Arc<dmi_agent::AgentTask>>> = OnceLock::new();
    let tasks = TASKS.get_or_init(|| dmi_tasks::all_tasks().into_iter().map(Arc::new).collect());
    (0..n)
        .map(|i| {
            let task = &tasks[i % tasks.len()];
            ServeRequest {
                tenant: format!("tenant-{}", i % 8),
                app: task.app.name().to_string(),
                task: Arc::clone(task),
                cfg: RunConfig::test(
                    CapabilityProfile::gpt5_medium(),
                    InterfaceMode::GuiPlusDmi,
                    i as u64,
                ),
            }
        })
        .collect()
}

/// A fresh gateway over the three small Office apps and their shared
/// models, sized for the offered concurrency.
fn office_gateway(concurrency: usize) -> Gateway {
    let apps: Vec<ServeApp> = office_models()
        .iter()
        .map(|(k, dmi)| {
            ServeApp::new(k.name(), Session::new(k.launch_small()), Some(Arc::clone(dmi)))
        })
        .collect();
    // Pool/in-flight sizing grows sublinearly with offered load: high
    // concurrency is served by recycling pooled sessions, not by holding
    // thousands live.
    let (sessions_per_app, max_in_flight) = match concurrency {
        0..=1 => (1, 1),
        2..=64 => (8, 24),
        _ => (16, 48),
    };
    Gateway::new(apps, GatewayConfig { workers: 2, sessions_per_app, max_in_flight })
}

fn bench_serve(c: &mut Criterion) {
    // One-shot virtual-time serving report per concurrency level, printed
    // outside the timed loops.
    fn report_serve_once(concurrency: usize) {
        static ONCE: OnceLock<()> = OnceLock::new();
        ONCE.get_or_init(|| {
            for &n in &[1usize, 64, 4096] {
                let mut gw = office_gateway(n);
                let rep = gw.serve(request_mix(n));
                let overlap = if rep.stats.virtual_secs > 0.0 {
                    rep.stats.serialized_secs / rep.stats.virtual_secs
                } else {
                    1.0
                };
                eprintln!(
                    "{}",
                    report::serve_line(
                        n,
                        rep.stats.tasks_per_sec(),
                        rep.latency_percentile(50.0),
                        rep.latency_percentile(99.0),
                        rep.stats.session_reuse_rate(),
                        rep.stats.capture_hit_rate(),
                        overlap,
                    )
                );
                assert_eq!(rep.stats.completed, n, "every request must produce a trace");
            }
        });
        let _ = concurrency;
    }

    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    for n in [1usize, 64] {
        group.bench_function(&format!("office3_c{n}"), |b| {
            report_serve_once(n);
            b.iter(|| {
                let mut gw = office_gateway(n);
                let rep = gw.serve(request_mix(n));
                criterion::black_box((rep.stats.completed, rep.stats.rounds))
            })
        });
    }
    // The tail point of the curve is expensive in real time (4096 full
    // task executions per iteration); two samples bound the bench run.
    group.sample_size(2).measurement_time(std::time::Duration::from_secs(1));
    group.bench_function("office3_c4096", |b| {
        report_serve_once(4096);
        b.iter(|| {
            let mut gw = office_gateway(4096);
            let rep = gw.serve(request_mix(4096));
            criterion::black_box((rep.stats.completed, rep.stats.rounds))
        })
    });
    group.finish();
}

/// The sequential baseline the gateway's virtual timeline is compared
/// against: the same request mix driven one task at a time on the caller
/// thread through the identical resumable machine.
fn bench_serve_sequential_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    group.bench_function("office3_c64_sequential", |b| {
        let models = office_models();
        b.iter(|| {
            let mut done = 0usize;
            for r in request_mix(64) {
                let dmi = models.iter().find(|(k, _)| k.name() == r.app).map(|(_, d)| d);
                let mut state = TaskState::new(&r.task, &r.cfg);
                while state.step(&r.task, dmi.map(|d| d.as_ref())) == dmi_agent::StepStatus::Running
                {
                }
                let (trace, _) = state.finish(&r.task);
                done += usize::from(trace.llm_calls > 0);
            }
            criterion::black_box(done)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_serve, bench_serve_sequential_baseline);
criterion_main!(benches);
