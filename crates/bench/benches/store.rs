//! Persistence benchmarks: the binary store codec against the JSON
//! baseline, disk round trips, and incremental re-rips over a stored
//! journal.
//!
//! - `store/encode_rip` / `store/decode_rip`: in-memory codec cost for a
//!   full Word rip artifact (UNG + journal + stats + pristine sigs).
//! - `store/json_encode_ung`: the serde-JSON baseline the codec is
//!   measured against (UNG only — the binary artifact carries strictly
//!   more and must still be smaller).
//! - `store/save_load_rip`: the on-disk round trip through [`Store`].
//! - `store/rip_cold_v1` vs `store/rip_incremental_v1`: a cold rip of
//!   Word v1 against a journal-driven incremental re-rip over the stored
//!   v0 journal (byte-identical output, release-gated in tests/store.rs).
//!
//! The one-shot `store Word:` line (printed outside the timed loops)
//! reports artifact size vs JSON, save/load wall ms, the fraction of v1
//! explorations confirmed from the v0 journal, and the warm-pool hit
//! rate of a same-build re-rip booted from the stored capture export.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dmi_apps::AppKind;
use dmi_bench::report;
use dmi_core::RipConfig;
use dmi_gui::Session;
use dmi_store::{StoredCaptures, StoredRip};
use std::sync::OnceLock;
use std::time::Instant;

/// The stored Word v0 artifacts, recorded once: a journaled rip and the
/// donor session's capture-pool export.
fn word_fixture() -> &'static (StoredRip, StoredCaptures) {
    static FX: OnceLock<(StoredRip, StoredCaptures)> = OnceLock::new();
    FX.get_or_init(|| {
        let mut s = Session::new(AppKind::Word.launch_small_version(0));
        s.set_capture_pool(Some(dmi_store::recording_pool()));
        let rip = dmi_store::record_rip("Word", &mut s, &RipConfig::office("Word"));
        let caps = dmi_store::export_captures("Word", &mut s);
        (rip, caps)
    })
}

fn temp_store() -> dmi_store::Store {
    let dir = std::env::temp_dir().join(format!("dmi-store-bench-{}", std::process::id()));
    dmi_store::Store::open(dir).expect("temp store")
}

/// One-shot persistence report, printed outside the timed loops — and
/// only when the `store/*` group is selected by the bench name filter.
fn report_store_once() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let (rip, caps) = word_fixture();
        let binary_bytes = dmi_store::encode_rip(rip).len() as u64;
        let json_bytes = serde_json::to_string(&rip.ung).expect("ung json").len() as u64;

        let store = temp_store();
        let t = Instant::now();
        store.save_rip(rip).expect("save rip");
        store.save_captures(caps).expect("save captures");
        let save_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let loaded = store.load_rip("Word").expect("load rip");
        let load_ms = t.elapsed().as_secs_f64() * 1e3;

        // Cross-version: how much of v1's exploration the v0 journal
        // confirms.
        let mut v1 = Session::new(AppKind::Word.launch_small_version(1));
        let (_, _, inc) = dmi_store::rip_incremental(&mut v1, &RipConfig::office("Word"), &loaded);

        // Same-build warm boot: re-rip v0 with the pool seeded from the
        // stored capture export.
        let mut warm = Session::new(AppKind::Word.launch_small_version(0));
        warm.set_capture_pool(Some(dmi_store::recording_pool()));
        dmi_store::warm_session(&store, "Word", &mut warm).expect("warm session");
        let (_, warm_stats, warm_inc) =
            dmi_store::rip_incremental(&mut warm, &RipConfig::office("Word"), &loaded);
        let probes = warm_stats.pool_hits + warm_stats.pool_misses;
        let warm_rate =
            if probes == 0 { 0.0 } else { warm_inc.pool_warm_hits as f64 / probes as f64 };

        eprintln!(
            "{}",
            report::store_line(
                "Word",
                binary_bytes,
                json_bytes,
                save_ms,
                load_ms,
                inc.confirm_rate(),
                warm_rate,
            )
        );
        let _ = std::fs::remove_dir_all(store.root());
    });
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    group.sample_size(10);

    group.bench_function("encode_rip", |b| {
        report_store_once();
        let (rip, _) = word_fixture();
        b.iter(|| black_box(dmi_store::encode_rip(rip).len()))
    });

    group.bench_function("decode_rip", |b| {
        report_store_once();
        let (rip, _) = word_fixture();
        let bytes = dmi_store::encode_rip(rip);
        b.iter(|| black_box(dmi_store::decode_rip(&bytes).expect("decode").ung.node_count()))
    });

    group.bench_function("json_encode_ung", |b| {
        report_store_once();
        let (rip, _) = word_fixture();
        b.iter(|| black_box(serde_json::to_string(&rip.ung).expect("json").len()))
    });

    group.bench_function("save_load_rip", |b| {
        report_store_once();
        let (rip, _) = word_fixture();
        let store = temp_store();
        b.iter(|| {
            store.save_rip(rip).expect("save");
            black_box(store.load_rip("Word").expect("load").ung.node_count())
        })
    });

    group.bench_function("rip_cold_v1", |b| {
        report_store_once();
        b.iter(|| {
            let mut s = Session::new(AppKind::Word.launch_small_version(1));
            let (g, _) = dmi_core::ripper::rip(&mut s, &RipConfig::office("Word"));
            black_box(g.node_count())
        })
    });

    group.bench_function("rip_incremental_v1", |b| {
        report_store_once();
        let (rip, _) = word_fixture();
        b.iter(|| {
            let mut s = Session::new(AppKind::Word.launch_small_version(1));
            let (g, _, _) = dmi_store::rip_incremental(&mut s, &RipConfig::office("Word"), rip);
            black_box(g.node_count())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
