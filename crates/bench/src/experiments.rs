//! The shared evaluation harness behind every experiment bench.
//!
//! Reproduces the §5.1 methodology: the 27-task OSWorld-W-like suite, a
//! 30-step cap, three runs averaged, and the three interface conditions ×
//! three model profiles of Table 3.

use dmi_agent::{run_task, InterfaceMode, RunConfig, RunTrace};
use dmi_core::{Dmi, DmiBuildConfig, DmiBuildStats};
use dmi_gui::Session;
use dmi_llm::CapabilityProfile;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Evaluation options.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Seeds to average over (the paper uses 3 runs).
    pub seeds: Vec<u64>,
    /// Run against small app instances (debug/test speed).
    pub small_apps: bool,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig { seeds: vec![1, 2, 3], small_apps: false }
    }
}

/// One app's offline model plus its build statistics and wall time.
pub struct AppModel {
    /// The DMI instance, shared by reference with every run and every
    /// gateway tenant — ripped once, never cloned.
    pub dmi: Arc<Dmi>,
    /// Offline-phase statistics (§5.2).
    pub stats: DmiBuildStats,
    /// Wall-clock modeling time in seconds.
    pub build_secs: f64,
}

/// Builds (once per process) the offline models for all three full apps.
pub fn models() -> &'static BTreeMap<&'static str, AppModel> {
    static MODELS: OnceLock<BTreeMap<&'static str, AppModel>> = OnceLock::new();
    MODELS.get_or_init(|| build_models(false))
}

/// Builds the offline models with explicit sizing.
pub fn build_models(small: bool) -> BTreeMap<&'static str, AppModel> {
    let mut out = BTreeMap::new();
    for kind in dmi_apps::AppKind::ALL {
        let app = if small { kind.launch_small() } else { kind.launch() };
        let mut session = Session::new(app);
        let t0 = Instant::now();
        let (dmi, stats) = Dmi::build(&mut session, &DmiBuildConfig::office(kind.name()));
        let build_secs = t0.elapsed().as_secs_f64();
        out.insert(kind.name(), AppModel { dmi: Arc::new(dmi), stats, build_secs });
    }
    out
}

/// Runs the whole suite for one (profile, mode) cell.
pub fn run_cell(
    profile: &CapabilityProfile,
    mode: InterfaceMode,
    models: &BTreeMap<&'static str, AppModel>,
    cfg: &EvalConfig,
) -> Vec<RunTrace> {
    let tasks = dmi_tasks::all_tasks();
    let mut traces = Vec::with_capacity(tasks.len() * cfg.seeds.len());
    for task in &tasks {
        for &seed in &cfg.seeds {
            let run_cfg = RunConfig {
                profile: profile.clone(),
                mode,
                seed,
                step_cap: 30,
                small_apps: cfg.small_apps,
                instability: (0.06, 0.02),
            };
            let dmi = models.get(task.app.name()).map(|m| &m.dmi);
            traces.push(run_task(task, dmi, &run_cfg));
        }
    }
    traces
}

/// The Table 3 grid: every row of the paper's table, in order.
pub fn table3_rows() -> Vec<(CapabilityProfile, InterfaceMode)> {
    let med = CapabilityProfile::gpt5_medium();
    let min = CapabilityProfile::gpt5_minimal();
    let mini = CapabilityProfile::gpt5_mini_medium();
    vec![
        (med.clone(), InterfaceMode::GuiOnly),
        (med.clone(), InterfaceMode::GuiPlusForest),
        (med, InterfaceMode::GuiPlusDmi),
        (min.clone(), InterfaceMode::GuiOnly),
        (min, InterfaceMode::GuiPlusDmi),
        (mini.clone(), InterfaceMode::GuiOnly),
        (mini.clone(), InterfaceMode::GuiPlusForest),
        (mini, InterfaceMode::GuiPlusDmi),
    ]
}

/// Paper reference values for Table 3: (SR %, steps, time s), keyed by
/// (profile label, mode label).
pub fn paper_table3() -> BTreeMap<(&'static str, &'static str), (f64, f64, f64)> {
    let mut m = BTreeMap::new();
    m.insert(("GPT-5 (Medium)", "GUI-only"), (44.4, 8.16, 392.0));
    m.insert(("GPT-5 (Medium)", "GUI-only+Nav.forest"), (42.0, 8.41, 353.0));
    m.insert(("GPT-5 (Medium)", "GUI+DMI"), (74.1, 4.61, 239.0));
    m.insert(("GPT-5 (Minimal)", "GUI-only"), (23.5, 8.42, 251.0));
    m.insert(("GPT-5 (Minimal)", "GUI+DMI"), (40.7, 5.52, 140.0));
    m.insert(("GPT-5-mini (Medium)", "GUI-only"), (17.3, 7.14, 171.0));
    m.insert(("GPT-5-mini (Medium)", "GUI-only+Nav.forest"), (23.5, 6.32, 150.0));
    m.insert(("GPT-5-mini (Medium)", "GUI+DMI"), (43.2, 4.43, 167.0));
    m
}

/// Collects traces per mode for the core setting (GPT-5 medium).
pub fn core_setting_by_mode(
    models: &BTreeMap<&'static str, AppModel>,
    cfg: &EvalConfig,
) -> BTreeMap<InterfaceMode, Vec<RunTrace>> {
    let med = CapabilityProfile::gpt5_medium();
    let mut by_mode = BTreeMap::new();
    for mode in [InterfaceMode::GuiOnly, InterfaceMode::GuiPlusForest, InterfaceMode::GuiPlusDmi] {
        by_mode.insert(mode, run_cell(&med, mode, models, cfg));
    }
    by_mode
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmi_agent::aggregate;

    #[test]
    fn small_eval_cell_runs() {
        let models = build_models(true);
        let cfg = EvalConfig { seeds: vec![1], small_apps: true };
        let traces =
            run_cell(&CapabilityProfile::gpt5_medium(), InterfaceMode::GuiPlusDmi, &models, &cfg);
        assert_eq!(traces.len(), 27);
        let agg = aggregate(&traces);
        assert!(agg.sr > 0.3, "DMI sr too low: {}", agg.sr);
    }

    #[test]
    fn table3_grid_matches_paper_rows() {
        assert_eq!(table3_rows().len(), 8);
        assert_eq!(paper_table3().len(), 8);
        for (p, m) in table3_rows() {
            let key = (Box::leak(p.label().into_boxed_str()) as &'static str, m.label());
            assert!(paper_table3().contains_key(&(key.0, key.1)), "{key:?}");
        }
    }
}
