//! Experiment harnesses reproducing every table and figure of the paper's
//! evaluation, plus criterion micro-benchmarks for the DMI pipeline.
//!
//! `cargo bench` regenerates the full evaluation; each `exp_*` bench
//! target prints the rows/series of one paper artifact (see `DESIGN.md`'s
//! per-experiment index and `EXPERIMENTS.md` for recorded results).

pub mod experiments;
pub mod report;

pub use experiments::{
    build_models, core_setting_by_mode, models, paper_table3, run_cell, table3_rows, AppModel,
    EvalConfig,
};
