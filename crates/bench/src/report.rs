//! Plain-text table rendering for the experiment harnesses.

/// Renders a simple aligned table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("| ");
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!("{:<w$} | ", c, w = widths[i]));
        }
        line.trim_end().to_string()
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&render_row(&hdr, &widths));
    out.push('\n');
    out.push_str(&format!(
        "|{}\n",
        widths.iter().map(|w| "-".repeat(w + 2) + "|").collect::<String>()
    ));
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a float to one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float to two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// A section banner for bench output.
pub fn banner(title: &str) -> String {
    format!("\n=== {title} ===\n")
}

/// One capture-pool efficacy line for the fleet bench reporter: how many
/// captures the app's shards served from the shared cross-session pool.
pub fn pool_line(app: &str, pool_hits: u64, pool_misses: u64) -> String {
    let probes = pool_hits + pool_misses;
    let rate = if probes == 0 { 0.0 } else { pool_hits as f64 / probes as f64 };
    format!("capture-pool {app}: {pool_hits}/{probes} probes shared ({})", pct(rate))
}

/// One fault/recovery line for the fleet bench reporter: which engine the
/// entry finished on and how much state-restoration and fail-soft work its
/// rip spent (restarts, Esc recoveries, poisoned-lock recoveries).
pub fn fault_line(
    app: &str,
    status: &str,
    restarts: u64,
    esc_recoveries: u64,
    poison_recoveries: u64,
) -> String {
    format!(
        "fault-recovery {app} [{status}]: {restarts} restarts, {esc_recoveries} esc recoveries, \
         {poison_recoveries} poisoned-lock recoveries"
    )
}

/// One gateway serving line for the serve bench reporter: throughput and
/// latency at a given concurrency, with the two pool hit rates that make
/// the throughput possible (session reuse, shared captures).
#[allow(clippy::too_many_arguments)]
pub fn serve_line(
    concurrency: usize,
    tasks_per_sec: f64,
    p50_secs: f64,
    p99_secs: f64,
    session_reuse_rate: f64,
    capture_hit_rate: f64,
    overlap_factor: f64,
) -> String {
    format!(
        "serve c={concurrency}: {} tasks/s, p50 {}s, p99 {}s, session-pool {}, \
         capture-pool {}, latency overlap {}x",
        format_args!("{tasks_per_sec:.3}"),
        f1(p50_secs),
        f1(p99_secs),
        pct(session_reuse_rate),
        pct(capture_hit_rate),
        f1(overlap_factor),
    )
}

/// One persistence line for the store bench reporter: artifact size
/// against the JSON baseline, disk round-trip cost, and the two warm-path
/// efficacy rates (journal edge confirmation, pool warm hits).
#[allow(clippy::too_many_arguments)]
pub fn store_line(
    app: &str,
    binary_bytes: u64,
    json_bytes: u64,
    save_ms: f64,
    load_ms: f64,
    edge_confirm_rate: f64,
    warm_hit_rate: f64,
) -> String {
    let ratio = if json_bytes == 0 { 0.0 } else { binary_bytes as f64 / json_bytes as f64 };
    format!(
        "store {app}: {binary_bytes} B ({} of {json_bytes} B json), save {}ms, load {}ms, \
         edges confirmed {}, pool warm hits {}",
        pct(ratio),
        f2(save_ms),
        f2(load_ms),
        pct(edge_confirm_rate),
        pct(warm_hit_rate),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["Interface", "SR"],
            &[vec!["GUI-only".into(), "44.4%".into()], vec!["GUI+DMI".into(), "74.1%".into()]],
        );
        assert!(t.contains("| GUI-only "));
        assert!(t.contains("| 74.1%"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.741), "74.1%");
        assert_eq!(f1(8.157), "8.2");
        assert_eq!(f2(4.611), "4.61");
    }

    #[test]
    fn pool_line_reports_rate_and_handles_zero_probes() {
        assert_eq!(pool_line("Word", 3, 1), "capture-pool Word: 3/4 probes shared (75.0%)");
        assert_eq!(pool_line("Idle", 0, 0), "capture-pool Idle: 0/0 probes shared (0.0%)");
    }

    #[test]
    fn serve_line_reports_throughput_latency_and_pools() {
        assert_eq!(
            serve_line(64, 1.234, 38.25, 61.71, 0.75, 0.9, 12.04),
            "serve c=64: 1.234 tasks/s, p50 38.2s, p99 61.7s, session-pool 75.0%, \
             capture-pool 90.0%, latency overlap 12.0x"
        );
    }

    #[test]
    fn store_line_reports_size_ratio_times_and_rates() {
        assert_eq!(
            store_line("Word", 48_213, 130_552, 1.2345, 0.876, 0.821, 0.4),
            "store Word: 48213 B (36.9% of 130552 B json), save 1.23ms, load 0.88ms, \
             edges confirmed 82.1%, pool warm hits 40.0%"
        );
    }

    #[test]
    fn fault_line_names_engine_and_counters() {
        assert_eq!(
            fault_line("Excel", "parallel", 4, 11, 1),
            "fault-recovery Excel [parallel]: 4 restarts, 11 esc recoveries, \
             1 poisoned-lock recoveries"
        );
    }
}
