//! Plain-text table rendering for the experiment harnesses.
//!
//! The per-subsystem reporter lines (`pool_line`, `fault_line`,
//! `serve_line`, `store_line`) are views over a [`dmi_obs::Registry`]:
//! each one loads its measurements into typed metrics first and renders
//! with the shared [`dmi_obs::KvLine`] builder, so every line speaks the
//! same `label subject: key=value ...` grammar and the registry remains
//! the single source for derived rates.

use dmi_obs::{KvLine, Registry};

/// Renders a simple aligned table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("| ");
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!("{:<w$} | ", c, w = widths[i]));
        }
        line.trim_end().to_string()
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&render_row(&hdr, &widths));
    out.push('\n');
    out.push_str(&format!(
        "|{}\n",
        widths.iter().map(|w| "-".repeat(w + 2) + "|").collect::<String>()
    ));
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a float to one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float to two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// A section banner for bench output.
pub fn banner(title: &str) -> String {
    format!("\n=== {title} ===\n")
}

/// One capture-pool efficacy line for the fleet bench reporter: how many
/// captures the app's shards served from the shared cross-session pool.
pub fn pool_line(app: &str, pool_hits: u64, pool_misses: u64) -> String {
    let mut reg = Registry::new();
    reg.inc("capture.pool_hits", pool_hits);
    reg.inc("capture.pool_misses", pool_misses);
    let hits = reg.counter("capture.pool_hits");
    let probes = hits + reg.counter("capture.pool_misses");
    let rate = if probes == 0 { 0.0 } else { hits as f64 / probes as f64 };
    KvLine::new("capture-pool", app).frac("shared", hits, probes).pct("rate", rate).render()
}

/// One fault/recovery line for the fleet bench reporter: which engine the
/// entry finished on and how much state-restoration and fail-soft work its
/// rip spent (restarts, Esc recoveries, poisoned-lock recoveries).
pub fn fault_line(
    app: &str,
    status: &str,
    restarts: u64,
    esc_recoveries: u64,
    poison_recoveries: u64,
) -> String {
    let mut reg = Registry::new();
    reg.inc("rip.restarts", restarts);
    reg.inc("rip.esc_recoveries", esc_recoveries);
    reg.inc("capture.poison_recoveries", poison_recoveries);
    KvLine::new("fault-recovery", format_args!("{app} [{status}]"))
        .field("restarts", reg.counter("rip.restarts"))
        .field("esc_recoveries", reg.counter("rip.esc_recoveries"))
        .field("poison_recoveries", reg.counter("capture.poison_recoveries"))
        .render()
}

/// One subtree-speculation line for the fleet bench reporter: how many
/// worker-published speculative explorations the scheduler adopted at DFS
/// pop versus discarded as waste (superseded, quarantined, orphaned).
pub fn spec_line(app: &str, published: u64, adopted: u64, wasted: u64) -> String {
    let mut reg = Registry::new();
    reg.inc("rip.spec_published", published);
    reg.inc("rip.spec_adopted", adopted);
    reg.inc("rip.spec_wasted", wasted);
    let published = reg.counter("rip.spec_published");
    let adopted = reg.counter("rip.spec_adopted");
    let rate = if published == 0 { 0.0 } else { adopted as f64 / published as f64 };
    KvLine::new("speculation", app)
        .frac("adopted", adopted, published)
        .field("wasted", reg.counter("rip.spec_wasted"))
        .pct("rate", rate)
        .render()
}

/// One gateway serving line for the serve bench reporter: throughput and
/// latency at a given concurrency, with the two pool hit rates that make
/// the throughput possible (session reuse, shared captures).
#[allow(clippy::too_many_arguments)]
pub fn serve_line(
    concurrency: usize,
    tasks_per_sec: f64,
    p50_secs: f64,
    p99_secs: f64,
    session_reuse_rate: f64,
    capture_hit_rate: f64,
    overlap_factor: f64,
) -> String {
    let mut reg = Registry::new();
    reg.set_gauge("gateway.tasks_per_sec", tasks_per_sec);
    reg.set_gauge("gateway.p50_secs", p50_secs);
    reg.set_gauge("gateway.p99_secs", p99_secs);
    reg.set_gauge("gateway.session_reuse_rate", session_reuse_rate);
    reg.set_gauge("gateway.capture_hit_rate", capture_hit_rate);
    reg.set_gauge("gateway.overlap_factor", overlap_factor);
    KvLine::new("serve", format_args!("c={concurrency}"))
        .field("tasks_per_sec", format_args!("{:.3}", reg.gauge("gateway.tasks_per_sec")))
        .secs("p50", reg.gauge("gateway.p50_secs"))
        .secs("p99", reg.gauge("gateway.p99_secs"))
        .pct("session_reuse", reg.gauge("gateway.session_reuse_rate"))
        .pct("capture_hits", reg.gauge("gateway.capture_hit_rate"))
        .field("overlap", format_args!("{:.1}x", reg.gauge("gateway.overlap_factor")))
        .render()
}

/// One persistence line for the store bench reporter: artifact size
/// against the JSON baseline, disk round-trip cost, and the two warm-path
/// efficacy rates (journal edge confirmation, pool warm hits).
#[allow(clippy::too_many_arguments)]
pub fn store_line(
    app: &str,
    binary_bytes: u64,
    json_bytes: u64,
    save_ms: f64,
    load_ms: f64,
    edge_confirm_rate: f64,
    warm_hit_rate: f64,
) -> String {
    let mut reg = Registry::new();
    reg.inc("store.binary_bytes", binary_bytes);
    reg.inc("store.json_bytes", json_bytes);
    reg.set_gauge("store.save_ms", save_ms);
    reg.set_gauge("store.load_ms", load_ms);
    reg.set_gauge("store.edge_confirm_rate", edge_confirm_rate);
    reg.set_gauge("store.warm_hit_rate", warm_hit_rate);
    let binary = reg.counter("store.binary_bytes");
    let json = reg.counter("store.json_bytes");
    let ratio = if json == 0 { 0.0 } else { binary as f64 / json as f64 };
    KvLine::new("store", app)
        .field("binary", format_args!("{binary}B"))
        .field("json", format_args!("{json}B"))
        .pct("ratio", ratio)
        .ms("save", reg.gauge("store.save_ms"))
        .ms("load", reg.gauge("store.load_ms"))
        .pct("edges_confirmed", reg.gauge("store.edge_confirm_rate"))
        .pct("warm_hits", reg.gauge("store.warm_hit_rate"))
        .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["Interface", "SR"],
            &[vec!["GUI-only".into(), "44.4%".into()], vec!["GUI+DMI".into(), "74.1%".into()]],
        );
        assert!(t.contains("| GUI-only "));
        assert!(t.contains("| 74.1%"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.741), "74.1%");
        assert_eq!(f1(8.157), "8.2");
        assert_eq!(f2(4.611), "4.61");
    }

    #[test]
    fn pool_line_reports_rate_and_handles_zero_probes() {
        assert_eq!(pool_line("Word", 3, 1), "capture-pool Word: shared=3/4 rate=75.0%");
        assert_eq!(pool_line("Idle", 0, 0), "capture-pool Idle: shared=0/0 rate=0.0%");
    }

    #[test]
    fn serve_line_reports_throughput_latency_and_pools() {
        assert_eq!(
            serve_line(64, 1.234, 38.25, 61.71, 0.75, 0.9, 12.04),
            "serve c=64: tasks_per_sec=1.234 p50=38.2s p99=61.7s session_reuse=75.0% \
             capture_hits=90.0% overlap=12.0x"
        );
    }

    #[test]
    fn store_line_reports_size_ratio_times_and_rates() {
        assert_eq!(
            store_line("Word", 48_213, 130_552, 1.2345, 0.876, 0.821, 0.4),
            "store Word: binary=48213B json=130552B ratio=36.9% save=1.23ms load=0.88ms \
             edges_confirmed=82.1% warm_hits=40.0%"
        );
    }

    #[test]
    fn spec_line_reports_adoption_rate_and_handles_zero_published() {
        assert_eq!(spec_line("Word", 8, 6, 2), "speculation Word: adopted=6/8 wasted=2 rate=75.0%");
        assert_eq!(spec_line("Idle", 0, 0, 0), "speculation Idle: adopted=0/0 wasted=0 rate=0.0%");
    }

    #[test]
    fn fault_line_names_engine_and_counters() {
        assert_eq!(
            fault_line("Excel", "parallel", 4, 11, 1),
            "fault-recovery Excel [parallel]: restarts=4 esc_recoveries=11 poison_recoveries=1"
        );
    }
}
