//! Context-efficient descriptions of controls and navigation (§3.3, §4.2).
//!
//! Serialization schema (per navigation tree / subtree):
//!
//! ```text
//! name(type)(description)_id[children]
//! ```
//!
//! Parentheses mark optional fields; square brackets encode hierarchical
//! nesting; ids are consecutive integers. Descriptions are selectively
//! attached (key control types, shared-name groups, non-leaf nodes) and
//! truncated. A depth-limited **core topology** excludes large enumerations
//! and manually identified nodes; `further_query` expands pruned branches
//! or fetches the complete forest on demand.

use crate::topology::{Forest, TopoKind};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Options for description generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DescribeConfig {
    /// Maximum characters kept from a control's description.
    pub max_description_chars: usize,
    /// Core topology depth limit (levels below a root).
    pub core_max_depth: usize,
    /// A node with more than this many children is a "large enumeration";
    /// the core keeps the first `enum_keep` children plus a marker.
    pub enum_threshold: usize,
    /// Children kept from a pruned enumeration.
    pub enum_keep: usize,
    /// Node names / automation ids manually excluded from the core
    /// (children pruned; the node itself stays as a queryable stub).
    pub manual_prune: Vec<String>,
}

impl Default for DescribeConfig {
    fn default() -> Self {
        // The paper's core topology keeps six levels below the app window
        // and excludes large enumerations (font lists). Our depth counts
        // from the virtual root, which adds the window and ribbon levels,
        // hence 8. The enumeration threshold keeps color grids (60 cells)
        // and transition galleries while pruning font lists (216),
        // symbols (280+), and bulk grid rows.
        DescribeConfig {
            max_description_chars: 60,
            core_max_depth: 8,
            enum_threshold: 100,
            enum_keep: 12,
            manual_prune: Vec::new(),
        }
    }
}

/// Sanitizes a name for the compact schema (no structural characters).
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| match c {
            '(' | ')' | '[' | ']' | ',' | '_' => ' ',
            other => other,
        })
        .collect::<String>()
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
}

/// Whether a description should be attached to this node (§4.2 rules).
fn wants_description(forest: &Forest, id: usize, shared_names: &HashSet<String>) -> bool {
    let n = &forest.nodes[id];
    if n.help_text.is_empty() {
        return false;
    }
    if !n.children.is_empty() {
        return true; // Non-leaf (navigational) nodes: pivotal, few.
    }
    if n.control_type.is_key_type() {
        return true;
    }
    if shared_names.contains(&n.name) {
        return true;
    }
    // Functional leaves with provider descriptions keep them (truncated):
    // rich control descriptions are what make declarative selection
    // reliable (§5.7 "Rich control descriptions").
    true
}

/// Names shared by more than one node where at least one holder is a key
/// type (§4.2: such groups all get descriptions).
fn shared_name_set(forest: &Forest) -> HashSet<String> {
    let mut count: HashMap<&str, (usize, bool)> = HashMap::new();
    for n in &forest.nodes {
        let e = count.entry(n.name.as_str()).or_insert((0, false));
        e.0 += 1;
        e.1 |= n.control_type.is_key_type();
    }
    count.into_iter().filter(|(_, (c, key))| *c > 1 && *key).map(|(n, _)| n.to_string()).collect()
}

/// Serializes one node (and children, within limits) into `out`.
#[allow(clippy::too_many_arguments)]
fn write_node(
    forest: &Forest,
    id: usize,
    depth: usize,
    cfg: &DescribeConfig,
    shared_names: &HashSet<String>,
    limit_depth: Option<usize>,
    included: &mut HashSet<usize>,
    out: &mut String,
) {
    let n = &forest.nodes[id];
    included.insert(id);
    out.push_str(&sanitize(&n.name));
    out.push('(');
    out.push_str(n.control_type.as_str());
    out.push(')');
    if let TopoKind::Reference { subtree_root } = n.kind {
        out.push_str(&format!("(ref subtree {subtree_root})"));
    } else if wants_description(forest, id, shared_names) {
        let mut d = sanitize(&n.help_text);
        if d.len() > cfg.max_description_chars {
            d.truncate(cfg.max_description_chars);
            d.push('…');
        }
        out.push('(');
        out.push_str(&d);
        out.push(')');
    }
    out.push('_');
    out.push_str(&n.id.to_string());

    if n.children.is_empty() {
        return;
    }
    // Depth cutoff: keep the node as a queryable stub.
    if let Some(max) = limit_depth {
        if depth >= max {
            out.push_str(&format!("[…{} children, further_query]", n.children.len()));
            return;
        }
    }
    let manual = cfg.manual_prune.iter().any(|m| m == &n.name);
    let prune_enum = limit_depth.is_some() && n.children.len() > cfg.enum_threshold;
    let kids: Vec<usize> = if limit_depth.is_some() && manual {
        Vec::new()
    } else if prune_enum {
        n.children.iter().copied().take(cfg.enum_keep).collect()
    } else {
        n.children.clone()
    };
    if kids.is_empty() && (manual || prune_enum) {
        out.push_str(&format!("[…{} children, further_query]", n.children.len()));
        return;
    }
    out.push('[');
    for (i, c) in kids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_node(forest, *c, depth + 1, cfg, shared_names, limit_depth, included, out);
    }
    if prune_enum {
        out.push_str(&format!(",…{} more, further_query", n.children.len() - kids.len()));
    }
    out.push(']');
}

/// A rendered topology description plus the set of node ids it includes.
#[derive(Debug, Clone, PartialEq)]
pub struct Description {
    /// The compact structured text handed to the LLM.
    pub text: String,
    /// Node ids fully visible in the text.
    pub included: HashSet<usize>,
}

impl Description {
    /// Approximate token cost of the description.
    pub fn tokens(&self) -> usize {
        crate::tokens::count(&self.text)
    }
}

/// Renders the complete forest (main tree + shared subtrees + entry map).
pub fn full_description(forest: &Forest, cfg: &DescribeConfig) -> Description {
    render(forest, cfg, None)
}

/// Renders the depth-limited core topology (§3.3 "Query on demand").
pub fn core_description(forest: &Forest, cfg: &DescribeConfig) -> Description {
    render(forest, cfg, Some(cfg.core_max_depth))
}

fn render(forest: &Forest, cfg: &DescribeConfig, limit: Option<usize>) -> Description {
    let shared_names = shared_name_set(forest);
    let mut text = String::new();
    let mut included = HashSet::new();
    text.push_str("#main-tree\n");
    write_node(forest, forest.main_root, 0, cfg, &shared_names, limit, &mut included, &mut text);
    for (i, &r) in forest.shared_roots.iter().enumerate() {
        text.push_str(&format!("\n#shared-subtree-{i}\n"));
        write_node(forest, r, 0, cfg, &shared_names, limit, &mut included, &mut text);
    }
    if !forest.entry_map.is_empty() {
        text.push_str("\n#entry-map (ref_id -> subtree root)\n");
        let mut entries: Vec<_> = forest.entry_map.iter().collect();
        entries.sort();
        for (r, root) in entries {
            text.push_str(&format!("{r}->{root} "));
        }
    }
    Description { text, included }
}

/// Expands the branches beneath the given node ids (targeted
/// `further_query` mode (a)); `-1` anywhere requests the complete forest
/// (mode (b)).
pub fn further_query(forest: &Forest, cfg: &DescribeConfig, ids: &[i64]) -> Description {
    if ids.contains(&-1) {
        return full_description(forest, cfg);
    }
    let shared_names = shared_name_set(forest);
    let mut text = String::new();
    let mut included = HashSet::new();
    for &id in ids {
        let Ok(idx) = usize::try_from(id) else {
            continue;
        };
        if idx >= forest.nodes.len() {
            text.push_str(&format!("#branch {id}: unknown id\n"));
            continue;
        }
        text.push_str(&format!("#branch {id}\n"));
        write_node(forest, idx, 0, cfg, &shared_names, None, &mut included, &mut text);
        text.push('\n');
    }
    Description { text, included }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ung_from_parts;
    use crate::topology::{build_forest, decycle, ForestConfig};
    use dmi_uia::ControlType as CT;

    fn forest_fixture() -> Forest {
        // root -> Home(tab) -> [Font(group) -> Bold, Italic]; Home -> Dialog(window, merge via Insert too)
        let mut g = ung_from_parts(
            &[
                ("Home", CT::TabItem),
                ("Insert", CT::TabItem),
                ("Font", CT::Group),
                ("Bold", CT::Button),
                ("Italic", CT::Button),
                ("Colors", CT::Window),
            ],
            &[(0, 2), (2, 3), (2, 4), (0, 5), (1, 5)],
        );
        let r = g.root();
        g.add_edge(r, 2); // root -> Insert (arena id 2)
                          // Big payload under Colors so it externalizes.
        for i in 0..20 {
            let id = g.add_node(crate::graph::UngNode {
                control: dmi_uia::ControlId {
                    primary: format!("Cell{i}"),
                    control_type: CT::ListItem,
                    ancestor_path: String::new(),
                },
                name: format!("Cell {i}"),
                control_type: CT::ListItem,
                help_text: String::new(),
            });
            let colors = 6; // arena id of Colors node
            g.add_edge(colors, id);
        }
        decycle(&mut g);
        let (f, _) = build_forest(&g, &ForestConfig::default());
        f
    }

    #[test]
    fn schema_shape_and_ids() {
        let f = forest_fixture();
        let d = full_description(&f, &DescribeConfig::default());
        assert!(d.text.contains("#main-tree"));
        assert!(d.text.contains("Bold(Button)"));
        assert!(d.text.contains("#shared-subtree-0"));
        assert!(d.text.contains("#entry-map"));
        // Every node included in the full description.
        assert_eq!(d.included.len(), f.len());
    }

    #[test]
    fn core_prunes_depth() {
        let f = forest_fixture();
        let cfg = DescribeConfig { core_max_depth: 1, ..Default::default() };
        let d = core_description(&f, &cfg);
        assert!(d.text.contains("further_query"));
        assert!(d.included.len() < f.len());
    }

    #[test]
    fn enum_pruning_keeps_prefix_and_marker() {
        let f = forest_fixture();
        let cfg = DescribeConfig {
            enum_threshold: 10,
            enum_keep: 3,
            core_max_depth: 10,
            ..Default::default()
        };
        let d = core_description(&f, &cfg);
        assert!(d.text.contains("Cell 0"));
        assert!(!d.text.contains("Cell 15"));
        assert!(d.text.contains("more, further_query"));
    }

    #[test]
    fn manual_prune_stubs_node() {
        let f = forest_fixture();
        let cfg = DescribeConfig { manual_prune: vec!["Font".into()], ..Default::default() };
        let d = core_description(&f, &cfg);
        assert!(d.text.contains("Font(Group)"));
        assert!(!d.text.contains("Bold(Button)"));
        let full = full_description(&f, &cfg);
        assert!(full.text.contains("Bold(Button)"), "full description ignores manual prunes");
    }

    #[test]
    fn further_query_expands_branch() {
        let f = forest_fixture();
        let cfg = DescribeConfig { manual_prune: vec!["Font".into()], ..Default::default() };
        let core = core_description(&f, &cfg);
        assert!(!core.text.contains("Bold(Button)"));
        let font_id = f.nodes.iter().find(|n| n.name == "Font").unwrap().id;
        let d = further_query(&f, &cfg, &[font_id as i64]);
        assert!(d.text.contains("Bold(Button)"));
        // -1 fetches everything.
        let all = further_query(&f, &cfg, &[-1]);
        assert_eq!(all.included.len(), f.len());
    }

    #[test]
    fn sanitize_strips_structural_chars() {
        assert_eq!(sanitize("a(b)[c],d_e"), "a b c d e");
        assert_eq!(sanitize("  spaced   out  "), "spaced out");
    }

    #[test]
    fn token_cost_is_about_15_per_control() {
        let f = forest_fixture();
        let d = full_description(&f, &DescribeConfig::default());
        let per_control = d.tokens() as f64 / f.len() as f64;
        assert!((3.0..=25.0).contains(&per_control), "tokens per control = {per_control:.1}");
    }

    #[test]
    fn descriptions_attach_to_key_types_with_help() {
        let mut g = ung_from_parts(&[("Menu", CT::SplitButton), ("Leaf", CT::Text)], &[(0, 1)]);
        // Attach help text manually.
        let ids: Vec<usize> = g.ids().collect();
        let _ = ids;
        decycle(&mut g);
        let (f, _) = build_forest(&g, &ForestConfig::default());
        let d = full_description(&f, &DescribeConfig::default());
        // No help text in fixture: no description parens beyond type.
        assert!(!d.text.contains(")(…"));
    }
}
