//! The [`Dmi`] facade: one object bundling the offline model (forest +
//! descriptions) with the online interfaces (`visit`, state, observation).
//!
//! # Examples
//!
//! ```no_run
//! use dmi_core::{Dmi, DmiBuildConfig};
//! use dmi_gui::Session;
//! use dmi_apps::AppKind;
//!
//! let mut session = Session::new(AppKind::Word.launch());
//! let (dmi, stats) = Dmi::build(&mut session, &DmiBuildConfig::office("Word"));
//! println!("modeled {} controls", stats.rip_nodes);
//! println!("core topology: {} tokens", dmi.core_tokens());
//! let outcome = dmi.visit_json(&mut session, r#"[{"id": 42}]"#);
//! assert!(outcome.error.is_none() || outcome.error.is_some());
//! ```

use crate::describe::{self, DescribeConfig, Description};
use crate::error::DmiError;
use crate::graph::Ung;
use crate::interface::{executor, visit, ExecutorConfig, FilteredCommand, VisitCommand};
use crate::ripper::{self, RipConfig, RipStats};
use crate::topology::{build_forest, decycle, DecycleStats, Forest, ForestConfig, ForestStats};
use dmi_gui::Session;

/// Configuration for the full offline pipeline.
#[derive(Debug, Clone, Default)]
pub struct DmiBuildConfig {
    /// Ripper options.
    pub rip: RipConfig,
    /// Forest transformation options.
    pub forest: ForestConfig,
    /// Description options.
    pub describe: DescribeConfig,
}

impl DmiBuildConfig {
    /// The configuration used for the Office case studies.
    pub fn office(app: &str) -> DmiBuildConfig {
        DmiBuildConfig {
            rip: RipConfig::office(app),
            forest: ForestConfig::default(),
            describe: DescribeConfig::default(),
        }
    }
}

/// Statistics from the offline phase (§5.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct DmiBuildStats {
    /// Ripper stats.
    pub rip: RipStats,
    /// Nodes in the raw UNG.
    pub rip_nodes: usize,
    /// Edges in the raw UNG.
    pub rip_edges: usize,
    /// Decycle stats.
    pub decycle: DecycleStats,
    /// Forest stats.
    pub forest: ForestStats,
    /// Tokens in the core topology description.
    pub core_tokens: usize,
    /// Tokens in the full forest description.
    pub full_tokens: usize,
    /// Controls included in the core topology.
    pub core_controls: usize,
}

/// Outcome of one `visit` call.
#[derive(Debug, Clone, Default)]
pub struct VisitOutcome {
    /// Human-readable log of executed commands.
    pub executed: Vec<String>,
    /// Commands removed by the navigation filter (§3.4).
    pub filtered: Vec<FilteredCommand>,
    /// First error (aborts remaining commands).
    pub error: Option<DmiError>,
    /// Response to a `further_query` command.
    pub query_result: Option<String>,
}

impl VisitOutcome {
    /// Whether the call completed without error.
    pub fn ok(&self) -> bool {
        self.error.is_none()
    }
}

/// The Declarative Model Interface for one modeled application.
#[derive(Debug, Clone)]
pub struct Dmi {
    /// The path-unambiguous navigation topology.
    pub forest: Forest,
    /// Description options.
    pub describe: DescribeConfig,
    /// Executor options.
    pub executor: ExecutorConfig,
    core: Description,
}

impl Dmi {
    /// Runs the full offline phase against a live session: rip → decycle →
    /// forest → core description.
    pub fn build(session: &mut Session, config: &DmiBuildConfig) -> (Dmi, DmiBuildStats) {
        let (g, rip_stats) = ripper::rip(session, &config.rip);
        session.restart();
        let (dmi, mut stats) = Dmi::from_ung(g, config);
        stats.rip = rip_stats;
        (dmi, stats)
    }

    /// Runs the post-rip half of the offline pipeline (decycle → forest →
    /// core description) on an existing UNG — the warm-boot path for
    /// graphs loaded from a persistent store. The pipeline is a pure
    /// function of the graph bytes, so a byte-identical stored UNG yields
    /// a model identical to the one its original rip built.
    pub fn from_ung(mut g: Ung, config: &DmiBuildConfig) -> (Dmi, DmiBuildStats) {
        let mut stats = DmiBuildStats {
            rip_nodes: g.node_count(),
            rip_edges: g.edge_count(),
            ..Default::default()
        };
        stats.decycle = decycle(&mut g);
        let (forest, fstats) = build_forest(&g, &config.forest);
        stats.forest = fstats;
        let dmi = Dmi::from_forest(forest, config.describe.clone());
        stats.core_tokens = dmi.core.tokens();
        stats.core_controls = dmi.core.included.len();
        stats.full_tokens = describe::full_description(&dmi.forest, &dmi.describe).tokens();
        (dmi, stats)
    }

    /// Wraps an already-built forest.
    pub fn from_forest(forest: Forest, describe_cfg: DescribeConfig) -> Dmi {
        let core = describe::core_description(&forest, &describe_cfg);
        Dmi { forest, describe: describe_cfg, executor: ExecutorConfig::default(), core }
    }

    /// Serializes the offline model (forest + description options) to
    /// JSON. The model is version-specific but reusable across machines
    /// for the same application build (§5.2).
    pub fn to_json(&self) -> String {
        #[derive(serde::Serialize)]
        struct Saved<'a> {
            forest: &'a Forest,
            describe: &'a DescribeConfig,
        }
        serde_json::to_string(&Saved { forest: &self.forest, describe: &self.describe })
            .expect("model serializes")
    }

    /// Restores a model saved with [`Dmi::to_json`].
    pub fn from_json(json: &str) -> Result<Dmi, DmiError> {
        #[derive(serde::Deserialize)]
        struct Saved {
            forest: Forest,
            describe: DescribeConfig,
        }
        let s: Saved = serde_json::from_str(json)
            .map_err(|e| DmiError::Malformed { message: format!("bad saved model: {e}") })?;
        Ok(Dmi::from_forest(s.forest, s.describe))
    }

    /// Saves the offline model to a file.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Loads an offline model saved with [`Dmi::save`].
    pub fn load(path: &std::path::Path) -> std::io::Result<Dmi> {
        let json = std::fs::read_to_string(path)?;
        Dmi::from_json(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// The core topology text included in every prompt (§3.3).
    pub fn core_text(&self) -> &str {
        &self.core.text
    }

    /// Token cost of the core topology.
    pub fn core_tokens(&self) -> usize {
        self.core.tokens()
    }

    /// Whether a node is fully described in the core topology (callers
    /// needing pruned nodes must `further_query` first, §3.3).
    pub fn core_includes(&self, id: usize) -> bool {
        self.core.included.contains(&id)
    }

    /// Handles a `further_query` request.
    pub fn further_query(&self, ids: &[i64]) -> String {
        describe::further_query(&self.forest, &self.describe, ids).text
    }

    /// Executes a `visit` call given raw JSON from the LLM.
    pub fn visit_json(&self, session: &mut Session, json: &str) -> VisitOutcome {
        match visit::parse_commands(json) {
            Ok(cmds) => self.visit(session, cmds),
            Err(e) => VisitOutcome { error: Some(e), ..Default::default() },
        }
    }

    /// Executes parsed `visit` commands: filters navigational targets,
    /// then runs each command in order, stopping at the first error.
    pub fn visit(&self, session: &mut Session, commands: Vec<VisitCommand>) -> VisitOutcome {
        let (kept, filtered) = visit::filter_non_leaf(&self.forest, commands);
        let mut outcome = VisitOutcome { filtered, ..Default::default() };
        for cmd in kept {
            let result = match &cmd {
                VisitCommand::Access { id, entry_ref_id, .. } => {
                    executor::access(session, &self.forest, &self.executor, *id, entry_ref_id, None)
                        .map(|()| format!("accessed #{id}"))
                }
                VisitCommand::AccessInput { id, entry_ref_id, text } => executor::access(
                    session,
                    &self.forest,
                    &self.executor,
                    *id,
                    entry_ref_id,
                    Some(text),
                )
                .map(|()| format!("accessed #{id} and input {} chars", text.len())),
                VisitCommand::Shortcut { keys } => {
                    session.press(keys).map(|()| format!("pressed {keys}")).map_err(DmiError::from)
                }
                VisitCommand::FurtherQuery { ids } => {
                    outcome.query_result = Some(self.further_query(ids));
                    Ok(format!("queried {ids:?}"))
                }
            };
            match result {
                Ok(log) => outcome.executed.push(log),
                Err(e) => {
                    outcome.error = Some(e);
                    break;
                }
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmi_apps::AppKind;

    fn build_word() -> (Session, Dmi, DmiBuildStats) {
        static STATS: std::sync::OnceLock<()> = std::sync::OnceLock::new();
        let _ = STATS;
        let s = Session::new(AppKind::Word.launch_small());
        let forest = crate::testutil::small_forest(AppKind::Word).clone();
        let dmi = Dmi::from_forest(forest, crate::describe::DescribeConfig::default());
        let stats = DmiBuildStats {
            core_tokens: dmi.core_tokens(),
            core_controls: dmi.core.included.len(),
            full_tokens: crate::describe::full_description(&dmi.forest, &dmi.describe).tokens(),
            ..Default::default()
        };
        (s, dmi, stats)
    }

    #[test]
    fn build_produces_core_smaller_than_full() {
        let (_s, dmi, stats) = build_word();
        assert!(stats.core_tokens > 0);
        assert!(stats.core_tokens < stats.full_tokens);
        assert!(stats.core_controls < dmi.forest.len());
        assert!(dmi.core_text().contains("#main-tree"));
    }

    #[test]
    fn visit_json_end_to_end_bold() {
        let (mut s, dmi, _) = build_word();
        // Select a line via the model (stand-in for a state declaration).
        let surf = s.app().tree().find_by_automation_id("Body").unwrap();
        s.select_lines(surf, 0, 2).unwrap();
        let bold = dmi
            .forest
            .nodes
            .iter()
            .find(|n| n.name == "Bold" && dmi.forest.is_functional_leaf(n.id))
            .unwrap()
            .id;
        let out = dmi.visit_json(&mut s, &format!(r#"[{{"id": {bold}}}]"#));
        assert!(out.ok(), "{:?}", out.error);
        let w = s.app().as_any().downcast_ref::<dmi_apps::WordApp>().unwrap();
        assert!(w.doc.paragraphs[0].format.bold);
    }

    #[test]
    fn visit_filters_navigational_targets_and_continues() {
        let (mut s, dmi, _) = build_word();
        let home = dmi.forest.nodes.iter().find(|n| n.name == "Home").unwrap().id;
        let surf = s.app().tree().find_by_automation_id("Body").unwrap();
        s.select_lines(surf, 0, 0).unwrap();
        let italic = dmi
            .forest
            .nodes
            .iter()
            .find(|n| n.name == "Italic" && dmi.forest.is_functional_leaf(n.id))
            .unwrap()
            .id;
        let json = format!(r#"[{{"id": {home}}}, {{"id": {italic}}}]"#);
        let out = dmi.visit_json(&mut s, &json);
        assert!(out.ok());
        assert_eq!(out.filtered.len(), 1);
        assert_eq!(out.executed.len(), 1);
        let w = s.app().as_any().downcast_ref::<dmi_apps::WordApp>().unwrap();
        assert!(w.doc.paragraphs[0].format.italic);
    }

    #[test]
    fn further_query_returns_expansion() {
        let (mut s, dmi, _) = build_word();
        let out = dmi.visit_json(&mut s, r#"[{"further_query": [-1]}]"#);
        assert!(out.ok());
        let q = out.query_result.unwrap();
        assert!(q.contains("#main-tree"));
        assert!(crate::tokens::count(&q) >= dmi.core_tokens());
    }

    #[test]
    fn malformed_json_reports_error() {
        let (mut s, dmi, _) = build_word();
        let out = dmi.visit_json(&mut s, "[{]");
        assert!(matches!(out.error, Some(DmiError::Malformed { .. })));
    }

    #[test]
    fn multi_command_single_call() {
        // The Table 1 pattern: several commands in one visit call.
        let mut s = Session::new(AppKind::PowerPoint.launch_small());
        let forest = crate::testutil::small_forest(AppKind::PowerPoint).clone();
        let dmi = Dmi::from_forest(forest, crate::describe::DescribeConfig::default());
        let blue = dmi
            .forest
            .nodes
            .iter()
            .find(|n| {
                n.name == "Blue"
                    && dmi.forest.is_functional_leaf(n.id)
                    && dmi
                        .forest
                        .path_to(n.id)
                        .iter()
                        .any(|&a| dmi.forest.nodes[a].name == "Fill Color")
            })
            .expect("Blue under Fill Color")
            .id;
        let apply = dmi
            .forest
            .nodes
            .iter()
            .find(|n| n.name == "Apply to All" && dmi.forest.is_functional_leaf(n.id))
            .unwrap()
            .id;
        let entry_blue = entry_for(&dmi, blue);
        let entry_apply = entry_for(&dmi, apply);
        let json = format!(r#"[{{"id": {blue}{entry_blue}}}, {{"id": {apply}{entry_apply}}}]"#);
        let out = dmi.visit_json(&mut s, &json);
        assert!(out.ok(), "{:?}", out.error);
        let ppt = s.app().as_any().downcast_ref::<dmi_apps::PowerPointApp>().unwrap();
        assert!(ppt.deck.slides.iter().all(|sl| sl.background.as_deref() == Some("Blue")));
    }

    fn entry_for(dmi: &Dmi, id: usize) -> String {
        match dmi.forest.in_shared_subtree(id) {
            Some(root) => {
                let refs = dmi.forest.references_to(root);
                format!(r#", "entry_ref_id": [{}]"#, refs[0])
            }
            None => String::new(),
        }
    }
}
