//! Structured error feedback (§3.4).
//!
//! DMI returns *structured* errors that describe control state and context
//! so the caller (an LLM) can re-plan — e.g. "control located but disabled"
//! rather than a bare failure.

use serde::{Deserialize, Serialize};

/// Result alias for DMI operations.
pub type DmiResult<T> = Result<T, DmiError>;

/// Errors surfaced by the DMI interfaces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DmiError {
    /// The numeric topology id does not exist.
    UnknownId {
        /// The id the caller used.
        id: u64,
    },
    /// The target lives in a shared subtree and the entry reference is
    /// missing or ambiguous; `candidates` lists usable reference ids.
    AmbiguousEntry {
        /// Target id.
        id: u64,
        /// Reference-node ids that reach the target's subtree.
        candidates: Vec<u64>,
    },
    /// The supplied entry reference does not lead to the target's subtree.
    WrongEntry {
        /// Target id.
        id: u64,
        /// The reference id supplied.
        entry: u64,
    },
    /// Navigation could not locate a control on screen (after fuzzy
    /// matching and retries).
    ControlNotFound {
        /// The control's modeled name.
        name: String,
        /// Root-first modeled path.
        path: String,
        /// How many retries were attempted.
        retries: u32,
    },
    /// The control was located but is disabled; context for re-planning.
    ControlDisabled {
        /// Control name.
        name: String,
        /// Root-first path on screen.
        path: String,
    },
    /// A command was malformed (bad JSON, conflicting fields).
    Malformed {
        /// What was wrong.
        message: String,
    },
    /// `further_query` mixed with other commands (it is exclusive).
    QueryNotExclusive,
    /// Screen-label resolution failed for an interaction interface.
    LabelNotFound {
        /// The label the caller used.
        label: String,
    },
    /// Static topology ids are prohibited in interaction interfaces
    /// (§3.5 separation of control access and complex interactions).
    StaticIdProhibited {
        /// The offending label text.
        label: String,
    },
    /// A control does not support the pattern an interface requires; the
    /// executor refuses to partially execute (§4.4).
    PatternUnsupported {
        /// Control name.
        name: String,
        /// Pattern required.
        pattern: String,
    },
    /// An argument was out of range.
    InvalidArgument {
        /// Description.
        message: String,
    },
    /// The underlying UI rejected an interaction.
    Interaction {
        /// Description from the UI layer.
        message: String,
    },
}

impl std::fmt::Display for DmiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DmiError::UnknownId { id } => write!(f, "unknown topology id {id}"),
            DmiError::AmbiguousEntry { id, candidates } => write!(
                f,
                "target {id} is in a shared subtree; specify entry_ref_id from {candidates:?}"
            ),
            DmiError::WrongEntry { id, entry } => {
                write!(f, "entry_ref_id {entry} does not reach target {id}'s subtree")
            }
            DmiError::ControlNotFound { name, path, retries } => {
                write!(f, "control '{name}' (path {path}) not found after {retries} retries")
            }
            DmiError::ControlDisabled { name, path } => {
                write!(f, "control '{name}' at '{path}' is present but disabled")
            }
            DmiError::Malformed { message } => write!(f, "malformed command: {message}"),
            DmiError::QueryNotExclusive => {
                write!(f, "further_query cannot be mixed with other commands")
            }
            DmiError::LabelNotFound { label } => write!(f, "no on-screen control labeled '{label}'"),
            DmiError::StaticIdProhibited { label } => write!(
                f,
                "'{label}' looks like a static topology id; interaction interfaces accept only on-screen labels"
            ),
            DmiError::PatternUnsupported { name, pattern } => {
                write!(f, "'{name}' does not support {pattern}; nothing was executed")
            }
            DmiError::InvalidArgument { message } => write!(f, "invalid argument: {message}"),
            DmiError::Interaction { message } => write!(f, "interaction failed: {message}"),
        }
    }
}

impl std::error::Error for DmiError {}

/// A fault detected and contained by the fleet rip engine. Unlike a
/// [`DmiError`] (a per-command interaction failure fed back to the
/// caller for re-planning), a `RipError` records that an entire
/// frontier's parallel rip could not be trusted: a worker shard died, or
/// a determinism oracle caught the application drifting from its
/// attested launch image. The scheduler quarantines exactly the faulty
/// frontier — sibling lanes finish byte-identical to their sequential
/// rips — and reports the fault inside
/// [`crate::parallel::RipStatus::Degraded`] or
/// [`crate::parallel::RipStatus::Failed`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RipError {
    /// A worker shard panicked while exploring a candidate for this
    /// entry. The exploration unit (fork + planner state) died with the
    /// unwind; the panic payload is preserved verbatim.
    WorkerPanic {
        /// The fleet entry's caller-chosen id.
        app_id: String,
        /// The panic payload, rendered as text.
        payload: String,
    },
    /// A worker-side fork produced a post-restart base that does not
    /// match the lane's — the application's reset is not restoring the
    /// attested pristine image, so worker outcomes can no longer be
    /// merged soundly.
    Divergence {
        /// The fleet entry's caller-chosen id.
        app_id: String,
        /// What diverged (digests, first divergent window/control).
        detail: String,
    },
}

impl std::fmt::Display for RipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RipError::WorkerPanic { app_id, payload } => {
                write!(f, "worker shard panicked while serving app '{app_id}': {payload}")
            }
            RipError::Divergence { app_id, detail } => {
                write!(f, "determinism divergence detected for app '{app_id}': {detail}")
            }
        }
    }
}

impl std::error::Error for RipError {}

impl From<dmi_gui::AppError> for DmiError {
    fn from(e: dmi_gui::AppError) -> Self {
        DmiError::Interaction { message: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_replanning_context() {
        let e =
            DmiError::ControlDisabled { name: "Paste".into(), path: "Word/Home/Clipboard".into() };
        let s = e.to_string();
        assert!(s.contains("Paste") && s.contains("disabled") && s.contains("Clipboard"));
    }

    #[test]
    fn ambiguous_entry_lists_candidates() {
        let e = DmiError::AmbiguousEntry { id: 9, candidates: vec![3, 7] };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('7'));
    }
}
