//! Generative adversarial applications: random widget arenas behind the
//! [`GuiApp`] trait, with injectable determinism faults.

use dmi_gui::{
    AppError, Behavior, CommandBinding, CommitKind, GuiApp, UiTree, Widget, WidgetBuilder, WidgetId,
};
use dmi_uia::ControlType as CT;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Maximum scope-stack depth the arena builder honors; deeper push ops
/// degrade to plain buttons so arbitrary (and arbitrarily shrunk) op
/// sequences always build a rippable UI.
const MAX_DEPTH: usize = 4;

/// One arena-growing instruction. The builder keeps a scope stack
/// (current parent widget); push ops open a scope, [`ArenaOp::Pop`]
/// closes one. Every sequence of ops is valid — out-of-place ops degrade
/// rather than fail — which is what keeps delta-debugged subsequences
/// ([`super::shrink_ops`]) buildable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArenaOp {
    /// A command button (`Button {k}`) under the current scope.
    Button(u16),
    /// A dismiss-on-pick list item (`Item {k}`) under the current scope.
    Item(u16),
    /// A popup menu (`Menu {k}`); pushes its scope.
    Menu(u16),
    /// A modal dialog (`Dialog {k}`) reachable through an opener button;
    /// pushes the dialog's scope. Only legal from the main window's
    /// scope chain (degrades to a button elsewhere). The dialog always
    /// gets a `Close {k}` cancel button so it stays escapable.
    Dialog(u16),
    /// A tab item (`Tab {k}`); pushes its scope. The first tab of each
    /// window starts selected.
    Tab(u16),
    /// Closes the innermost open scope (no-op at the main window).
    Pop,
}

impl ArenaOp {
    /// Decodes one raw `(kind, k)` pair — the shrink-friendly encoding
    /// property tests sample (`u8` kinds shrink toward `Button`).
    pub fn from_raw(kind: u8, k: u16) -> ArenaOp {
        match kind % 6 {
            0 => ArenaOp::Button(k),
            1 => ArenaOp::Item(k),
            2 => ArenaOp::Menu(k),
            3 => ArenaOp::Tab(k),
            4 => ArenaOp::Dialog(k),
            _ => ArenaOp::Pop,
        }
    }
}

/// Which determinism lies an [`AdversarialApp`] tells, and when. All
/// fields off is an honest, fully deterministic app — the property the
/// clean-spec identity fuzz relies on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Forked instances relabel a control once their reset count reaches
    /// this value — the "nondeterministic relabel on restart" class. The
    /// app honestly refuses to attest a `pristine_token`, so captures
    /// are rebuilt and the fleet's base-digest oracle sees the drift.
    pub relabel_on_restart: Option<u32>,
    /// Every reset leaks a counter into a widget name while *still
    /// attesting* the pristine token — the capture layer's restart
    /// stash serves stale bytes. Caught by the cached-vs-rebuild oracle.
    pub lying_reset: bool,
    /// After this many dispatches, a widget is relabeled WITHOUT bumping
    /// epoch or window stamps — the MRU cache keeps serving the old
    /// bytes. Caught by the cached-vs-rebuild oracle.
    pub unstamped_relabel_after: Option<u32>,
    /// Cancel-closing a window (Esc or a cancel button) mutates the main
    /// window unstamped — "Esc lands in the wrong state". Caught by the
    /// Esc-recovery-vs-full-restart oracle.
    pub esc_side_effect: bool,
    /// Forked instances panic on their nth dispatch — a worker dying
    /// mid-task. Contained by the fleet scheduler as
    /// [`crate::parallel::RipStatus::Failed`].
    pub panic_on_click: Option<u32>,
    /// Forked instances drift (stamped relabel, persisting through
    /// reset) after this many dispatches. No `pristine_token` is
    /// attested; the fleet's base-digest oracle quarantines the lane.
    pub fork_divergence_after: Option<u32>,
}

impl FaultPlan {
    /// Whether any fault is armed.
    pub fn any(&self) -> bool {
        *self != FaultPlan::default()
    }
}

/// A generated application: the arena-growing ops plus the fault plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppSpec {
    /// Arena-growing instructions, applied in order.
    pub ops: Vec<ArenaOp>,
    /// The lies this app tells (none by default).
    pub faults: FaultPlan,
}

impl AppSpec {
    /// A clean (fault-free) spec from explicit ops.
    pub fn new(ops: Vec<ArenaOp>) -> AppSpec {
        AppSpec { ops, faults: FaultPlan::default() }
    }

    /// Decodes a spec from the raw pairs property tests sample.
    pub fn from_raw(raw: &[(u8, u16)]) -> AppSpec {
        AppSpec::new(raw.iter().map(|&(kind, k)| ArenaOp::from_raw(kind, k)).collect())
    }

    /// Deterministically generates a random clean spec (up to `max_ops`
    /// ops) — the seeded driver for the bulk identity fuzz runs.
    pub fn generate(seed: u64, max_ops: usize) -> AppSpec {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.gen_range(1..max_ops.max(2));
        let ops = (0..n)
            .map(|_| {
                ArenaOp::from_raw(rng.gen_range(0..32u32) as u8, rng.gen_range(0..6u32) as u16)
            })
            .collect();
        AppSpec::new(ops)
    }

    /// Arms a fault plan on this spec.
    pub fn with_faults(mut self, faults: FaultPlan) -> AppSpec {
        self.faults = faults;
        self
    }

    /// An FNV-1a fingerprint of the spec, used as the (possibly lying)
    /// pristine token.
    pub fn token(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in format!("{:?}", self).bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

/// Builds the widget arena for a spec. `drift` renames the drift target
/// (fork divergence / restart relabel); `leak` > 0 appends the lying
/// reset counter to it. Both go through the unstamped relabel hook —
/// the tree is freshly built, so stamps carry no history to preserve.
fn build(spec: &AppSpec, drift: bool, leak: u32) -> UiTree {
    let mut t = UiTree::new();
    let main = t.add_root(Widget::new("Fuzz", CT::Window));
    // (parent to add under, root window of that scope)
    let mut stack: Vec<(WidgetId, WidgetId)> = vec![(main, main)];
    let mut tabbed: Vec<WidgetId> = Vec::new(); // windows with a selected tab
    for op in &spec.ops {
        let (parent, root) = *stack.last().expect("the main scope is never popped");
        match *op {
            ArenaOp::Button(k) => {
                add_button(&mut t, parent, k);
            }
            ArenaOp::Item(k) => {
                t.add(
                    parent,
                    WidgetBuilder::new(format!("Item {k}"), CT::ListItem)
                        .on_click(Behavior::CommandAndDismiss(CommandBinding::new(format!(
                            "pick-{k}"
                        ))))
                        .build(),
                );
            }
            ArenaOp::Menu(k) => {
                if stack.len() >= MAX_DEPTH {
                    add_button(&mut t, parent, k);
                } else {
                    let m = t.add(
                        parent,
                        WidgetBuilder::new(format!("Menu {k}"), CT::SplitButton)
                            .popup()
                            .on_click(Behavior::OpenMenu)
                            .build(),
                    );
                    stack.push((m, root));
                }
            }
            ArenaOp::Tab(k) => {
                if stack.len() >= MAX_DEPTH {
                    add_button(&mut t, parent, k);
                } else {
                    let mut b = WidgetBuilder::new(format!("Tab {k}"), CT::TabItem)
                        .on_click(Behavior::SwitchTab);
                    if !tabbed.contains(&root) {
                        tabbed.push(root);
                        b = b.selected();
                    }
                    let tid = t.add(parent, b.build());
                    stack.push((tid, root));
                }
            }
            ArenaOp::Dialog(k) => {
                if root != main || stack.len() >= MAX_DEPTH {
                    add_button(&mut t, parent, k);
                } else {
                    let dlg = t.add_root(Widget::new(format!("Dialog {k}"), CT::Window));
                    t.add(
                        dlg,
                        WidgetBuilder::new(format!("Close {k}"), CT::Button)
                            .on_click(Behavior::CloseWindow(CommitKind::Cancel))
                            .build(),
                    );
                    t.add(
                        parent,
                        WidgetBuilder::new(format!("Open Dialog {k}"), CT::Button)
                            .on_click(Behavior::OpenDialog(dlg))
                            .build(),
                    );
                    stack.push((dlg, dlg));
                }
            }
            ArenaOp::Pop => {
                if stack.len() > 1 {
                    stack.pop();
                }
            }
        }
    }
    if let Some(target) = drift_target(&t, main) {
        if drift {
            t.relabel_unstamped(target, DRIFT_NAME);
        } else if leak > 0 {
            let name = format!("{} #{leak}", t.widget(target).name);
            t.relabel_unstamped(target, name);
        }
    }
    t
}

fn add_button(t: &mut UiTree, parent: WidgetId, k: u16) {
    t.add(
        parent,
        WidgetBuilder::new(format!("Button {k}"), CT::Button)
            .on_click(Behavior::Command(CommandBinding::new(format!("cmd-{k}"))))
            .build(),
    );
}

/// The widget faults mutate: the main window's first child (`None` for
/// an empty arena, where mutation faults have nothing to bite).
fn drift_target(t: &UiTree, main: WidgetId) -> Option<WidgetId> {
    t.iter().find(|(_, w)| w.parent == Some(main)).map(|(id, _)| id)
}

/// What a drifted fork renames its target to (fixed, so drift is
/// idempotent and deterministic per instance).
const DRIFT_NAME: &str = "drifted control";

/// A generated application with optional injected determinism faults —
/// the fuzz harness's [`GuiApp`]. With an empty [`FaultPlan`] it is a
/// fully deterministic, forkable, honestly-attesting app.
pub struct AdversarialApp {
    spec: AppSpec,
    tree: UiTree,
    /// Forked instances carry the worker-side faults; the caller's
    /// original (and any sequential reference rip) stays honest, so the
    /// sequential graph remains the trustworthy baseline.
    is_fork: bool,
    resets: u32,
    dispatches: u32,
    diverged: bool,
    leak: u32,
    mangles: u32,
}

impl AdversarialApp {
    /// Builds the app in its launch state.
    pub fn new(spec: AppSpec) -> AdversarialApp {
        let tree = build(&spec, false, 0);
        AdversarialApp {
            spec,
            tree,
            is_fork: false,
            resets: 0,
            dispatches: 0,
            diverged: false,
            leak: 0,
            mangles: 0,
        }
    }

    /// Convenience: a boxed launch-state instance.
    pub fn launch(spec: AppSpec) -> Box<dyn GuiApp> {
        Box::new(AdversarialApp::new(spec))
    }

    fn target(&self) -> Option<WidgetId> {
        drift_target(&self.tree, self.tree.main_root())
    }
}

impl GuiApp for AdversarialApp {
    fn name(&self) -> &str {
        "Fuzz"
    }

    fn tree(&self) -> &UiTree {
        &self.tree
    }

    fn tree_mut(&mut self) -> &mut UiTree {
        &mut self.tree
    }

    fn dispatch(&mut self, _src: WidgetId, _b: &CommandBinding) -> Result<(), AppError> {
        self.dispatches += 1;
        if self.is_fork {
            if let Some(n) = self.spec.faults.panic_on_click {
                if self.dispatches == n {
                    panic!("injected fault: worker dispatch #{n} dies mid-click");
                }
            }
            if let Some(n) = self.spec.faults.fork_divergence_after {
                if self.dispatches >= n && !self.diverged {
                    self.diverged = true;
                    if let Some(id) = self.target() {
                        // Stamped — the app is not hiding this mutation;
                        // it is simply no longer the app it forked from.
                        self.tree.widget_mut(id).name = String::from(DRIFT_NAME);
                    }
                }
            }
        }
        if let Some(n) = self.spec.faults.unstamped_relabel_after {
            if self.dispatches == n {
                if let Some(id) = self.target() {
                    self.tree.relabel_unstamped(id, "stale control");
                }
            }
        }
        Ok(())
    }

    fn on_window_close(&mut self, _root: WidgetId, commit: CommitKind) -> Result<(), AppError> {
        if self.spec.faults.esc_side_effect && commit == CommitKind::Cancel {
            self.mangles += 1;
            if let Some(id) = self.target() {
                let name = format!("esc victim {}", self.mangles);
                self.tree.relabel_unstamped(id, name);
            }
        }
        Ok(())
    }

    fn reset(&mut self) {
        self.resets += 1;
        if self.spec.faults.lying_reset {
            self.leak += 1;
        }
        let drift = self.diverged
            || (self.is_fork
                && self.spec.faults.relabel_on_restart.is_some_and(|n| self.resets >= n));
        self.tree = build(&self.spec, drift, self.leak);
        self.mangles = 0;
    }

    fn fork(&self) -> Option<Box<dyn GuiApp>> {
        Some(Box::new(AdversarialApp {
            spec: self.spec.clone(),
            tree: build(&self.spec, false, 0),
            is_fork: true,
            resets: 0,
            dispatches: 0,
            diverged: false,
            leak: 0,
            mangles: 0,
        }))
    }

    fn pristine_token(&self) -> Option<u64> {
        let f = &self.spec.faults;
        if f.relabel_on_restart.is_some() || f.fork_divergence_after.is_some() {
            // Honest refusal: these resets do NOT restore one fixed image.
            return None;
        }
        // Attested even under `lying_reset` — that attestation IS the lie
        // the cached-capture oracle exists to catch.
        Some(self.spec.token())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_raw_sequence_builds_a_rippable_arena() {
        // Arbitrary (including degenerate) op sequences must build: the
        // shrinker relies on subsequence validity.
        for seed in 0..50u64 {
            let spec = AppSpec::generate(seed, 24);
            let app = AdversarialApp::new(spec.clone());
            assert!(!app.tree().is_empty());
            let mut popped = spec.clone();
            popped.ops.retain(|op| *op != ArenaOp::Pop);
            let _ = AdversarialApp::new(popped);
        }
    }

    #[test]
    fn clean_resets_restore_the_launch_image() {
        let spec = AppSpec::generate(7, 16);
        let mut app = AdversarialApp::new(spec.clone());
        let before = format!("{:?}", collect_names(app.tree()));
        app.reset();
        app.reset();
        assert_eq!(format!("{:?}", collect_names(app.tree())), before);
        assert_eq!(app.pristine_token(), Some(spec.token()));
    }

    #[test]
    fn lying_reset_leaks_but_keeps_attesting() {
        let faults = FaultPlan { lying_reset: true, ..FaultPlan::default() };
        let spec = AppSpec::new(vec![ArenaOp::Button(1), ArenaOp::Button(2)]).with_faults(faults);
        let mut app = AdversarialApp::new(spec.clone());
        let token = app.pristine_token();
        app.reset();
        assert!(
            collect_names(app.tree()).iter().any(|n| n.contains("#1")),
            "the leak must be visible in the real tree"
        );
        assert_eq!(app.pristine_token(), token, "the app keeps lying about pristineness");
    }

    fn collect_names(t: &UiTree) -> Vec<String> {
        t.iter().map(|(_, w)| w.name.clone()).collect()
    }
}
