//! Adversarial determinism fuzzing: generated GUI apps, injected faults,
//! differential oracles, and minimal-reproducer shrinking.
//!
//! Every engine in this crate rests on one contract (see
//! `docs/determinism.md`): a deterministic application plus a fixed
//! action trace yields byte-identical snapshots, and therefore
//! byte-identical UNGs, no matter which engine — sequential, sharded, or
//! fleet — or which cache — MRU, pristine stash, shared pool — served
//! the captures. This module attacks that contract from the application
//! side:
//!
//! - [`gen`] grows random widget arenas ([`AppSpec`] — menus, dialogs,
//!   tab strips, nested popups) and wraps them in an [`AdversarialApp`]
//!   whose [`FaultPlan`] can make the app *lie*: relabel controls on
//!   restart, attest a pristine token its resets don't honor, mutate
//!   widgets without bumping the epoch stamps the capture caches trust,
//!   run Esc-time side effects, panic mid-dispatch on worker forks, or
//!   drift after forking.
//! - [`oracle`] runs the differential oracles — sequential vs parallel
//!   vs fleet UNG bytes, Esc recovery vs full restart, cached vs
//!   full-rebuild captures, pooled vs private captures — and reports the
//!   first [`Divergence`], naming the window and control where the bytes
//!   first disagree (or the contained [`crate::error::RipError`] when
//!   the fleet engine caught the fault first).
//! - [`shrink`] delta-debugs a failing spec's op list down to a minimal
//!   reproducer while the oracle keeps failing.
//!
//! The fault classes are chosen so each one is caught by exactly the
//! layer that trusts the violated promise: reset drift on forks trips
//! the fleet scheduler's base-digest oracle (quarantine →
//! [`crate::parallel::RipStatus::Degraded`]), a lying `pristine_token`
//! trips the cached-vs-rebuild capture oracle, unstamped relabels trip
//! the same oracle through the MRU cache, Esc side effects trip the
//! Esc-vs-restart oracle, and worker panics surface as
//! [`crate::parallel::RipStatus::Failed`] with the payload preserved —
//! never as a process abort.

pub mod gen;
pub mod oracle;
pub mod shrink;

/// Installs (once per process) a panic hook that suppresses the default
/// stderr report for *injected* panics — payloads containing
/// `"injected fault"`, the marker every fault generator in this module
/// and the test fixtures use — while delegating everything else to the
/// previously installed hook. Worker threads are not covered by
/// libtest's output capture, so without this every contained-panic test
/// would spray backtraces over the test run. Call it at the top of any
/// test that injects panics; real (non-injected) panics keep reporting.
pub fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            let injected = p.downcast_ref::<&str>().is_some_and(|s| s.contains("injected fault"))
                || p.downcast_ref::<String>().is_some_and(|s| s.contains("injected fault"));
            if !injected {
                prev(info);
            }
        }));
    });
}

pub use gen::{AdversarialApp, AppSpec, ArenaOp, FaultPlan};
pub use oracle::{
    check_cached_capture, check_esc_recovery, check_fleet, check_parallel, check_pool, check_spec,
    Divergence, OracleKind,
};
pub use shrink::shrink_ops;
