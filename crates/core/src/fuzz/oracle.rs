//! Differential determinism oracles.
//!
//! Every oracle rips the same [`AppSpec`] twice along one axis the
//! determinism contract says must not matter — engine, recovery
//! strategy, capture cache — and byte-compares the resulting UNGs
//! (`serde_json` serialization equality, the same representation the
//! engines themselves pin). On mismatch it walks the graphs for the
//! first node whose identity differs and reports a [`Divergence`]
//! naming the window and control where the bytes first disagree.

use super::gen::{AdversarialApp, AppSpec};
use crate::graph::Ung;
use crate::parallel::{rip_fleet, FleetEntry, ParRipConfig, RipStatus};
use crate::ripper::{rip, RipConfig};
use dmi_gui::{CaptureConfig, CapturePool, Session};

/// Which differential axis an oracle exercised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleKind {
    /// Sequential rip vs single-entry fleet ([`crate::rip_fleet`]).
    Parallel,
    /// Per-entry sequential rips vs a multi-entry fleet run.
    Fleet,
    /// Esc-based state recovery vs full restart-replay.
    EscRecovery,
    /// Cached captures (MRU + pristine stash) vs full rebuilds.
    CachedCapture,
    /// Shared [`CapturePool`] captures vs full rebuilds.
    Pool,
}

/// A determinism violation: which oracle fired and where the two graphs
/// first disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// The oracle that caught it.
    pub oracle: OracleKind,
    /// The window owning the first divergent control (its UNG ancestor
    /// path root), or a summary marker for structural mismatches.
    pub window: String,
    /// The first divergent control's name.
    pub control: String,
    /// Human-readable explanation of the disagreement.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} oracle diverged at window '{}', control '{}': {}",
            self.oracle, self.window, self.control, self.detail
        )
    }
}

/// Rips a fresh instance of `spec` sequentially under the given capture
/// and rip configurations.
fn rip_with(spec: &AppSpec, capture: CaptureConfig, config: &RipConfig) -> Ung {
    let mut s = Session::new(AdversarialApp::launch(spec.clone()));
    s.set_capture_config(capture);
    rip(&mut s, config).0
}

/// Cached captures (MRU probes + the pristine restart stash) must serve
/// the same bytes a from-scratch rebuild produces. Catches lying
/// pristine attestations and unstamped relabels — the two fault classes
/// that desynchronize the cache's trust anchors from the real tree.
pub fn check_cached_capture(spec: &AppSpec) -> Option<Divergence> {
    let cached = rip_with(spec, CaptureConfig::default(), &RipConfig::default());
    let rebuilt = rip_with(spec, CaptureConfig::full_rebuild(), &RipConfig::default());
    diff_graphs(OracleKind::CachedCapture, &cached, &rebuilt)
}

/// Esc-based recovery must land in the same state a full restart-replay
/// reaches. Both rips run with full capture rebuilds so a cancel-time
/// side effect cannot hide behind a stale cache — this oracle isolates
/// the *recovery* axis.
pub fn check_esc_recovery(spec: &AppSpec) -> Option<Divergence> {
    let esc = RipConfig { esc_recovery: true, ..RipConfig::default() };
    let restart = RipConfig { esc_recovery: false, ..RipConfig::default() };
    let fast = rip_with(spec, CaptureConfig::full_rebuild(), &esc);
    let slow = rip_with(spec, CaptureConfig::full_rebuild(), &restart);
    diff_graphs(OracleKind::EscRecovery, &fast, &slow)
}

/// Captures served through a shared [`CapturePool`] must match full
/// rebuilds.
pub fn check_pool(spec: &AppSpec) -> Option<Divergence> {
    let mut s = Session::new(AdversarialApp::launch(spec.clone()));
    s.set_capture_pool(Some(CapturePool::shared()));
    let pooled = rip(&mut s, &RipConfig::default()).0;
    let rebuilt = rip_with(spec, CaptureConfig::full_rebuild(), &RipConfig::default());
    diff_graphs(OracleKind::Pool, &pooled, &rebuilt)
}

/// The single-entry fleet ([`rip_fleet`] with one entry) must produce the
/// sequential rip's exact bytes. A contained engine fault —
/// [`RipStatus::Degraded`] or [`RipStatus::Failed`] — counts as a
/// divergence too: the engine's own oracle fired first.
pub fn check_parallel(spec: &AppSpec) -> Option<Divergence> {
    check_fleet(std::slice::from_ref(spec))
        .map(|d| Divergence { oracle: OracleKind::Parallel, ..d })
}

/// Rips every spec in one fleet on a shared worker pool and compares each
/// entry against its private sequential rip. First divergence wins.
pub fn check_fleet(specs: &[AppSpec]) -> Option<Divergence> {
    let par = ParRipConfig { workers: 2, speculation: 2, spec_walk: 4 };
    let mut entries: Vec<FleetEntry> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            FleetEntry::new(
                format!("fuzz-{i}"),
                Session::new(AdversarialApp::launch(spec.clone())),
                RipConfig::default(),
            )
        })
        .collect();
    let outcomes = rip_fleet(&mut entries, &par);
    for (spec, out) in specs.iter().zip(&outcomes) {
        match &out.status {
            RipStatus::Parallel | RipStatus::FellBack => {
                let reference = rip_with(spec, CaptureConfig::default(), &RipConfig::default());
                if let Some(d) = diff_graphs(OracleKind::Fleet, &out.graph, &reference) {
                    return Some(d);
                }
            }
            RipStatus::Degraded(e) | RipStatus::Failed(e) => {
                return Some(Divergence {
                    oracle: OracleKind::Fleet,
                    window: String::from("(fleet engine)"),
                    control: out.app_id.clone(),
                    detail: e.to_string(),
                });
            }
        }
    }
    None
}

/// Runs every oracle against one spec; the first divergence wins. `None`
/// is the full determinism contract holding on all axes at once.
pub fn check_spec(spec: &AppSpec) -> Option<Divergence> {
    check_cached_capture(spec)
        .or_else(|| check_pool(spec))
        .or_else(|| check_esc_recovery(spec))
        .or_else(|| check_parallel(spec))
}

/// Byte-compares two UNGs; on mismatch, walks to the first node whose
/// name or control type differs and names its window and control. Falls
/// back to a structural summary (node/edge counts) when every shared
/// node matches — the graphs then differ in length or edges only.
fn diff_graphs(oracle: OracleKind, a: &Ung, b: &Ung) -> Option<Divergence> {
    let aj = serde_json::to_string(a).expect("UNGs serialize");
    let bj = serde_json::to_string(b).expect("UNGs serialize");
    if aj == bj {
        return None;
    }
    let shared = a.node_count().min(b.node_count());
    for id in 0..shared {
        let (na, nb) = (a.node(id), b.node(id));
        if na.name != nb.name || na.control_type != nb.control_type {
            let window = na
                .control
                .ancestor_path
                .split('/')
                .next()
                .filter(|s| !s.is_empty())
                .unwrap_or(&na.name)
                .to_string();
            return Some(Divergence {
                oracle,
                window,
                control: na.name.clone(),
                detail: format!(
                    "node {id}: '{}' ({:?}) vs '{}' ({:?})",
                    na.name, na.control_type, nb.name, nb.control_type
                ),
            });
        }
    }
    Some(Divergence {
        oracle,
        window: String::from("(structure)"),
        control: String::from("(structure)"),
        detail: format!(
            "graphs differ structurally: {} nodes / {} edges vs {} nodes / {} edges",
            a.node_count(),
            a.edge_count(),
            b.node_count(),
            b.edge_count()
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::gen::ArenaOp;

    #[test]
    fn clean_specs_pass_every_oracle() {
        for seed in [1u64, 9, 23] {
            let spec = AppSpec::generate(seed, 10);
            assert_eq!(check_spec(&spec), None, "clean spec from seed {seed} diverged");
        }
    }

    #[test]
    fn diff_names_the_first_divergent_control() {
        let a = rip_with(
            &AppSpec::new(vec![ArenaOp::Button(1), ArenaOp::Button(2)]),
            CaptureConfig::default(),
            &RipConfig::default(),
        );
        let b = rip_with(
            &AppSpec::new(vec![ArenaOp::Button(1), ArenaOp::Button(3)]),
            CaptureConfig::default(),
            &RipConfig::default(),
        );
        let d =
            diff_graphs(OracleKind::CachedCapture, &a, &b).expect("different arenas must diverge");
        assert_eq!(d.window, "Fuzz");
        assert!(
            d.control.contains("Button 2") || d.detail.contains("Button 2"),
            "expected the renamed button to be named, got: {d}"
        );
    }
}
