//! Delta-debugging reducer for failing op sequences.
//!
//! When an oracle flags a generated spec, the raw reproducer is usually
//! dozens of ops deep. [`shrink_ops`] greedily removes chunks (ddmin
//! style: halves, then quarters, … down to single ops) while the
//! caller's predicate keeps failing, converging on a locally minimal
//! sequence — removing any single remaining op makes the failure
//! disappear. Arena ops degrade instead of erroring when their context
//! is gone (see [`super::gen::ArenaOp`]), so every candidate subsequence
//! is buildable and the predicate never has to guard against invalid
//! specs.

use super::gen::ArenaOp;

/// Reduces `ops` to a locally minimal subsequence on which `fails` still
/// returns `true`.
///
/// The caller must ensure `fails(ops)` holds for the full input —
/// otherwise the input is returned unchanged (nothing to reproduce,
/// nothing to shrink). The predicate is pure from this function's point
/// of view: it is re-invoked freely, typically a full differential
/// oracle run per candidate.
pub fn shrink_ops(ops: &[ArenaOp], fails: impl Fn(&[ArenaOp]) -> bool) -> Vec<ArenaOp> {
    let mut cur = ops.to_vec();
    let mut chunk = cur.len().div_ceil(2).max(1);
    while !cur.is_empty() {
        let mut i = 0;
        let mut removed = false;
        while i < cur.len() {
            let end = (i + chunk).min(cur.len());
            let mut cand = Vec::with_capacity(cur.len() - (end - i));
            cand.extend_from_slice(&cur[..i]);
            cand.extend_from_slice(&cur[end..]);
            if fails(&cand) {
                cur = cand;
                removed = true;
                // Do not advance: the slice shifted left under `i`.
            } else {
                i = end;
            }
        }
        if chunk == 1 {
            if !removed {
                break;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops(n: u16) -> Vec<ArenaOp> {
        (0..n).map(ArenaOp::Button).collect()
    }

    #[test]
    fn shrinks_to_the_single_guilty_op() {
        let full = ops(40);
        let min = shrink_ops(&full, |c| c.contains(&ArenaOp::Button(17)));
        assert_eq!(min, vec![ArenaOp::Button(17)]);
    }

    #[test]
    fn keeps_a_guilty_pair_even_when_split_across_chunks() {
        let full = ops(33);
        let min = shrink_ops(&full, |c| {
            c.contains(&ArenaOp::Button(2)) && c.contains(&ArenaOp::Button(31))
        });
        assert_eq!(min, vec![ArenaOp::Button(2), ArenaOp::Button(31)]);
    }

    #[test]
    fn order_sensitive_predicates_keep_relative_order() {
        let full = ops(20);
        let min = shrink_ops(&full, |c| {
            let a = c.iter().position(|o| *o == ArenaOp::Button(3));
            let b = c.iter().position(|o| *o == ArenaOp::Button(12));
            matches!((a, b), (Some(a), Some(b)) if a < b)
        });
        assert_eq!(min, vec![ArenaOp::Button(3), ArenaOp::Button(12)]);
    }

    #[test]
    fn non_failing_input_is_returned_unchanged() {
        let full = ops(5);
        assert_eq!(shrink_ops(&full, |_| false), full);
    }

    #[test]
    fn empty_input_stays_empty() {
        assert_eq!(shrink_ops(&[], |_| true), Vec::new());
    }
}
