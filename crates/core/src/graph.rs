//! The UI Navigation Graph (UNG), §3.2.
//!
//! `UNG = (V, E)`: nodes are UI controls exposed by the accessibility API,
//! directed edges capture click-induced reachability. Only control-to-
//! control transitions are modeled; keyboard shortcuts are not edges (their
//! effects are achievable via equivalent clicks).

use dmi_uia::{ControlId, ControlKey, ControlType, KeyMap};
use serde::{Deserialize, Serialize};

/// Index of a node in the UNG.
pub type UngNodeId = usize;

/// One control in the navigation graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UngNode {
    /// Synthesized control identifier (§4.1).
    pub control: ControlId,
    /// Display name at modeling time.
    pub name: String,
    /// Control type.
    pub control_type: ControlType,
    /// Full description (UIA help text), often empty.
    pub help_text: String,
}

/// The borrowed decomposition [`Ung::raw_parts`] hands to an external
/// codec: `(nodes, succ, pred, root, edge_count)`.
pub type UngRawParts<'a> =
    (&'a [UngNode], &'a [Vec<UngNodeId>], &'a [Vec<UngNodeId>], UngNodeId, usize);

/// The UI Navigation Graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Ung {
    nodes: Vec<UngNode>,
    /// Adjacency: out-edges per node, insertion-ordered, deduplicated.
    succ: Vec<Vec<UngNodeId>>,
    /// Reverse adjacency.
    pred: Vec<Vec<UngNodeId>>,
    /// Root node (virtual).
    root: UngNodeId,
    /// Dedup index: [`ControlKey`] fingerprint -> nodes with that key.
    /// Buckets are confirmed against the full [`ControlId`] on lookup
    /// (hash+confirm, §4.1), so collisions cost a comparison, never a
    /// wrong dedup. Rebuilt after deserialization.
    #[serde(skip)]
    index: KeyMap<ControlKey, Vec<UngNodeId>>,
    edge_count: usize,
}

impl Ung {
    /// Creates a graph containing only the virtual root.
    pub fn new() -> Self {
        let mut g = Ung {
            nodes: Vec::new(),
            succ: Vec::new(),
            pred: Vec::new(),
            root: 0,
            index: KeyMap::default(),
            edge_count: 0,
        };
        let root_id = ControlId {
            primary: "<root>".into(),
            control_type: ControlType::Window,
            ancestor_path: String::new(),
        };
        g.add_node(UngNode {
            control: root_id,
            name: "<root>".into(),
            control_type: ControlType::Window,
            help_text: String::new(),
        });
        g
    }

    fn insert(&mut self, node: UngNode, key: ControlKey) -> UngNodeId {
        let bucket = self.index.entry(key).or_default();
        if let Some(&id) = bucket.iter().find(|&&id| self.nodes[id].control == node.control) {
            return id;
        }
        let id = self.nodes.len();
        bucket.push(id);
        self.nodes.push(node);
        self.succ.push(Vec::new());
        self.pred.push(Vec::new());
        id
    }

    /// Adds (or finds) a node for a control; returns its id.
    pub fn add_node(&mut self, node: UngNode) -> UngNodeId {
        let key = ControlKey::of_id(&node.control);
        self.insert(node, key)
    }

    /// Like [`Ung::add_node`] with the control's fingerprint already in
    /// hand (snapshot indexes carry it), skipping the re-hash.
    pub fn add_node_with_key(&mut self, node: UngNode, key: ControlKey) -> UngNodeId {
        debug_assert_eq!(key, ControlKey::of_id(&node.control));
        self.insert(node, key)
    }

    /// Adds a deduplicated directed edge; returns true if new.
    pub fn add_edge(&mut self, u: UngNodeId, v: UngNodeId) -> bool {
        if u == v || self.succ[u].contains(&v) {
            return false;
        }
        self.succ[u].push(v);
        self.pred[v].push(u);
        self.edge_count += 1;
        true
    }

    /// The virtual root id.
    pub fn root(&self) -> UngNodeId {
        self.root
    }

    /// Number of nodes, including the virtual root.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Borrows a node.
    pub fn node(&self, id: UngNodeId) -> &UngNode {
        &self.nodes[id]
    }

    /// Successors of a node.
    pub fn successors(&self, id: UngNodeId) -> &[UngNodeId] {
        &self.succ[id]
    }

    /// Predecessors of a node.
    pub fn predecessors(&self, id: UngNodeId) -> &[UngNodeId] {
        &self.pred[id]
    }

    /// Looks up a node by control id (O(1) keyed, collision-confirmed).
    pub fn find(&self, control: &ControlId) -> Option<UngNodeId> {
        self.find_with_key(control, ControlKey::of_id(control))
    }

    /// Like [`Ung::find`] with the fingerprint already in hand.
    pub fn find_with_key(&self, control: &ControlId, key: ControlKey) -> Option<UngNodeId> {
        self.index.get(&key)?.iter().find(|&&id| self.nodes[id].control == *control).copied()
    }

    /// Iterates over all node ids.
    pub fn ids(&self) -> impl Iterator<Item = UngNodeId> {
        0..self.nodes.len()
    }

    /// Nodes reachable from the root (the graph may contain stragglers if
    /// modeling was interrupted).
    pub fn reachable(&self) -> Vec<UngNodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![self.root];
        seen[self.root] = true;
        let mut out = Vec::new();
        while let Some(u) = stack.pop() {
            out.push(u);
            for &v in &self.succ[u] {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        out
    }

    /// Merge-node ids: reachable nodes with more than one predecessor.
    pub fn merge_nodes(&self) -> Vec<UngNodeId> {
        self.reachable().into_iter().filter(|&v| self.pred[v].len() > 1).collect()
    }

    /// Rebuilds the dedup index (needed after deserialization).
    pub fn rebuild_index(&mut self) {
        self.index = KeyMap::default();
        self.index.reserve(self.nodes.len());
        for (i, n) in self.nodes.iter().enumerate() {
            self.index.entry(ControlKey::of_id(&n.control)).or_default().push(i);
        }
    }

    /// Decomposes the graph into its serializable parts for an external
    /// codec: `(nodes, succ, pred, root, edge_count)`. The adjacency lists
    /// must travel as-is — their per-list order is insertion order, which
    /// downstream serializations (and therefore the byte-identity oracles)
    /// observe; an edge-replay reconstruction would reorder `pred`.
    pub fn raw_parts(&self) -> UngRawParts<'_> {
        (&self.nodes, &self.succ, &self.pred, self.root, self.edge_count)
    }

    /// Reassembles a graph from [`Ung::raw_parts`]-shaped data, validating
    /// structural invariants (parallel lengths, in-range ids, `succ`/`pred`
    /// symmetry, edge count) and rebuilding the dedup index. Returns a
    /// description of the violated invariant on malformed input so codec
    /// callers can surface a typed error instead of panicking later.
    pub fn from_raw_parts(
        nodes: Vec<UngNode>,
        succ: Vec<Vec<UngNodeId>>,
        pred: Vec<Vec<UngNodeId>>,
        root: UngNodeId,
        edge_count: usize,
    ) -> Result<Ung, String> {
        let n = nodes.len();
        if succ.len() != n || pred.len() != n {
            return Err(format!(
                "adjacency shape mismatch: {n} nodes, {} succ rows, {} pred rows",
                succ.len(),
                pred.len()
            ));
        }
        if root >= n.max(1) {
            return Err(format!("root {root} out of range for {n} nodes"));
        }
        let mut edges = 0usize;
        for (u, outs) in succ.iter().enumerate() {
            for &v in outs {
                if v >= n {
                    return Err(format!("edge {u}->{v} out of range for {n} nodes"));
                }
                if !pred[v].contains(&u) {
                    return Err(format!("edge {u}->{v} missing from pred[{v}]"));
                }
                edges += 1;
            }
        }
        if pred.iter().map(Vec::len).sum::<usize>() != edges {
            return Err("pred holds edges absent from succ".into());
        }
        if edges != edge_count {
            return Err(format!("edge count {edge_count} disagrees with adjacency ({edges})"));
        }
        let mut g = Ung { nodes, succ, pred, root, index: KeyMap::default(), edge_count };
        g.rebuild_index();
        Ok(g)
    }

    /// Removes the given edges (used by decycling).
    pub fn remove_edges(&mut self, edges: &[(UngNodeId, UngNodeId)]) {
        for &(u, v) in edges {
            if let Some(p) = self.succ[u].iter().position(|&x| x == v) {
                self.succ[u].remove(p);
                if let Some(q) = self.pred[v].iter().position(|&x| x == u) {
                    self.pred[v].remove(q);
                }
                self.edge_count -= 1;
            }
        }
    }
}

/// Convenience constructor for tests and benchmarks: builds a UNG from
/// `(name, type)` nodes and index edges. Node 0 is attached beneath the
/// virtual root automatically when it has no other predecessor.
pub fn ung_from_parts(nodes: &[(&str, ControlType)], edges: &[(usize, usize)]) -> Ung {
    let mut g = Ung::new();
    let ids: Vec<UngNodeId> = nodes
        .iter()
        .enumerate()
        .map(|(i, (name, ct))| {
            g.add_node(UngNode {
                control: ControlId {
                    primary: format!("{name}#{i}"),
                    control_type: *ct,
                    ancestor_path: String::new(),
                },
                name: (*name).to_string(),
                control_type: *ct,
                help_text: String::new(),
            })
        })
        .collect();
    for &(u, v) in edges {
        g.add_edge(ids[u], ids[v]);
    }
    // Node 0 is always the entry point; nodes without predecessors are
    // also attached so everything is reachable from the virtual root.
    let r = g.root();
    if let Some(&first) = ids.first() {
        g.add_edge(r, first);
    }
    for &id in &ids[1.min(ids.len())..] {
        if g.predecessors(id).is_empty() {
            g.add_edge(r, id);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmi_uia::ControlType as CT;

    #[test]
    fn nodes_dedup_by_control_id() {
        let mut g = Ung::new();
        let id = ControlId {
            primary: "Bold".into(),
            control_type: CT::Button,
            ancestor_path: "W/Home".into(),
        };
        let n = UngNode {
            control: id.clone(),
            name: "Bold".into(),
            control_type: CT::Button,
            help_text: String::new(),
        };
        let a = g.add_node(n.clone());
        let b = g.add_node(n);
        assert_eq!(a, b);
        assert_eq!(g.node_count(), 2); // root + Bold
        assert_eq!(g.find(&id), Some(a));
    }

    #[test]
    fn edges_dedup_and_no_self_loops() {
        let mut g = ung_from_parts(&[("A", CT::Button), ("B", CT::Button)], &[(0, 1), (0, 1)]);
        assert_eq!(g.edge_count(), 2); // root->A, A->B
        let a = 1;
        assert!(!g.add_edge(a, a));
    }

    #[test]
    fn merge_nodes_detected() {
        // A -> C, B -> C; root -> A, root -> B.
        let mut g = ung_from_parts(
            &[("A", CT::Button), ("B", CT::Button), ("C", CT::Button)],
            &[(0, 2), (1, 2)],
        );
        let r = g.root();
        g.add_edge(r, 2); // B (index base shifts by root) — attach B under root too.
        let merges = g.merge_nodes();
        assert_eq!(merges.len(), 1);
        assert_eq!(g.node(merges[0]).name, "C");
    }

    #[test]
    fn reachable_ignores_orphans() {
        let mut g = Ung::new();
        g.add_node(UngNode {
            control: ControlId {
                primary: "Orphan".into(),
                control_type: CT::Button,
                ancestor_path: String::new(),
            },
            name: "Orphan".into(),
            control_type: CT::Button,
            help_text: String::new(),
        });
        assert_eq!(g.reachable().len(), 1); // root only
    }

    #[test]
    fn remove_edges_updates_counts() {
        let mut g = ung_from_parts(&[("A", CT::Button), ("B", CT::Button)], &[(0, 1)]);
        let before = g.edge_count();
        g.remove_edges(&[(1, 2)]);
        assert_eq!(g.edge_count(), before - 1);
        assert!(g.successors(1).is_empty());
    }

    #[test]
    fn serde_round_trip_with_index_rebuild() {
        let g = ung_from_parts(&[("A", CT::Button), ("B", CT::MenuItem)], &[(0, 1)]);
        let json = serde_json::to_string(&g).unwrap();
        let mut g2: Ung = serde_json::from_str(&json).unwrap();
        g2.rebuild_index();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.find(&g.node(1).control), Some(1));
    }

    #[test]
    fn serde_round_trip_restores_adjacency_and_dedup_exactly() {
        // A graph with a merge node (two predecessors) and a cycle, so
        // both adjacency directions carry real structure.
        let mut g = ung_from_parts(
            &[("A", CT::Button), ("B", CT::Button), ("C", CT::Button)],
            &[(0, 2), (1, 2), (2, 0)],
        );
        let r = g.root();
        g.add_edge(r, 2);
        let json = serde_json::to_string(&g).unwrap();
        let mut g2: Ung = serde_json::from_str(&json).unwrap();
        g2.rebuild_index();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        for id in g.ids() {
            assert_eq!(g2.node(id), g.node(id), "node {id}");
            assert_eq!(g2.successors(id), g.successors(id), "succ of {id}");
            assert_eq!(g2.predecessors(id), g.predecessors(id), "pred of {id}");
            // The rebuilt dedup index resolves every stored control.
            assert_eq!(g2.find(&g.node(id).control), Some(id), "find {id}");
        }
        assert_eq!(g2.merge_nodes(), g.merge_nodes());
        // Dedup still works against rebuilt state: re-adding an existing
        // control returns its id, a new control gets a fresh one.
        let existing = g.node(1).control.clone();
        let n = g2.node_count();
        assert_eq!(
            g2.add_node(UngNode {
                control: existing,
                name: "A".into(),
                control_type: CT::Button,
                help_text: String::new(),
            }),
            1
        );
        assert_eq!(g2.node_count(), n, "re-add must dedup, not grow");
    }

    #[test]
    fn merge_dedup_confirms_on_forced_key_collision() {
        // Two distinct controls deliberately filed under one fingerprint:
        // the hash+confirm dedup the parallel merge relies on must keep
        // them apart (a collision costs a comparison, never a wrong
        // merge) while still deduplicating true re-insertions.
        let shared = ControlKey::of_parts("Bold", CT::Button, "W/Home/Font");
        let mk = |primary: &str| UngNode {
            control: ControlId {
                primary: primary.into(),
                control_type: CT::Button,
                ancestor_path: "W/Home/Font".into(),
            },
            name: primary.into(),
            control_type: CT::Button,
            help_text: String::new(),
        };
        let mut g = Ung::new();
        let a = g.insert(mk("Bold"), shared);
        let b = g.insert(mk("Italic"), shared);
        assert_ne!(a, b, "colliding keys must not conflate distinct controls");
        assert_eq!(g.insert(mk("Bold"), shared), a, "true duplicate dedups");
        assert_eq!(g.insert(mk("Italic"), shared), b);
        assert_eq!(g.node_count(), 3); // root + Bold + Italic
        assert_eq!(g.find_with_key(&mk("Bold").control, shared), Some(a));
        assert_eq!(g.find_with_key(&mk("Italic").control, shared), Some(b));
    }
}
