//! Incremental re-ripping against a persisted exploration journal.
//!
//! A cold rip pays one [`diff_fresh`] per explored candidate. When an app
//! is re-ripped — same version in a new process, or a mildly updated
//! version — most explorations land on byte-identical UI states, so the
//! diff outcome is already known. This module records those outcomes in a
//! [`RipJournal`] during a journaled rip and *confirms* them during an
//! incremental rip, re-running the real diff only where the application
//! diverged.
//!
//! # Determinism argument (byte-identity with the cold rip)
//!
//! [`rip_incremental`] drives the exact sequential explorer loop of
//! [`crate::ripper::rip`] — same restarts, same captures, same frontier
//! order — so the session evolves identically; the *only* substituted
//! step is the pure function `diff_fresh(pre, post)`. A journal entry is
//! committed in its place only when the live pre/post snapshots are
//! provably equivalent (for diffing purposes) to the recorded ones:
//!
//! - Snapshots are digested **per window block** (two independent 64-bit
//!   streams over everything the diff and the committer observe: relative
//!   arena position, parentage, control type, name, automation id) plus
//!   the window's modality and root name.
//! - A window whose live digest equals the recorded digest contributes
//!   the same identity multiset at the same relative offsets.
//! - A window that *changed* since recording (an updated app version) is
//!   only tolerated when it is byte-stable across the click — equal in
//!   pre and post, live and recorded. A click-stable window contributes
//!   no fresh controls and, because window root names are required to be
//!   pairwise distinct, its contents cannot alias identity matches in any
//!   other window (every non-root path is prefixed by its window root
//!   name). Entries whose recorded fresh controls live in a changed
//!   window are refused and re-explored.
//!
//! Under those checks the recorded fresh set, remapped through the live
//! window offsets, equals what `diff_fresh` would compute; the commit
//! itself always reads the **live** post snapshot. The release-gated
//! oracles in `tests/store.rs` assert end-to-end byte identity for all
//! three Office apps and across the `word_x3_versions` chain.

use crate::graph::Ung;
use crate::ripper::{diff_fresh, ExploreUnit, Frontier, RipConfig, RipStats};
use dmi_gui::Session;
use dmi_uia::{ControlId, Snapshot};
use std::collections::HashMap;
use std::sync::{Arc, Weak};

/// The digest + structure summary of one window block of a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSig {
    /// Two independent 64-bit digest streams (128 bits total) over the
    /// block's diff-relevant bytes. See the module docs for the field
    /// contract: everything [`diff_fresh`] or the frontier committer can
    /// observe must feed the digest.
    pub digest: [u64; 2],
    /// Whether the window is modal (availability input of the diff).
    pub modal: bool,
    /// The window root's display name (the cross-window aliasing guard).
    pub root_name: String,
}

/// Contiguous `[start, end)` arena ranges of a snapshot's window blocks,
/// in window order. Defensive: a leading orphan block (nodes before the
/// first registered window root — a hidden-root degenerate shape) is kept
/// so every node belongs to exactly one block.
fn block_ranges(snap: &Snapshot) -> Vec<(usize, usize)> {
    let ws = snap.windows();
    let mut ranges = Vec::with_capacity(ws.len() + 1);
    if ws.first().copied().unwrap_or(snap.len()) > 0 {
        ranges.push((0, ws.first().copied().unwrap_or(snap.len())));
    }
    for (i, &start) in ws.iter().enumerate() {
        let end = ws.get(i + 1).copied().unwrap_or(snap.len());
        ranges.push((start, end));
    }
    ranges
}

/// Per-window signatures of a snapshot (see [`WindowSig`]). Block digests
/// use *relative* indices so equal window contents digest equal wherever
/// the block sits in the arena.
pub fn window_sigs(snap: &Snapshot) -> Vec<WindowSig> {
    // Word-at-a-time: sig hashing runs over every node of every explored
    // snapshot, so per-byte FNV would dominate the incremental engine's
    // overhead. Chunk lengths are folded in so zero-padding cannot alias
    // a shorter input.
    fn eat(h: &mut [u64; 2], bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            let v = u64::from_le_bytes(w) ^ ((chunk.len() as u64) << 56);
            h[0] = (h[0] ^ v).wrapping_mul(0x100_0000_01b3);
            h[1] = (h[1] ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .rotate_left(29)
                .wrapping_mul(0xA24B_AED4_963E_E407);
        }
    }
    let ws = snap.windows();
    let orphan = ws.first().copied().unwrap_or(snap.len()) > 0;
    block_ranges(snap)
        .into_iter()
        .enumerate()
        .map(|(bi, (start, end))| {
            let mut h: [u64; 2] = [0xcbf2_9ce4_8422_2325, 0x9E55_79B9_7F4A_7C15];
            eat(&mut h, &((end - start) as u64).to_le_bytes());
            for idx in start..end {
                let node = snap.node(idx);
                eat(&mut h, &((idx - start) as u64).to_le_bytes());
                let rel_parent = node
                    .parent
                    .and_then(|p| (p >= start && p < end).then_some((p - start) as u64))
                    .unwrap_or(u64::MAX);
                eat(&mut h, &rel_parent.to_le_bytes());
                let p = &node.props;
                eat(&mut h, p.control_type.as_str().as_bytes());
                eat(&mut h, b"\x1f");
                eat(&mut h, p.name.as_bytes());
                eat(&mut h, b"\x1f");
                eat(&mut h, p.automation_id.as_bytes());
            }
            let rooted = !orphan || bi > 0;
            let wi = if orphan { bi.wrapping_sub(1) } else { bi };
            WindowSig {
                digest: h,
                modal: rooted && snap.window_is_modal(wi),
                root_name: if rooted { snap.node(start).props.name.clone() } else { String::new() },
            }
        })
        .collect()
}

/// Memoizes [`window_sigs`] per snapshot allocation. Keys are raw `Arc`
/// addresses validated through a `Weak`: an entry is served only when the
/// weak still upgrades to the *same* allocation, so a recycled address
/// can never alias a stale digest (the captured-snapshot churn of a rip
/// makes address reuse a live hazard).
#[derive(Default)]
pub struct SigMemo {
    map: HashMap<usize, (Weak<Snapshot>, Arc<Vec<WindowSig>>)>,
}

impl SigMemo {
    /// An empty memo.
    pub fn new() -> SigMemo {
        SigMemo::default()
    }

    /// The (possibly cached) signatures of `snap`.
    pub fn sigs(&mut self, snap: &Arc<Snapshot>) -> Arc<Vec<WindowSig>> {
        let key = Arc::as_ptr(snap) as usize;
        if let Some((weak, sigs)) = self.map.get(&key) {
            if let Some(live) = weak.upgrade() {
                if Arc::ptr_eq(&live, snap) {
                    return Arc::clone(sigs);
                }
            }
        }
        let sigs = Arc::new(window_sigs(snap));
        self.map.insert(key, (Arc::downgrade(snap), Arc::clone(&sigs)));
        if self.map.len() > 8192 {
            self.map.retain(|_, (w, _)| w.strong_count() > 0);
        }
        sigs
    }
}

/// One recorded exploration outcome: the candidate's full identity (the
/// lookup key), the pre/post window signatures, and the diff result as
/// `(window ordinal, offset within block)` pairs — offset-relative so a
/// block that merely *moved* (an earlier window grew) still remaps.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Context-setup click names active during the exploration.
    pub setup: Vec<String>,
    /// The explored candidate.
    pub cid: ControlId,
    /// The candidate's reveal path.
    pub path: Vec<ControlId>,
    /// Window signatures of the pre-click snapshot.
    pub pre: Vec<WindowSig>,
    /// Window signatures of the post-click snapshot.
    pub post: Vec<WindowSig>,
    /// Fresh controls as `(post window ordinal, offset within block)`,
    /// in ascending arena order.
    pub fresh: Vec<(u32, u32)>,
}

fn entry_key(setup: &[String], cid: &ControlId, path: &[ControlId]) -> u64 {
    fn eat(h: &mut u64, bytes: &[u8]) {
        for &b in bytes {
            *h = (*h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for s in setup {
        eat(&mut h, s.as_bytes());
        eat(&mut h, b"\x1e");
    }
    eat(&mut h, b"\x1d");
    eat(&mut h, cid.encode().as_bytes());
    for p in path {
        eat(&mut h, b"\x1e");
        eat(&mut h, p.encode().as_bytes());
    }
    h
}

/// The exploration journal of one rip: every `(setup, candidate, path)`
/// explored, with enough digest context to confirm or refuse its diff
/// outcome on a later rip. Hash-indexed with full-key confirmation (the
/// repo-wide hash+confirm discipline).
#[derive(Debug, Default, Clone)]
pub struct RipJournal {
    entries: Vec<JournalEntry>,
    index: HashMap<u64, Vec<usize>>,
}

impl RipJournal {
    /// An empty journal.
    pub fn new() -> RipJournal {
        RipJournal::default()
    }

    /// Rebuilds a journal from decoded entries (codec load path).
    pub fn from_entries(entries: Vec<JournalEntry>) -> RipJournal {
        let mut j = RipJournal { entries, index: HashMap::new() };
        for (i, e) in j.entries.iter().enumerate() {
            j.index.entry(entry_key(&e.setup, &e.cid, &e.path)).or_default().push(i);
        }
        j
    }

    /// The recorded entries, in exploration order (codec save path).
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// Number of recorded explorations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn push(&mut self, entry: JournalEntry) {
        let key = entry_key(&entry.setup, &entry.cid, &entry.path);
        self.index.entry(key).or_default().push(self.entries.len());
        self.entries.push(entry);
    }

    fn lookup(
        &self,
        setup: &[String],
        cid: &ControlId,
        path: &[ControlId],
    ) -> Option<&JournalEntry> {
        let key = entry_key(setup, cid, path);
        self.index
            .get(&key)?
            .iter()
            .map(|&i| &self.entries[i])
            .find(|e| e.setup == setup && &e.cid == cid && e.path == path)
    }
}

/// Incremental-rip effort counters, alongside the ordinary [`RipStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Explorations whose recorded diff was confirmed and committed
    /// without re-diffing.
    pub edges_confirmed: u64,
    /// Explorations that fell back to the live diff (journal miss or a
    /// refused confirmation).
    pub edges_reexplored: u64,
    /// Capture-pool hits served from store-imported (warm) entries
    /// during the rip.
    pub pool_warm_hits: u64,
}

impl IncrementalStats {
    /// Fraction of explorations confirmed from the journal.
    pub fn confirm_rate(&self) -> f64 {
        let total = self.edges_confirmed + self.edges_reexplored;
        if total > 0 {
            self.edges_confirmed as f64 / total as f64
        } else {
            0.0
        }
    }
}

/// Tries to confirm a journal entry against the live pre/post signatures,
/// returning the remapped fresh arena indices. `None` means "re-explore".
/// See the module docs for the rule and its soundness argument.
fn confirm(
    entry: &JournalEntry,
    pre_s: &[WindowSig],
    post_s: &[WindowSig],
    post: &Snapshot,
) -> Option<Vec<u32>> {
    if pre_s.len() != entry.pre.len() || post_s.len() != entry.post.len() {
        return None;
    }
    let structure_ok = |live: &[WindowSig], stored: &[WindowSig]| {
        live.iter().zip(stored).all(|(a, b)| a.modal == b.modal && a.root_name == b.root_name)
    };
    if !structure_ok(pre_s, &entry.pre) || !structure_ok(post_s, &entry.post) {
        return None;
    }
    // A changed window (live digest != recorded) must be click-stable:
    // byte-equal between pre and post, both live and as recorded.
    let stable = |i: usize| {
        pre_s.get(i).is_some_and(|p| p.digest == post_s[i].digest && p.modal == post_s[i].modal)
            && entry
                .pre
                .get(i)
                .is_some_and(|p| p.digest == entry.post[i].digest && p.modal == entry.post[i].modal)
    };
    let changed_post: Vec<bool> =
        post_s.iter().zip(&entry.post).map(|(a, b)| a.digest != b.digest).collect();
    let mut any_changed = false;
    for (i, &changed) in changed_post.iter().enumerate() {
        if changed {
            any_changed = true;
            if !stable(i) {
                return None;
            }
        }
    }
    for (i, (a, b)) in pre_s.iter().zip(&entry.pre).enumerate() {
        if a.digest != b.digest {
            any_changed = true;
            // The pre-side pairing reuses the same stability predicate,
            // which indexes the *post* vectors: the changed pre window
            // must exist there and match.
            if i >= post_s.len() || !stable(i) {
                return None;
            }
        }
    }
    if any_changed {
        // Cross-window aliasing guard: identity paths are prefixed by
        // window root names, so distinct names confine a changed
        // window's identity delta to itself.
        let distinct = |sigs: &[WindowSig]| {
            sigs.iter()
                .enumerate()
                .all(|(i, a)| sigs[..i].iter().all(|b| a.root_name != b.root_name))
        };
        if !distinct(pre_s) || !distinct(post_s) {
            return None;
        }
        // A changed window contributes no fresh controls; recorded fresh
        // offsets inside one would be meaningless.
        if entry.fresh.iter().any(|&(w, _)| changed_post.get(w as usize).copied().unwrap_or(true)) {
            return None;
        }
    }
    let ranges = block_ranges(post);
    let mut fresh = Vec::with_capacity(entry.fresh.len());
    for &(w, off) in &entry.fresh {
        let &(start, end) = ranges.get(w as usize)?;
        let idx = start + off as usize;
        if idx >= end {
            return None;
        }
        fresh.push(idx as u32);
    }
    Some(fresh)
}

/// What the explorer does with each diff outcome: record it, or confirm
/// against a prior journal.
enum Mode<'p> {
    Record(RipJournal),
    Confirm { prior: &'p RipJournal, inc: IncrementalStats },
}

/// The sequential explorer loop of [`crate::ripper::rip`], with the diff
/// step routed through [`Mode`]. Everything else — restarts, captures,
/// frontier order, commits — is kept literally identical so the session
/// evolves exactly as under a cold rip.
struct IncExplorer<'a, 'p> {
    unit: ExploreUnit<'a>,
    frontier: Frontier,
    memo: SigMemo,
    mode: Mode<'p>,
}

impl IncExplorer<'_, '_> {
    fn base_pass(&mut self) {
        self.unit.restart();
        let snap = self.unit.snapshot();
        let config = self.unit.config();
        self.frontier.seed(&snap, &[], config, &mut self.unit.stats);
        self.drain(&[]);
    }

    fn context_pass(&mut self, ctx: &crate::ripper::ContextSetup) {
        if !self.unit.replay(&ctx.clicks, &[]) {
            return;
        }
        let snap = self.unit.snapshot();
        let config = self.unit.config();
        self.frontier.seed(&snap, &[], config, &mut self.unit.stats);
        self.drain(&ctx.clicks);
    }

    fn drain(&mut self, setup: &[String]) {
        while let Some(c) = self.frontier.pop() {
            if !self.frontier.visit(&c) {
                continue;
            }
            let config = self.unit.config();
            if let Some(cap) = config.max_clicks {
                if self.unit.stats.clicks >= cap as u64 {
                    return;
                }
            }
            let Some(ex) = self.unit.explore(setup, &c.cid, &c.path) else {
                continue;
            };
            if ex.post.windows().len() > ex.pre.windows().len() {
                self.unit.stats.windows_seen += 1;
                dmi_obs::tally("rip.windows_seen", 1);
            }
            let pre_sigs = self.memo.sigs(&ex.pre);
            let post_sigs = self.memo.sigs(&ex.post);
            let fresh: Vec<u32> = match &mut self.mode {
                Mode::Record(journal) => {
                    let fresh = diff_fresh(&ex.pre, &ex.post);
                    if let Some(packed) = pack_fresh(&ex.post, &fresh) {
                        journal.push(JournalEntry {
                            setup: setup.to_vec(),
                            cid: c.cid.clone(),
                            path: c.path.clone(),
                            pre: (*pre_sigs).clone(),
                            post: (*post_sigs).clone(),
                            fresh: packed,
                        });
                    }
                    fresh
                }
                Mode::Confirm { prior, inc } => {
                    let confirmed = prior
                        .lookup(setup, &c.cid, &c.path)
                        .and_then(|e| confirm(e, &pre_sigs, &post_sigs, &ex.post));
                    match confirmed {
                        Some(fresh) => {
                            inc.edges_confirmed += 1;
                            fresh
                        }
                        None => {
                            inc.edges_reexplored += 1;
                            diff_fresh(&ex.pre, &ex.post)
                        }
                    }
                }
            };
            self.frontier.commit(&c.cid, &ex.post, &fresh, &c.path, config, &mut self.unit.stats);
        }
    }
}

/// Packs diff indices as `(window, offset)` pairs; `None` when an index
/// cannot be attributed to a block (degenerate window shapes — the entry
/// is simply not recorded, and a later incremental rip re-explores it).
fn pack_fresh(post: &Snapshot, fresh: &[u32]) -> Option<Vec<(u32, u32)>> {
    let ranges = block_ranges(post);
    fresh
        .iter()
        .map(|&idx| {
            let idx = idx as usize;
            let w = ranges.iter().position(|&(s, e)| idx >= s && idx < e)?;
            Some((w as u32, (idx - ranges[w].0) as u32))
        })
        .collect()
}

/// A cold sequential rip that additionally records the exploration
/// journal consumed by [`rip_incremental`]. The produced UNG is
/// byte-identical to [`crate::ripper::rip`]'s — journaling only *reads*
/// the capture pairs.
pub fn rip_journaled(session: &mut Session, config: &RipConfig) -> (Ung, RipStats, RipJournal) {
    let cs0 = session.capture_stats();
    let mut ex = IncExplorer {
        unit: ExploreUnit::new(session, config),
        frontier: Frontier::new(),
        memo: SigMemo::new(),
        mode: Mode::Record(RipJournal::new()),
    };
    ex.base_pass();
    for ctx in &config.contexts {
        ex.context_pass(ctx);
    }
    let IncExplorer { unit, frontier, mode, .. } = ex;
    let mut stats = unit.stats;
    stats.fold_pool_delta(cs0, unit.session().capture_stats());
    let Mode::Record(journal) = mode else { unreachable!("record mode") };
    (frontier.g, stats, journal)
}

/// Rips an application incrementally against a prior rip's journal:
/// byte-identical to a cold [`crate::ripper::rip`] of the *current* app,
/// with confirmed explorations skipping the live diff (see the module
/// docs for the argument). Warm capture-pool hits observed during the
/// rip are folded into the returned [`IncrementalStats`].
pub fn rip_incremental(
    session: &mut Session,
    config: &RipConfig,
    prior: &RipJournal,
) -> (Ung, RipStats, IncrementalStats) {
    let _rip_span = dmi_obs::span(dmi_obs::Cat::Rip, "rip.incremental", 0);
    let cs0 = session.capture_stats();
    let mut ex = IncExplorer {
        unit: ExploreUnit::new(session, config),
        frontier: Frontier::new(),
        memo: SigMemo::new(),
        mode: Mode::Confirm { prior, inc: IncrementalStats::default() },
    };
    ex.base_pass();
    for ctx in &config.contexts {
        ex.context_pass(ctx);
    }
    let IncExplorer { unit, frontier, mode, .. } = ex;
    let mut stats = unit.stats;
    let cs1 = unit.session().capture_stats();
    stats.fold_pool_delta(cs0, cs1);
    let Mode::Confirm { mut inc, .. } = mode else { unreachable!("confirm mode") };
    inc.pool_warm_hits = cs1.pool_warm_hits - cs0.pool_warm_hits;
    (frontier.g, stats, inc)
}

/// The structural signature of an application's pristine launch image:
/// restarts the session and signs the fresh base capture. The store uses
/// it as the cross-process identity of a pristine image —
/// `GuiApp::pristine_token` is an in-process attestation handle (an
/// allocation address) and does not survive serialization.
pub fn pristine_signature(session: &mut Session) -> Vec<WindowSig> {
    session.restart();
    let snap = session.snapshot();
    window_sigs(&snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ripper::{rip, RipConfig};
    use crate::testutil::small_rip;
    use dmi_apps::AppKind;

    #[test]
    fn journaled_rip_is_byte_identical_and_records_every_exploration() {
        let (g0, stats0) = small_rip(AppKind::Word);
        let mut s = Session::new(AppKind::Word.launch_small());
        let (g, stats, journal) = rip_journaled(&mut s, &RipConfig::office("Word"));
        assert_eq!(
            serde_json::to_string(&g).unwrap(),
            serde_json::to_string(g0).unwrap(),
            "journaling must not perturb the rip"
        );
        assert_eq!(stats.clicks, stats0.clicks);
        assert!(!journal.is_empty());
        // Every successful exploration journals exactly once.
        assert!(journal.len() as u64 <= stats.clicks);
    }

    #[test]
    fn same_version_incremental_rip_confirms_everything() {
        let mut s = Session::new(AppKind::Word.launch_small());
        let (g1, _, journal) = rip_journaled(&mut s, &RipConfig::office("Word"));
        let mut s2 = Session::new(AppKind::Word.launch_small());
        let (g2, _, inc) = rip_incremental(&mut s2, &RipConfig::office("Word"), &journal);
        assert_eq!(serde_json::to_string(&g1).unwrap(), serde_json::to_string(&g2).unwrap(),);
        assert!(inc.edges_confirmed > 0);
        assert_eq!(inc.edges_reexplored, 0, "identical app must confirm every exploration");
        assert!((inc.confirm_rate() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn cross_version_incremental_rip_is_byte_identical_to_cold() {
        let mut s = Session::new(AppKind::Word.launch_small_version(0));
        let (_, _, journal) = rip_journaled(&mut s, &RipConfig::office("Word"));
        let mut cold = Session::new(AppKind::Word.launch_small_version(1));
        let (g_cold, _) = rip(&mut cold, &RipConfig::office("Word"));
        let mut warm = Session::new(AppKind::Word.launch_small_version(1));
        let (g_inc, _, inc) = rip_incremental(&mut warm, &RipConfig::office("Word"), &journal);
        assert_eq!(
            serde_json::to_string(&g_cold).unwrap(),
            serde_json::to_string(&g_inc).unwrap(),
            "incremental rip of v1 must match a cold rip of v1"
        );
        assert!(inc.edges_confirmed > 0, "dialog-internal explorations should confirm");
        assert!(inc.edges_reexplored > 0, "document-bearing explorations must re-diff");
    }

    #[test]
    fn pristine_signature_distinguishes_versions_and_matches_itself() {
        let mut a = Session::new(AppKind::Word.launch_small_version(0));
        let mut b = Session::new(AppKind::Word.launch_small_version(0));
        let mut c = Session::new(AppKind::Word.launch_small_version(1));
        let sa = pristine_signature(&mut a);
        let sb = pristine_signature(&mut b);
        let sc = pristine_signature(&mut c);
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn window_sigs_are_offset_independent_but_content_sensitive() {
        let (g, _) = small_rip(AppKind::Word);
        let _ = g; // fixture warm-up only; the real assertions use sessions
        let mut s = Session::new(AppKind::Word.launch_small());
        s.restart();
        let snap = s.snapshot();
        let sigs = window_sigs(&snap);
        assert!(!sigs.is_empty());
        assert_eq!(sigs, window_sigs(&snap));
    }
}
