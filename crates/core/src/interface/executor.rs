//! The `visit` executor (§4.3): path resolution and robust navigation.
//!
//! Each retained command resolves to a unique root-to-target path in the
//! forest (through entry references for shared subtrees). Navigation then
//! matches the path backward against the topmost window's visible
//! hierarchy, closes windows that contain none of the remaining path
//! (OK > Close > Cancel, favoring saved modifications), and proceeds
//! forward with fuzzy matching and bounded retries for late-loading
//! controls.

use crate::error::{DmiError, DmiResult};
use crate::topology::{Forest, TopoKind};
use dmi_gui::Session;
use dmi_uia::{ControlType, FuzzyMatcher, Snapshot};

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Retries per path element (fresh snapshot each) for late loading.
    pub retries: u32,
    /// Maximum windows closed while realigning.
    pub max_window_closes: u32,
    /// Fuzzy matcher for live-name variation.
    pub matcher: FuzzyMatcher,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig { retries: 2, max_window_closes: 4, matcher: FuzzyMatcher::default() }
    }
}

/// Resolves the unique forest path for a target, consuming entry
/// references for shared subtrees. Returns forest node ids, root-first,
/// ending at the target.
pub fn control_path(forest: &Forest, target: u64, entries: &[u64]) -> DmiResult<Vec<usize>> {
    let tid = target as usize;
    if forest.node(tid).is_none() {
        return Err(DmiError::UnknownId { id: target });
    }
    let mut remaining: Vec<u64> = entries.to_vec();
    let mut chain = resolve_chain(forest, tid, &mut remaining)?;
    // Drop reference/root markers from the click chain; keep controls.
    chain.retain(|&id| matches!(forest.nodes[id].kind, TopoKind::Control));
    Ok(chain)
}

fn resolve_chain(forest: &Forest, id: usize, entries: &mut Vec<u64>) -> DmiResult<Vec<usize>> {
    match forest.in_shared_subtree(id) {
        None => Ok(forest.path_to(id)),
        Some(subtree_root) => {
            let refs = forest.references_to(subtree_root);
            let chosen =
                if let Some(pos) = entries.iter().position(|e| refs.contains(&(*e as usize))) {
                    entries.remove(pos) as usize
                } else if let Some(&bad) = entries.first() {
                    // An entry was supplied but does not reach this subtree.
                    if forest.node(bad as usize).is_none()
                        || !matches!(forest.nodes[bad as usize].kind, TopoKind::Reference { .. })
                    {
                        return Err(DmiError::WrongEntry { id: id as u64, entry: bad });
                    }
                    if refs.len() == 1 {
                        refs[0]
                    } else {
                        return Err(DmiError::WrongEntry { id: id as u64, entry: bad });
                    }
                } else if refs.len() == 1 {
                    refs[0]
                } else {
                    return Err(DmiError::AmbiguousEntry {
                        id: id as u64,
                        candidates: refs.iter().map(|&r| r as u64).collect(),
                    });
                };
            // Chain to the reference node (recursively: the reference may
            // itself sit in another shared subtree), minus the reference
            // node, plus the in-subtree path.
            let mut upper = resolve_chain(forest, chosen, entries)?;
            upper.pop(); // The reference node itself is not clicked.
            upper.extend(forest.path_to(id));
            Ok(upper)
        }
    }
}

/// Whether this control type participates in click navigation (containers
/// like windows, panes, and groups reveal their children passively).
pub fn is_clickable(ct: ControlType) -> bool {
    matches!(
        ct,
        ControlType::Button
            | ControlType::SplitButton
            | ControlType::MenuItem
            | ControlType::TabItem
            | ControlType::ComboBox
            | ControlType::ListItem
            | ControlType::Hyperlink
            | ControlType::CheckBox
            | ControlType::RadioButton
            | ControlType::Edit
            | ControlType::DataItem
            | ControlType::TreeItem
            | ControlType::AppBar
    )
}

/// Executes one access: navigates along the unique path and performs the
/// primitive interaction (click) on the target; optionally inputs text.
pub fn access(
    session: &mut Session,
    forest: &Forest,
    config: &ExecutorConfig,
    target: u64,
    entries: &[u64],
    input_text: Option<&str>,
) -> DmiResult<()> {
    let chain = control_path(forest, target, entries)?;
    let clickables: Vec<usize> =
        chain.iter().copied().filter(|&id| is_clickable(forest.nodes[id].control_type)).collect();
    if clickables.is_empty() {
        return Err(DmiError::Malformed {
            message: format!("target {target} resolves to no clickable path"),
        });
    }

    // Realign: close foreign windows until the topmost window contains part
    // of the path (§4.3 "Path navigation").
    let mut closes = 0u32;
    let start: usize = loop {
        let snap = session.snapshot();
        match deepest_visible(&snap, forest, config, &clickables) {
            Some(k) => break k,
            None => {
                if snap.windows().len() <= 1 || closes >= config.max_window_closes {
                    break 0; // Try from the top of the path in the main window.
                }
                close_top_window(session, &snap)?;
                closes += 1;
            }
        }
    };

    // Forward navigation: click from the deepest visible element through
    // the target (re-clicking idempotent navigation controls is harmless
    // and re-establishes state). Each element is retried with a fresh
    // snapshot to tolerate late-loading controls (§3.4). Retries are
    // capture-aware: a retry capture served from the cache as the *same*
    // snapshot that just failed to resolve is provably identical — the
    // fuzzy re-resolve is skipped, while the capture itself still runs so
    // the query clock advances toward any pending late-load reveal
    // (reveals always invalidate the cache, so they are never skipped).
    for (step, &node_id) in clickables.iter().enumerate().skip(start) {
        let is_target = step == clickables.len() - 1;
        let mut clicked = false;
        let mut last_miss: Option<std::sync::Arc<Snapshot>> = None;
        for _attempt in 0..=config.retries {
            let cap = session.capture();
            if cap.is_cache_hit()
                && last_miss.as_ref().is_some_and(|prev| std::sync::Arc::ptr_eq(prev, cap.snap()))
            {
                continue; // Identical bytes: the resolve would fail again.
            }
            let snap = cap.into_snap();
            let Some(idx) = resolve_in(&snap, forest, config, node_id) else {
                last_miss = Some(snap);
                continue;
            };
            let node = snap.node(idx);
            if !node.props.enabled {
                return Err(DmiError::ControlDisabled {
                    name: node.props.name.clone(),
                    path: snap.ancestor_path(idx),
                });
            }
            let wid = session.widget_of(node.runtime_id);
            session.click(wid).map_err(DmiError::from)?;
            clicked = true;
            break;
        }
        if !clicked {
            return Err(not_found(forest, node_id, config));
        }
        if is_target {
            if let Some(text) = input_text {
                session.type_text(text).map_err(DmiError::from)?;
            }
        }
    }
    Ok(())
}

fn not_found(forest: &Forest, node_id: usize, config: &ExecutorConfig) -> DmiError {
    let n = &forest.nodes[node_id];
    DmiError::ControlNotFound {
        name: n.name.clone(),
        path: n.control.ancestor_path.clone(),
        retries: config.retries,
    }
}

/// The deepest path element visible in the topmost window, if any.
fn deepest_visible(
    snap: &Snapshot,
    forest: &Forest,
    config: &ExecutorConfig,
    clickables: &[usize],
) -> Option<usize> {
    let top = snap.top_window()?;
    for (k, &node_id) in clickables.iter().enumerate().rev() {
        let n = &forest.nodes[node_id];
        if config.matcher.best_match_prekeyed(snap, n.key, &n.control, Some(top), true).is_some() {
            return Some(k);
        }
    }
    None
}

fn resolve_in(
    snap: &Snapshot,
    forest: &Forest,
    config: &ExecutorConfig,
    node_id: usize,
) -> Option<usize> {
    let top = snap.top_window()?;
    let n = &forest.nodes[node_id];
    config.matcher.best_match_prekeyed(snap, n.key, &n.control, Some(top), true).map(|m| m.index)
}

/// Closes the topmost window with the OK > Close > Cancel priority,
/// falling back to Esc.
fn close_top_window(session: &mut Session, snap: &Snapshot) -> DmiResult<()> {
    if let Some(top) = snap.top_window() {
        for name in ["OK", "Close", "Cancel"] {
            if let Some(idx) = snap
                .descendants(top)
                .into_iter()
                .find(|&i| snap.node(i).props.name == name && snap.node(i).props.enabled)
            {
                let wid = session.widget_of(snap.node(idx).runtime_id);
                session.click(wid).map_err(DmiError::from)?;
                return Ok(());
            }
        }
    }
    session.press("Esc").map_err(DmiError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::small_forest;
    use dmi_apps::AppKind;

    fn build(kind: AppKind) -> (Session, Forest) {
        let s = Session::new(kind.launch_small());
        (s, small_forest(kind).clone())
    }

    fn find_leaf(forest: &Forest, name: &str) -> u64 {
        forest
            .nodes
            .iter()
            .find(|n| n.name == name && forest.is_functional_leaf(n.id))
            .unwrap_or_else(|| panic!("no functional leaf '{name}'"))
            .id as u64
    }

    #[test]
    fn control_path_is_unique_and_root_first() {
        let (_s, forest) = build(AppKind::Word);
        let bold = find_leaf(&forest, "Bold");
        let path = control_path(&forest, bold, &[]).unwrap();
        assert_eq!(*path.last().unwrap(), bold as usize);
        // The path passes through the Home tab.
        assert!(path.iter().any(|&i| forest.nodes[i].name == "Home"));
    }

    #[test]
    fn unknown_target_errors() {
        let (_s, forest) = build(AppKind::Word);
        assert!(matches!(control_path(&forest, 10_000_000, &[]), Err(DmiError::UnknownId { .. })));
    }

    #[test]
    fn access_clicks_through_hidden_menu() {
        let (mut s, forest) = build(AppKind::Word);
        // Select a paragraph first so the color applies.
        let surf = s.app().tree().find_by_automation_id("Body").unwrap();
        s.select_lines(surf, 0, 0).unwrap();
        // Find the "Blue" standard cell under Font Color.
        let blue = forest
            .nodes
            .iter()
            .find(|n| {
                n.name == "Blue"
                    && forest.is_functional_leaf(n.id)
                    && forest.path_to(n.id).iter().any(|&a| forest.nodes[a].name == "Font Color")
            })
            .expect("Blue under Font Color")
            .id as u64;
        access(&mut s, &forest, &ExecutorConfig::default(), blue, &[], None).unwrap();
        let word = s.app().as_any().downcast_ref::<dmi_apps::WordApp>().unwrap();
        assert_eq!(word.doc.paragraphs[0].format.color, "Blue");
    }

    #[test]
    fn access_and_input_text() {
        let (mut s, forest) = build(AppKind::Excel);
        let name_box = find_leaf(&forest, "Name Box");
        access(&mut s, &forest, &ExecutorConfig::default(), name_box, &[], Some("B2:C3")).unwrap();
        // Text input alone does not commit (the paper's Name Box lesson).
        let excel = s.app().as_any().downcast_ref::<dmi_apps::ExcelApp>().unwrap();
        assert!(excel.sheet.selection.is_none());
        s.press("Enter").unwrap();
        let excel = s.app().as_any().downcast_ref::<dmi_apps::ExcelApp>().unwrap();
        assert!(excel.sheet.selection.is_some());
    }

    #[test]
    fn shared_subtree_requires_entry_when_ambiguous() {
        let (_s, forest) = build(AppKind::Word);
        // The shared Colors dialog: find a custom cell inside it.
        let Some(cell) = forest
            .nodes
            .iter()
            .find(|n| n.name == "Custom 3" && forest.in_shared_subtree(n.id).is_some())
        else {
            // Externalization threshold may have inlined it; nothing to test.
            return;
        };
        let root = forest.in_shared_subtree(cell.id).unwrap();
        let refs = forest.references_to(root);
        if refs.len() > 1 {
            let err = control_path(&forest, cell.id as u64, &[]).unwrap_err();
            assert!(matches!(err, DmiError::AmbiguousEntry { .. }));
            // With an entry the path resolves.
            let path = control_path(&forest, cell.id as u64, &[refs[0] as u64]).unwrap();
            assert!(!path.is_empty());
        }
    }

    #[test]
    fn disabled_target_reports_structured_error() {
        let (mut s, forest) = build(AppKind::Word);
        let paste = find_leaf(&forest, "Paste");
        let err =
            access(&mut s, &forest, &ExecutorConfig::default(), paste, &[], None).unwrap_err();
        assert!(matches!(err, DmiError::ControlDisabled { .. }), "got {err:?}");
    }

    #[test]
    fn capture_aware_retries_preserve_late_load_and_not_found_semantics() {
        use dmi_gui::{CaptureConfig, InstabilityModel};
        // Late loads force the retry loop through lagging captures; the
        // cached session may skip provably identical re-resolves but must
        // reach the same outcomes as the eager-capture oracle.
        let forest = crate::testutil::small_forest(AppKind::Word).clone();
        let bold = find_leaf(&forest, "Bold");
        let run = |cfg: CaptureConfig| {
            let mut s = Session::with_instability(
                AppKind::Word.launch_small(),
                InstabilityModel::new(5, 1.0, 0.0),
            );
            s.set_capture_config(cfg);
            access(&mut s, &forest, &ExecutorConfig::default(), bold, &[], None)
        };
        assert!(run(CaptureConfig::default()).is_ok(), "cached retries tolerate late loads");
        assert!(run(CaptureConfig::full_rebuild()).is_ok(), "oracle agrees");

        // A control that never resolves (the live UI renamed "Next" to
        // "Go To", which fuzzy matching rejects): retries on a static UI
        // are all O(1) cache hits with the resolve skipped, and the
        // structured error is unchanged.
        let next = forest
            .nodes
            .iter()
            .find(|n| n.name == "Next" && forest.is_functional_leaf(n.id))
            .expect("modeled Next button")
            .id;
        // The Find & Replace dialog is a shared subtree (two launchers):
        // disambiguate with the first entry reference when needed.
        let entries: Vec<u64> = forest
            .in_shared_subtree(next)
            .map(|root| forest.references_to(root).first().map(|&r| r as u64).into_iter().collect())
            .unwrap_or_default();
        let next = next as u64;
        let run_missing = |cfg: CaptureConfig| {
            let mut s = Session::new(AppKind::Word.launch_small());
            s.set_capture_config(cfg);
            // Rename the live button before navigating to it.
            let tree = s.app().tree();
            let launcher = tree
                .iter()
                .find(|(i, w)| w.name == "Replace" && tree.is_shown(*i))
                .map(|(i, _)| i)
                .unwrap();
            s.click(launcher).unwrap();
            let edit = s.app().tree().find_by_name("Find what").unwrap();
            s.click(edit).unwrap();
            s.type_text("+1").unwrap();
            s.press("Enter").unwrap();
            let before = s.query_count();
            let err = access(&mut s, &forest, &ExecutorConfig::default(), next, &entries, None)
                .unwrap_err();
            (err, s.query_count() - before)
        };
        let (cached_err, cached_queries) = run_missing(CaptureConfig::default());
        let (eager_err, eager_queries) = run_missing(CaptureConfig::full_rebuild());
        assert!(matches!(cached_err, DmiError::ControlNotFound { .. }), "got {cached_err:?}");
        assert_eq!(
            format!("{cached_err:?}"),
            format!("{eager_err:?}"),
            "skipping identical re-resolves must not change the outcome"
        );
        assert_eq!(cached_queries, eager_queries, "every retry still advances the query clock");
    }

    #[test]
    fn stale_window_is_closed_before_navigation() {
        let (mut s, forest) = build(AppKind::Word);
        // Open the Find & Replace dialog, then visit a ribbon control.
        let tree = s.app().tree();
        let launcher = tree
            .iter()
            .find(|(i, w)| w.name == "Replace" && tree.is_shown(*i))
            .map(|(i, _)| i)
            .unwrap();
        s.click(launcher).unwrap();
        assert_eq!(s.app().tree().open_windows().len(), 2);
        let bold = find_leaf(&forest, "Bold");
        access(&mut s, &forest, &ExecutorConfig::default(), bold, &[], None).unwrap();
        assert_eq!(s.app().tree().open_windows().len(), 1, "dialog was closed");
    }
}
