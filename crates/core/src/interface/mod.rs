//! The DMI online interfaces: access (`visit`), state, and observation.

pub mod executor;
pub mod observe;
pub mod state;
pub mod visit;

pub use executor::{access, control_path, is_clickable, ExecutorConfig};
pub use observe::{get_texts_active, get_texts_passive, PassiveConfig, PassiveTexts, TextItem};
pub use state::{
    select_controls, select_lines, select_paragraphs, set_expanded, set_scrollbar_pos, set_texts,
    set_toggle_state, StateReport,
};
pub use visit::{filter_non_leaf, parse_commands, FilteredCommand, VisitCommand};
