//! Observation declarations (§3.5): structured information retrieval.
//!
//! `get_texts()` runs in two modes (§3.5 "Supporting precise perception by
//! default"):
//!
//! - **passive**: before each LLM call, all `DataItem` controls are read
//!   through Value/TextPattern, truncated, and coalesced (runs of empty
//!   cells collapse into a single marker) — this replaces pixel parsing
//!   and saves round trips;
//! - **active**: when the truncated view is insufficient, the LLM requests
//!   specific controls by label and receives full content.

use crate::error::{DmiError, DmiResult};
use crate::screen::LabeledScreen;
use dmi_gui::Session;
use dmi_uia::{ControlType, PatternKind, Snapshot};

/// One retrieved text item.
#[derive(Debug, Clone, PartialEq)]
pub struct TextItem {
    /// Control name (e.g. a cell reference like `"B7"`).
    pub name: String,
    /// Full or truncated content.
    pub text: String,
    /// Whether the text was truncated in this view.
    pub truncated: bool,
}

/// Options for the passive scan.
#[derive(Debug, Clone)]
pub struct PassiveConfig {
    /// Maximum characters per item in the passive view.
    pub max_chars: usize,
    /// Maximum non-empty items included (rest summarized).
    pub max_items: usize,
}

impl Default for PassiveConfig {
    fn default() -> Self {
        PassiveConfig { max_chars: 16, max_items: 200 }
    }
}

/// The passive `get_texts()` result forwarded into the prompt.
#[derive(Debug, Clone, PartialEq)]
pub struct PassiveTexts {
    /// Truncated non-empty items.
    pub items: Vec<TextItem>,
    /// Count of empty controls coalesced away.
    pub empty_coalesced: usize,
    /// Count of non-empty items beyond `max_items`.
    pub overflow: usize,
}

impl PassiveTexts {
    /// Renders for the prompt: one compact line per item plus coalescing
    /// markers.
    pub fn to_prompt_text(&self) -> String {
        let mut out = String::from("#data-items\n");
        for it in &self.items {
            out.push_str(&format!(
                "{}='{}'{}\n",
                it.name,
                it.text,
                if it.truncated { "…" } else { "" }
            ));
        }
        if self.empty_coalesced > 0 {
            out.push_str(&format!("({} empty items coalesced)\n", self.empty_coalesced));
        }
        if self.overflow > 0 {
            out.push_str(&format!("({} more items; use get_texts active mode)\n", self.overflow));
        }
        out
    }
}

/// Passive mode: scans every `DataItem` in the snapshot (on- or
/// off-screen — pattern reads do not require visibility).
pub fn get_texts_passive(snap: &Snapshot, cfg: &PassiveConfig) -> PassiveTexts {
    let mut items = Vec::new();
    let mut empty = 0usize;
    let mut overflow = 0usize;
    for (_, node) in snap.iter() {
        if node.props.control_type != ControlType::DataItem {
            continue;
        }
        let v = &node.props.value;
        if v.is_empty() {
            empty += 1;
            continue;
        }
        if items.len() >= cfg.max_items {
            overflow += 1;
            continue;
        }
        let truncated = v.chars().count() > cfg.max_chars;
        let text: String = v.chars().take(cfg.max_chars).collect();
        items.push(TextItem { name: node.props.name.clone(), text, truncated });
    }
    PassiveTexts { items, empty_coalesced: empty, overflow }
}

/// Active mode: full text of specific labeled controls (Value/Text
/// pattern required; no partial execution).
pub fn get_texts_active(
    session: &Session,
    screen: &LabeledScreen,
    labels: &[&str],
) -> DmiResult<Vec<TextItem>> {
    let mut resolved = Vec::with_capacity(labels.len());
    for l in labels {
        if l.chars().all(|c| c.is_ascii_digit()) && !l.is_empty() {
            return Err(DmiError::StaticIdProhibited { label: l.to_string() });
        }
        let e =
            screen.resolve(l).ok_or_else(|| DmiError::LabelNotFound { label: l.to_string() })?;
        if !e.patterns.supports(PatternKind::Value) && !e.patterns.supports(PatternKind::Text) {
            return Err(DmiError::PatternUnsupported {
                name: e.name.clone(),
                pattern: "TextPattern".into(),
            });
        }
        resolved.push(e);
    }
    Ok(resolved
        .into_iter()
        .map(|e| {
            let wid = session.widget_of(e.runtime);
            TextItem { name: e.name.clone(), text: session.get_text(wid), truncated: false }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::screen::label_screen;
    use dmi_apps::AppKind;
    use dmi_gui::GuiApp;

    #[test]
    fn passive_scan_coalesces_empties() {
        let mut s = Session::new(AppKind::Excel.launch_small());
        let snap = s.snapshot();
        let p = get_texts_passive(&snap, &PassiveConfig::default());
        // Seeded table: header + 8 data rows over 4 columns.
        assert!(p.items.iter().any(|i| i.name == "A1" && i.text == "Product"));
        assert!(p.empty_coalesced > 20, "blank cells coalesced: {}", p.empty_coalesced);
        let text = p.to_prompt_text();
        assert!(text.contains("empty items coalesced"));
    }

    #[test]
    fn passive_truncates_long_values() {
        let mut s = Session::new(AppKind::Excel.launch_small());
        {
            let app = s.app_mut().as_any_mut().downcast_mut::<dmi_apps::ExcelApp>().unwrap();
            let addr = dmi_apps::model::sheet::Addr::parse("A5").unwrap();
            app.sheet.set_value(addr, "a very long cell value that exceeds the cap");
            let wid = app.cell_widget(addr).unwrap();
            app.tree_mut().widget_mut(wid).value =
                "a very long cell value that exceeds the cap".into();
        }
        let snap = s.snapshot();
        let p = get_texts_passive(&snap, &PassiveConfig::default());
        let item = p.items.iter().find(|i| i.name == "A5").unwrap();
        assert!(item.truncated);
        assert_eq!(item.text.chars().count(), 16);
    }

    #[test]
    fn active_mode_returns_full_content() {
        let mut s = Session::new(AppKind::Excel.launch_small());
        {
            let app = s.app_mut().as_any_mut().downcast_mut::<dmi_apps::ExcelApp>().unwrap();
            let addr = dmi_apps::model::sheet::Addr::parse("A5").unwrap();
            let wid = app.cell_widget(addr).unwrap();
            app.tree_mut().widget_mut(wid).value = "full untruncated content here".into();
        }
        let snap = s.snapshot();
        let screen = label_screen(&snap);
        let label = screen.find_by_name("A5").unwrap().label.clone();
        let items = get_texts_active(&s, &screen, &[&label]).unwrap();
        assert_eq!(items[0].text, "full untruncated content here");
        assert!(!items[0].truncated);
    }

    #[test]
    fn active_mode_rejects_bad_labels_without_partial_reads() {
        let s_snap = {
            let mut s = Session::new(AppKind::Excel.launch_small());
            let snap = s.snapshot();
            (s, snap)
        };
        let (s, snap) = s_snap;
        let screen = label_screen(&snap);
        let good = screen.find_by_name("A1").unwrap().label.clone();
        let err = get_texts_active(&s, &screen, &[&good, "NOPE"]).unwrap_err();
        assert!(matches!(err, DmiError::LabelNotFound { .. }));
        let err = get_texts_active(&s, &screen, &["123"]).unwrap_err();
        assert!(matches!(err, DmiError::StaticIdProhibited { .. }));
    }

    #[test]
    fn max_items_overflow_is_reported() {
        let mut s = Session::new(AppKind::Excel.launch_small());
        let snap = s.snapshot();
        let p = get_texts_passive(&snap, &PassiveConfig { max_chars: 16, max_items: 3 });
        assert_eq!(p.items.len(), 3);
        assert!(p.overflow > 0);
        assert!(p.to_prompt_text().contains("more items"));
    }
}
