//! State declarations (§3.5, Table 2): set a control's desired end state.
//!
//! These interfaces operate on controls addressed by their *on-screen
//! label* — static topology ids are explicitly prohibited to keep access
//! and complex interaction separated (§3.5). Execution is conservative:
//! if any addressed control lacks the required pattern, nothing is
//! executed (§4.4). On success a structured status is returned.

use crate::error::{DmiError, DmiResult};
use crate::screen::LabeledScreen;
use dmi_gui::Session;
use dmi_uia::{PatternKind, RuntimeId};

/// Structured status returned by state declarations (§4.4).
#[derive(Debug, Clone, PartialEq)]
pub struct StateReport {
    /// Human/LLM-readable summary of the resulting state.
    pub status: String,
}

fn resolve(screen: &LabeledScreen, label: &str) -> DmiResult<RuntimeId> {
    if label.chars().all(|c| c.is_ascii_digit()) && !label.is_empty() {
        return Err(DmiError::StaticIdProhibited { label: label.to_string() });
    }
    screen
        .resolve(label)
        .map(|e| e.runtime)
        .ok_or_else(|| DmiError::LabelNotFound { label: label.to_string() })
}

fn require_pattern(
    screen: &LabeledScreen,
    label: &str,
    pattern: PatternKind,
) -> DmiResult<RuntimeId> {
    let rt = resolve(screen, label)?;
    let entry = screen.entries.iter().find(|e| e.runtime == rt).expect("resolved entry");
    if !entry.patterns.supports(pattern) {
        return Err(DmiError::PatternUnsupported {
            name: entry.name.clone(),
            pattern: pattern.as_str().to_string(),
        });
    }
    Ok(rt)
}

/// `set_scrollbar_pos(y_percent)` on a scrollbar or scrollable container
/// (ScrollPattern / RangeValuePattern).
pub fn set_scrollbar_pos(
    session: &mut Session,
    screen: &LabeledScreen,
    label: &str,
    y_percent: f64,
) -> DmiResult<StateReport> {
    let rt = resolve(screen, label)?;
    let entry = screen.entries.iter().find(|e| e.runtime == rt).expect("resolved entry");
    if !entry.patterns.supports(PatternKind::Scroll)
        && !entry.patterns.supports(PatternKind::RangeValue)
    {
        return Err(DmiError::PatternUnsupported {
            name: entry.name.clone(),
            pattern: "ScrollPattern".into(),
        });
    }
    if !(0.0..=100.0).contains(&y_percent) {
        return Err(DmiError::InvalidArgument {
            message: format!("scroll percent {y_percent} outside 0..=100"),
        });
    }
    let wid = session.widget_of(rt);
    session.scroll_to(wid, y_percent).map_err(DmiError::from)?;
    Ok(StateReport { status: format!("scrollbar '{}' at {y_percent:.0}%", entry.name) })
}

/// `select_lines(start, end)` on a text surface (TextPattern).
pub fn select_lines(
    session: &mut Session,
    screen: &LabeledScreen,
    label: &str,
    start: usize,
    end: usize,
) -> DmiResult<StateReport> {
    let rt = require_pattern(screen, label, PatternKind::Text)?;
    let wid = session.widget_of(rt);
    session.select_lines(wid, start, end).map_err(DmiError::from)?;
    Ok(StateReport { status: format!("lines {start}..={end} selected") })
}

/// `select_paragraphs(start, end)` on a text surface (TextPattern).
pub fn select_paragraphs(
    session: &mut Session,
    screen: &LabeledScreen,
    label: &str,
    start: usize,
    end: usize,
) -> DmiResult<StateReport> {
    let rt = require_pattern(screen, label, PatternKind::Text)?;
    let wid = session.widget_of(rt);
    session.select_paragraphs(wid, start, end).map_err(DmiError::from)?;
    Ok(StateReport { status: format!("paragraphs {start}..={end} selected") })
}

/// `select_controls(labels)` — single or multi select (SelectionItem).
///
/// Conservative: every label must resolve and support the pattern before
/// anything is selected.
pub fn select_controls(
    session: &mut Session,
    screen: &LabeledScreen,
    labels: &[&str],
) -> DmiResult<StateReport> {
    if labels.is_empty() {
        return Err(DmiError::InvalidArgument { message: "no labels given".into() });
    }
    let mut targets = Vec::with_capacity(labels.len());
    for l in labels {
        targets.push(require_pattern(screen, l, PatternKind::SelectionItem)?);
    }
    for (i, rt) in targets.iter().enumerate() {
        let wid = session.widget_of(*rt);
        session.select(wid, i > 0).map_err(DmiError::from)?;
    }
    Ok(StateReport { status: format!("{} control(s) selected", targets.len()) })
}

/// `set_toggle_state(on)` (TogglePattern). Idempotent.
pub fn set_toggle_state(
    session: &mut Session,
    screen: &LabeledScreen,
    label: &str,
    on: bool,
) -> DmiResult<StateReport> {
    let rt = require_pattern(screen, label, PatternKind::Toggle)?;
    let wid = session.widget_of(rt);
    session.set_toggle(wid, on).map_err(DmiError::from)?;
    Ok(StateReport { status: format!("toggle set {}", if on { "on" } else { "off" }) })
}

/// `set_expanded` / `set_collapsed` (ExpandCollapsePattern).
pub fn set_expanded(
    session: &mut Session,
    screen: &LabeledScreen,
    label: &str,
    expanded: bool,
) -> DmiResult<StateReport> {
    let rt = require_pattern(screen, label, PatternKind::ExpandCollapse)?;
    let wid = session.widget_of(rt);
    session.set_expanded(wid, expanded).map_err(DmiError::from)?;
    Ok(StateReport { status: (if expanded { "expanded" } else { "collapsed" }).to_string() })
}

/// `set_texts(text)` (TextPattern/ValuePattern): set an edit's content
/// without keystroke emulation.
pub fn set_texts(
    session: &mut Session,
    screen: &LabeledScreen,
    label: &str,
    text: &str,
) -> DmiResult<StateReport> {
    let rt = require_pattern(screen, label, PatternKind::Value)?;
    let wid = session.widget_of(rt);
    session.set_value(wid, text).map_err(DmiError::from)?;
    Ok(StateReport { status: format!("text set ({} chars)", text.len()) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::screen::label_screen;
    use dmi_apps::AppKind;

    fn word_session() -> Session {
        Session::new(AppKind::Word.launch_small())
    }

    #[test]
    fn static_ids_are_prohibited() {
        let mut s = word_session();
        let snap = s.snapshot();
        let screen = label_screen(&snap);
        let err = set_scrollbar_pos(&mut s, &screen, "42", 50.0).unwrap_err();
        assert!(matches!(err, DmiError::StaticIdProhibited { .. }));
    }

    #[test]
    fn scrollbar_pos_sets_viewport() {
        let mut s = word_session();
        let snap = s.snapshot();
        let screen = label_screen(&snap);
        let sb = screen.find_by_name("Vertical Scroll Bar").unwrap().label.clone();
        let r = set_scrollbar_pos(&mut s, &screen, &sb, 100.0).unwrap();
        assert!(r.status.contains("100"));
        // The document scrolled: the last paragraph is now on screen.
        let snap2 = s.snapshot();
        let last = snap2.find_by_name("Paragraph 11").unwrap();
        assert!(!snap2.node(last).props.offscreen);
    }

    #[test]
    fn select_lines_reaches_model() {
        let mut s = word_session();
        let snap = s.snapshot();
        let screen = label_screen(&snap);
        let doc = screen.find_by_name("Document").unwrap().label.clone();
        select_lines(&mut s, &screen, &doc, 3, 5).unwrap();
        let w = s.app().as_any().downcast_ref::<dmi_apps::WordApp>().unwrap();
        let sel = w.doc.selection.unwrap();
        assert_eq!((sel.start, sel.end), (3, 5));
    }

    #[test]
    fn select_controls_is_all_or_nothing() {
        let mut s = Session::new(AppKind::PowerPoint.launch_small());
        let snap = s.snapshot();
        let screen = label_screen(&snap);
        let s1 = screen.find_by_name("Slide 1").unwrap().label.clone();
        // "Bold" is a Button without SelectionItem: whole call must fail
        // without selecting Slide 1.
        let bold = screen.find_by_name("Bold").unwrap().label.clone();
        let err = select_controls(&mut s, &screen, &[&s1, &bold]).unwrap_err();
        assert!(matches!(err, DmiError::PatternUnsupported { .. }));
        // Single valid selection works.
        let r = select_controls(&mut s, &screen, &[&s1]).unwrap();
        assert!(r.status.contains('1'));
    }

    #[test]
    fn toggle_state_is_idempotent() {
        let mut s = word_session();
        // Select something so bold applies; then toggle twice to "on".
        let surf = s.app().tree().find_by_automation_id("Body").unwrap();
        s.select_lines(surf, 0, 0).unwrap();
        let snap = s.snapshot();
        let screen = label_screen(&snap);
        let bold = screen.find_by_name("Bold").unwrap().label.clone();
        set_toggle_state(&mut s, &screen, &bold, true).unwrap();
        set_toggle_state(&mut s, &screen, &bold, true).unwrap();
        let w = s.app().as_any().downcast_ref::<dmi_apps::WordApp>().unwrap();
        assert!(w.doc.paragraphs[0].format.bold, "double-set stays on");
    }

    #[test]
    fn unknown_label_errors() {
        let mut s = word_session();
        let snap = s.snapshot();
        let screen = label_screen(&snap);
        let err = set_toggle_state(&mut s, &screen, "ZZZZ", true).unwrap_err();
        assert!(matches!(err, DmiError::LabelNotFound { .. }));
    }

    #[test]
    fn set_texts_writes_value_directly() {
        let mut s = Session::new(AppKind::Excel.launch_small());
        let snap = s.snapshot();
        let screen = label_screen(&snap);
        let nb = screen.find_by_name("Name Box").unwrap().label.clone();
        set_texts(&mut s, &screen, &nb, "D4").unwrap();
        let excel = s.app().as_any().downcast_ref::<dmi_apps::ExcelApp>().unwrap();
        let nb_id = excel.name_box();
        assert_eq!(s.app().tree().widget(nb_id).value, "D4");
    }
}
