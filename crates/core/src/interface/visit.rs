//! The `visit` command set (§3.4): JSON wire format, parsing, and the
//! non-leaf filter that lets DMI take over all navigation.

use crate::error::{DmiError, DmiResult};
use crate::topology::Forest;
use serde_json::Value;

/// One command accepted by the `visit` interface.
#[derive(Debug, Clone, PartialEq)]
pub enum VisitCommand {
    /// Control access: navigate to the target and click it.
    Access {
        /// Numeric topology id.
        id: u64,
        /// Entry reference ids for targets in shared subtrees.
        entry_ref_id: Vec<u64>,
        /// Bypass the non-leaf filter (§5.7 "Explicit navigation-node
        /// access"): the caller explicitly asks to click a navigation
        /// node.
        enforced: bool,
    },
    /// Access an Edit control and input text.
    AccessInput {
        /// Numeric topology id.
        id: u64,
        /// Entry reference ids.
        entry_ref_id: Vec<u64>,
        /// Text to input.
        text: String,
    },
    /// Auxiliary keyboard shortcut (e.g. committing an edit with ENTER).
    Shortcut {
        /// Key combination (e.g. `"Enter"`, `"Ctrl+B"`).
        keys: String,
    },
    /// Request additional topology (exclusive; `-1` = the whole forest).
    FurtherQuery {
        /// Node ids to expand, or `[-1]`.
        ids: Vec<i64>,
    },
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::Number(n) => n.as_u64(),
        Value::String(s) => s.trim().parse().ok(),
        _ => None,
    }
}

fn as_i64(v: &Value) -> Option<i64> {
    match v {
        Value::Number(n) => n.as_i64(),
        Value::String(s) => s.trim().parse().ok(),
        _ => None,
    }
}

/// Parses the JSON array the LLM emits into commands.
///
/// Accepts ids as numbers or numeric strings (imperfect instruction
/// following); enforces `further_query` exclusivity.
pub fn parse_commands(json: &str) -> DmiResult<Vec<VisitCommand>> {
    let v: Value = serde_json::from_str(json)
        .map_err(|e| DmiError::Malformed { message: format!("invalid JSON: {e}") })?;
    let arr = v
        .as_array()
        .ok_or_else(|| DmiError::Malformed { message: "expected a JSON array".into() })?;
    let mut out = Vec::with_capacity(arr.len());
    for (i, item) in arr.iter().enumerate() {
        let obj = item.as_object().ok_or_else(|| DmiError::Malformed {
            message: format!("command {i} is not an object"),
        })?;
        if let Some(q) = obj.get("further_query") {
            let ids: Vec<i64> = match q {
                Value::Array(items) => items.iter().filter_map(as_i64).collect(),
                single => as_i64(single).into_iter().collect(),
            };
            out.push(VisitCommand::FurtherQuery { ids });
        } else if let Some(k) = obj.get("shortcut_key") {
            let keys = k
                .as_str()
                .ok_or_else(|| DmiError::Malformed {
                    message: format!("command {i}: shortcut_key must be a string"),
                })?
                .to_string();
            out.push(VisitCommand::Shortcut { keys });
        } else if let Some(idv) = obj.get("id") {
            let id = as_u64(idv).ok_or_else(|| DmiError::Malformed {
                message: format!("command {i}: id must be a non-negative integer"),
            })?;
            let entry_ref_id: Vec<u64> = match obj.get("entry_ref_id") {
                Some(Value::Array(items)) => items.iter().filter_map(as_u64).collect(),
                Some(single) => as_u64(single).into_iter().collect(),
                None => Vec::new(),
            };
            let enforced = obj.get("enforced").and_then(Value::as_bool).unwrap_or(false);
            match obj.get("text") {
                Some(t) => {
                    let text = t
                        .as_str()
                        .ok_or_else(|| DmiError::Malformed {
                            message: format!("command {i}: text must be a string"),
                        })?
                        .to_string();
                    out.push(VisitCommand::AccessInput { id, entry_ref_id, text });
                }
                None => out.push(VisitCommand::Access { id, entry_ref_id, enforced }),
            }
        } else {
            return Err(DmiError::Malformed {
                message: format!("command {i}: expected id, shortcut_key, or further_query"),
            });
        }
    }
    let queries = out.iter().filter(|c| matches!(c, VisitCommand::FurtherQuery { .. })).count();
    if queries > 0 && out.len() > queries {
        return Err(DmiError::QueryNotExclusive);
    }
    Ok(out)
}

/// A command removed by the navigation filter.
#[derive(Debug, Clone, PartialEq)]
pub struct FilteredCommand {
    /// Index in the original command array.
    pub index: usize,
    /// Human-readable reason.
    pub reason: String,
}

/// Applies the §3.4 filter: drop commands targeting non-leaf (navigational)
/// nodes — DMI owns navigation — and drop shortcut commands that
/// immediately follow a dropped command (consistency).
pub fn filter_non_leaf(
    forest: &Forest,
    commands: Vec<VisitCommand>,
) -> (Vec<VisitCommand>, Vec<FilteredCommand>) {
    let mut kept = Vec::with_capacity(commands.len());
    let mut filtered = Vec::new();
    let mut last_dropped = false;
    for (i, c) in commands.into_iter().enumerate() {
        match &c {
            VisitCommand::Access { id, enforced: true, .. } => {
                // Explicitly enforced navigation-node access bypasses the
                // filter when the id at least exists.
                if forest.node(*id as usize).is_some() {
                    kept.push(c);
                    last_dropped = false;
                } else {
                    filtered.push(FilteredCommand {
                        index: i,
                        reason: format!("#{id} does not exist"),
                    });
                    last_dropped = true;
                }
            }
            VisitCommand::Access { id, .. } | VisitCommand::AccessInput { id, .. } => {
                let leaf = forest.is_functional_leaf(*id as usize);
                if leaf {
                    kept.push(c);
                    last_dropped = false;
                } else {
                    let name = forest
                        .node(*id as usize)
                        .map(|n| n.name.clone())
                        .unwrap_or_else(|| format!("#{id}"));
                    filtered.push(FilteredCommand {
                        index: i,
                        reason: format!(
                            "'{name}' is a navigational (non-leaf) node; DMI handles navigation"
                        ),
                    });
                    last_dropped = true;
                }
            }
            VisitCommand::Shortcut { keys } => {
                if last_dropped {
                    filtered.push(FilteredCommand {
                        index: i,
                        reason: format!("shortcut '{keys}' followed a filtered command"),
                    });
                } else {
                    kept.push(c);
                }
            }
            VisitCommand::FurtherQuery { .. } => {
                kept.push(c);
                last_dropped = false;
            }
        }
    }
    (kept, filtered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ung_from_parts;
    use crate::topology::{build_forest, decycle, ForestConfig};
    use dmi_uia::ControlType as CT;

    fn forest() -> Forest {
        let mut g = ung_from_parts(
            &[("Home", CT::TabItem), ("Bold", CT::Button), ("Italic", CT::Button)],
            &[(0, 1), (0, 2)],
        );
        decycle(&mut g);
        build_forest(&g, &ForestConfig::default()).0
    }

    #[test]
    fn parse_all_command_kinds() {
        let cmds = parse_commands(
            r#"[{"id": "7"}, {"id": 3, "text": "hello"}, {"shortcut_key": "Enter"}]"#,
        )
        .unwrap();
        assert_eq!(cmds.len(), 3);
        assert_eq!(cmds[0], VisitCommand::Access { id: 7, entry_ref_id: vec![], enforced: false });
        assert!(
            matches!(&cmds[1], VisitCommand::AccessInput { id: 3, text, .. } if text == "hello")
        );
        assert!(matches!(&cmds[2], VisitCommand::Shortcut { keys } if keys == "Enter"));
    }

    #[test]
    fn parse_entry_refs_scalar_or_array() {
        let cmds = parse_commands(
            r#"[{"id": 9, "entry_ref_id": ["4", 5]}, {"id": 9, "entry_ref_id": 4}]"#,
        )
        .unwrap();
        assert_eq!(
            cmds[0],
            VisitCommand::Access { id: 9, entry_ref_id: vec![4, 5], enforced: false }
        );
        assert_eq!(cmds[1], VisitCommand::Access { id: 9, entry_ref_id: vec![4], enforced: false });
    }

    #[test]
    fn further_query_is_exclusive() {
        assert!(matches!(
            parse_commands(r#"[{"further_query": [-1]}, {"id": 2}]"#),
            Err(DmiError::QueryNotExclusive)
        ));
        let ok = parse_commands(r#"[{"further_query": ["12", -1]}]"#).unwrap();
        assert_eq!(ok[0], VisitCommand::FurtherQuery { ids: vec![12, -1] });
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(parse_commands("not json").is_err());
        assert!(parse_commands(r#"{"id": 1}"#).is_err()); // not an array
        assert!(parse_commands(r#"[{"bogus": 1}]"#).is_err());
        assert!(parse_commands(r#"[{"id": -4}]"#).is_err());
    }

    #[test]
    fn filter_drops_non_leaf_and_following_shortcut() {
        let f = forest();
        let home = f.nodes.iter().find(|n| n.name == "Home").unwrap().id as u64;
        let bold = f.nodes.iter().find(|n| n.name == "Bold").unwrap().id as u64;
        let cmds = vec![
            VisitCommand::Access { id: home, entry_ref_id: vec![], enforced: false },
            VisitCommand::Shortcut { keys: "Enter".into() }, // follows filtered
            VisitCommand::Access { id: bold, entry_ref_id: vec![], enforced: false },
            VisitCommand::Shortcut { keys: "Ctrl+S".into() }, // follows kept
        ];
        let (kept, filtered) = filter_non_leaf(&f, cmds);
        assert_eq!(kept.len(), 2);
        assert!(matches!(kept[0], VisitCommand::Access { id, .. } if id == bold));
        assert_eq!(filtered.len(), 2);
        assert!(filtered[0].reason.contains("navigational"));
    }

    #[test]
    fn filter_drops_unknown_ids() {
        let f = forest();
        let (kept, filtered) = filter_non_leaf(
            &f,
            vec![VisitCommand::Access { id: 9999, entry_ref_id: vec![], enforced: false }],
        );
        assert!(kept.is_empty());
        assert_eq!(filtered.len(), 1);
    }

    #[test]
    fn enforced_access_bypasses_filter() {
        let f = forest();
        let home = f.nodes.iter().find(|n| n.name == "Home").unwrap().id as u64;
        let cmds = parse_commands(&format!(r#"[{{"id": {home}, "enforced": true}}]"#)).unwrap();
        let (kept, filtered) = filter_non_leaf(&f, cmds);
        assert_eq!(kept.len(), 1, "enforced navigation access is kept");
        assert!(filtered.is_empty());
        // A nonexistent enforced id is still filtered.
        let cmds = vec![VisitCommand::Access { id: 99999, entry_ref_id: vec![], enforced: true }];
        let (kept, filtered) = filter_non_leaf(&f, cmds);
        assert!(kept.is_empty());
        assert_eq!(filtered.len(), 1);
    }
}
