//! Declarative Model Interface (DMI).
//!
//! The paper's primary contribution: an abstraction layer that transforms
//! imperative GUI use into three declarative primitives — **access**,
//! **state**, and **observation** — decoupling high-level semantic policy
//! (the LLM's job) from low-level navigation and interaction mechanism
//! (DMI's job).
//!
//! Pipeline:
//!
//! 1. **Offline** ([`ripper`]): GUI ripping builds the UI Navigation Graph
//!    ([`graph::Ung`]) by DFS differential capture.
//! 2. **Topology** ([`topology`]): decycle to a single-source DAG, then
//!    cost-based selective externalization into a path-unambiguous
//!    [`topology::Forest`] (main tree + shared subtrees).
//! 3. **Descriptions** ([`describe`]): compact
//!    `name(type)(description)_id[children]` text, a depth-limited core
//!    topology, and `further_query` on-demand expansion.
//! 4. **Online** ([`interface`], [`Dmi`]): the `visit` access interface
//!    with non-leaf filtering, fuzzy matching, retries, and structured
//!    errors; state declarations (`set_scrollbar_pos`, `select_lines`,
//!    `select_controls`, ...); observation (`get_texts` passive/active).

pub mod describe;
pub mod dmi;
pub mod error;
pub mod fuzz;
pub mod graph;
pub mod incremental;
pub mod interface;
pub mod parallel;
pub mod ripper;
pub mod screen;
pub mod tokens;
pub mod topology;

pub use describe::DescribeConfig;
pub use dmi::{Dmi, DmiBuildConfig, DmiBuildStats, VisitOutcome};
pub use error::{DmiError, DmiResult, RipError};
pub use graph::{Ung, UngNode};
pub use incremental::{
    pristine_signature, rip_incremental, rip_journaled, IncrementalStats, JournalEntry, RipJournal,
    WindowSig,
};
pub use interface::{ExecutorConfig, VisitCommand};
pub use parallel::{
    rip_fleet, rip_parallel, FleetEntry, ParRipConfig, RipOutcome, RipStatus, ShardPlan,
};
pub use ripper::{ContextSetup, RipConfig, RipStats};
pub use screen::{label_screen, LabeledScreen};
pub use topology::{Forest, ForestConfig};

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared, lazily-ripped fixtures so the test suite rips each small
    //! app once per binary instead of once per test.

    use crate::graph::Ung;
    use crate::ripper::{rip, RipConfig, RipStats};
    use crate::topology::{build_forest, decycle, Forest, ForestConfig};
    use dmi_apps::AppKind;
    use std::sync::OnceLock;

    /// The ripped (raw) UNG and stats for a small app instance.
    pub fn small_rip(kind: AppKind) -> &'static (Ung, RipStats) {
        static WORD: OnceLock<(Ung, RipStats)> = OnceLock::new();
        static EXCEL: OnceLock<(Ung, RipStats)> = OnceLock::new();
        static PPT: OnceLock<(Ung, RipStats)> = OnceLock::new();
        let cell = match kind {
            AppKind::Word => &WORD,
            AppKind::Excel => &EXCEL,
            AppKind::PowerPoint => &PPT,
        };
        cell.get_or_init(|| {
            let mut s = dmi_gui::Session::new(kind.launch_small());
            rip(&mut s, &RipConfig::office(kind.name()))
        })
    }

    /// The decycled forest for a small app instance.
    pub fn small_forest(kind: AppKind) -> &'static Forest {
        static WORD: OnceLock<Forest> = OnceLock::new();
        static EXCEL: OnceLock<Forest> = OnceLock::new();
        static PPT: OnceLock<Forest> = OnceLock::new();
        let cell = match kind {
            AppKind::Word => &WORD,
            AppKind::Excel => &EXCEL,
            AppKind::PowerPoint => &PPT,
        };
        cell.get_or_init(|| {
            let mut g = small_rip(kind).0.clone();
            g.rebuild_index();
            decycle(&mut g);
            build_forest(&g, &ForestConfig::default()).0
        })
    }
}
