//! The deterministic multi-queue fairness policy shared by the rip and
//! serve paths.
//!
//! The PR 5 fleet dispatch queue and the multi-tenant agent gateway
//! ([`dmi_agent::gateway`] downstream) face the same scheduling problem:
//! many lanes (apps being ripped, tenants being served) contend for one
//! worker pool, and the pick must be a *pure function of queue state* so
//! fairness can shape latency without ever shaping bytes. This module
//! extracts that policy into a reusable [`FairQueue`]:
//!
//! 1. **Urgent first.** Lanes with urgent work (a rip lane's commit loop
//!    is blocked on the task right now; a serve lane's task was handed
//!    back unserved) win outright, rotated round-robin among themselves.
//! 2. **Greatest weight next.** Among speculative/backlogged lanes, the
//!    pop serves the lane with the greatest weight. The weight is
//!    **cost-aware**: `depth × EWMA(task latency)` — the lane's reported
//!    remaining depth (DFS stack entries, queued tenant tasks) scaled by
//!    an exponentially weighted moving average of its recently observed
//!    per-task latency, i.e. an estimate of *remaining work seconds*,
//!    not remaining task count. Until a lane has any latency
//!    observations its EWMA reads the queue-wide mean of the *primed*
//!    lanes' averages — an unmeasured lane is assumed as expensive as
//!    the measured ones, instead of the old constant-1.0 fallback that
//!    systematically biased against fresh lanes whenever observed
//!    latencies sat far from one second. With no primed lane anywhere
//!    the fallback is 1.0, which degrades exactly to the PR 5
//!    depth-only policy.
//! 3. **Ties round-robin.** A rotating cursor breaks exact weight ties,
//!    so equal lanes interleave instead of starving.
//!
//! Latency observations arrive from the worker side (wall-clock task
//! durations) and therefore vary run to run; that is fine by design —
//! the policy is deterministic *given* the observations, and the engines
//! layered on top (per-lane commit folds, per-task run traces) are
//! byte-identical under **every** service order. The fleet byte-identity
//! oracle and the serve trace-identity oracle in `tests/identity.rs`
//! gate exactly that.

use std::collections::VecDeque;

/// An exponentially weighted moving average of per-task latency seconds.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    /// Smoothing factor in `(0, 1]`: the weight of the newest sample.
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// A fresh average with the given smoothing factor.
    pub fn new(alpha: f64) -> Ewma {
        Ewma { alpha: alpha.clamp(f64::MIN_POSITIVE, 1.0), value: None }
    }

    /// Folds one latency sample in (non-finite or negative samples are
    /// ignored — a wall clock that jumped backwards must not poison the
    /// average).
    pub fn observe(&mut self, secs: f64) {
        if !secs.is_finite() || secs < 0.0 {
            return;
        }
        self.value = Some(match self.value {
            None => secs,
            Some(v) => v + self.alpha * (secs - v),
        });
    }

    /// The current average, or `default` before any sample landed.
    pub fn value_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }

    /// Whether any sample has been folded in.
    pub fn primed(&self) -> bool {
        self.value.is_some()
    }
}

impl Default for Ewma {
    /// The default smoothing (α = 0.2) reacts within a handful of tasks
    /// without chasing single outliers.
    fn default() -> Ewma {
        Ewma::new(0.2)
    }
}

/// One lane of the multi-queue.
struct Lane<T> {
    tasks: VecDeque<T>,
    /// Tasks at the lane front a consumer is blocked on right now.
    urgent: usize,
    /// Lane-reported remaining depth (DFS stack entries, tenant backlog).
    depth: u64,
    /// Observed per-task latency average (cost model).
    ewma: Ewma,
}

impl<T> Lane<T> {
    /// The cost-aware fairness weight: estimated remaining work seconds.
    /// `default_cost` seeds the estimate while the lane's own EWMA is
    /// unprimed (see [`FairQueue::default_cost`]).
    fn weight(&self, default_cost: f64) -> f64 {
        self.depth as f64 * self.ewma.value_or(default_cost)
    }
}

/// A deterministic multi-queue: one sub-queue per lane, popped under the
/// shared urgent-first / greatest-weight / round-robin-ties policy.
pub struct FairQueue<T> {
    lanes: Vec<Lane<T>>,
    /// Round-robin cursor breaking weight ties deterministically.
    rr: usize,
}

impl<T> FairQueue<T> {
    /// An empty multi-queue with `lanes` sub-queues.
    pub fn new(lanes: usize) -> FairQueue<T> {
        FairQueue {
            lanes: (0..lanes)
                .map(|_| Lane {
                    tasks: VecDeque::new(),
                    urgent: 0,
                    depth: 0,
                    ewma: Ewma::default(),
                })
                .collect(),
            rr: 0,
        }
    }

    /// Number of lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Total queued tasks across every lane.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(|l| l.tasks.len()).sum()
    }

    /// Queued tasks in one lane.
    pub fn lane_len(&self, lane: usize) -> usize {
        self.lanes[lane].tasks.len()
    }

    /// Whether every lane is empty.
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(|l| l.tasks.is_empty())
    }

    /// Enqueues a must-run-next task at the front of its lane, preferred
    /// over every backlog.
    pub fn push_front(&mut self, lane: usize, task: T) {
        let l = &mut self.lanes[lane];
        l.tasks.push_front(task);
        l.urgent += 1;
    }

    /// Enqueues a task behind its lane's backlog.
    pub fn push_back(&mut self, lane: usize, task: T) {
        self.lanes[lane].tasks.push_back(task);
    }

    /// Updates a lane's reported remaining depth (the count half of the
    /// cost-aware weight).
    pub fn set_depth(&mut self, lane: usize, depth: u64) {
        self.lanes[lane].depth = depth;
    }

    /// Folds one observed per-task latency into the lane's cost model
    /// (the seconds half of the cost-aware weight).
    pub fn observe_latency(&mut self, lane: usize, secs: f64) {
        self.lanes[lane].ewma.observe(secs);
    }

    /// The lane's current latency estimate (the queue-wide
    /// [`FairQueue::default_cost`] until primed).
    pub fn latency_estimate(&self, lane: usize) -> f64 {
        self.lanes[lane].ewma.value_or(self.default_cost())
    }

    /// The cold-start cost estimate for unprimed lanes: the mean of the
    /// primed lanes' EWMAs, i.e. completed tasks anywhere in the queue
    /// seed the cost model of lanes that have not finished one yet.
    /// Before *any* task completes it is 1.0, degrading to the depth-only
    /// policy.
    pub fn default_cost(&self) -> f64 {
        let (sum, n) = self
            .lanes
            .iter()
            .filter(|l| l.ewma.primed())
            .fold((0.0f64, 0u32), |(s, n), l| (s + l.ewma.value_or(0.0), n + 1));
        if n == 0 {
            1.0
        } else {
            sum / n as f64
        }
    }

    /// The cost-aware speculation budget: how many subtree steps a worker
    /// that just served `lane` may keep walking before returning to the
    /// queue, given a per-walk cap of `max_steps`.
    ///
    /// - `0` when walks are disabled (`max_steps == 0`).
    /// - Capped at **1** when any *other* lane holds urgent work: a
    ///   blocked sibling outranks a deep walk, but the single step — the
    ///   candidate this lane's scheduler will pop next — is still worth
    ///   more than anything else this thread could do for the lane.
    /// - The full `max_steps` when no other lane has backlog.
    /// - Otherwise `max_steps` scaled by the lane's share of the
    ///   queue-wide cost-aware weight (at least 1): deep expensive
    ///   frontiers may walk deep, lanes holding a sliver of the
    ///   remaining work hand the thread back quickly.
    ///
    /// Like every policy here it shapes only latency — an adopted
    /// speculation holds the same bytes the dispatched task would have
    /// produced.
    pub fn spec_budget(&self, lane: usize, max_steps: usize) -> usize {
        if max_steps == 0 || lane >= self.lanes.len() {
            return 0;
        }
        if self.lanes.iter().enumerate().any(|(i, l)| i != lane && l.urgent > 0) {
            return 1;
        }
        let dc = self.default_cost();
        let mine = self.lanes[lane].weight(dc);
        let others: f64 = self
            .lanes
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != lane)
            .map(|(_, l)| l.weight(dc))
            .sum();
        if others <= 0.0 {
            return max_steps;
        }
        let share = mine / (mine + others);
        (((share * max_steps as f64).round()) as usize).clamp(1, max_steps)
    }

    /// Drops every queued task for one lane (quarantine/cancel), zeroing
    /// its urgency and depth. Returns how many tasks were dropped.
    pub fn purge(&mut self, lane: usize) -> usize {
        let l = &mut self.lanes[lane];
        l.urgent = 0;
        l.depth = 0;
        l.tasks.drain(..).count()
    }

    /// Pops the next task under the shared policy: urgent lanes first
    /// (round-robin), then the non-empty lane with the greatest
    /// cost-aware weight, exact ties resolved by the rotating cursor.
    pub fn pop(&mut self) -> Option<T> {
        let n = self.lanes.len();
        for off in 0..n {
            let i = (self.rr + off) % n;
            if self.lanes[i].urgent > 0 {
                self.lanes[i].urgent -= 1;
                self.rr = (i + 1) % n;
                return self.lanes[i].tasks.pop_front();
            }
        }
        let dc = self.default_cost();
        let mut best: Option<usize> = None;
        for off in 0..n {
            let i = (self.rr + off) % n;
            if self.lanes[i].tasks.is_empty() {
                continue;
            }
            if best.is_none_or(|b| self.lanes[i].weight(dc) > self.lanes[b].weight(dc)) {
                best = Some(i);
            }
        }
        let i = best?;
        self.rr = (i + 1) % n;
        self.lanes[i].tasks.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn urgent_tasks_win_over_any_backlog() {
        let mut q: FairQueue<&str> = FairQueue::new(2);
        q.push_back(0, "spec-a");
        q.set_depth(0, 100);
        q.push_front(1, "urgent-b");
        assert_eq!(q.pop(), Some("urgent-b"));
        assert_eq!(q.pop(), Some("spec-a"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn unprimed_lanes_fall_back_to_depth_order() {
        let mut q: FairQueue<u32> = FairQueue::new(3);
        q.push_back(0, 0);
        q.push_back(1, 1);
        q.push_back(2, 2);
        q.set_depth(0, 1);
        q.set_depth(1, 9);
        q.set_depth(2, 4);
        assert_eq!(q.pop(), Some(1), "deepest lane first when no latency is observed");
    }

    #[test]
    fn cost_awareness_prefers_expensive_lanes_at_equal_depth() {
        let mut q: FairQueue<u32> = FairQueue::new(2);
        q.push_back(0, 0);
        q.push_back(1, 1);
        q.set_depth(0, 4);
        q.set_depth(1, 4);
        // Lane 1's tasks take 10x longer: it holds more remaining *work*
        // at equal depth, so it is served first.
        q.observe_latency(0, 0.1);
        q.observe_latency(1, 1.0);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(0));
    }

    #[test]
    fn cost_awareness_can_invert_depth_order() {
        let mut q: FairQueue<u32> = FairQueue::new(2);
        q.push_back(0, 0);
        q.push_back(1, 1);
        // Lane 0 is shallower but far slower per task.
        q.set_depth(0, 2);
        q.set_depth(1, 6);
        q.observe_latency(0, 9.0);
        q.observe_latency(1, 1.0);
        assert_eq!(q.pop(), Some(0), "2 tasks x 9s outweigh 6 tasks x 1s");
    }

    #[test]
    fn exact_ties_rotate_round_robin() {
        let mut q: FairQueue<u32> = FairQueue::new(2);
        for round in 0..3u32 {
            q.push_back(0, round * 10);
            q.push_back(1, round * 10 + 1);
        }
        q.set_depth(0, 5);
        q.set_depth(1, 5);
        let picks: Vec<u32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(picks, vec![0, 1, 10, 11, 20, 21], "equal lanes interleave");
    }

    #[test]
    fn purge_empties_one_lane_only() {
        let mut q: FairQueue<u32> = FairQueue::new(2);
        q.push_back(0, 0);
        q.push_back(0, 1);
        q.push_front(0, 2);
        q.push_back(1, 3);
        assert_eq!(q.purge(0), 3);
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ewma_tracks_and_rejects_garbage() {
        let mut e = Ewma::new(0.5);
        assert!(!e.primed());
        assert_eq!(e.value_or(1.0), 1.0);
        e.observe(4.0);
        assert_eq!(e.value_or(1.0), 4.0, "first sample adopted directly");
        e.observe(2.0);
        assert_eq!(e.value_or(1.0), 3.0);
        e.observe(f64::NAN);
        e.observe(-5.0);
        assert_eq!(e.value_or(1.0), 3.0, "non-finite and negative samples ignored");
    }

    #[test]
    fn cold_start_seeds_unprimed_lanes_from_completed_tasks() {
        let mut q: FairQueue<u32> = FairQueue::new(2);
        q.push_back(0, 0);
        q.push_back(1, 1);
        q.set_depth(0, 4);
        q.set_depth(1, 5);
        // Lane 0 has completed tasks at 10s each; lane 1 has none yet.
        // The old constant-1.0 fallback scored lane 1 at 5.0 against lane
        // 0's 40.0 — a fresh lane was starved purely for being
        // unmeasured. Seeded from the observed costs, lane 1 reads
        // 5 x 10 = 50 > 40 and is served first.
        q.observe_latency(0, 10.0);
        assert_eq!(q.default_cost(), 10.0);
        assert_eq!(q.pop(), Some(1), "unmeasured lane assumed as expensive as measured ones");
        assert_eq!(q.pop(), Some(0));
    }

    #[test]
    fn default_cost_is_the_mean_of_primed_lanes_and_one_before_any() {
        let mut q: FairQueue<u32> = FairQueue::new(3);
        assert_eq!(q.default_cost(), 1.0, "no observations anywhere: depth-only policy");
        q.observe_latency(0, 2.0);
        q.observe_latency(2, 6.0);
        assert_eq!(q.default_cost(), 4.0, "mean of the primed lanes only");
        assert_eq!(q.latency_estimate(1), 4.0, "unprimed estimate follows");
    }

    #[test]
    fn spec_budget_scales_with_the_lanes_share_of_remaining_work() {
        let mut q: FairQueue<u32> = FairQueue::new(2);
        assert_eq!(q.spec_budget(0, 0), 0, "walks disabled");
        assert_eq!(q.spec_budget(0, 8), 8, "no other backlog: full budget");
        q.set_depth(0, 10);
        q.set_depth(1, 30);
        assert_eq!(q.spec_budget(0, 8), 2, "a quarter of the remaining work: 8/4");
        assert_eq!(q.spec_budget(1, 8), 6);
        q.set_depth(0, 0);
        assert_eq!(q.spec_budget(0, 8), 1, "never below one step while siblings have work");
    }

    #[test]
    fn spec_budget_caps_at_one_step_when_a_sibling_is_blocked() {
        let mut q: FairQueue<u32> = FairQueue::new(2);
        q.set_depth(0, 100);
        q.set_depth(1, 100);
        q.push_front(1, 1);
        assert_eq!(q.spec_budget(0, 8), 1, "a blocked sibling outranks a deep walk");
        assert_eq!(q.spec_budget(1, 8), 4, "a lane's own urgent work does not cap its walk");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.spec_budget(0, 8), 4, "cap lifts once the urgent task is served");
    }
}
