//! Fleet ripping: many applications, one shared worker pool, one
//! deterministic UNG merge per application.
//!
//! The paper's offline UNG construction (§4.1) is embarrassingly parallel
//! in principle: exploring one candidate — establish its prefix state,
//! click it, diff the pre/post captures — is a pure function of `(setup,
//! path, candidate)` on a deterministic application, because state is
//! always re-established from a provably launch-equivalent base (Esc
//! recovery or restart + replay; see [`crate::ripper`]). This module
//! exploits that at two scales: [`rip_parallel`] shards one application,
//! [`rip_fleet`] rips N applications (or N versions of one application)
//! concurrently under a single worker budget — the production shape for
//! serving many users at once.
//!
//! # Architecture
//!
//! - **[`ShardPlan`]** resolves a [`ParRipConfig`] into the execution
//!   shape: how many workers run, how deep the shared speculative
//!   dispatch window is, and how far workers may speculatively walk
//!   into freshly revealed subtrees.
//! - **[`FleetEntry`] lanes**: each entry gets a private [`scheduler`]
//!   lane — its own `Frontier` (UNG, visited set, DFS stack) plus
//!   per-lane speculation bookkeeping — all multiplexed on the caller's
//!   thread by a `FleetPlan`.
//! - **App-agnostic workers** ([`worker`]): one shared pool of threads
//!   serves every lane. A worker is not pinned to an app at spawn;
//!   each task names its frontier and the worker checks an exploration
//!   unit (a `Session::fork_from_pristine` fork plus suspended §4.1
//!   planner state) out of that app's session pool for the task's
//!   duration. Esc-recovery state travels with the pooled unit, so
//!   recovery amortizes across tasks exactly as it does sequentially.
//! - **Cost-aware fairness** ([`fairness`]): the dispatch queue is a
//!   [`FairQueue`] multi-queue with one lane per app. Urgent tasks (a
//!   lane is blocked on them) win outright; speculative backlogs are
//!   served by greatest *estimated remaining work* — reported DFS stack
//!   depth × a worker-fed EWMA of the app's observed per-task latency —
//!   ties rotated round-robin. The same policy schedules tenants in the
//!   online gateway (`dmi_agent::gateway`). Fairness shapes only
//!   latency: per-lane commit order is fixed regardless of where or
//!   when outcomes are computed, which the byte-identity oracles gate.
//! - **Shard-local subtree speculation** ([`spec`]): a worker finishing
//!   `explore(setup, path, candidate)` holds its session in exactly the
//!   post-click state, so — within a cost-aware budget granted by the
//!   fair queue — it keeps walking into the candidates its own fresh
//!   capture revealed, publishing each result keyed by the full
//!   exploration input. The scheduler adopts a publication when its
//!   sequential DFS pop matches the key exactly (zero stall — this is
//!   what attacks the `stall.reveal` bucket PR 9 quantified) and
//!   discards everything else: superseded duplicates, orphans, and the
//!   whole table of any lane the probe-digest oracle quarantines.
//!   `RipStats::{spec_published, spec_adopted, spec_wasted}` (and the
//!   `spec.depth`/`spec.adopt`/`spec.waste` tallies) account for every
//!   publication.
//! - **Shared capture pool**: all shards of one app (the lane session
//!   included) share a `dmi_gui::CapturePool` keyed by the pristine
//!   token and each session's pristine-relative action trace, so
//!   redundant arena walks across the fleet collapse into `Arc` clones
//!   behind one short-critical-section lock (locking discipline and the
//!   cross-session soundness argument live on `CapturePool`).
//!
//! # One commit fold, three engines
//!
//! The sequential [`crate::ripper::rip`], the sharded [`rip_parallel`]
//! (reimplemented as the 1-entry fleet), and [`rip_fleet`] all mutate the
//! graph exclusively through `Frontier::seed`/`Frontier::commit`.
//!
//! # Determinism argument (per frontier)
//!
//! The sequential ripper's UNG is a fold over an ordered list of commit
//! records: `seed(snapshot)` for each pass, then `commit(candidate,
//! post, fresh)` per explored candidate, where the DFS stack and visited
//! set — and hence *which* candidate is committed next — are themselves
//! functions of the previous commits only. Each outcome `(post, fresh)`
//! is a pure function of `(setup, path, candidate)` (deterministic app,
//! state re-established from base), so it does not matter *where* or
//! *when* it was computed — nor which of the fleet's apps ran between
//! two of this app's tasks on the same worker, because every task
//! re-establishes state on a session owned by the task's own app. The
//! same purity is why adopting a *speculative* result is sound: the
//! speculation table is keyed by the complete exploration input, so a
//! key match means the worker's walk computed the very value the
//! dispatched task would have — substituting it cannot change the fold
//! (the adoption-soundness argument in `docs/determinism.md`). Each
//! lane performs the identical fold with identical inputs in identical
//! order; node ids (insertion order), edge lists (insertion order,
//! deduplicated), and the `ControlKey` hash+confirm dedup decisions
//! therefore come out byte-for-byte the same, independently for every
//! frontier in the fleet. The release-gated oracles in
//! `tests/identity.rs` assert this end-to-end — single-app at 4 shards
//! and a 3-app fleet (plus an unforkable entry) via serialized-graph
//! equality.
//!
//! # Merge ordering
//!
//! Out-of-order worker results are buffered per lane and merged strictly
//! in stack (pop) order — *canonical node ordering* is sequential-DFS
//! discovery order, not arrival order. Merging goes through the same
//! `Frontier::commit` the sequential ripper uses: every fresh control is
//! dedup-inserted via the [`dmi_uia::ControlKey`] fingerprint with
//! full-identifier confirmation, so hash collisions cost a comparison,
//! never a wrong merge (collision safety is unit-tested in
//! `crate::graph`).
//!
//! # What is *not* identical
//!
//! [`RipStats`] effort counters (clicks, snapshots, restarts) include
//! speculative work that the sequential rip never performs, and each
//! worker restarts at least once; only the UNG — and the commit-derived
//! counters `blocklisted` and `windows_seen` — match the sequential rip
//! exactly. `RipConfig::max_clicks` gates on a global click counter that
//! has no order-independent parallel equivalent, so entries using it (a
//! debug aid) fall back to the sequential engine, as do applications
//! that cannot fork — [`RipOutcome::status`] reports which engine ran.
//!
//! # Fault containment
//!
//! The fleet survives hostile frontiers without giving up determinism:
//! worker exploration runs under `catch_unwind`, so an application that
//! panics mid-click kills only the checked-out fork — the scheduler
//! quarantines that one lane ([`RipStatus::Failed`], partial graph and
//! panic payload preserved) while sibling lanes finish byte-identical to
//! their sequential rips. Worker forks additionally digest their base
//! after every restart; a digest that stops matching the lane's seed
//! base proves the app's reset drifted from its attested pristine image,
//! and the lane degrades to a cache-cleared sequential re-rip
//! ([`RipStatus::Degraded`]) instead of merging untrustworthy bytes.
//! Capture-pool lock poisoning is likewise fail-soft: pooled entries are
//! forfeited and rebuilt (`RipStats::poison_recoveries` counts it),
//! never served from a suspect state. The fuzz harness
//! ([`crate::fuzz`]) drives all of this adversarially.
//!
//! [`RipStats`]: crate::ripper::RipStats
//! [`RipConfig::max_clicks`]: crate::ripper::RipConfig

pub mod fairness;
mod plan;
mod scheduler;
mod spec;
mod worker;

pub use fairness::{Ewma, FairQueue};
pub use plan::{ParRipConfig, ShardPlan};
pub use scheduler::{rip_fleet, rip_parallel, FleetEntry, RipOutcome, RipStatus};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ripper::{rip, RipConfig};
    use dmi_apps::testkit::{PanickyApp, UnforkableApp};
    use dmi_apps::AppKind;
    use dmi_gui::Session;

    /// The parallel engine must produce the same UNG bytes as the
    /// sequential reference (PowerPoint exercises the context pass too).
    #[test]
    fn parallel_rip_matches_sequential_for_powerpoint() {
        let cfg = RipConfig::office("PowerPoint");
        let mut seq = Session::new(AppKind::PowerPoint.launch_small());
        let (g_seq, st_seq) = rip(&mut seq, &cfg);

        let mut par = Session::new(AppKind::PowerPoint.launch_small());
        let plan = ParRipConfig { workers: 2, speculation: 2, spec_walk: 4 };
        let (g_par, st_par) = rip_parallel(&mut par, &cfg, &plan);

        assert_eq!(
            serde_json::to_string(&g_par).unwrap(),
            serde_json::to_string(&g_seq).unwrap(),
            "merged UNG must be byte-identical to the sequential rip"
        );
        assert_eq!(g_par.node_count(), g_seq.node_count());
        assert_eq!(g_par.edge_count(), g_seq.edge_count());
        assert_eq!(st_par.windows_seen, st_seq.windows_seen, "commit-derived counter");
        assert_eq!(st_par.blocklisted, st_seq.blocklisted, "commit-derived counter");
        assert!(st_par.clicks >= st_seq.clicks, "speculation only adds effort");
        assert_eq!(
            st_par.spec_published,
            st_par.spec_adopted + st_par.spec_wasted,
            "every published speculation is either adopted or counted as waste"
        );
        assert_eq!(st_seq.spec_published, 0, "the sequential engine never speculates");
    }

    /// Applications without a pristine fork fall back to the sequential
    /// engine transparently.
    #[test]
    fn unforkable_apps_fall_back_to_sequential() {
        let cfg = RipConfig::default();
        let mut seq = Session::new(Box::new(UnforkableApp::new(2)));
        let (g_seq, st_seq) = rip(&mut seq, &cfg);
        let mut par = Session::new(Box::new(UnforkableApp::new(2)));
        let (g_par, st_par) = rip_parallel(
            &mut par,
            &cfg,
            &ParRipConfig { workers: 4, speculation: 2, spec_walk: 4 },
        );
        assert_eq!(g_par.node_count(), g_seq.node_count());
        assert_eq!(g_par.edge_count(), g_seq.edge_count());
        assert_eq!(st_par, st_seq, "fallback is the sequential engine itself");
    }

    /// A mixed fleet — one forkable Office app, one unforkable app — must
    /// produce per-app UNGs byte-identical to each app's sequential rip,
    /// in entry order, with the fallback flagged.
    #[test]
    fn fleet_rip_matches_sequential_per_app() {
        let cfg = RipConfig::office("PowerPoint");
        let mut seq = Session::new(AppKind::PowerPoint.launch_small());
        let (g_seq, st_seq) = rip(&mut seq, &cfg);
        let mut tiny_seq = Session::new(Box::new(UnforkableApp::new(2)));
        let (g_tiny, _) = rip(&mut tiny_seq, &RipConfig::default());

        let mut entries = vec![
            FleetEntry::new(
                "PowerPoint",
                Session::new(AppKind::PowerPoint.launch_small()),
                cfg.clone(),
            ),
            FleetEntry::new(
                "Unforkable",
                Session::new(Box::new(UnforkableApp::new(2))),
                RipConfig::default(),
            ),
        ];
        let out =
            rip_fleet(&mut entries, &ParRipConfig { workers: 2, speculation: 2, spec_walk: 4 });
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].app_id, "PowerPoint");
        assert!(!out[0].fell_back(), "Office apps fork");
        assert_eq!(
            serde_json::to_string(&out[0].graph).unwrap(),
            serde_json::to_string(&g_seq).unwrap(),
            "fleet UNG must be byte-identical to the sequential rip"
        );
        assert_eq!(out[0].stats.windows_seen, st_seq.windows_seen, "commit-derived counter");
        assert_eq!(out[0].stats.blocklisted, st_seq.blocklisted, "commit-derived counter");
        assert!(
            out[0].stats.pool_hits > 0,
            "shards of one app must share captures through the pool"
        );
        assert_eq!(out[1].app_id, "Unforkable");
        assert_eq!(
            out[1].status,
            RipStatus::FellBack,
            "unforkable entries ride the sequential engine"
        );
        assert_eq!(out[1].graph.node_count(), g_tiny.node_count());
        assert_eq!(out[1].graph.edge_count(), g_tiny.edge_count());
    }

    /// Three versions of one application rip concurrently into three
    /// independent, byte-identical-to-sequential UNGs.
    #[test]
    fn fleet_rips_multiple_versions_of_one_app() {
        let cfg = RipConfig::default();
        let mut entries: Vec<FleetEntry> = (0..3)
            .map(|v| {
                FleetEntry::new(
                    format!("PowerPoint-v{v}"),
                    Session::new(AppKind::PowerPoint.launch_small_version(v)),
                    cfg.clone(),
                )
            })
            .collect();
        let out =
            rip_fleet(&mut entries, &ParRipConfig { workers: 2, speculation: 2, spec_walk: 4 });
        for (v, o) in out.iter().enumerate() {
            let mut s = Session::new(AppKind::PowerPoint.launch_small_version(v));
            let (g_seq, _) = rip(&mut s, &cfg);
            assert_eq!(
                serde_json::to_string(&o.graph).unwrap(),
                serde_json::to_string(&g_seq).unwrap(),
                "version {v}"
            );
        }
        // Different versions have genuinely different UIs.
        assert_ne!(out[0].graph.node_count(), out[1].graph.node_count());
        assert_ne!(out[1].graph.node_count(), out[2].graph.node_count());
    }

    /// A worker panic mid-rip is contained per entry: the panicking
    /// entry comes back [`RipStatus::Failed`] with the payload and app
    /// id preserved, while the sibling entry on the same worker pool
    /// finishes byte-identical to its sequential rip.
    #[test]
    fn worker_panic_is_contained_per_entry() {
        crate::fuzz::silence_injected_panics();
        let cfg = RipConfig::default();
        let mut seq = Session::new(AppKind::PowerPoint.launch_small());
        let (g_seq, _) = rip(&mut seq, &cfg);

        let mut entries = vec![
            FleetEntry::new(
                "Healthy",
                Session::new(AppKind::PowerPoint.launch_small()),
                cfg.clone(),
            ),
            FleetEntry::new(
                "Panicky",
                Session::new(Box::new(PanickyApp::new(3, 2))),
                RipConfig::default(),
            ),
        ];
        let out =
            rip_fleet(&mut entries, &ParRipConfig { workers: 2, speculation: 2, spec_walk: 4 });

        assert_eq!(out[0].app_id, "Healthy");
        assert_eq!(out[0].status, RipStatus::Parallel, "healthy lane must not be dragged down");
        assert_eq!(
            serde_json::to_string(&out[0].graph).unwrap(),
            serde_json::to_string(&g_seq).unwrap(),
            "healthy entry stays byte-identical to its sequential rip"
        );

        assert_eq!(out[1].app_id, "Panicky");
        match out[1].error().expect("the contained fault must be reported") {
            crate::error::RipError::WorkerPanic { app_id, payload } => {
                assert_eq!(app_id, "Panicky");
                assert!(
                    payload.contains("injected fault"),
                    "panic payload must be preserved, got: {payload}"
                );
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        assert!(matches!(out[1].status, RipStatus::Failed(_)));
    }

    /// The single-entry caller asked for one graph; a contained worker
    /// panic is re-raised there (with the payload preserved) instead of
    /// silently returning a partial UNG.
    #[test]
    #[should_panic(expected = "worker shard panicked")]
    fn single_entry_caller_sees_the_contained_panic() {
        crate::fuzz::silence_injected_panics();
        let mut s = Session::new(Box::new(PanickyApp::new(3, 2)));
        let _ = rip_parallel(
            &mut s,
            &RipConfig::default(),
            &ParRipConfig { workers: 2, speculation: 2, spec_walk: 4 },
        );
    }

    #[test]
    fn shard_plan_resolves_defaults() {
        let plan = ShardPlan::resolve(&ParRipConfig::default());
        assert!(plan.workers >= 1);
        assert!(plan.max_in_flight >= plan.workers);
        assert_eq!(plan.spec_walk, 4, "subtree speculation is on by default");
        let fixed = ShardPlan::resolve(&ParRipConfig { workers: 3, speculation: 4, spec_walk: 6 });
        assert_eq!(fixed, ShardPlan { workers: 3, max_in_flight: 12, spec_walk: 6 });
        // Speculation never drops below one task per worker.
        let min = ShardPlan::resolve(&ParRipConfig { workers: 2, speculation: 0, spec_walk: 4 });
        assert_eq!(min.max_in_flight, 2);
    }
}
