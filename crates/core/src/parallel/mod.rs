//! Parallel sharded GUI ripping with a deterministic UNG merge.
//!
//! The paper's offline UNG construction (§4.1) is embarrassingly parallel
//! in principle: exploring one candidate — establish its prefix state,
//! click it, diff the pre/post captures — is a pure function of `(setup,
//! path, candidate)` on a deterministic application, because state is
//! always re-established from a provably launch-equivalent base (Esc
//! recovery or restart + replay; see [`crate::ripper`]). This module
//! exploits that: worker shards explore candidates concurrently while a
//! scheduler merges their outcomes into one UNG **byte-identical** to the
//! sequential rip.
//!
//! # Architecture
//!
//! - **[`ShardPlan`]** resolves a [`ParRipConfig`] into the execution
//!   shape: how many worker shards run and how deep the speculative
//!   dispatch window is.
//! - **Worker shards** ([`worker`]) each own a private `Session` forked
//!   from the application's shared `Arc`-held pristine launch image
//!   (`Session::fork_from_pristine`) — construction reuses the prebuilt
//!   widget arena, no `build_ui` re-run. Each shard is a plain
//!   `ExploreUnit`: the same §4.1 recovery planner the sequential ripper
//!   uses, so between tasks it presses Esc back to base instead of
//!   restarting whenever that is provably safe. Shards pull tasks from a
//!   shared queue; a skewed subtree therefore never idles the other
//!   workers — the queue *is* the work-stealing mechanism.
//! - **The scheduler** ([`scheduler::RipScheduler`]) replays the exact
//!   sequential DFS on the main thread: it pops the same stack, applies
//!   the same visited-set gating, and commits outcomes in the same order
//!   — but the expensive exploration behind each commit ran on a worker.
//!   Candidates below the stack top are dispatched *speculatively*; a
//!   speculative result whose candidate turns out visited by commit time
//!   is discarded (bounded waste, never wrong).
//!
//! # Determinism argument
//!
//! The sequential ripper's UNG is a fold over an ordered list of commit
//! records: `seed(snapshot)` for each pass, then `commit(candidate,
//! post, fresh)` per explored candidate, where the DFS stack and visited
//! set — and hence *which* candidate is committed next — are themselves
//! functions of the previous commits only. Each outcome `(post, fresh)`
//! is a pure function of `(setup, path, candidate)` (deterministic app,
//! state re-established from base), so it does not matter *where* or
//! *when* it was computed. The scheduler performs the identical fold with
//! identical inputs in identical order; node ids (insertion order), edge
//! lists (insertion order, deduplicated), and the `ControlKey`
//! hash+confirm dedup decisions therefore come out byte-for-byte the
//! same. The release-gated oracle in `tests/identity.rs` asserts this
//! end-to-end for all three Office apps via serialized-graph equality.
//!
//! # Merge ordering
//!
//! Out-of-order worker results are buffered and merged strictly in stack
//! (pop) order — *canonical node ordering* is sequential-DFS discovery
//! order, not arrival order. Merging goes through the same
//! `Frontier::commit` the sequential ripper uses: every fresh control is
//! dedup-inserted via the [`dmi_uia::ControlKey`] fingerprint with
//! full-identifier confirmation, so hash collisions cost a comparison,
//! never a wrong merge (collision safety is unit-tested in
//! `crate::graph`).
//!
//! # What is *not* identical
//!
//! [`RipStats`] effort counters (clicks, snapshots, restarts) include
//! speculative work that the sequential rip never performs, and each
//! worker restarts at least once; only the UNG — and the commit-derived
//! counters `blocklisted` and `windows_seen` — match the sequential rip
//! exactly. `RipConfig::max_clicks` gates on a global click counter that
//! has no parallel equivalent, so configurations using it (a debug aid)
//! fall back to the sequential engine, as do applications that cannot
//! fork.

mod plan;
mod scheduler;
mod worker;

pub use plan::{ParRipConfig, ShardPlan};
pub use scheduler::rip_parallel;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ripper::{rip, RipConfig};
    use dmi_apps::AppKind;
    use dmi_gui::Session;

    /// The parallel engine must produce the same UNG bytes as the
    /// sequential reference (PowerPoint exercises the context pass too).
    #[test]
    fn parallel_rip_matches_sequential_for_powerpoint() {
        let cfg = RipConfig::office("PowerPoint");
        let mut seq = Session::new(AppKind::PowerPoint.launch_small());
        let (g_seq, st_seq) = rip(&mut seq, &cfg);

        let mut par = Session::new(AppKind::PowerPoint.launch_small());
        let plan = ParRipConfig { workers: 2, speculation: 2 };
        let (g_par, st_par) = rip_parallel(&mut par, &cfg, &plan);

        assert_eq!(
            serde_json::to_string(&g_par).unwrap(),
            serde_json::to_string(&g_seq).unwrap(),
            "merged UNG must be byte-identical to the sequential rip"
        );
        assert_eq!(g_par.node_count(), g_seq.node_count());
        assert_eq!(g_par.edge_count(), g_seq.edge_count());
        assert_eq!(st_par.windows_seen, st_seq.windows_seen, "commit-derived counter");
        assert_eq!(st_par.blocklisted, st_seq.blocklisted, "commit-derived counter");
        assert!(st_par.clicks >= st_seq.clicks, "speculation only adds effort");
    }

    /// Applications without a pristine fork fall back to the sequential
    /// engine transparently.
    #[test]
    fn unforkable_apps_fall_back_to_sequential() {
        use dmi_gui::{Behavior, CommandBinding, GuiApp, UiTree, Widget, WidgetBuilder};
        use dmi_uia::ControlType as CT;

        struct Tiny {
            tree: UiTree,
        }
        impl Tiny {
            fn new() -> Tiny {
                let mut t = UiTree::new();
                let main = t.add_root(Widget::new("Tiny", CT::Window));
                let menu = t.add(
                    main,
                    WidgetBuilder::new("Menu", CT::SplitButton)
                        .popup()
                        .on_click(Behavior::OpenMenu)
                        .build(),
                );
                for name in ["A", "B"] {
                    t.add(
                        menu,
                        WidgetBuilder::new(name, CT::ListItem)
                            .on_click(Behavior::CommandAndDismiss(CommandBinding::new("noop")))
                            .build(),
                    );
                }
                Tiny { tree: t }
            }
        }
        impl GuiApp for Tiny {
            fn name(&self) -> &str {
                "Tiny"
            }
            fn tree(&self) -> &UiTree {
                &self.tree
            }
            fn tree_mut(&mut self) -> &mut UiTree {
                &mut self.tree
            }
            fn dispatch(
                &mut self,
                _src: dmi_gui::WidgetId,
                _b: &CommandBinding,
            ) -> Result<(), dmi_gui::AppError> {
                Ok(())
            }
            fn reset(&mut self) {
                *self = Tiny::new();
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }

        let cfg = RipConfig::default();
        let mut seq = Session::new(Box::new(Tiny::new()));
        let (g_seq, st_seq) = rip(&mut seq, &cfg);
        let mut par = Session::new(Box::new(Tiny::new()));
        let (g_par, st_par) =
            rip_parallel(&mut par, &cfg, &ParRipConfig { workers: 4, speculation: 2 });
        assert_eq!(g_par.node_count(), g_seq.node_count());
        assert_eq!(g_par.edge_count(), g_seq.edge_count());
        assert_eq!(st_par, st_seq, "fallback is the sequential engine itself");
    }

    #[test]
    fn shard_plan_resolves_defaults() {
        let plan = ShardPlan::resolve(&ParRipConfig::default());
        assert!(plan.workers >= 1);
        assert!(plan.max_in_flight >= plan.workers);
        let fixed = ShardPlan::resolve(&ParRipConfig { workers: 3, speculation: 4 });
        assert_eq!(fixed, ShardPlan { workers: 3, max_in_flight: 12 });
        // Speculation never drops below one task per worker.
        let min = ShardPlan::resolve(&ParRipConfig { workers: 2, speculation: 0 });
        assert_eq!(min.max_in_flight, 2);
    }
}
