//! Shard planning: resolving a configuration into an execution shape.
//!
//! One plan governs a whole fleet: `workers` threads serve every entry's
//! frontier, and `max_in_flight` caps the speculative window *globally*
//! — the fleet scheduler distributes it round-robin across lanes, so a
//! single deep frontier cannot monopolize the budget while the per-app
//! fairness weights (remaining stack depth) steer idle workers toward
//! the frontiers with the most work left.

/// Configuration for the parallel sharded rip (single-app or fleet).
#[derive(Debug, Clone)]
pub struct ParRipConfig {
    /// Worker threads exploring candidates — shared by every app in a
    /// fleet. `0` resolves to the machine's available parallelism.
    pub workers: usize,
    /// Speculative dispatch depth: how many tasks are kept in flight per
    /// worker. `1` means workers only ever run the task a scheduler lane
    /// is about to commit (no speculation, maximum stalls); higher values
    /// trade a little wasted exploration for pipeline overlap.
    pub speculation: usize,
    /// Speculative subtree walk depth: how many candidates a worker may
    /// keep exploring out of the subtree its own fresh capture revealed
    /// before returning to the queue, publishing each result for
    /// scheduler adoption. `0` disables worker-side speculation
    /// (dispatch-only, PR 9 behavior). The per-walk budget is further
    /// shaped by the fair queue's cost-aware share
    /// ([`crate::parallel::fairness::FairQueue::spec_budget`]) so deep
    /// walks don't starve other frontiers in fleet mode.
    pub spec_walk: usize,
}

impl Default for ParRipConfig {
    fn default() -> Self {
        ParRipConfig { workers: 0, speculation: 2, spec_walk: 4 }
    }
}

/// The resolved execution shape of one parallel or fleet rip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    /// Worker threads that will be spawned (shared across the fleet).
    pub workers: usize,
    /// Maximum outstanding (dispatched, uncommitted) tasks across all
    /// workers and frontiers together.
    pub max_in_flight: usize,
    /// Per-walk cap on worker-side subtree speculation steps (`0`
    /// disables the walks).
    pub spec_walk: usize,
}

impl ShardPlan {
    /// Resolves a configuration against the current machine.
    pub fn resolve(cfg: &ParRipConfig) -> ShardPlan {
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            cfg.workers
        };
        ShardPlan {
            workers,
            max_in_flight: workers.saturating_mul(cfg.speculation.max(1)),
            spec_walk: cfg.spec_walk,
        }
    }
}
