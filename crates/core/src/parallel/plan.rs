//! Shard planning: resolving a configuration into an execution shape.

/// Configuration for the parallel sharded rip.
#[derive(Debug, Clone)]
pub struct ParRipConfig {
    /// Worker shards (threads) exploring candidates. `0` resolves to the
    /// machine's available parallelism.
    pub workers: usize,
    /// Speculative dispatch depth: how many tasks are kept in flight per
    /// worker. `1` means workers only ever run the task the scheduler is
    /// about to commit (no speculation, maximum stalls); higher values
    /// trade a little wasted exploration for pipeline overlap.
    pub speculation: usize,
}

impl Default for ParRipConfig {
    fn default() -> Self {
        ParRipConfig { workers: 0, speculation: 2 }
    }
}

/// The resolved execution shape of one parallel rip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    /// Worker shards that will be spawned.
    pub workers: usize,
    /// Maximum outstanding (dispatched, uncommitted) tasks across all
    /// shards.
    pub max_in_flight: usize,
}

impl ShardPlan {
    /// Resolves a configuration against the current machine.
    pub fn resolve(cfg: &ParRipConfig) -> ShardPlan {
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            cfg.workers
        };
        ShardPlan { workers, max_in_flight: workers.saturating_mul(cfg.speculation.max(1)) }
    }
}
