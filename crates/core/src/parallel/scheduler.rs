//! The fleet scheduler: one deterministic commit lane per application,
//! one shared worker pool, sequential/parallel/fleet on one commit path.
//!
//! [`FleetPlan`] holds one [`Frontier`] plus per-lane scheduler state for
//! every application in the fleet and multiplexes their commit loops on
//! the caller's thread: each lane replays its app's exact sequential DFS
//! (pop → visited-gate → commit, in pop order), while the expensive
//! explorations behind those commits run on the shared, app-agnostic
//! worker pool ([`super::worker`]). A lane that is blocked waiting for an
//! outcome costs nothing — the loop simply pumps the other lanes and
//! parks in `recv` only when *no* lane can progress.
//!
//! [`rip_parallel`] is the 1-entry fleet; the sequential [`rip`] is the
//! fallback every entry degrades to when it cannot fork. All three paths
//! fold commits through the same `Frontier::seed`/`Frontier::commit`
//! code, which is what keeps every per-app UNG byte-identical to its
//! sequential rip (see the determinism argument in [`crate::parallel`]).

use super::plan::{ParRipConfig, ShardPlan};
use super::spec::SpecTable;
use super::worker::{
    drain_pool, worker_loop, AppShared, FleetShared, Outcome, PooledUnit, Reply, Task,
};
use crate::error::RipError;
use crate::graph::Ung;
use crate::ripper::{
    rip, snapshot_digest, Candidate, ExploreUnit, Frontier, RipConfig, RipStats, UnitState,
};
use dmi_gui::{CapturePool, CaptureStats, Session};
use std::collections::{HashMap, HashSet};
use std::sync::mpsc::{channel, Receiver};
use std::sync::Arc;
use std::thread;

/// One application in a fleet rip: a session to rip, the configuration to
/// rip it under, and a caller-chosen id naming it in outcomes and panic
/// reports.
pub struct FleetEntry {
    /// Caller-chosen identifier (e.g. `"Word"`, `"Excel-v2"`).
    pub app_id: String,
    /// The session whose application is ripped.
    pub session: Session,
    /// The rip configuration for this entry.
    pub config: RipConfig,
}

impl FleetEntry {
    /// Convenience constructor.
    pub fn new(app_id: impl Into<String>, session: Session, config: RipConfig) -> FleetEntry {
        FleetEntry { app_id: app_id.into(), session, config }
    }
}

/// How one fleet entry's rip concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RipStatus {
    /// Ripped on the parallel engine; every fault oracle stayed quiet.
    Parallel,
    /// Ran on the sequential fallback engine (the app cannot fork, the
    /// plan resolved to one worker, or `max_clicks` is set). The UNG is
    /// byte-identical either way.
    FellBack,
    /// A determinism oracle fired mid-rip: the parallel merge could no
    /// longer be trusted, so the engine quarantined the lane, threw the
    /// partial merge away, and re-ripped this entry sequentially on the
    /// caller's session with cleared capture caches. The graph is the
    /// sequential reference result; the error records the fault.
    Degraded(RipError),
    /// A worker shard panicked while serving this entry. The graph holds
    /// the partial merge committed before the fault (every byte of it
    /// matches a prefix of the sequential rip); sibling entries are
    /// unaffected.
    Failed(RipError),
}

/// The result of ripping one fleet entry.
pub struct RipOutcome {
    /// The entry's `app_id`, echoed back.
    pub app_id: String,
    /// The merged UNG — byte-identical to this entry's sequential rip
    /// (partial for [`RipStatus::Failed`] entries).
    pub graph: Ung,
    /// Aggregated effort counters (scheduler lane + every worker that
    /// served this app, capture-pool counters included).
    pub stats: RipStats,
    /// Which engine produced the graph, and whether a fault was
    /// contained along the way.
    pub status: RipStatus,
}

impl RipOutcome {
    /// Whether this entry ran on the sequential fallback engine.
    pub fn fell_back(&self) -> bool {
        matches!(self.status, RipStatus::FellBack)
    }

    /// The contained fault, when one was detected.
    pub fn error(&self) -> Option<&RipError> {
        match &self.status {
            RipStatus::Degraded(e) | RipStatus::Failed(e) => Some(e),
            RipStatus::Parallel | RipStatus::FellBack => None,
        }
    }
}

/// Rips a fleet of applications concurrently on one shared worker pool,
/// producing — for every entry — a UNG byte-identical to that entry's
/// sequential [`rip`]. Outcomes are returned in entry order.
///
/// Each forkable entry gets a private frontier, a per-app session pool of
/// `workers` forks, and a shared [`CapturePool`] so all of its shards
/// serve identical snapshots from one structure. Entries that cannot
/// fork (or use `max_clicks`) transparently fall back to the sequential
/// engine, mixed into the same result vector.
pub fn rip_fleet(entries: &mut [FleetEntry], par: &ParRipConfig) -> Vec<RipOutcome> {
    let plan = ShardPlan::resolve(par);
    let seeds = entries
        .iter_mut()
        .map(|e| LaneSeed { app_id: e.app_id.clone(), session: &mut e.session, config: &e.config })
        .collect();
    run_fleet(seeds, &plan)
}

/// Rips an application into a UNG using worker shards, producing a graph
/// byte-identical to the sequential [`rip`] — the 1-entry fleet.
///
/// Falls back to the sequential engine when the plan resolves to a single
/// worker, when the application cannot fork from a pristine image, or
/// when `config.max_clicks` is set (its global click gate has no
/// order-independent parallel equivalent).
///
/// A contained worker panic ([`RipStatus::Failed`]) is re-raised here:
/// the single-entry caller asked for one graph and there is no complete
/// one to return. Divergence degrades to the sequential re-rip
/// transparently — the returned graph is the sequential reference
/// result. Use [`rip_fleet`] to observe per-entry [`RipStatus`] instead.
pub fn rip_parallel(
    session: &mut Session,
    config: &RipConfig,
    par: &ParRipConfig,
) -> (Ung, RipStats) {
    let plan = ShardPlan::resolve(par);
    let seeds = vec![LaneSeed { app_id: String::from("app"), session, config }];
    let outcome = run_fleet(seeds, &plan).pop().expect("one seed yields one outcome");
    if let RipStatus::Failed(err) = &outcome.status {
        panic!("{err}");
    }
    (outcome.graph, outcome.stats)
}

/// One lane's inputs, borrowed from the caller.
struct LaneSeed<'a> {
    app_id: String,
    session: &'a mut Session,
    config: &'a RipConfig,
}

/// Shuts the multi-queue down even if the scheduler unwinds (a re-raised
/// worker panic, a poisoned expect): without this, surviving workers
/// would block in the condvar wait forever. Idempotent with the explicit
/// shutdown on the normal path.
struct ShutdownOnDrop(Arc<FleetShared>);
impl Drop for ShutdownOnDrop {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// Runs a fleet: partitions seeds into parallel lanes and sequential
/// fallbacks, executes both, and returns outcomes in seed order.
///
/// Fallback entries do not serialize with the fleet: while the caller's
/// thread multiplexes the parallel lanes, each fallback rips on its own
/// scoped thread, overlapping with worker exploration. (With `workers <=
/// 1` no fleet exists and the caller asked for no parallelism, so every
/// entry runs sequentially in place.)
fn run_fleet(seeds: Vec<LaneSeed<'_>>, plan: &ShardPlan) -> Vec<RipOutcome> {
    let _fleet_span = dmi_obs::span(dmi_obs::Cat::Rip, "rip.fleet", seeds.len() as u64);
    let n = seeds.len();
    let mut out: Vec<Option<RipOutcome>> = (0..n).map(|_| None).collect();
    let mut lane_seeds: Vec<(usize, LaneSeed<'_>)> = Vec::new();
    let mut fallback_seeds: Vec<(usize, LaneSeed<'_>)> = Vec::new();
    let mut app_shared: Vec<AppShared> = Vec::new();

    for (idx, seed) in seeds.into_iter().enumerate() {
        if plan.workers <= 1 {
            out[idx] = Some(run_sequential(seed));
            continue;
        }
        if seed.config.max_clicks.is_some() {
            fallback_seeds.push((idx, seed));
            continue;
        }
        // Shared capture pool first: the forks below inherit it, so every
        // shard of this app (the caller's lane session included) serves
        // snapshot hits from one structure.
        seed.session.set_capture_pool(Some(CapturePool::shared()));
        let mut units = Vec::with_capacity(plan.workers);
        for _ in 0..plan.workers {
            match seed.session.fork_from_pristine() {
                Some(s) => units.push(PooledUnit { session: s, state: UnitState::probing() }),
                None => break,
            }
        }
        if units.len() < plan.workers {
            seed.session.set_capture_pool(None);
            fallback_seeds.push((idx, seed));
            continue;
        }
        app_shared.push(AppShared { config: Arc::new(seed.config.clone()), units: units.into() });
        lane_seeds.push((idx, seed));
    }

    if lane_seeds.is_empty() {
        // No fleet to overlap with: run the fallbacks in place.
        for (idx, seed) in fallback_seeds {
            out[idx] = Some(run_sequential(seed));
        }
        return out.into_iter().map(|o| o.expect("every seed produced an outcome")).collect();
    }

    let shared = FleetShared::new(app_shared, plan.spec_walk);
    let (tx, rx) = channel();
    let handles: Vec<thread::JoinHandle<()>> = (0..plan.workers)
        .map(|_| {
            let shared = Arc::clone(&shared);
            let tx = tx.clone();
            thread::spawn(move || worker_loop(shared, tx))
        })
        .collect();
    drop(tx); // Workers hold the only senders now.
    let _shutdown_guard = ShutdownOnDrop(Arc::clone(&shared));

    thread::scope(|scope| {
        let fallback_handles: Vec<(usize, thread::ScopedJoinHandle<'_, RipOutcome>)> =
            fallback_seeds
                .into_iter()
                .map(|(idx, seed)| (idx, scope.spawn(move || run_sequential(seed))))
                .collect();

        let lanes: Vec<Lane<'_>> = lane_seeds
            .into_iter()
            .enumerate()
            .map(|(app, (idx, seed))| Lane::start(app, idx, seed, &shared))
            .collect();
        let dirty = vec![true; lanes.len()];
        let mut fleet = FleetPlan { lanes, dirty, shared: Arc::clone(&shared), rx, plan: *plan };
        fleet.run();

        shared.shutdown();
        for h in handles {
            h.join().expect("worker thread must shut down cleanly");
        }
        fleet.absorb_stragglers();
        for lane in fleet.lanes {
            let (idx, outcome) = lane.finish(&shared);
            out[idx] = Some(outcome);
        }
        for (idx, h) in fallback_handles {
            out[idx] = Some(h.join().expect("fallback rip must not panic"));
        }
    });

    out.into_iter().map(|o| o.expect("every seed produced an outcome")).collect()
}

/// Runs one entry on the sequential fallback engine.
fn run_sequential(seed: LaneSeed<'_>) -> RipOutcome {
    let (graph, stats) = rip(seed.session, seed.config);
    RipOutcome { app_id: seed.app_id, graph, stats, status: RipStatus::FellBack }
}

/// The fleet execution state: one commit lane (frontier + scheduler
/// state) per app, multiplexed on the caller's thread.
struct FleetPlan<'a> {
    lanes: Vec<Lane<'a>>,
    /// Lanes with newly delivered results since their last pump: a lane
    /// blocked on an outcome can only move when a message for it arrives,
    /// so only dirty lanes are pumped — O(1) routed messages per reply
    /// instead of O(lanes) pump/lock traffic on the commit thread.
    dirty: Vec<bool>,
    shared: Arc<FleetShared>,
    rx: Receiver<(usize, u64, Reply)>,
    plan: ShardPlan,
}

impl FleetPlan<'_> {
    /// The fleet main loop: pump every lane with fresh results as far as
    /// its delivered outcomes allow, keep the speculative window full,
    /// and block on the result channel only when no lane can move.
    fn run(&mut self) {
        loop {
            let mut progressed = false;
            for i in 0..self.lanes.len() {
                if self.dirty[i] {
                    self.dirty[i] = false;
                    progressed |= self.lanes[i].pump(&self.shared);
                }
            }
            self.top_up();
            if self.lanes.iter().all(|l| l.done) {
                break;
            }
            if !progressed {
                let park = dmi_obs::span(dmi_obs::Cat::Scheduler, "scheduler.park", 0);
                let msg = self.rx.recv().expect("a live worker holds a dispatched task");
                drop(park);
                self.route(msg);
            }
            // Drain everything already delivered without blocking.
            while let Ok(msg) = self.rx.try_recv() {
                self.route(msg);
            }
        }
    }

    /// Routes one worker reply to its lane and marks the lane for
    /// pumping. Faults are contained here, never re-raised: a worker
    /// panic quarantines exactly the frontier it was serving, an
    /// `Unserved` hand-back is queued for urgent re-dispatch, and a
    /// quarantined lane silently swallows its stragglers.
    ///
    /// The restart-divergence oracle runs here, on every reply that
    /// carries probe evidence — before the outcome is even filed. A
    /// drifted fork usually *fails* its exploration (the control it was
    /// dispatched to click got renamed under it), so gating the digest
    /// check on a successful outcome would discard exactly the replies
    /// most likely to prove the fault.
    fn route(&mut self, (app, seq, reply): (usize, u64, Reply)) {
        let lane = &mut self.lanes[app];
        match reply {
            Reply::Done { outcome, base_digest } => {
                lane.in_flight -= 1;
                if lane.failed.is_some() {
                    return; // Quarantined: late results are dropped.
                }
                if lane.digest_diverged(base_digest, &self.shared) {
                    self.dirty[app] = true;
                    return;
                }
                if !lane.discarded.remove(&seq) {
                    lane.pending.insert(seq, outcome);
                }
            }
            Reply::Panicked(payload) => {
                lane.in_flight -= 1;
                let err = RipError::WorkerPanic { app_id: lane.app_id.clone(), payload };
                lane.quarantine(err, &self.shared);
            }
            Reply::Unserved => {
                lane.in_flight -= 1;
                if lane.failed.is_some() {
                    return;
                }
                if !lane.discarded.remove(&seq) {
                    lane.unserved.insert(seq);
                }
            }
            // Speculative publications answer no dispatched task: no
            // in-flight bookkeeping, but the probe-digest oracle applies
            // unchanged — a drifted lane's speculations die with it, and
            // a lane that already finished (or failed) wastes them.
            Reply::Spec { key, outcome, base_digest } => {
                if lane.failed.is_some() || lane.done {
                    lane.note_spec_waste(1);
                    return;
                }
                if lane.digest_diverged(base_digest, &self.shared) {
                    // The publication that exposed the drift is waste too
                    // (quarantine already counted the table it cleared).
                    lane.note_spec_waste(1);
                    self.dirty[app] = true;
                    return;
                }
                if !lane.spec.publish(key, outcome) {
                    // Superseded: an earlier walk already published this
                    // key (identical bytes on a deterministic app).
                    lane.note_spec_waste(1);
                }
            }
            Reply::SpecPanicked(payload) => {
                let err = RipError::WorkerPanic { app_id: lane.app_id.clone(), payload };
                lane.quarantine(err, &self.shared);
            }
        }
        self.dirty[app] = true;
    }

    /// After worker shutdown: speculative publications still sitting in
    /// the channel can never be adopted — count them toward their lanes'
    /// waste so every published speculation is accounted for. Every
    /// other straggler keeps its old fate (silently dropped).
    fn absorb_stragglers(&mut self) {
        while let Ok((app, _seq, reply)) = self.rx.try_recv() {
            if let Reply::Spec { .. } = reply {
                self.lanes[app].note_spec_waste(1);
            }
        }
    }

    /// Fills the global speculative window, one task per lane per round
    /// (deterministic round-robin), so no single deep frontier hogs the
    /// whole budget.
    fn top_up(&mut self) {
        let in_flight: usize = self.lanes.iter().map(|l| l.in_flight).sum();
        let Some(mut budget) = self.plan.max_in_flight.checked_sub(in_flight) else { return };
        while budget > 0 {
            let mut any = false;
            for lane in &mut self.lanes {
                if budget == 0 {
                    break;
                }
                if lane.dispatch_one_speculative(&self.shared) {
                    budget -= 1;
                    any = true;
                }
            }
            if !any {
                return;
            }
        }
    }
}

/// The commit-side half of one app's rip: the frontier, the caller-thread
/// exploration unit (used for pass seeding, exactly like the sequential
/// explorer's), and the speculation bookkeeping.
struct Lane<'a> {
    /// Fleet app index (sub-queue / session-pool index).
    app: usize,
    /// Position in the caller's entry slice.
    entry_idx: usize,
    app_id: String,
    unit: ExploreUnit<'a>,
    frontier: Frontier,
    /// Results that arrived before their candidate was popped.
    pending: HashMap<u64, Option<Outcome>>,
    /// Dispatched entries whose candidate was popped as already-visited:
    /// their results are dropped on arrival.
    discarded: HashSet<u64>,
    /// Dispatched entries handed back unserved (the app's unit pool was
    /// momentarily empty): re-dispatched urgently when popped.
    unserved: HashSet<u64>,
    /// Dispatched tasks whose results have not arrived yet.
    in_flight: usize,
    /// Worker-published speculative subtree results awaiting adoption,
    /// keyed by the full exploration input (see [`super::spec`]).
    spec: SpecTable<Option<Outcome>>,
    /// Context-setup clicks of the pass in progress.
    setup: Arc<[String]>,
    /// Next context pass to run once the current pass drains.
    next_context: usize,
    /// The candidate whose outcome the lane is blocked on.
    waiting: Option<Candidate>,
    /// Whether `waiting` was a brand-new candidate revealed by a commit
    /// (urgently dispatched at pop) rather than one already dispatched
    /// speculatively — the stall-attribution tag.
    waiting_revealed: bool,
    /// Tag and wall-clock start of the stall in progress on this lane
    /// (`None` when not blocked or tracing is off). Observation only:
    /// never read by any scheduling decision.
    stall: Option<(&'static str, u64)>,
    done: bool,
    /// The fault that quarantined this lane, if any ([`Lane::quarantine`]).
    failed: Option<RipError>,
    /// Digest of this lane's own seed base ([`snapshot_digest`]): the
    /// reference every worker-side post-restart digest must match.
    base_digest: u64,
    /// Last fairness weight reported to the shared queue (skip the queue
    /// lock when unchanged).
    last_weight: u64,
    /// Caller-session capture counters at lane start (for pool deltas).
    cs0: CaptureStats,
}

impl<'a> Lane<'a> {
    /// Seeds the base pass and reports the initial fairness weight.
    fn start(app: usize, entry_idx: usize, seed: LaneSeed<'a>, shared: &FleetShared) -> Lane<'a> {
        let cs0 = seed.session.capture_stats();
        let mut lane = Lane {
            app,
            entry_idx,
            app_id: seed.app_id,
            unit: ExploreUnit::new(seed.session, seed.config),
            frontier: Frontier::new(),
            pending: HashMap::new(),
            discarded: HashSet::new(),
            unserved: HashSet::new(),
            in_flight: 0,
            spec: SpecTable::new(),
            setup: Arc::from(Vec::new()),
            next_context: 0,
            waiting: None,
            waiting_revealed: false,
            stall: None,
            done: false,
            failed: None,
            base_digest: 0,
            last_weight: 0,
            cs0,
        };
        lane.unit.restart();
        let snap = lane.unit.snapshot();
        lane.base_digest = snapshot_digest(&snap);
        lane.frontier.seed(&snap, &[], lane.unit.config(), &mut lane.unit.stats);
        lane.report_weight(shared);
        lane
    }

    /// Quarantines the lane after a detected fault: records the error,
    /// stops the commit loop, drops all speculation bookkeeping, and
    /// purges the lane's queued tasks (deducting them from the in-flight
    /// count — purged tasks never reply). Sibling lanes are untouched;
    /// stragglers still in worker hands are swallowed by `route`.
    fn quarantine(&mut self, err: RipError, shared: &FleetShared) {
        self.end_stall();
        dmi_obs::instant(dmi_obs::Cat::Scheduler, "quarantine", self.app as u64);
        self.failed = Some(err);
        self.done = true;
        self.waiting = None;
        self.pending.clear();
        self.discarded.clear();
        self.unserved.clear();
        // The lane's speculations die with it: none of them may merge.
        let dead = self.spec.clear();
        self.note_spec_waste(dead);
        self.in_flight -= shared.purge_app(self.app);
        self.last_weight = 0;
    }

    /// The restart-divergence oracle shared by dispatched and speculative
    /// replies: compares carried probe evidence against the lane's seed
    /// digest and quarantines on mismatch. Returns whether the lane was
    /// quarantined.
    fn digest_diverged(&mut self, base_digest: Option<u64>, shared: &FleetShared) -> bool {
        let Some(d) = base_digest else { return false };
        if d == self.base_digest {
            return false;
        }
        let detail = format!(
            "worker fork restarted into base digest {d:#018x}, lane base is {:#018x} (the app's \
             reset does not restore its attested pristine image)",
            self.base_digest
        );
        let err = RipError::Divergence { app_id: self.app_id.clone(), detail };
        self.quarantine(err, shared);
        true
    }

    /// Counts one adopted speculation: the sequential DFS pop matched a
    /// published key exactly, so the lane committed the worker's walk
    /// result without dispatching (or without waiting out the dispatch).
    fn note_adopted(&mut self) {
        self.unit.stats.spec_adopted += 1;
        dmi_obs::tally("spec.adopt", 1);
        dmi_obs::instant(dmi_obs::Cat::Scheduler, "spec.adopt", self.app as u64);
    }

    /// Counts `n` discarded speculations (superseded, orphaned, or
    /// quarantined) — they are dropped, never merged.
    fn note_spec_waste(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        self.unit.stats.spec_wasted += n as u64;
        dmi_obs::tally("spec.waste", n as u64);
        for _ in 0..n {
            dmi_obs::instant(dmi_obs::Cat::Scheduler, "spec.waste", self.app as u64);
        }
    }

    /// Replays the lane's DFS as far as delivered outcomes allow: commits
    /// every candidate whose result is pending, advances passes when the
    /// stack drains, and stops at the first candidate still in flight
    /// (dispatching it urgently if no worker has it yet). Returns whether
    /// anything moved.
    fn pump(&mut self, shared: &FleetShared) -> bool {
        if self.done {
            return false;
        }
        let mut progressed = false;
        loop {
            if let Some(c) = self.waiting.take() {
                if let Some(o) = self.pending.remove(&c.seq) {
                    self.end_stall();
                    progressed = true;
                    self.commit(&c, o);
                    continue;
                }
                // A walk published this exact key while the lane was
                // blocked: adopt it now and discard the dispatched
                // answer when (if ever) it lands — identical bytes, so
                // which one merges is unobservable.
                if let Some(o) = self.spec.take(&self.setup, &c.path, &c.cid) {
                    self.end_stall();
                    if !self.unserved.remove(&c.seq) {
                        self.note_discarded(c.seq);
                    }
                    self.note_adopted();
                    progressed = true;
                    self.commit(&c, o);
                    continue;
                }
                if self.unserved.remove(&c.seq) {
                    // The task came back unserved (a dying sibling took
                    // the unit it needed); re-dispatch it urgently.
                    shared.push_front(self.task_for(&c));
                    self.in_flight += 1;
                }
                self.waiting = Some(c);
                self.begin_stall();
                break;
            }
            let Some(c) = self.frontier.pop() else {
                if self.advance_pass() {
                    progressed = true;
                    continue;
                }
                self.done = true;
                progressed = true;
                break;
            };
            if !self.frontier.visit(&c) {
                if c.dispatched {
                    self.note_discarded(c.seq);
                }
                continue;
            }
            if !c.dispatched {
                // A matching speculation kills the reveal stall outright:
                // the worker that revealed this candidate already walked
                // into it, so the lane commits with zero dispatch.
                if let Some(o) = self.spec.take(&self.setup, &c.path, &c.cid) {
                    self.note_adopted();
                    progressed = true;
                    self.commit(&c, o);
                    continue;
                }
                // The lane blocks on this candidate: dispatch it at the
                // head of its sub-queue.
                shared.push_front(self.task_for(&c));
                self.in_flight += 1;
                self.waiting_revealed = true;
            } else {
                self.waiting_revealed = false;
            }
            self.waiting = Some(c);
        }
        self.report_weight(shared);
        progressed
    }

    /// Opens a stall interval if the lane just blocked and none is open:
    /// `stall.reveal` when the awaited candidate was revealed by a commit
    /// and urgently dispatched at pop, `stall.await` when it was already
    /// in flight speculatively. No-op with tracing off.
    fn begin_stall(&mut self) {
        if self.stall.is_none() && dmi_obs::enabled() {
            let name = if self.waiting_revealed { "stall.reveal" } else { "stall.await" };
            self.stall = Some((name, dmi_obs::now_us()));
        }
    }

    /// Closes the open stall interval (the awaited result was consumed or
    /// the lane was quarantined), emitting it as a scheduler span.
    fn end_stall(&mut self) {
        if let Some((name, start)) = self.stall.take() {
            dmi_obs::complete_span(
                dmi_obs::Cat::Scheduler,
                name,
                self.app as u64,
                start,
                dmi_obs::now_us(),
            );
        }
    }

    /// Reports the lane's remaining stack depth — the count half of its
    /// cost-aware fairness weight (workers feed the latency half) —
    /// taking the queue lock only when the value actually changed.
    fn report_weight(&mut self, shared: &FleetShared) {
        let depth = self.frontier.stack.len() as u64;
        if depth != self.last_weight {
            shared.set_depth(self.app, depth);
            self.last_weight = depth;
        }
    }

    /// Applies one outcome in commit order (`None` means the worker could
    /// not establish or click — counted there, skipped here, exactly like
    /// the sequential DFS). Restart-divergence was already screened at
    /// route time: an outcome only reaches this point if its reply's probe
    /// digest (when any) matched the lane's seed base.
    fn commit(&mut self, c: &Candidate, o: Option<Outcome>) {
        let Some(o) = o else { return };
        if o.window_opened {
            self.unit.stats.windows_seen += 1;
            dmi_obs::tally("rip.windows_seen", 1);
        }
        self.frontier.commit(
            &c.cid,
            &o.post,
            &o.fresh,
            &c.path,
            self.unit.config(),
            &mut self.unit.stats,
        );
    }

    /// Seeds the next context pass whose setup replays successfully;
    /// false when every pass has run.
    fn advance_pass(&mut self) -> bool {
        while self.next_context < self.unit.config().contexts.len() {
            let ctx = &self.unit.config().contexts[self.next_context];
            self.next_context += 1;
            if !self.unit.replay(&ctx.clicks, &[]) {
                continue;
            }
            let snap = self.unit.snapshot();
            // Attach context-revealed controls under the virtual root,
            // then explore within the context (same as the sequential
            // pass).
            self.frontier.seed(&snap, &[], self.unit.config(), &mut self.unit.stats);
            self.setup = Arc::from(ctx.clicks.clone());
            return true;
        }
        false
    }

    /// Marks a dispatched-but-skipped entry so its result is dropped.
    fn note_discarded(&mut self, seq: u64) {
        if self.pending.remove(&seq).is_none() {
            self.discarded.insert(seq);
        }
    }

    /// Speculatively dispatches the topmost undispatched stack candidate
    /// (the next pops); false when none remains. Candidates whose exact
    /// key already has a published speculation are skipped — their
    /// answer is sitting in the table, so dispatching them would only
    /// compute the same bytes twice.
    fn dispatch_one_speculative(&mut self, shared: &FleetShared) -> bool {
        if self.done {
            return false;
        }
        let Some(i) = self
            .frontier
            .stack
            .iter()
            .enumerate()
            .rev()
            .find(|(_, c)| {
                !c.dispatched
                    && !self.frontier.is_visited(c)
                    && !self.spec.contains(&self.setup, &c.path, &c.cid)
            })
            .map(|(i, _)| i)
        else {
            return false;
        };
        self.frontier.stack[i].dispatched = true;
        let c = self.frontier.stack[i].clone();
        shared.push_back(self.task_for(&c));
        self.in_flight += 1;
        true
    }

    fn task_for(&self, c: &Candidate) -> Task {
        Task {
            app: self.app,
            seq: c.seq,
            setup: Arc::clone(&self.setup),
            cid: c.cid.clone(),
            path: c.path.clone(),
        }
    }

    /// Tears the lane down: absorbs every pooled worker unit's counters
    /// and the caller session's capture-pool delta, detaches the shared
    /// capture pool, and yields the outcome.
    ///
    /// A divergence-quarantined lane degrades here: its partial merge is
    /// discarded and the entry re-rips on the sequential reference
    /// engine, using the caller's session with every capture cache
    /// cleared (the caches were built while trusting a reset the oracle
    /// just disproved). A panic-quarantined lane keeps its partial graph
    /// — each committed byte matches a prefix of the sequential rip —
    /// and reports [`RipStatus::Failed`].
    fn finish(mut self, shared: &FleetShared) -> (usize, RipOutcome) {
        // Speculations never popped (visited dedup, pass end) are waste.
        let orphaned = self.spec.clear();
        self.note_spec_waste(orphaned);
        let Lane { app, entry_idx, app_id, mut unit, frontier, cs0, failed, .. } = self;
        let mut stats = unit.stats;
        drain_pool(&shared.apps[app], &mut stats);
        stats.fold_pool_delta(cs0, unit.session().capture_stats());
        unit.session_mut().set_capture_pool(None);
        let status = match failed {
            None => RipStatus::Parallel,
            Some(err @ RipError::Divergence { .. }) => {
                let config = unit.config();
                let session = unit.into_session();
                session.set_capture_config(session.capture_config());
                let (graph, seq_stats) = rip(session, config);
                stats.absorb(&seq_stats);
                let outcome = RipOutcome { app_id, graph, stats, status: RipStatus::Degraded(err) };
                return (entry_idx, outcome);
            }
            Some(err) => RipStatus::Failed(err),
        };
        (entry_idx, RipOutcome { app_id, graph: frontier.g, stats, status })
    }
}
