//! The deterministic rip scheduler: sequential commit order, parallel
//! exploration.
//!
//! The scheduler is the sequential explorer's control loop with the
//! `explore` call outsourced: it owns the [`Frontier`] (UNG, visited set,
//! DFS stack), pops candidates in exactly the sequential order, and
//! blocks on each candidate's outcome — which a worker shard usually
//! computed long ago, speculatively. See the module docs
//! ([`crate::parallel`]) for the determinism argument.

use super::plan::{ParRipConfig, ShardPlan};
use super::worker::{worker_loop, Outcome, Reply, Shared, Task};
use crate::graph::Ung;
use crate::ripper::{rip, Candidate, ContextSetup, ExploreUnit, Frontier, RipConfig, RipStats};
use dmi_gui::Session;
use std::collections::{HashMap, HashSet};
use std::sync::mpsc::{channel, Receiver};
use std::sync::Arc;
use std::thread;

/// Rips an application into a UNG using worker shards, producing a graph
/// byte-identical to the sequential [`rip`].
///
/// Falls back to the sequential engine when the plan resolves to a single
/// worker, when the application cannot fork from a pristine image, or
/// when `config.max_clicks` is set (its global click gate has no
/// order-independent parallel equivalent).
pub fn rip_parallel(
    session: &mut Session,
    config: &RipConfig,
    par: &ParRipConfig,
) -> (Ung, RipStats) {
    let plan = ShardPlan::resolve(par);
    if plan.workers <= 1 || config.max_clicks.is_some() {
        return rip(session, config);
    }
    let mut forks = Vec::with_capacity(plan.workers);
    for _ in 0..plan.workers {
        match session.fork_from_pristine() {
            Some(s) => forks.push(s),
            None => return rip(session, config),
        }
    }

    let shared = Shared::new();
    let (tx, rx) = channel();
    let handles: Vec<thread::JoinHandle<RipStats>> = forks
        .into_iter()
        .map(|worker_session| {
            let shared = Arc::clone(&shared);
            let tx = tx.clone();
            let cfg = config.clone();
            thread::spawn(move || worker_loop(worker_session, cfg, shared, tx))
        })
        .collect();
    drop(tx); // Workers hold the only senders now.

    // Shut the queue down even if the scheduler unwinds (a re-raised
    // worker panic, a poisoned expect): without this, surviving workers
    // would block in the condvar wait forever. Idempotent with the
    // explicit shutdown on the normal path below.
    struct ShutdownOnDrop(Arc<Shared>);
    impl Drop for ShutdownOnDrop {
        fn drop(&mut self) {
            self.0.shutdown();
        }
    }
    let _shutdown_guard = ShutdownOnDrop(Arc::clone(&shared));

    let mut sched = RipScheduler {
        unit: ExploreUnit::new(session, config),
        frontier: Frontier::new(),
        plan,
        shared: Arc::clone(&shared),
        rx,
        pending: HashMap::new(),
        discarded: HashSet::new(),
        in_flight: 0,
    };
    sched.base_pass();
    for ctx in &config.contexts {
        sched.context_pass(ctx);
    }
    let RipScheduler { unit, frontier, .. } = sched;
    let mut stats = unit.stats;
    shared.shutdown();
    for h in handles {
        stats.absorb(&h.join().expect("worker shard panicked"));
    }
    (frontier.g, stats)
}

/// Re-raises a worker shard's panic on the scheduler thread: a shard
/// that dies mid-task reports it through the channel (unwind guard in
/// `worker_loop`), because silently losing the result would strand
/// `await_outcome` in `recv` while the remaining shards keep the channel
/// open.
fn unwrap_reply(reply: Reply) -> Option<Outcome> {
    match reply {
        Reply::Done(o) => o,
        Reply::Panicked => panic!("worker shard panicked while exploring a candidate"),
    }
}

/// The commit-side half of the parallel rip (lives on the caller's
/// thread; the caller's session is only used for pass seeding, exactly
/// like the sequential explorer's).
struct RipScheduler<'a> {
    unit: ExploreUnit<'a>,
    frontier: Frontier,
    plan: ShardPlan,
    shared: Arc<Shared>,
    rx: Receiver<(u64, Reply)>,
    /// Results that arrived before their candidate was popped.
    pending: HashMap<u64, Option<Outcome>>,
    /// Dispatched entries whose candidate was popped as already-visited:
    /// their results are dropped on arrival.
    discarded: HashSet<u64>,
    /// Dispatched tasks whose results have not arrived yet.
    in_flight: usize,
}

impl RipScheduler<'_> {
    fn base_pass(&mut self) {
        self.unit.restart();
        let snap = self.unit.snapshot();
        self.frontier.seed(&snap, &[], self.unit.config(), &mut self.unit.stats);
        self.drain(Arc::from(Vec::new()));
    }

    fn context_pass(&mut self, ctx: &ContextSetup) {
        if !self.unit.replay(&ctx.clicks, &[]) {
            return;
        }
        let snap = self.unit.snapshot();
        // Attach context-revealed controls under the virtual root, then
        // explore within the context (same as the sequential pass).
        self.frontier.seed(&snap, &[], self.unit.config(), &mut self.unit.stats);
        self.drain(Arc::from(ctx.clicks.clone()));
    }

    /// The sequential drain loop with exploration outsourced to shards.
    fn drain(&mut self, setup: Arc<[String]>) {
        loop {
            self.harvest();
            self.top_up(&setup);
            let Some(c) = self.frontier.pop() else { break };
            if !self.frontier.visit(&c) {
                if c.dispatched {
                    self.note_discarded(c.seq);
                }
                continue;
            }
            let Some(o) = self.await_outcome(&c, &setup) else { continue };
            if o.window_opened {
                self.unit.stats.windows_seen += 1;
            }
            self.frontier.commit(
                &c.cid,
                &o.post,
                &o.fresh,
                &c.path,
                self.unit.config(),
                &mut self.unit.stats,
            );
        }
    }

    /// Blocks until the candidate's outcome is available, dispatching it
    /// at the front of the queue first if no shard has it yet.
    fn await_outcome(&mut self, c: &Candidate, setup: &Arc<[String]>) -> Option<Outcome> {
        if !c.dispatched {
            self.shared.push_front(Task {
                seq: c.seq,
                setup: Arc::clone(setup),
                cid: c.cid.clone(),
                path: c.path.clone(),
            });
            self.in_flight += 1;
        }
        if let Some(o) = self.pending.remove(&c.seq) {
            return o;
        }
        loop {
            let (seq, reply) = self.rx.recv().expect("a live shard holds the dispatched task");
            let o = unwrap_reply(reply);
            self.in_flight -= 1;
            if seq == c.seq {
                return o;
            }
            if !self.discarded.remove(&seq) {
                self.pending.insert(seq, o);
            }
        }
    }

    /// Drains already-delivered results without blocking.
    fn harvest(&mut self) {
        while let Ok((seq, reply)) = self.rx.try_recv() {
            let o = unwrap_reply(reply);
            self.in_flight -= 1;
            if !self.discarded.remove(&seq) {
                self.pending.insert(seq, o);
            }
        }
    }

    /// Marks a dispatched-but-skipped entry so its result is dropped.
    fn note_discarded(&mut self, seq: u64) {
        if self.pending.remove(&seq).is_none() {
            self.discarded.insert(seq);
        }
    }

    /// Speculatively dispatches candidates from the top of the stack (the
    /// next pops) until the in-flight window is full. Entries already
    /// visited are left for the pop loop to skip.
    fn top_up(&mut self, setup: &Arc<[String]>) {
        if self.in_flight >= self.plan.max_in_flight {
            return;
        }
        let mut budget = self.plan.max_in_flight - self.in_flight;
        let mut picks: Vec<usize> = Vec::new();
        for (i, c) in self.frontier.stack.iter().enumerate().rev() {
            if budget == 0 {
                break;
            }
            if c.dispatched || self.frontier.is_visited(c) {
                continue;
            }
            picks.push(i);
            budget -= 1;
        }
        for i in picks {
            let c = &mut self.frontier.stack[i];
            c.dispatched = true;
            let task = Task {
                seq: c.seq,
                setup: Arc::clone(setup),
                cid: c.cid.clone(),
                path: c.path.clone(),
            };
            self.shared.push_back(task);
            self.in_flight += 1;
        }
    }
}
