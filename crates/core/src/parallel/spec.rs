//! The shard-local speculation table: worker-published subtree results
//! awaiting scheduler adoption.
//!
//! A worker that finishes `explore(setup, path, candidate)` holds its
//! session in exactly the post-click state, so it keeps walking into the
//! candidates its own fresh capture revealed, publishing each result
//! keyed by the full exploration input `(setup, path, candidate)`. The
//! scheduler consults the table before dispatching: when its sequential
//! DFS pop matches a published key *exactly*, the result is adopted with
//! zero stall. Everything else — superseded duplicates, entries orphaned
//! at teardown, entries whose lane quarantined — is discarded and
//! counted, never merged.
//!
//! Adoption is sound because the key is the *complete* input of
//! [`crate::ripper::ExploreUnit::explore`], which is a pure function on
//! a deterministic app: any two explorations of the same key produce the
//! same capture pair, so substituting a speculative result for the
//! dispatched one cannot change a merged byte. See
//! `docs/determinism.md`.
//!
//! Lookups are borrowed (no allocation): the table hashes the key
//! components directly and collision-confirms against the stored owned
//! key.

use dmi_uia::ControlId;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The exploration input a speculation answers: context-setup clicks,
/// the click path revealing the candidate, and the candidate itself.
pub(super) struct SpecKey {
    pub setup: Arc<[String]>,
    pub path: Vec<ControlId>,
    pub cid: ControlId,
}

impl SpecKey {
    fn hash_of(setup: &[String], path: &[ControlId], cid: &ControlId) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        setup.hash(&mut h);
        path.hash(&mut h);
        cid.hash(&mut h);
        h.finish()
    }

    fn matches(&self, setup: &[String], path: &[ControlId], cid: &ControlId) -> bool {
        self.setup.as_ref() == setup && self.path == path && &self.cid == cid
    }
}

struct SpecEntry<V> {
    key: SpecKey,
    value: V,
}

/// Published speculations keyed by `(setup, path, candidate)`, bucketed
/// by key hash with full-key confirmation. First publication of a key
/// wins; later duplicates are superseded (reported to the caller, who
/// counts them as waste).
pub(super) struct SpecTable<V> {
    buckets: HashMap<u64, Vec<SpecEntry<V>>>,
    len: usize,
}

impl<V> SpecTable<V> {
    pub fn new() -> SpecTable<V> {
        SpecTable { buckets: HashMap::new(), len: 0 }
    }

    /// Number of published, not-yet-adopted entries.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Publishes a speculative result. Returns `true` when the entry was
    /// stored; `false` when an entry for the same key already exists —
    /// the newcomer is superseded and dropped (on a deterministic app
    /// both hold identical bytes, so keeping the first is arbitrary but
    /// fixed).
    pub fn publish(&mut self, key: SpecKey, value: V) -> bool {
        let h = SpecKey::hash_of(&key.setup, &key.path, &key.cid);
        let bucket = self.buckets.entry(h).or_default();
        if bucket.iter().any(|e| e.key.matches(&key.setup, &key.path, &key.cid)) {
            return false;
        }
        bucket.push(SpecEntry { key, value });
        self.len += 1;
        true
    }

    /// Whether a speculation for this exact key is published.
    pub fn contains(&self, setup: &[String], path: &[ControlId], cid: &ControlId) -> bool {
        let h = SpecKey::hash_of(setup, path, cid);
        self.buckets.get(&h).is_some_and(|b| b.iter().any(|e| e.key.matches(setup, path, cid)))
    }

    /// Adopts (removes and returns) the speculation for this exact key,
    /// if published.
    pub fn take(&mut self, setup: &[String], path: &[ControlId], cid: &ControlId) -> Option<V> {
        let h = SpecKey::hash_of(setup, path, cid);
        let bucket = self.buckets.get_mut(&h)?;
        let at = bucket.iter().position(|e| e.key.matches(setup, path, cid))?;
        let entry = bucket.swap_remove(at);
        if bucket.is_empty() {
            self.buckets.remove(&h);
        }
        self.len -= 1;
        Some(entry.value)
    }

    /// Discards every published entry (the lane quarantined, or the rip
    /// is tearing down), returning how many died — the caller counts
    /// them as waste.
    pub fn clear(&mut self) -> usize {
        let n = self.len;
        self.buckets.clear();
        self.len = 0;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmi_uia::ControlType;

    fn cid(name: &str) -> ControlId {
        ControlId {
            primary: name.into(),
            control_type: ControlType::Button,
            ancestor_path: "root".into(),
        }
    }

    fn key(setup: &[&str], path: &[&str], name: &str) -> SpecKey {
        SpecKey {
            setup: setup.iter().map(|s| s.to_string()).collect::<Vec<_>>().into(),
            path: path.iter().map(|p| cid(p)).collect(),
            cid: cid(name),
        }
    }

    #[test]
    fn publish_then_adopt_round_trips_by_exact_key() {
        let mut t: SpecTable<u32> = SpecTable::new();
        assert!(t.publish(key(&[], &["File"], "Open"), 7));
        assert!(t.publish(key(&["img"], &["File"], "Open"), 8), "setup is part of the key");
        assert_eq!(t.len(), 2);

        let setup: Vec<String> = vec![];
        assert!(t.contains(&setup, &[cid("File")], &cid("Open")));
        assert!(!t.contains(&setup, &[], &cid("Open")), "path is part of the key");
        assert_eq!(t.take(&setup, &[cid("File")], &cid("Open")), Some(7));
        assert_eq!(t.take(&setup, &[cid("File")], &cid("Open")), None, "adoption removes");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn duplicate_publication_is_superseded_first_wins() {
        let mut t: SpecTable<u32> = SpecTable::new();
        assert!(t.publish(key(&[], &[], "Bold"), 1));
        assert!(!t.publish(key(&[], &[], "Bold"), 2), "second publisher is superseded");
        assert_eq!(t.len(), 1);
        assert_eq!(t.take(&Vec::<String>::new(), &[], &cid("Bold")), Some(1), "first wins");
    }

    #[test]
    fn mismatched_keys_never_collide() {
        let mut t: SpecTable<u32> = SpecTable::new();
        assert!(t.publish(key(&[], &["Home"], "Bold"), 1));
        let setup: Vec<String> = vec![];
        assert_eq!(t.take(&setup, &[cid("Home")], &cid("Italic")), None);
        assert_eq!(t.take(&setup, &[cid("Insert")], &cid("Bold")), None);
        assert_eq!(t.len(), 1, "mismatched lookups discard nothing");
    }

    #[test]
    fn quarantine_invalidation_discards_everything_and_counts_it() {
        let mut t: SpecTable<u32> = SpecTable::new();
        for i in 0..5 {
            assert!(t.publish(key(&[], &["File"], &format!("c{i}")), i));
        }
        assert_eq!(t.clear(), 5, "every published entry dies with the lane");
        assert_eq!(t.len(), 0);
        assert!(!t.contains(&Vec::<String>::new(), &[cid("File")], &cid("c0")));
        assert_eq!(t.clear(), 0, "clearing an empty table is free");
    }
}
