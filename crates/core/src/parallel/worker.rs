//! Worker shards: private sessions exploring candidates off a shared
//! queue.
//!
//! Each worker owns a `Session` forked from the application's pristine
//! launch image and runs one [`ExploreUnit`] for its whole life, so the
//! §4.1 Esc-based recovery planner amortizes across tasks exactly as it
//! does in the sequential DFS. The shared queue doubles as the
//! work-stealing mechanism: whichever shard goes idle first pulls the
//! next task, so a skewed subtree (one deep dialog chain) cannot starve
//! the fleet.

use crate::ripper::{diff_fresh, ExploreUnit, RipConfig, RipStats};
use dmi_gui::Session;
use dmi_uia::{ControlId, Snapshot};
use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};

/// One unit of speculative work: explore `cid` after establishing
/// `setup` + `path`.
pub(super) struct Task {
    /// The scheduler-side stack-entry id this result answers.
    pub seq: u64,
    /// Context-setup clicks (shared per pass).
    pub setup: Arc<[String]>,
    /// The candidate control to click.
    pub cid: ControlId,
    /// The click path revealing the candidate.
    pub path: Vec<ControlId>,
}

/// A completed exploration, ready to merge: the post-click capture plus
/// the precomputed fresh-control diff (the pure half of differential
/// capture, computed on the worker).
pub(super) struct Outcome {
    /// The post-click snapshot (its identity index already materialized
    /// by the diff).
    pub post: Arc<Snapshot>,
    /// Post-snapshot indices newly available after the click.
    pub fresh: Vec<u32>,
    /// Whether the click opened a new window.
    pub window_opened: bool,
}

/// One worker answer. `Panicked` is sent from an unwind guard so a dying
/// shard can never strand the scheduler in `recv` (the other shards'
/// senders keep the channel open, so a plain drop would block it
/// forever); the scheduler re-raises on receipt.
pub(super) enum Reply {
    Done(Option<Outcome>),
    Panicked,
}

/// Sends `Reply::Panicked` for the in-flight task when dropped during an
/// unwind.
struct ReplyGuard<'a> {
    seq: u64,
    results: &'a Sender<(u64, Reply)>,
    armed: bool,
}

impl Drop for ReplyGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let _ = self.results.send((self.seq, Reply::Panicked));
        }
    }
}

struct Queue {
    tasks: VecDeque<Task>,
    shutdown: bool,
}

/// The shared dispatch queue (mutex + condvar; tasks are popped from the
/// front, so the scheduler controls priority by choosing the end it
/// pushes to).
pub(super) struct Shared {
    queue: Mutex<Queue>,
    cond: Condvar,
}

impl Shared {
    pub fn new() -> Arc<Shared> {
        Arc::new(Shared {
            queue: Mutex::new(Queue { tasks: VecDeque::new(), shutdown: false }),
            cond: Condvar::new(),
        })
    }

    /// Enqueues a must-run-next task (the scheduler is about to block on
    /// it).
    pub fn push_front(&self, t: Task) {
        let mut q = self.queue.lock().unwrap();
        q.tasks.push_front(t);
        drop(q);
        self.cond.notify_one();
    }

    /// Enqueues a speculative task behind everything already dispatched.
    pub fn push_back(&self, t: Task) {
        let mut q = self.queue.lock().unwrap();
        q.tasks.push_back(t);
        drop(q);
        self.cond.notify_one();
    }

    /// Wakes every worker and makes further pops return `None`.
    pub fn shutdown(&self) {
        self.queue.lock().unwrap().shutdown = true;
        self.cond.notify_all();
    }

    fn pop(&self) -> Option<Task> {
        let mut q = self.queue.lock().unwrap();
        loop {
            // Shutdown wins over queued work: leftover speculative tasks
            // at rip end are dropped, not explored into the void.
            if q.shutdown {
                return None;
            }
            if let Some(t) = q.tasks.pop_front() {
                return Some(t);
            }
            q = self.cond.wait(q).unwrap();
        }
    }
}

/// The worker-shard main loop: pull, explore, diff, send — until
/// shutdown. Returns the shard's effort counters for aggregation.
pub(super) fn worker_loop(
    mut session: Session,
    config: RipConfig,
    shared: Arc<Shared>,
    results: Sender<(u64, Reply)>,
) -> RipStats {
    let mut unit = ExploreUnit::new(&mut session, &config);
    while let Some(task) = shared.pop() {
        let mut guard = ReplyGuard { seq: task.seq, results: &results, armed: true };
        let out = unit.explore(&task.setup, &task.cid, &task.path).map(|ex| Outcome {
            window_opened: ex.post.windows().len() > ex.pre.windows().len(),
            fresh: diff_fresh(&ex.pre, &ex.post),
            post: ex.post,
        });
        guard.armed = false;
        if results.send((task.seq, Reply::Done(out))).is_err() {
            break; // Scheduler gone (it only drops the receiver on exit).
        }
    }
    unit.stats
}
