//! App-agnostic worker shards: a shared pool of threads exploring
//! candidates for every frontier in the fleet.
//!
//! Workers are not pinned to an application. Each task names its app; the
//! worker checks an exploration unit (a forked `Session` plus suspended
//! §4.1 planner state) out of that app's session pool, explores, and
//! checks the unit back in. Planner state — Esc-recovery epochs, tab
//! dirt, effort counters — travels with the pooled unit, so recovery
//! amortizes across tasks exactly as it did when workers owned one
//! session for life, while any worker can serve any app the moment it
//! goes idle.
//!
//! The dispatch queue is a **multi-queue**: one sub-queue per app, a
//! deterministic fairness policy across them. Urgent tasks (the scheduler
//! is blocked on them right now) always win; among speculative backlogs
//! the pop picks the app with the greatest scheduler-reported weight —
//! its remaining DFS stack depth — with ties rotated round-robin. The
//! policy is a pure function of queue state (no randomness, no clocks);
//! it shapes only *latency*, never bytes: per-app merge order is fixed by
//! the scheduler regardless of where or when outcomes are computed.

use crate::ripper::{diff_fresh, ExploreUnit, RipConfig, RipStats, UnitState};
use dmi_gui::Session;
use dmi_uia::{ControlId, Snapshot};
use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};

/// One unit of speculative work: explore `cid` for frontier `app` after
/// establishing `setup` + `path`.
pub(super) struct Task {
    /// Fleet index of the frontier this task belongs to.
    pub app: usize,
    /// The scheduler-side stack-entry id this result answers.
    pub seq: u64,
    /// Context-setup clicks (shared per pass).
    pub setup: Arc<[String]>,
    /// The candidate control to click.
    pub cid: ControlId,
    /// The click path revealing the candidate.
    pub path: Vec<ControlId>,
}

/// A completed exploration, ready to merge: the post-click capture plus
/// the precomputed fresh-control diff (the pure half of differential
/// capture, computed on the worker).
pub(super) struct Outcome {
    /// The post-click snapshot (its identity index already materialized
    /// by the diff).
    pub post: Arc<Snapshot>,
    /// Post-snapshot indices newly available after the click.
    pub fresh: Vec<u32>,
    /// Whether the click opened a new window.
    pub window_opened: bool,
}

/// One worker answer. `Panicked` is sent from an unwind guard so a dying
/// shard can never strand the scheduler in `recv` (the other shards'
/// senders keep the channel open, so a plain drop would block it
/// forever); the scheduler re-raises on receipt, naming the app whose
/// frontier the worker was serving.
pub(super) enum Reply {
    Done(Option<Outcome>),
    Panicked,
}

/// Sends `Reply::Panicked` for the in-flight task when dropped during an
/// unwind. Carries the task's app index so the panic report can name the
/// frontier it was serving.
struct ReplyGuard<'a> {
    app: usize,
    seq: u64,
    results: &'a Sender<(usize, u64, Reply)>,
    armed: bool,
}

impl Drop for ReplyGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let _ = self.results.send((self.app, self.seq, Reply::Panicked));
        }
    }
}

/// A parked exploration unit: one forked session plus the suspended
/// planner state of the last checkout.
pub(super) struct PooledUnit {
    pub session: Session,
    pub state: UnitState,
}

/// Everything the worker pool shares for one app: the rip configuration
/// and the session pool. The pool holds one unit per worker, so a
/// checkout can never block — at most `workers` tasks of one app run
/// concurrently, each holding one unit.
pub(super) struct AppShared {
    pub config: Arc<RipConfig>,
    pub units: Mutex<Vec<PooledUnit>>,
}

/// One app's sub-queue plus its fairness inputs.
struct SubQueue {
    tasks: VecDeque<Task>,
    /// Tasks at the queue front the scheduler is blocked on right now.
    urgent: usize,
    /// Scheduler-reported remaining DFS stack depth (fairness weight).
    weight: u64,
}

struct QueueState {
    subs: Vec<SubQueue>,
    /// Round-robin cursor breaking weight ties deterministically.
    rr: usize,
    shutdown: bool,
}

/// The fleet's shared dispatch state: the multi-queue and the per-app
/// session pools.
pub(super) struct FleetShared {
    queue: Mutex<QueueState>,
    cond: Condvar,
    pub apps: Vec<AppShared>,
}

impl FleetShared {
    pub fn new(apps: Vec<AppShared>) -> Arc<FleetShared> {
        let subs = apps
            .iter()
            .map(|_| SubQueue { tasks: VecDeque::new(), urgent: 0, weight: 0 })
            .collect();
        Arc::new(FleetShared {
            queue: Mutex::new(QueueState { subs, rr: 0, shutdown: false }),
            cond: Condvar::new(),
            apps,
        })
    }

    /// Enqueues a must-run-next task (the scheduler is about to block on
    /// it): front of its app's sub-queue, preferred over every
    /// speculative backlog.
    pub fn push_front(&self, t: Task) {
        let mut q = self.queue.lock().unwrap();
        let sub = &mut q.subs[t.app];
        sub.tasks.push_front(t);
        sub.urgent += 1;
        drop(q);
        self.cond.notify_one();
    }

    /// Enqueues a speculative task behind its app's backlog.
    pub fn push_back(&self, t: Task) {
        let mut q = self.queue.lock().unwrap();
        q.subs[t.app].tasks.push_back(t);
        drop(q);
        self.cond.notify_one();
    }

    /// Updates an app's fairness weight (its remaining stack depth).
    pub fn set_weight(&self, app: usize, weight: u64) {
        self.queue.lock().unwrap().subs[app].weight = weight;
    }

    /// Wakes every worker and makes further pops return `None`.
    pub fn shutdown(&self) {
        self.queue.lock().unwrap().shutdown = true;
        self.cond.notify_all();
    }

    /// The deterministic fairness policy (see module docs): urgent tasks
    /// first (round-robin across apps), then the non-empty sub-queue with
    /// the greatest weight, ties resolved by the rotating cursor.
    fn pick(q: &mut QueueState) -> Option<Task> {
        let n = q.subs.len();
        for off in 0..n {
            let i = (q.rr + off) % n;
            if q.subs[i].urgent > 0 {
                q.subs[i].urgent -= 1;
                q.rr = (i + 1) % n;
                return q.subs[i].tasks.pop_front();
            }
        }
        let mut best: Option<usize> = None;
        for off in 0..n {
            let i = (q.rr + off) % n;
            if q.subs[i].tasks.is_empty() {
                continue;
            }
            if best.is_none_or(|b| q.subs[i].weight > q.subs[b].weight) {
                best = Some(i);
            }
        }
        let i = best?;
        q.rr = (i + 1) % n;
        q.subs[i].tasks.pop_front()
    }

    fn pop(&self) -> Option<Task> {
        let mut q = self.queue.lock().unwrap();
        loop {
            // Shutdown wins over queued work: leftover speculative tasks
            // at rip end are dropped, not explored into the void.
            if q.shutdown {
                return None;
            }
            if let Some(t) = Self::pick(&mut q) {
                return Some(t);
            }
            q = self.cond.wait(q).unwrap();
        }
    }
}

/// The worker main loop: pull a task from the multi-queue, check an
/// exploration unit out of the task's app pool, explore, diff, check the
/// unit back in, send — until shutdown. Effort counters accumulate on the
/// pooled unit's state; the scheduler drains them per app at teardown.
pub(super) fn worker_loop(shared: Arc<FleetShared>, results: Sender<(usize, u64, Reply)>) {
    while let Some(task) = shared.pop() {
        let app = &shared.apps[task.app];
        let mut slot =
            app.units.lock().unwrap().pop().expect("the per-app pool holds one unit per worker");
        let mut guard = ReplyGuard { app: task.app, seq: task.seq, results: &results, armed: true };
        let mut unit = ExploreUnit::resume(&mut slot.session, &app.config, slot.state);
        let out = unit.explore(&task.setup, &task.cid, &task.path).map(|ex| Outcome {
            window_opened: ex.post.windows().len() > ex.pre.windows().len(),
            fresh: diff_fresh(&ex.pre, &ex.post),
            post: ex.post,
        });
        slot.state = unit.suspend();
        app.units.lock().unwrap().push(slot);
        guard.armed = false;
        if results.send((task.app, task.seq, Reply::Done(out))).is_err() {
            break; // Scheduler gone (it only drops the receiver on exit).
        }
    }
}

/// Drains an app's session pool at teardown, absorbing every pooled
/// unit's effort counters and capture-pool counters into `stats`.
pub(super) fn drain_pool(app: &AppShared, stats: &mut RipStats) {
    for unit in std::mem::take(&mut *app.units.lock().unwrap()) {
        stats.absorb(&unit.state.stats);
        let cs = unit.session.capture_stats();
        stats.pool_hits += cs.pool_hits;
        stats.pool_misses += cs.pool_misses;
    }
}
