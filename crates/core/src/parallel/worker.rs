//! App-agnostic worker shards: a shared pool of threads exploring
//! candidates for every frontier in the fleet.
//!
//! Workers are not pinned to an application. Each task names its app; the
//! worker checks an exploration unit (a forked `Session` plus suspended
//! §4.1 planner state) out of that app's session pool, explores, and
//! checks the unit back in. Planner state — Esc-recovery epochs, tab
//! dirt, effort counters — travels with the pooled unit, so recovery
//! amortizes across tasks exactly as it did when workers owned one
//! session for life, while any worker can serve any app the moment it
//! goes idle.
//!
//! The dispatch queue is the shared [`FairQueue`] multi-queue (one lane
//! per app; see [`crate::parallel::fairness`] for the policy): urgent
//! tasks — the scheduler is blocked on them right now — always win, and
//! speculative backlogs are served by cost-aware weight, the
//! scheduler-reported remaining DFS stack depth scaled by a worker-fed
//! EWMA of the app's observed per-task latency, ties rotated
//! round-robin. Latency observations make the pick clock-*informed*, but
//! it still shapes only latency, never bytes: per-app merge order is
//! fixed by the scheduler regardless of where or when outcomes are
//! computed.
//!
//! A worker that finishes an exploration does not necessarily return to
//! the queue empty-handed: its session already sits in exactly the
//! post-click state, so — within the cost-aware budget the fair queue
//! grants ([`FairQueue::spec_budget`]) — it keeps walking into the
//! candidates its own fresh capture revealed, publishing each result as
//! a [`Reply::Spec`] keyed by the full exploration input. The scheduler
//! adopts speculations that match its sequential DFS pops and discards
//! the rest; see [`crate::parallel::spec`].

use crate::parallel::fairness::FairQueue;
use crate::parallel::spec::SpecKey;
use crate::ripper::{diff_fresh, ExploreUnit, RipConfig, RipStats, UnitState};
use dmi_gui::Session;
use dmi_uia::{ControlId, Snapshot};
use std::collections::HashSet;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// One unit of speculative work: explore `cid` for frontier `app` after
/// establishing `setup` + `path`.
pub(super) struct Task {
    /// Fleet index of the frontier this task belongs to.
    pub app: usize,
    /// The scheduler-side stack-entry id this result answers.
    pub seq: u64,
    /// Context-setup clicks (shared per pass).
    pub setup: Arc<[String]>,
    /// The candidate control to click.
    pub cid: ControlId,
    /// The click path revealing the candidate.
    pub path: Vec<ControlId>,
}

/// A completed exploration, ready to merge: the post-click capture plus
/// the precomputed fresh-control diff (the pure half of differential
/// capture, computed on the worker).
pub(super) struct Outcome {
    /// The post-click snapshot (its identity index already materialized
    /// by the diff).
    pub post: Arc<Snapshot>,
    /// Post-snapshot indices newly available after the click.
    pub fresh: Vec<u32>,
    /// Whether the click opened a new window.
    pub window_opened: bool,
}

/// One worker answer. Every dispatched task produces exactly one reply —
/// the scheduler's in-flight accounting depends on it — so faults are
/// answers, not silences: `Panicked` reports that the exploration
/// unwound (the unit died with it; the scheduler quarantines the app),
/// `Unserved` hands the task back because the app's session pool was
/// empty (a sibling worker died holding a unit; the scheduler
/// re-dispatches).
pub(super) enum Reply {
    Done {
        /// The exploration result (`None` when establish/click failed —
        /// skipped on commit, exactly like the sequential DFS).
        outcome: Option<Outcome>,
        /// The digest of the fork's post-restart base, when serving this
        /// task restarted ([`crate::ripper::snapshot_digest`]). Carried
        /// on the reply — *not* the outcome — because a drifted fork is
        /// most likely to fail its exploration (the control it came to
        /// click got renamed under it): the probe evidence must reach
        /// the scheduler even when there is no outcome to merge. The
        /// scheduler compares it against the lane's seed digest and
        /// quarantines on mismatch before any byte can merge.
        base_digest: Option<u64>,
    },
    Panicked(String),
    Unserved,
    /// A speculative subtree result: the worker kept walking past its
    /// dispatched task and explored `key` on its own initiative. Not an
    /// answer to any dispatched task — the scheduler's in-flight
    /// accounting ignores it — but the probe-digest contract still
    /// applies: a restart during the walk carries its base digest here,
    /// so a drifted fork's speculations quarantine the lane exactly like
    /// its dispatched replies would.
    Spec {
        key: SpecKey,
        outcome: Option<Outcome>,
        base_digest: Option<u64>,
    },
    /// The speculative walk unwound after `Done` was already sent. The
    /// unit died with it; the scheduler treats it like [`Reply::Panicked`]
    /// (quarantine) minus the in-flight bookkeeping.
    SpecPanicked(String),
}

/// Renders a `catch_unwind` payload as text (panic messages are `&str`
/// or `String` in practice).
fn panic_payload(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("non-string panic payload")
    }
}

/// A parked exploration unit: one forked session plus the suspended
/// planner state of the last checkout.
pub(super) struct PooledUnit {
    pub session: Session,
    pub state: UnitState,
}

/// Everything the worker pool shares for one app: the rip configuration
/// and the session pool. The pool starts with one unit per worker, so a
/// checkout never blocks — at most `workers` tasks of one app run
/// concurrently, each holding one unit. A panicking exploration destroys
/// its unit (the pool shrinks); a worker finding the pool empty hands
/// the task back as [`Reply::Unserved`] instead of waiting on a pool
/// that may never refill.
pub(super) struct AppShared {
    pub config: Arc<RipConfig>,
    pub units: Mutex<Vec<PooledUnit>>,
}

impl AppShared {
    /// Locks the unit pool, shrugging off poison: the pool holds parked
    /// sessions between checkouts, and the lock is never held across
    /// exploration, so a poisoned guard's contents are structurally
    /// intact — the panic happened elsewhere.
    fn units(&self) -> std::sync::MutexGuard<'_, Vec<PooledUnit>> {
        self.units.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

struct QueueState {
    queue: FairQueue<Task>,
    shutdown: bool,
}

/// The fleet's shared dispatch state: the multi-queue and the per-app
/// session pools.
pub(super) struct FleetShared {
    queue: Mutex<QueueState>,
    cond: Condvar,
    pub apps: Vec<AppShared>,
    /// Per-walk cap on speculative subtree steps (0 disables walks).
    spec_walk: usize,
}

impl FleetShared {
    pub fn new(apps: Vec<AppShared>, spec_walk: usize) -> Arc<FleetShared> {
        let lanes = apps.len();
        Arc::new(FleetShared {
            queue: Mutex::new(QueueState { queue: FairQueue::new(lanes), shutdown: false }),
            cond: Condvar::new(),
            apps,
            spec_walk,
        })
    }

    /// Enqueues a must-run-next task (the scheduler is about to block on
    /// it): front of its app's sub-queue, preferred over every
    /// speculative backlog.
    pub fn push_front(&self, t: Task) {
        let mut q = self.queue.lock().unwrap();
        let app = t.app;
        q.queue.push_front(app, t);
        drop(q);
        self.cond.notify_one();
    }

    /// Enqueues a speculative task behind its app's backlog.
    pub fn push_back(&self, t: Task) {
        let mut q = self.queue.lock().unwrap();
        let app = t.app;
        q.queue.push_back(app, t);
        drop(q);
        self.cond.notify_one();
    }

    /// Updates an app's reported remaining stack depth (the count half
    /// of its cost-aware fairness weight).
    pub fn set_depth(&self, app: usize, depth: u64) {
        self.queue.lock().unwrap().queue.set_depth(app, depth);
    }

    /// Folds one worker-observed task latency into the app's cost model
    /// (the seconds half of its cost-aware fairness weight).
    pub fn observe_latency(&self, app: usize, secs: f64) {
        self.queue.lock().unwrap().queue.observe_latency(app, secs);
    }

    /// Drops every queued task for one app (the scheduler quarantined
    /// it) so no worker burns time exploring a frontier whose outcome is
    /// already failed. Returns how many tasks were dropped — the
    /// scheduler deducts them from the lane's in-flight count, since a
    /// purged task will never produce a reply.
    pub fn purge_app(&self, app: usize) -> usize {
        self.queue.lock().unwrap().queue.purge(app)
    }

    /// How many speculative subtree steps a worker that just served
    /// `app` may walk right now: the configured per-walk cap shaped by
    /// the fair queue's cost-aware share policy
    /// ([`FairQueue::spec_budget`]).
    pub fn spec_budget(&self, app: usize) -> usize {
        self.queue.lock().unwrap().queue.spec_budget(app, self.spec_walk)
    }

    /// Wakes every worker and makes further pops return `None`.
    pub fn shutdown(&self) {
        self.queue.lock().unwrap().shutdown = true;
        self.cond.notify_all();
    }

    fn pop(&self) -> Option<Task> {
        let mut q = self.queue.lock().unwrap();
        loop {
            // Shutdown wins over queued work: leftover speculative tasks
            // at rip end are dropped, not explored into the void.
            if q.shutdown {
                return None;
            }
            if let Some(t) = q.queue.pop() {
                return Some(t);
            }
            q = self.cond.wait(q).unwrap();
        }
    }
}

/// The worker main loop: pull a task from the multi-queue, check an
/// exploration unit out of the task's app pool, explore, diff, check the
/// unit back in, send — until shutdown. Effort counters accumulate on the
/// pooled unit's state; the scheduler drains them per app at teardown.
///
/// Exploration runs under `catch_unwind`: a panicking application (or a
/// bug in the explore path) kills only the checked-out unit, never the
/// worker thread — the thread reports [`Reply::Panicked`] and moves on
/// to other apps' tasks, so one hostile frontier cannot take lanes it
/// never served down with it.
pub(super) fn worker_loop(shared: Arc<FleetShared>, results: Sender<(usize, u64, Reply)>) {
    while let Some(task) = shared.pop() {
        let app = &shared.apps[task.app];
        let Some(slot) = app.units().pop() else {
            // A sibling worker panicked and its unit died with it; hand
            // the task back so the scheduler re-dispatches once a unit
            // frees up (or quarantines the app).
            if results.send((task.app, task.seq, Reply::Unserved)).is_err() {
                break;
            }
            continue;
        };
        let PooledUnit { mut session, state } = slot;
        let started = Instant::now();
        let explore_span = dmi_obs::span(dmi_obs::Cat::Worker, "explore", task.app as u64);
        let explored = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut unit = ExploreUnit::resume(&mut session, &app.config, state);
            let out = unit.explore(&task.setup, &task.cid, &task.path).map(|ex| Outcome {
                window_opened: ex.post.windows().len() > ex.pre.windows().len(),
                fresh: diff_fresh(&ex.pre, &ex.post),
                post: ex.post,
            });
            // Taken unconditionally: a failed exploration on a drifted
            // fork still probed its restart base, and that evidence must
            // reach the scheduler's divergence oracle.
            let digest = unit.take_base_digest();
            (out, digest, unit.suspend())
        }));
        drop(explore_span);
        // Feed the cost model on success and failure alike: a hostile
        // app that burns seconds before failing is still expensive.
        shared.observe_latency(task.app, started.elapsed().as_secs_f64());
        match explored {
            Ok((outcome, base_digest, state)) => {
                // Seed for the speculative subtree walk, cloned before
                // the outcome moves into the reply. Skipped when the
                // fair queue grants no budget right now.
                let seed = outcome.as_ref().and_then(|o| {
                    if shared.spec_budget(task.app) == 0 {
                        None
                    } else {
                        Some((Arc::clone(&o.post), o.fresh.clone()))
                    }
                });
                let done = Reply::Done { outcome, base_digest };
                match seed {
                    None => {
                        app.units().push(PooledUnit { session, state });
                        if results.send((task.app, task.seq, done)).is_err() {
                            break;
                        }
                    }
                    Some((post, fresh)) => {
                        // Reply first: the scheduler commits the parent
                        // (and can adopt the walk's results) while the
                        // walk runs.
                        if results.send((task.app, task.seq, done)).is_err() {
                            break;
                        }
                        match speculative_walk(
                            &shared,
                            &results,
                            app,
                            &task,
                            &mut session,
                            state,
                            &post,
                            &fresh,
                        ) {
                            Ok(state) => app.units().push(PooledUnit { session, state }),
                            // Mid-walk unwind: the unit is forfeited
                            // exactly like a dispatched-task panic.
                            Err(payload) => {
                                let reply = Reply::SpecPanicked(payload);
                                if results.send((task.app, task.seq, reply)).is_err() {
                                    break;
                                }
                            }
                        }
                    }
                }
            }
            // The session's state is arbitrary mid-unwind; the unit is
            // forfeited (dropped with `session`) and the pool shrinks.
            Err(payload) => {
                let reply = Reply::Panicked(panic_payload(payload.as_ref()));
                if results.send((task.app, task.seq, reply)).is_err() {
                    break; // Scheduler gone (it only drops the receiver on exit).
                }
            }
        }
    }
}

/// Predicts which fresh controls of a capture the scheduler's commit
/// will enqueue as candidates, in enqueue order: the candidate-type /
/// blocklist / depth filter of the frontier's `maybe_enqueue`, minus the
/// visited-set and graph-dedup checks only the scheduler can evaluate
/// (a wrong guess there costs a wasted publication, never a byte).
/// `depth` is the length of the click path that would reveal them.
fn predict_children(
    post: &Snapshot,
    fresh: &[u32],
    depth: usize,
    config: &RipConfig,
) -> Vec<ControlId> {
    if depth >= config.max_depth {
        return Vec::new();
    }
    let index = post.index();
    let mut out = Vec::new();
    for &idx in fresh {
        let idx = idx as usize;
        let node = post.node(idx);
        let ct = node.props.control_type;
        if !config.candidate_types.contains(&ct) {
            continue;
        }
        let name = &node.props.name;
        let auto = &node.props.automation_id;
        if config.blocklist.iter().any(|b| b == name || (!auto.is_empty() && b == auto)) {
            continue;
        }
        out.push(index.control_id(post, idx));
    }
    out
}

/// The speculative subtree walk: starting from the fresh controls the
/// just-finished task revealed, keep exploring candidates depth-first —
/// pushed in enqueue order, popped LIFO, exactly the order the
/// scheduler's own DFS will pop them — publishing each result as a
/// [`Reply::Spec`]. Every step re-consults the fair queue's cost-aware
/// budget, so a sibling lane blocking mid-walk reels the worker back in.
///
/// Each step is the same pure `explore(setup, path, candidate)` the
/// scheduler would have dispatched, run on the same class of pooled
/// unit, so an adopted publication is byte-identical to the dispatched
/// result by construction. Returns the suspended planner state to pool,
/// or the panic payload when a step unwound (the unit is forfeited).
#[allow(clippy::too_many_arguments)]
fn speculative_walk(
    shared: &FleetShared,
    results: &Sender<(usize, u64, Reply)>,
    app: &AppShared,
    task: &Task,
    session: &mut Session,
    state: UnitState,
    post: &Arc<Snapshot>,
    fresh: &[u32],
) -> Result<UnitState, String> {
    let root_path: Vec<ControlId> =
        task.path.iter().cloned().chain(std::iter::once(task.cid.clone())).collect();
    let mut stack: Vec<(ControlId, Vec<ControlId>)> =
        predict_children(post, fresh, root_path.len(), &app.config)
            .into_iter()
            .map(|cid| (cid, root_path.clone()))
            .collect();
    let mut walked: HashSet<ControlId> = HashSet::new();
    let mut state = state;
    let mut steps = 0usize;
    while steps < shared.spec_budget(task.app) {
        let Some((cid, path)) = stack.pop() else {
            break;
        };
        if !walked.insert(cid.clone()) {
            continue;
        }
        let stepped = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let span = dmi_obs::span(dmi_obs::Cat::Worker, "spec.explore", task.app as u64);
            let mut unit = ExploreUnit::resume(session, &app.config, state);
            let out = unit.explore(&task.setup, &cid, &path).map(|ex| Outcome {
                window_opened: ex.post.windows().len() > ex.pre.windows().len(),
                fresh: diff_fresh(&ex.pre, &ex.post),
                post: ex.post,
            });
            unit.stats.spec_published += 1;
            dmi_obs::tally("spec.depth", 1);
            let digest = unit.take_base_digest();
            drop(span);
            (out, digest, unit.suspend())
        }));
        let (outcome, base_digest, next_state) = match stepped {
            Ok(v) => v,
            Err(payload) => return Err(panic_payload(payload.as_ref())),
        };
        state = next_state;
        if let Some(o) = &outcome {
            let mut child_path = path.clone();
            child_path.push(cid.clone());
            for child in predict_children(&o.post, &o.fresh, child_path.len(), &app.config) {
                stack.push((child, child_path.clone()));
            }
        }
        let key = SpecKey { setup: Arc::clone(&task.setup), path, cid };
        let reply = Reply::Spec { key, outcome, base_digest };
        if results.send((task.app, task.seq, reply)).is_err() {
            break;
        }
        steps += 1;
    }
    Ok(state)
}

/// Drains an app's session pool at teardown, absorbing every pooled
/// unit's effort counters and capture-pool counters into `stats`.
pub(super) fn drain_pool(app: &AppShared, stats: &mut RipStats) {
    for unit in std::mem::take(&mut *app.units()) {
        stats.absorb(&unit.state.stats);
        let cs = unit.session.capture_stats();
        stats.pool_hits += cs.pool_hits;
        stats.pool_misses += cs.pool_misses;
        stats.poison_recoveries += cs.poison_recoveries;
    }
}
