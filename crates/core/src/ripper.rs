//! GUI ripping: automated UNG construction by differential capture (§4.1).
//!
//! Exploration proceeds depth-first: capture the accessibility tree,
//! activate a candidate control (click), capture again; newly revealed
//! controls define navigation edges. New top-level or modal windows are
//! detected from the window list. A manual *blocklist* skips controls that
//! jump to external applications or trap the UI, and a *context manager*
//! re-explores under manually established contexts (e.g. "an image is
//! selected") to reach context-conditional controls.
//!
//! State restoration between branches replays the candidate's click path
//! from a fresh application start — the simulator makes restarts cheap, so
//! the paper's Esc-based fast recovery is unnecessary here; the resulting
//! UNG is identical.

use crate::graph::{Ung, UngNode, UngNodeId};
use dmi_gui::Session;
use dmi_uia::{ControlId, ControlIdSet, ControlKey, ControlType, Snapshot};

/// A context the explorer establishes before a dedicated exploration pass
/// (§4.1 "Context-aware exploration"). The clicks encode app-specific
/// prior knowledge (e.g. select slide 2, then its image).
#[derive(Debug, Clone)]
pub struct ContextSetup {
    /// Context label (diagnostic only).
    pub name: String,
    /// Control names clicked, in order, to establish the context.
    pub clicks: Vec<String>,
}

/// Ripper configuration.
#[derive(Debug, Clone)]
pub struct RipConfig {
    /// Control types worth clicking during exploration.
    pub candidate_types: Vec<ControlType>,
    /// Control names / automation ids never clicked (external jumps,
    /// traps). Maintaining this list is most of the manual effort (§4.1).
    pub blocklist: Vec<String>,
    /// Maximum click-path depth.
    pub max_depth: usize,
    /// Optional cap on total candidate clicks (debug aid).
    pub max_clicks: Option<usize>,
    /// Context passes to run after the base pass.
    pub contexts: Vec<ContextSetup>,
}

impl Default for RipConfig {
    fn default() -> Self {
        RipConfig {
            candidate_types: vec![
                ControlType::Button,
                ControlType::SplitButton,
                ControlType::MenuItem,
                ControlType::TabItem,
                ControlType::ComboBox,
                ControlType::ListItem,
                ControlType::Hyperlink,
            ],
            blocklist: vec![
                "Account".into(),
                "Feedback".into(),
                "Text to Columns".into(),
                "From Beginning".into(),
                "From Current Slide".into(),
            ],
            max_depth: 12,
            max_clicks: None,
            contexts: Vec::new(),
        }
    }
}

impl RipConfig {
    /// The configuration used for the Office case studies, including the
    /// PowerPoint image context.
    pub fn office(app: &str) -> RipConfig {
        let mut c = RipConfig::default();
        if app == "PowerPoint" {
            c.contexts.push(ContextSetup {
                name: "image-selected".into(),
                clicks: vec!["Slide 2".into(), "image 2".into()],
            });
        }
        c
    }
}

/// Statistics from one rip.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RipStats {
    /// Candidate controls clicked.
    pub clicks: u64,
    /// Snapshots captured.
    pub snapshots: u64,
    /// Application restarts (state restoration).
    pub restarts: u64,
    /// Candidates skipped by the blocklist.
    pub blocklisted: u64,
    /// Candidates skipped because replay failed.
    pub replay_failures: u64,
    /// New windows observed opening.
    pub windows_seen: u64,
}

struct Explorer<'a> {
    session: &'a mut Session,
    config: &'a RipConfig,
    g: Ung,
    stats: RipStats,
    /// Controls already explored (or blocklisted), keyed by
    /// [`ControlKey`] with full-id confirmation — no per-probe string
    /// encoding or hashing.
    visited: ControlIdSet,
    /// DFS stack of (control, its fingerprint, click path to reveal it).
    stack: Vec<(ControlId, ControlKey, Vec<ControlId>)>,
}

/// Rips an application into a UNG.
pub fn rip(session: &mut Session, config: &RipConfig) -> (Ung, RipStats) {
    let mut ex = Explorer {
        session,
        config,
        g: Ung::new(),
        stats: RipStats::default(),
        visited: ControlIdSet::new(),
        stack: Vec::new(),
    };
    ex.base_pass();
    for ctx in &config.contexts {
        ex.context_pass(ctx);
    }
    (ex.g, ex.stats)
}

impl Explorer<'_> {
    fn snapshot(&mut self) -> Snapshot {
        self.stats.snapshots += 1;
        self.session.snapshot()
    }

    fn restart(&mut self) {
        self.stats.restarts += 1;
        self.session.restart();
    }

    fn is_blocklisted(&self, name: &str, auto: &str) -> bool {
        self.config.blocklist.iter().any(|b| b == name || (!auto.is_empty() && b == auto))
    }

    fn is_candidate_type(&self, ct: ControlType) -> bool {
        self.config.candidate_types.contains(&ct)
    }

    /// Seeds the UNG from an initial snapshot: hierarchy edges for every
    /// visible control, window roots under the virtual root. Returns newly
    /// seen candidates.
    fn seed(&mut self, snap: &Snapshot, path: &[ControlId]) {
        let root = self.g.root();
        let index = snap.index();
        let mut ids: Vec<Option<UngNodeId>> = vec![None; snap.len()];
        for (idx, node) in snap.iter() {
            let cid = index.control_id(snap, idx);
            let key = index.key(idx);
            self.maybe_enqueue(
                &cid,
                key,
                node.props.control_type,
                &node.props.name,
                &node.props.automation_id,
                path,
            );
            // `cid` is consumed by the UNG node — no per-node clone.
            let gid = self.g.add_node_with_key(
                UngNode {
                    control: cid,
                    name: node.props.name.clone(),
                    control_type: node.props.control_type,
                    help_text: node.props.help_text.clone(),
                },
                key,
            );
            ids[idx] = Some(gid);
            match node.parent {
                Some(p) => {
                    if let Some(pg) = ids[p] {
                        self.g.add_edge(pg, gid);
                    }
                }
                None => {
                    self.g.add_edge(root, gid);
                }
            }
        }
    }

    fn maybe_enqueue(
        &mut self,
        cid: &ControlId,
        key: ControlKey,
        ct: ControlType,
        name: &str,
        auto: &str,
        path: &[ControlId],
    ) {
        if !self.is_candidate_type(ct) {
            return;
        }
        if self.visited.contains(key, cid) {
            return;
        }
        if self.is_blocklisted(name, auto) {
            self.visited.insert(key, cid);
            self.stats.blocklisted += 1;
            return;
        }
        if path.len() >= self.config.max_depth {
            return;
        }
        self.stack.push((cid.clone(), key, path.to_vec()));
    }

    /// Resolves a modeled control id in a snapshot by exact match — O(1)
    /// through the snapshot identity index (arena-order tie-break, exactly
    /// like the linear scan it replaces).
    fn resolve(snap: &Snapshot, cid: &ControlId) -> Option<usize> {
        snap.resolve(cid)
    }

    /// Replays a click path from a fresh start; returns false on failure.
    fn replay(&mut self, setup: &[String], path: &[ControlId]) -> bool {
        self.restart();
        for name in setup {
            let snap = self.snapshot();
            let Some(idx) = snap.find_by_name(name) else {
                return false;
            };
            let wid = self.session.widget_of(snap.node(idx).runtime_id);
            if self.session.click(wid).is_err() {
                return false;
            }
        }
        for cid in path {
            let snap = self.snapshot();
            let Some(idx) = Self::resolve(&snap, cid) else {
                self.stats.replay_failures += 1;
                return false;
            };
            let wid = self.session.widget_of(snap.node(idx).runtime_id);
            self.stats.clicks += 1;
            if self.session.click(wid).is_err() {
                self.stats.replay_failures += 1;
                return false;
            }
        }
        true
    }

    fn base_pass(&mut self) {
        self.restart();
        let snap = self.snapshot();
        self.seed(&snap, &[]);
        self.drain(&[]);
    }

    fn context_pass(&mut self, ctx: &ContextSetup) {
        if !self.replay(&ctx.clicks, &[]) {
            return;
        }
        let snap = self.snapshot();
        // Attach context-revealed controls under the virtual root (they
        // appeared because of the context, not a modeled click), then
        // explore within the context.
        self.seed(&snap, &[]);
        self.drain(&ctx.clicks);
    }

    fn drain(&mut self, setup: &[String]) {
        while let Some((cid, key, path)) = self.stack.pop() {
            if !self.visited.insert(key, &cid) {
                continue;
            }
            if let Some(cap) = self.config.max_clicks {
                if self.stats.clicks >= cap as u64 {
                    return;
                }
            }
            if !self.replay(setup, &path) {
                continue;
            }
            // A replayed path can leave a stray modal window above the
            // candidate (e.g. a picture-insert dialog whose side effect
            // revealed the candidate). Recover with Esc, like the paper's
            // standard-command state restoration.
            let mut pre = self.snapshot();
            let mut clicked_ok = false;
            for _attempt in 0..3 {
                let Some(idx) = Self::resolve(&pre, &cid) else {
                    break;
                };
                let node = pre.node(idx);
                if !node.props.enabled {
                    break;
                }
                if !pre.is_available(idx) {
                    if self.session.press("Esc").is_err() {
                        break;
                    }
                    pre = self.snapshot();
                    continue;
                }
                let wid = self.session.widget_of(node.runtime_id);
                self.stats.clicks += 1;
                clicked_ok = self.session.click(wid).is_ok();
                break;
            }
            if !clicked_ok {
                self.stats.replay_failures += 1;
                continue;
            }
            let windows_before = pre.windows().len();
            let post = self.snapshot();
            if post.windows().len() > windows_before {
                self.stats.windows_seen += 1;
            }
            self.record_diff(&cid, &pre, &post, &path);
        }
    }

    /// Differential capture: controls *available* after the click but not
    /// before define navigation edges. Availability (not mere tree
    /// presence) is the right diff domain: a modal dialog removes the main
    /// window's controls from the available set, so its OK/Cancel buttons
    /// gain back-edges to the re-revealed window — the cycles §3.2
    /// decycles away.
    ///
    /// The "present before?" test runs against the pre-snapshot's identity
    /// index: each post node's [`ControlKey`] probes the pre key-multimap
    /// and collision-confirms component-wise. No per-click encoded-string
    /// set is materialized for either snapshot.
    fn record_diff(
        &mut self,
        clicked: &ControlId,
        pre: &Snapshot,
        post: &Snapshot,
        path: &[ControlId],
    ) {
        let pre_ix = pre.index();
        let post_ix = post.index();
        // One post-click probe per node follows: amortize the multimap.
        pre_ix.key_multimap();
        let clicked_gid = self.g.find(clicked).expect("clicked control must already be a UNG node");
        let mut new_gid: Vec<Option<UngNodeId>> = vec![None; post.len()];
        let child_path: Vec<ControlId> = {
            let mut p = path.to_vec();
            p.push(clicked.clone());
            p
        };
        for (idx, node) in post.iter() {
            if !post.is_available(idx) {
                continue;
            }
            let key = post_ix.key(idx);
            // Identical control available before the click? (Identity is
            // compared component-wise: primary id, type, cached path.)
            let existed_before = pre_ix.candidates(key).any(|i| {
                let pn = &pre.node(i).props;
                pre.is_available(i)
                    && pn.control_type == node.props.control_type
                    && pn.primary_id() == node.props.primary_id()
                    && pre_ix.path(i) == post_ix.path(idx)
            });
            if existed_before {
                continue;
            }
            let cid = post_ix.control_id(post, idx);
            let existed = self.g.find_with_key(&cid, key).is_some();
            if !existed {
                self.maybe_enqueue(
                    &cid,
                    key,
                    node.props.control_type,
                    &node.props.name,
                    &node.props.automation_id,
                    &child_path,
                );
            }
            let gid = self.g.add_node_with_key(
                UngNode {
                    control: cid,
                    name: node.props.name.clone(),
                    control_type: node.props.control_type,
                    help_text: node.props.help_text.clone(),
                },
                key,
            );
            new_gid[idx] = Some(gid);
            // Edge source: the snapshot parent when it is also new (deep
            // hierarchy), else the clicked control.
            let src = node.parent.and_then(|p| new_gid[p]).unwrap_or(clicked_gid);
            self.g.add_edge(src, gid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::small_rip;
    use dmi_apps::AppKind;

    fn rip_small(kind: AppKind) -> (Ung, RipStats) {
        let (g, stats) = small_rip(kind);
        let mut g = g.clone();
        g.rebuild_index();
        (g, *stats)
    }

    #[test]
    fn word_rip_covers_ribbon_and_galleries() {
        let (g, stats) = rip_small(AppKind::Word);
        assert!(g.node_count() > 1500, "got {} nodes", g.node_count());
        assert!(stats.clicks > 500);
        // The Find & Replace dialog was discovered.
        assert!(g.ids().any(|i| g.node(i).name == "Find and Replace"));
        // Color cells discovered under menus.
        assert!(g.ids().any(|i| g.node(i).name == "Blue"));
    }

    #[test]
    fn word_rip_produces_merge_nodes_and_cycles() {
        let (mut g, _) = rip_small(AppKind::Word);
        assert!(!g.merge_nodes().is_empty(), "shared dialogs must appear as merge nodes");
        assert!(!crate::topology::is_acyclic(&g), "close buttons create cycles");
        let stats = crate::topology::decycle(&mut g);
        assert!(stats.back_edges_removed > 0);
    }

    #[test]
    fn blocklist_is_respected() {
        let (g, stats) = rip_small(AppKind::Word);
        assert!(stats.blocklisted >= 1, "Account/Feedback should be blocked");
        // The Account button may be seeded as a node (it is visible), but
        // it must never be clicked; the session would count the jump.
        let _ = g;
    }

    #[test]
    fn no_external_jumps_or_traps_during_rip() {
        let mut s = Session::new(AppKind::Excel.launch_small());
        let cfg = RipConfig::office("Excel");
        let _ = rip(&mut s, &cfg);
        assert_eq!(s.external_jumps(), 0, "blocklist must prevent external jumps");
        assert!(!s.is_trapped());
    }

    #[test]
    fn powerpoint_context_pass_finds_picture_format() {
        let (g, _) = rip_small(AppKind::PowerPoint);
        assert!(
            g.ids().any(|i| g.node(i).name == "Picture Format"),
            "context exploration must reveal the Picture Format tab"
        );
        assert!(g.ids().any(|i| g.node(i).name == "Picture Quick Styles"));
    }

    #[test]
    fn excel_rip_reaches_nested_dialogs() {
        let (g, _) = rip_small(AppKind::Excel);
        // Conditional Formatting -> Highlight Cells Rules -> Greater Than.
        assert!(g.ids().any(|i| g.node(i).name == "Greater Than"));
        assert!(g.ids().any(|i| g.node(i).name == "Freeze Top Row"));
    }

    #[test]
    fn rip_is_deterministic() {
        let (g1, s1) = rip_small(AppKind::PowerPoint);
        let mut s = Session::new(AppKind::PowerPoint.launch_small());
        let (g2, s2) = rip(&mut s, &RipConfig::office("PowerPoint"));
        assert_eq!(g1.node_count(), g2.node_count());
        assert_eq!(g1.edge_count(), g2.edge_count());
        assert_eq!(s1, s2);
    }
}
