//! GUI ripping: automated UNG construction by differential capture (§4.1).
//!
//! Exploration proceeds depth-first: capture the accessibility tree,
//! activate a candidate control (click), capture again; newly revealed
//! controls define navigation edges. New top-level or modal windows are
//! detected from the window list. A manual *blocklist* skips controls that
//! jump to external applications or trap the UI, and a *context manager*
//! re-explores under manually established contexts (e.g. "an image is
//! selected") to reach context-conditional controls.
//!
//! State restoration between branches prefers the paper's §4.1 fast
//! recovery: the explorer tracks how the current UI state was reached —
//! the tree's persistent-mutation epoch, the open-popup chain and window
//! stack depth, and whether any tab was switched — and presses Esc to
//! collapse transient windows and popups back to a launch-equivalent base
//! before clicking the next candidate's path forward. Only when Esc
//! provably cannot reach that base (trapped UI, tree-visible state
//! mutations, context passes) does it fall back to a full
//! [`Session::restart`] plus path replay. Pure document-model mutations
//! are invisible to the epoch — and to snapshots: the UNG only observes
//! the tree, and any later rendering of document state into widgets goes
//! through tree writes that do move the epoch. The resulting UNG is
//! byte-identical either way; the full-restart strategy stays available
//! behind [`RipConfig::esc_recovery`] as the equivalence oracle.
//!
//! # Shard-reusable exploration units
//!
//! Exploring one candidate — establish its prefix state, click it,
//! capture the pre/post pair — is a pure function of `(setup, path,
//! candidate)` on a deterministic application: `establish` either reaches
//! the provably launch-equivalent base (Esc recovery) or restarts and
//! replays, so the resulting snapshots never depend on what was explored
//! before. The machinery is therefore factored into an [`ExploreUnit`]
//! (one session plus the recovery-planner state) and a [`Frontier`] (the
//! UNG under construction, the visited set, and the DFS stack), connected
//! by the pure [`diff_fresh`] differential. The sequential ripper composes
//! them in a loop; [`crate::parallel`] runs many `ExploreUnit`s on worker
//! threads against one `Frontier` — producing byte-identical UNGs.

use crate::graph::{Ung, UngNode, UngNodeId};
use dmi_gui::Session;
use dmi_uia::{ControlId, ControlIdSet, ControlKey, ControlType, Snapshot};
use std::collections::HashSet;
use std::sync::Arc;

/// A context the explorer establishes before a dedicated exploration pass
/// (§4.1 "Context-aware exploration"). The clicks encode app-specific
/// prior knowledge (e.g. select slide 2, then its image).
#[derive(Debug, Clone)]
pub struct ContextSetup {
    /// Context label (diagnostic only).
    pub name: String,
    /// Control names clicked, in order, to establish the context.
    pub clicks: Vec<String>,
}

/// Ripper configuration.
#[derive(Debug, Clone)]
pub struct RipConfig {
    /// Control types worth clicking during exploration.
    pub candidate_types: Vec<ControlType>,
    /// Control names / automation ids never clicked (external jumps,
    /// traps). Maintaining this list is most of the manual effort (§4.1).
    pub blocklist: Vec<String>,
    /// Maximum click-path depth.
    pub max_depth: usize,
    /// Optional cap on total candidate clicks (debug aid).
    pub max_clicks: Option<usize>,
    /// Context passes to run after the base pass.
    pub contexts: Vec<ContextSetup>,
    /// Prefer Esc-based fast state restoration between sibling candidates
    /// (§4.1) over full restart-replay. Off, every candidate restores
    /// state by restarting the application — the legacy strategy kept as
    /// the equivalence oracle: both settings produce byte-identical UNGs.
    pub esc_recovery: bool,
}

impl Default for RipConfig {
    fn default() -> Self {
        RipConfig {
            candidate_types: vec![
                ControlType::Button,
                ControlType::SplitButton,
                ControlType::MenuItem,
                ControlType::TabItem,
                ControlType::ComboBox,
                ControlType::ListItem,
                ControlType::Hyperlink,
            ],
            blocklist: vec![
                "Account".into(),
                "Feedback".into(),
                "Text to Columns".into(),
                "From Beginning".into(),
                "From Current Slide".into(),
            ],
            max_depth: 12,
            max_clicks: None,
            contexts: Vec::new(),
            esc_recovery: true,
        }
    }
}

impl RipConfig {
    /// The configuration used for the Office case studies, including the
    /// PowerPoint image context.
    pub fn office(app: &str) -> RipConfig {
        let mut c = RipConfig::default();
        if app == "PowerPoint" {
            c.contexts.push(ContextSetup {
                name: "image-selected".into(),
                clicks: vec!["Slide 2".into(), "image 2".into()],
            });
        }
        c
    }
}

/// Statistics from one rip.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RipStats {
    /// Candidate controls clicked.
    pub clicks: u64,
    /// Snapshots captured.
    pub snapshots: u64,
    /// Application restarts (state restoration fallback).
    pub restarts: u64,
    /// Candidates whose prefix state was restored by Esc instead of a
    /// restart (§4.1 fast recovery).
    pub esc_recoveries: u64,
    /// Esc presses spent collapsing transient windows and popups.
    pub esc_presses: u64,
    /// Candidates skipped by the blocklist.
    pub blocklisted: u64,
    /// Candidates skipped because replay failed.
    pub replay_failures: u64,
    /// New windows observed opening.
    pub windows_seen: u64,
    /// Captures served from a shared cross-session capture pool (fleet
    /// engines attach one per app; see `dmi_gui::CapturePool`).
    pub pool_hits: u64,
    /// Pool probes that found no pooled capture.
    pub pool_misses: u64,
    /// Poisoned capture-pool locks recovered by discarding the pooled
    /// entries and rebuilding (fail-soft: a shard that dies holding the
    /// pool lock costs cached captures, never correctness).
    pub poison_recoveries: u64,
    /// Speculative subtree steps published by workers: each is one
    /// `explore` of a freshly revealed candidate the worker walked into
    /// without waiting for the scheduler to dispatch it.
    pub spec_published: u64,
    /// Published speculations the scheduler adopted because the
    /// sequential DFS pop matched the speculation key exactly.
    pub spec_adopted: u64,
    /// Published speculations discarded without merging: superseded at
    /// publish, orphaned at teardown, or invalidated when their lane
    /// quarantined.
    pub spec_wasted: u64,
}

impl RipStats {
    /// Element-wise accumulation: the parallel engine aggregates the
    /// scheduler's counters with every worker shard's.
    pub fn absorb(&mut self, other: &RipStats) {
        self.clicks += other.clicks;
        self.snapshots += other.snapshots;
        self.restarts += other.restarts;
        self.esc_recoveries += other.esc_recoveries;
        self.esc_presses += other.esc_presses;
        self.blocklisted += other.blocklisted;
        self.replay_failures += other.replay_failures;
        self.windows_seen += other.windows_seen;
        self.pool_hits += other.pool_hits;
        self.pool_misses += other.pool_misses;
        self.poison_recoveries += other.poison_recoveries;
        self.spec_published += other.spec_published;
        self.spec_adopted += other.spec_adopted;
        self.spec_wasted += other.spec_wasted;
    }

    /// Folds a session's capture-pool counter delta into the rip stats
    /// (engines call this once per session at the end of a rip).
    pub(crate) fn fold_pool_delta(
        &mut self,
        before: dmi_gui::CaptureStats,
        after: dmi_gui::CaptureStats,
    ) {
        self.pool_hits += after.pool_hits - before.pool_hits;
        self.pool_misses += after.pool_misses - before.pool_misses;
        self.poison_recoveries += after.poison_recoveries - before.poison_recoveries;
    }
}

/// One candidate awaiting exploration: the control, its fingerprint, the
/// click path that reveals it, and scheduler bookkeeping (`seq` uniquely
/// identifies the stack entry; `dispatched` marks entries the parallel
/// engine has already handed to a worker — the sequential ripper ignores
/// both).
#[derive(Debug, Clone)]
pub(crate) struct Candidate {
    pub cid: ControlId,
    pub key: ControlKey,
    pub path: Vec<ControlId>,
    pub seq: u64,
    pub dispatched: bool,
}

/// The pre/post capture pair produced by exploring one candidate.
pub(crate) struct Explored {
    pub pre: Arc<Snapshot>,
    pub post: Arc<Snapshot>,
}

/// A shard-reusable exploration unit: one session plus the §4.1 recovery
/// planner. [`ExploreUnit::explore`] is a pure function of `(setup, path,
/// candidate)` — state is always (re-)established from a provably
/// launch-equivalent base first — so units can run in any order, on any
/// thread, and produce the same capture pairs the sequential DFS would.
pub(crate) struct ExploreUnit<'a> {
    session: &'a mut Session,
    config: &'a RipConfig,
    /// Effort counters accumulated by this unit.
    pub stats: RipStats,
    /// The tree's persistent-mutation epoch recorded at the last restart.
    /// While it holds, the only state accumulated since the restart is
    /// transient (windows, popups) or tab selection — exactly what Esc
    /// plus a forward replay can neutralize.
    base_epoch: u64,
    /// Whether any main-window tab was clicked since the last restart.
    /// Tab selection survives Esc; it self-heals only when the next
    /// forward click is itself a tab (selecting a tab deselects its
    /// siblings).
    tab_dirty: bool,
    /// The main-window tabs clicked since the last restart. Sibling-click
    /// self-healing cannot cover re-exploring one of *these*: the tab may
    /// still be selected, so the pre-capture would already show its
    /// children and the differential would come back empty. In-DFS-order
    /// task streams never re-explore a clicked tab (a tab is explored
    /// before it ever appears in a path), but speculative subtree walks
    /// click tabs out of order — exploring one of these afterwards forces
    /// a full restart instead.
    clicked_tabs: HashSet<ControlId>,
    /// Whether a tab *inside a dialog* was clicked since the last
    /// restart. Dialog-internal tab selection survives Esc-closing the
    /// dialog, and replaying a path re-opens the dialog without
    /// re-selecting its default tab — nothing heals it, so only a
    /// restart clears this.
    dialog_tab_dirty: bool,
    /// Whether every restart should capture and digest the fresh base
    /// (worker-pool units only — see [`UnitState::probing`]). The extra
    /// base capture is byte-safe: late-load reveal schedules are relative
    /// to the click-time query sequence, so an additional query between
    /// restart and replay shifts no reveal boundary.
    probe_base: bool,
    /// The digest recorded by the most recent probing restart, taken by
    /// the worker after each exploration ([`ExploreUnit::take_base_digest`]).
    last_base_digest: Option<u64>,
}

/// Rips an application into a UNG (sequential reference implementation;
/// see [`crate::parallel::rip_parallel`] for the sharded engine and
/// [`crate::parallel::rip_fleet`] for multi-app fleets — both are
/// byte-identical by construction).
pub fn rip(session: &mut Session, config: &RipConfig) -> (Ung, RipStats) {
    let _rip_span = dmi_obs::span(dmi_obs::Cat::Rip, "rip.sequential", 0);
    let cs0 = session.capture_stats();
    let mut ex = Explorer { unit: ExploreUnit::new(session, config), frontier: Frontier::new() };
    ex.base_pass();
    for ctx in &config.contexts {
        ex.context_pass(ctx);
    }
    let Explorer { unit, frontier } = ex;
    let mut stats = unit.stats;
    stats.fold_pool_delta(cs0, unit.session().capture_stats());
    (frontier.g, stats)
}

/// The suspended, thread-portable half of an [`ExploreUnit`]: its effort
/// counters plus the §4.1 recovery-planner state. Fleet engines park this
/// next to a pooled worker session between task checkouts, so the planner
/// amortizes across tasks exactly as it does when one worker owns the
/// session for life.
#[derive(Debug, Clone, Default)]
pub(crate) struct UnitState {
    pub stats: RipStats,
    base_epoch: u64,
    tab_dirty: bool,
    clicked_tabs: HashSet<ControlId>,
    dialog_tab_dirty: bool,
    probe_base: bool,
}

impl UnitState {
    /// The initial state for a worker-pool unit: base-digest probing —
    /// every restart captures the fresh base and digests it so the
    /// scheduler can cross-check worker bases against the lane's (the
    /// fleet divergence oracle). The recovery planner starts *poisoned*
    /// (`dialog_tab_dirty`), forcing the unit's first establish to
    /// restart: a fork's launch state is unattested until its first
    /// probed restart, so every unit records at least one base digest
    /// before any of its bytes can merge. Lane and sequential units
    /// never probe, keeping their capture counts pinned.
    pub fn probing() -> UnitState {
        UnitState { probe_base: true, dialog_tab_dirty: true, ..UnitState::default() }
    }
}

impl<'a> ExploreUnit<'a> {
    pub fn new(session: &'a mut Session, config: &'a RipConfig) -> ExploreUnit<'a> {
        Self::resume(session, config, UnitState::default())
    }

    /// Re-attaches a unit to a session using planner state suspended by
    /// an earlier checkout (see [`UnitState`]).
    pub fn resume(
        session: &'a mut Session,
        config: &'a RipConfig,
        state: UnitState,
    ) -> ExploreUnit<'a> {
        ExploreUnit {
            session,
            config,
            stats: state.stats,
            base_epoch: state.base_epoch,
            tab_dirty: state.tab_dirty,
            clicked_tabs: state.clicked_tabs,
            dialog_tab_dirty: state.dialog_tab_dirty,
            probe_base: state.probe_base,
            last_base_digest: None,
        }
    }

    /// Detaches the planner state for parking next to a pooled session.
    pub fn suspend(&self) -> UnitState {
        UnitState {
            stats: self.stats,
            base_epoch: self.base_epoch,
            tab_dirty: self.tab_dirty,
            clicked_tabs: self.clicked_tabs.clone(),
            dialog_tab_dirty: self.dialog_tab_dirty,
            probe_base: self.probe_base,
        }
    }

    /// The session this unit drives.
    pub fn session(&self) -> &Session {
        self.session
    }

    /// Mutable access to the driven session (fleet teardown detaches the
    /// shared capture pool through this).
    pub fn session_mut(&mut self) -> &mut Session {
        self.session
    }

    /// The rip configuration this unit explores under.
    pub fn config(&self) -> &'a RipConfig {
        self.config
    }

    pub fn snapshot(&mut self) -> Arc<Snapshot> {
        self.stats.snapshots += 1;
        dmi_obs::tally("rip.snapshots", 1);
        self.session.snapshot()
    }

    pub fn restart(&mut self) {
        self.stats.restarts += 1;
        dmi_obs::tally("rip.restarts", 1);
        self.session.restart();
        self.base_epoch = self.session.ui_state_epoch();
        self.tab_dirty = false;
        self.clicked_tabs.clear();
        self.dialog_tab_dirty = false;
        if self.probe_base {
            let snap = self.snapshot();
            self.last_base_digest = Some(snapshot_digest(&snap));
        }
    }

    /// Takes the digest recorded by the most recent probing restart
    /// (`None` when no restart ran since the last take, or the unit does
    /// not probe). Workers attach this to each outcome so the scheduler
    /// can compare it against the lane's own base digest.
    pub fn take_base_digest(&mut self) -> Option<u64> {
        self.last_base_digest.take()
    }

    /// Consumes the unit, releasing its session borrow (the fleet's
    /// quarantine path re-rips the caller session sequentially).
    pub fn into_session(self) -> &'a mut Session {
        self.session
    }

    /// Records a successful click on a tab: main-window tabs are
    /// self-healing (their identity is remembered — see
    /// [`ExploreUnit::clicked_tabs`]), dialog-internal tabs poison
    /// recovery until restart.
    fn note_tab_click(&mut self, cid: &ControlId) {
        if self.session.window_depth() > 1 {
            self.dialog_tab_dirty = true;
        } else {
            self.tab_dirty = true;
            self.clicked_tabs.insert(cid.clone());
        }
    }

    /// Resolves a modeled control id in a snapshot by exact match — O(1)
    /// through the snapshot identity index (arena-order tie-break, exactly
    /// like the linear scan it replaces).
    fn resolve(snap: &Snapshot, cid: &ControlId) -> Option<usize> {
        snap.resolve(cid)
    }

    /// Replays a click path from a fresh start; returns false on failure.
    pub fn replay(&mut self, setup: &[String], path: &[ControlId]) -> bool {
        self.restart();
        self.walk(setup, path, true)
    }

    /// Clicks the setup names and path controls forward from the current
    /// state. `count_failures` controls whether a miss is recorded in the
    /// stats — a speculative fast-recovery walk retries with a clean
    /// restart instead of charging a replay failure.
    fn walk(&mut self, setup: &[String], path: &[ControlId], count_failures: bool) -> bool {
        for name in setup {
            let snap = self.snapshot();
            let Some(idx) = snap.find_by_name(name) else {
                return false;
            };
            let wid = self.session.widget_of(snap.node(idx).runtime_id);
            if self.session.click(wid).is_err() {
                return false;
            }
        }
        for cid in path {
            let snap = self.snapshot();
            let Some(idx) = Self::resolve(&snap, cid) else {
                if count_failures {
                    self.stats.replay_failures += 1;
                    dmi_obs::tally("rip.replay_failures", 1);
                }
                return false;
            };
            let wid = self.session.widget_of(snap.node(idx).runtime_id);
            self.stats.clicks += 1;
            dmi_obs::tally("rip.clicks", 1);
            if self.session.click(wid).is_err() {
                if count_failures {
                    self.stats.replay_failures += 1;
                    dmi_obs::tally("rip.replay_failures", 1);
                }
                return false;
            }
            if cid.control_type == ControlType::TabItem {
                self.note_tab_click(cid);
            }
        }
        true
    }

    /// Whether the candidate's prefix state is reachable by Esc-based fast
    /// recovery from the current state — the §4.1 planner. Requires the
    /// base pass (context setups establish state Esc cannot re-create),
    /// an un-trapped UI, no persistent *tree-visible* mutation since the
    /// last restart (document-model state the tree never renders is
    /// outside the epoch, and outside what snapshots — hence the UNG —
    /// can observe), no surviving dialog-internal tab selection, and
    /// either untouched main-window tabs or a path that re-selects one
    /// first.
    fn can_recover(&self, setup: &[String], cid: &ControlId, path: &[ControlId]) -> bool {
        if !self.config.esc_recovery || !setup.is_empty() || self.session.is_trapped() {
            return false;
        }
        if self.session.ui_state_epoch() != self.base_epoch || self.dialog_tab_dirty {
            return false;
        }
        if self.tab_dirty {
            // Re-exploring a tab this unit already clicked is the one
            // case sibling-click self-healing cannot cover: the tab may
            // still be selected, so the pre-capture would already show
            // its children and the reveal diff would come back empty.
            // Only a speculative subtree walk puts a unit in this spot —
            // sequential-order task streams explore a tab before it ever
            // appears in a path.
            if cid.control_type == ControlType::TabItem && self.clicked_tabs.contains(cid) {
                return false;
            }
            // A path starting with a (main-window) tab deselects whatever
            // tab is stale; the first path click always happens with only
            // the main window open, so it can never be a dialog tab.
            let first = path.first().map_or(cid.control_type, |c| c.control_type);
            return first == ControlType::TabItem;
        }
        true
    }

    /// Establishes the candidate's prefix state: launch state plus the
    /// clicks in `path`. Prefers Esc-based fast restoration; falls back to
    /// a full restart + replay when the planner refuses or the fast walk
    /// diverges from the modeled path.
    fn establish(&mut self, setup: &[String], cid: &ControlId, path: &[ControlId]) -> bool {
        if self.can_recover(setup, cid, path) {
            let (at_base, presses) = self.session.escape_to_base();
            self.stats.esc_presses += presses;
            dmi_obs::tally("rip.esc_presses", presses);
            // A window closed by Esc runs its cancel handler; re-check
            // the epoch before trusting the collapsed state as base.
            if at_base
                && self.session.ui_state_epoch() == self.base_epoch
                && self.walk(setup, path, false)
            {
                self.stats.esc_recoveries += 1;
                dmi_obs::tally("rip.esc_recoveries", 1);
                return true;
            }
        }
        self.replay(setup, path)
    }

    /// Explores one candidate: establishes its prefix state, clicks it
    /// (recovering from stray modal windows with Esc), and captures the
    /// pre/post snapshot pair. `None` when the state could not be
    /// established or the click failed (counted as a replay failure,
    /// exactly like the sequential DFS).
    pub fn explore(
        &mut self,
        setup: &[String],
        cid: &ControlId,
        path: &[ControlId],
    ) -> Option<Explored> {
        if !self.establish(setup, cid, path) {
            return None;
        }
        // A replayed path can leave a stray modal window above the
        // candidate (e.g. a picture-insert dialog whose side effect
        // revealed the candidate). Recover with Esc, like the paper's
        // standard-command state restoration.
        let mut pre = self.snapshot();
        let mut clicked_ok = false;
        for _attempt in 0..3 {
            let Some(idx) = Self::resolve(&pre, cid) else {
                break;
            };
            let node = pre.node(idx);
            if !node.props.enabled {
                break;
            }
            if !pre.is_available(idx) {
                if self.session.press("Esc").is_err() {
                    break;
                }
                self.stats.esc_presses += 1;
                dmi_obs::tally("rip.esc_presses", 1);
                pre = self.snapshot();
                continue;
            }
            let wid = self.session.widget_of(node.runtime_id);
            self.stats.clicks += 1;
            dmi_obs::tally("rip.clicks", 1);
            clicked_ok = self.session.click(wid).is_ok();
            break;
        }
        if !clicked_ok {
            self.stats.replay_failures += 1;
            dmi_obs::tally("rip.replay_failures", 1);
            return None;
        }
        if cid.control_type == ControlType::TabItem {
            self.note_tab_click(cid);
        }
        let post = self.snapshot();
        Some(Explored { pre, post })
    }
}

/// The pure half of differential capture (§4.1): post-snapshot arena
/// indices of controls *available* after the click but not before.
/// Availability (not mere tree presence) is the right diff domain: a
/// modal dialog removes the main window's controls from the available
/// set, so its OK/Cancel buttons gain back-edges to the re-revealed
/// window — the cycles §3.2 decycles away.
///
/// The "present before?" test runs against the pre-snapshot's identity
/// index: each post node's [`ControlKey`] probes the pre key-multimap and
/// collision-confirms component-wise. Depends only on the two snapshots —
/// the parallel engine computes it on worker threads.
pub(crate) fn diff_fresh(pre: &Snapshot, post: &Snapshot) -> Vec<u32> {
    let pre_ix = pre.index();
    let post_ix = post.index();
    // One probe per post node follows: amortize the multimap.
    pre_ix.key_multimap();
    let mut fresh = Vec::new();
    for (idx, node) in post.iter() {
        if !post.is_available(idx) {
            continue;
        }
        let key = post_ix.key(idx);
        // Identical control available before the click? (Identity is
        // compared component-wise: primary id, type, cached path.)
        let existed_before = pre_ix.candidates(key).any(|i| {
            let pn = &pre.node(i).props;
            pre.is_available(i)
                && pn.control_type == node.props.control_type
                && pn.primary_id() == node.props.primary_id()
                && pre_ix.path(i) == post_ix.path(idx)
        });
        if !existed_before {
            fresh.push(idx as u32);
        }
    }
    fresh
}

/// A structural FNV-1a digest of a snapshot: arena order, parentage, the
/// window list, and every capture-visible property. Two launch-equivalent
/// bases built by the same deterministic application digest equal; a fork
/// whose reset drifted (nondeterministic relabel, leaked state) digests
/// differently. The fleet scheduler compares worker-side post-restart
/// digests against its lane's seed digest, catching divergence *before*
/// a wrong byte can merge into the UNG.
pub(crate) fn snapshot_digest(snap: &Snapshot) -> u64 {
    fn eat(h: &mut u64, bytes: &[u8]) {
        for &b in bytes {
            *h = (*h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for (idx, node) in snap.iter() {
        eat(&mut h, &(idx as u64).to_le_bytes());
        eat(&mut h, &node.parent.map_or(u64::MAX, |p| p as u64).to_le_bytes());
        let p = &node.props;
        let fields = format!(
            "{:?}\x1f{}\x1f{}\x1f{}\x1f{}\x1f{:?}\x1f{}\x1f{:?}",
            p.control_type,
            p.name,
            p.automation_id,
            p.value,
            p.enabled,
            p.toggle,
            p.selected,
            p.expanded,
        );
        eat(&mut h, fields.as_bytes());
    }
    for &w in snap.windows() {
        eat(&mut h, &(w as u64).to_le_bytes());
    }
    h
}

/// The UNG under construction plus the exploration frontier: the visited
/// set and the DFS stack. All graph mutation goes through [`Frontier::seed`]
/// and [`Frontier::commit`]; committing outcomes in the same order always
/// produces the same graph bytes, which is what lets the parallel engine
/// interleave *exploration* freely while keeping *commits* sequential.
pub(crate) struct Frontier {
    pub g: Ung,
    /// Controls already explored (or blocklisted), keyed by
    /// [`ControlKey`] with full-id confirmation — no per-probe string
    /// encoding or hashing.
    visited: ControlIdSet,
    /// DFS stack of candidates (top = next to explore).
    pub stack: Vec<Candidate>,
    /// Sequence counter assigning stack entries unique ids.
    next_seq: u64,
}

impl Frontier {
    pub fn new() -> Frontier {
        Frontier { g: Ung::new(), visited: ControlIdSet::new(), stack: Vec::new(), next_seq: 0 }
    }

    /// Pops the next candidate (LIFO — depth-first).
    pub fn pop(&mut self) -> Option<Candidate> {
        self.stack.pop()
    }

    /// Marks a candidate visited; false when it already was (skip it).
    pub fn visit(&mut self, c: &Candidate) -> bool {
        self.visited.insert(c.key, &c.cid)
    }

    /// Whether a candidate is already visited (without marking).
    pub fn is_visited(&self, c: &Candidate) -> bool {
        self.visited.contains(c.key, &c.cid)
    }

    /// Seeds the UNG from an initial snapshot: hierarchy edges for every
    /// visible control, window roots under the virtual root; newly seen
    /// candidates are pushed onto the stack.
    pub fn seed(
        &mut self,
        snap: &Snapshot,
        path: &[ControlId],
        config: &RipConfig,
        stats: &mut RipStats,
    ) {
        let root = self.g.root();
        let index = snap.index();
        let mut ids: Vec<Option<UngNodeId>> = vec![None; snap.len()];
        for (idx, node) in snap.iter() {
            let cid = index.control_id(snap, idx);
            let key = index.key(idx);
            self.maybe_enqueue(
                &cid,
                key,
                node.props.control_type,
                &node.props.name,
                &node.props.automation_id,
                path,
                config,
                stats,
            );
            // `cid` is consumed by the UNG node — no per-node clone.
            let gid = self.g.add_node_with_key(
                UngNode {
                    control: cid,
                    name: node.props.name.clone(),
                    control_type: node.props.control_type,
                    help_text: node.props.help_text.clone(),
                },
                key,
            );
            ids[idx] = Some(gid);
            match node.parent {
                Some(p) => {
                    if let Some(pg) = ids[p] {
                        self.g.add_edge(pg, gid);
                    }
                }
                None => {
                    self.g.add_edge(root, gid);
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn maybe_enqueue(
        &mut self,
        cid: &ControlId,
        key: ControlKey,
        ct: ControlType,
        name: &str,
        auto: &str,
        path: &[ControlId],
        config: &RipConfig,
        stats: &mut RipStats,
    ) {
        if !config.candidate_types.contains(&ct) {
            return;
        }
        if self.visited.contains(key, cid) {
            return;
        }
        if config.blocklist.iter().any(|b| b == name || (!auto.is_empty() && b == auto)) {
            self.visited.insert(key, cid);
            stats.blocklisted += 1;
            dmi_obs::tally("rip.blocklisted", 1);
            return;
        }
        if path.len() >= config.max_depth {
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stack.push(Candidate {
            cid: cid.clone(),
            key,
            path: path.to_vec(),
            seq,
            dispatched: false,
        });
    }

    /// Merges one exploration outcome into the UNG: every fresh control
    /// (see [`diff_fresh`]) is dedup-inserted through the [`ControlKey`]
    /// hash+confirm index, gains an edge from its revealer, and — when
    /// genuinely new — is enqueued for its own exploration.
    pub fn commit(
        &mut self,
        clicked: &ControlId,
        post: &Snapshot,
        fresh: &[u32],
        path: &[ControlId],
        config: &RipConfig,
        stats: &mut RipStats,
    ) {
        let post_ix = post.index();
        let clicked_gid = self.g.find(clicked).expect("clicked control must already be a UNG node");
        let mut new_gid: Vec<Option<UngNodeId>> = vec![None; post.len()];
        let child_path: Vec<ControlId> = {
            let mut p = path.to_vec();
            p.push(clicked.clone());
            p
        };
        for &idx in fresh {
            let idx = idx as usize;
            let node = post.node(idx);
            let key = post_ix.key(idx);
            let cid = post_ix.control_id(post, idx);
            let existed = self.g.find_with_key(&cid, key).is_some();
            if !existed {
                self.maybe_enqueue(
                    &cid,
                    key,
                    node.props.control_type,
                    &node.props.name,
                    &node.props.automation_id,
                    &child_path,
                    config,
                    stats,
                );
            }
            let gid = self.g.add_node_with_key(
                UngNode {
                    control: cid,
                    name: node.props.name.clone(),
                    control_type: node.props.control_type,
                    help_text: node.props.help_text.clone(),
                },
                key,
            );
            new_gid[idx] = Some(gid);
            // Edge source: the snapshot parent when it is also new (deep
            // hierarchy), else the clicked control.
            let src = node.parent.and_then(|p| new_gid[p]).unwrap_or(clicked_gid);
            self.g.add_edge(src, gid);
        }
    }
}

/// The sequential explorer: one [`ExploreUnit`] driving one [`Frontier`].
struct Explorer<'a> {
    unit: ExploreUnit<'a>,
    frontier: Frontier,
}

impl Explorer<'_> {
    fn base_pass(&mut self) {
        self.unit.restart();
        let snap = self.unit.snapshot();
        self.frontier.seed(&snap, &[], self.unit.config, &mut self.unit.stats);
        self.drain(&[]);
    }

    fn context_pass(&mut self, ctx: &ContextSetup) {
        if !self.unit.replay(&ctx.clicks, &[]) {
            return;
        }
        let snap = self.unit.snapshot();
        // Attach context-revealed controls under the virtual root (they
        // appeared because of the context, not a modeled click), then
        // explore within the context.
        self.frontier.seed(&snap, &[], self.unit.config, &mut self.unit.stats);
        self.drain(&ctx.clicks);
    }

    fn drain(&mut self, setup: &[String]) {
        while let Some(c) = self.frontier.pop() {
            if !self.frontier.visit(&c) {
                continue;
            }
            if let Some(cap) = self.unit.config.max_clicks {
                if self.unit.stats.clicks >= cap as u64 {
                    return;
                }
            }
            let Some(ex) = self.unit.explore(setup, &c.cid, &c.path) else {
                continue;
            };
            if ex.post.windows().len() > ex.pre.windows().len() {
                self.unit.stats.windows_seen += 1;
                dmi_obs::tally("rip.windows_seen", 1);
            }
            let fresh = diff_fresh(&ex.pre, &ex.post);
            self.frontier.commit(
                &c.cid,
                &ex.post,
                &fresh,
                &c.path,
                self.unit.config,
                &mut self.unit.stats,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::small_rip;
    use dmi_apps::AppKind;

    fn rip_small(kind: AppKind) -> (Ung, RipStats) {
        let (g, stats) = small_rip(kind);
        let mut g = g.clone();
        g.rebuild_index();
        (g, *stats)
    }

    #[test]
    fn word_rip_covers_ribbon_and_galleries() {
        let (g, stats) = rip_small(AppKind::Word);
        assert!(g.node_count() > 1500, "got {} nodes", g.node_count());
        assert!(stats.clicks > 500);
        // The Find & Replace dialog was discovered.
        assert!(g.ids().any(|i| g.node(i).name == "Find and Replace"));
        // Color cells discovered under menus.
        assert!(g.ids().any(|i| g.node(i).name == "Blue"));
    }

    #[test]
    fn word_rip_produces_merge_nodes_and_cycles() {
        let (mut g, _) = rip_small(AppKind::Word);
        assert!(!g.merge_nodes().is_empty(), "shared dialogs must appear as merge nodes");
        assert!(!crate::topology::is_acyclic(&g), "close buttons create cycles");
        let stats = crate::topology::decycle(&mut g);
        assert!(stats.back_edges_removed > 0);
    }

    #[test]
    fn blocklist_is_respected() {
        let (g, stats) = rip_small(AppKind::Word);
        assert!(stats.blocklisted >= 1, "Account/Feedback should be blocked");
        // The Account button may be seeded as a node (it is visible), but
        // it must never be clicked; the session would count the jump.
        let _ = g;
    }

    #[test]
    fn no_external_jumps_or_traps_during_rip() {
        let mut s = Session::new(AppKind::Excel.launch_small());
        let cfg = RipConfig::office("Excel");
        let _ = rip(&mut s, &cfg);
        assert_eq!(s.external_jumps(), 0, "blocklist must prevent external jumps");
        assert!(!s.is_trapped());
    }

    #[test]
    fn powerpoint_context_pass_finds_picture_format() {
        let (g, _) = rip_small(AppKind::PowerPoint);
        assert!(
            g.ids().any(|i| g.node(i).name == "Picture Format"),
            "context exploration must reveal the Picture Format tab"
        );
        assert!(g.ids().any(|i| g.node(i).name == "Picture Quick Styles"));
    }

    #[test]
    fn excel_rip_reaches_nested_dialogs() {
        let (g, _) = rip_small(AppKind::Excel);
        // Conditional Formatting -> Highlight Cells Rules -> Greater Than.
        assert!(g.ids().any(|i| g.node(i).name == "Greater Than"));
        assert!(g.ids().any(|i| g.node(i).name == "Freeze Top Row"));
    }

    /// What a [`MiniApp`] is built with, for recovery-planner unit tests.
    #[derive(Clone, Copy, PartialEq)]
    enum MiniShape {
        /// A popup menu with three items: purely transient UI.
        MenuOnly,
        /// The menu plus a toggle button whose click persistently mutates
        /// widget + document state.
        WithToggle,
        /// The menu plus a modal dialog containing its own tab strip
        /// (like Excel's Format Cells): dialog-internal tab selection
        /// survives Esc and nothing heals it.
        WithDialogTabs,
    }

    struct MiniApp {
        tree: dmi_gui::UiTree,
        shape: MiniShape,
        toggled: u32,
    }

    impl MiniApp {
        fn new(shape: MiniShape) -> MiniApp {
            use dmi_gui::{Behavior, CommandBinding, CommitKind, Widget, WidgetBuilder};
            let mut t = dmi_gui::UiTree::new();
            let main = t.add_root(Widget::new("Mini", ControlType::Window));
            let menu = t.add(
                main,
                WidgetBuilder::new("Menu", ControlType::SplitButton)
                    .popup()
                    .on_click(Behavior::OpenMenu)
                    .build(),
            );
            for name in ["A", "B", "C"] {
                t.add(
                    menu,
                    WidgetBuilder::new(name, ControlType::ListItem)
                        .on_click(Behavior::CommandAndDismiss(CommandBinding::new("noop")))
                        .build(),
                );
            }
            if shape == MiniShape::WithToggle {
                t.add(
                    main,
                    WidgetBuilder::new("Mutate", ControlType::Button)
                        .toggle_state(false)
                        .on_click(Behavior::Toggle)
                        .binding(CommandBinding::new("mutate"))
                        .build(),
                );
            }
            if shape == MiniShape::WithDialogTabs {
                let dlg = t.add_root(Widget::new("Box", ControlType::Window));
                for (tab, item, selected) in [("T1", "B1", true), ("T2", "B2", false)] {
                    let mut b =
                        WidgetBuilder::new(tab, ControlType::TabItem).on_click(Behavior::SwitchTab);
                    if selected {
                        b = b.selected();
                    }
                    let tid = t.add(dlg, b.build());
                    t.add(
                        tid,
                        WidgetBuilder::new(item, ControlType::ListItem)
                            .on_click(Behavior::CommandAndDismiss(CommandBinding::new("noop")))
                            .build(),
                    );
                }
                t.add(
                    dlg,
                    WidgetBuilder::new("Shut", ControlType::Button)
                        .on_click(Behavior::CloseWindow(CommitKind::Cancel))
                        .build(),
                );
                t.add(
                    main,
                    WidgetBuilder::new("Open Box", ControlType::Button)
                        .on_click(Behavior::OpenDialog(dlg))
                        .build(),
                );
            }
            MiniApp { tree: t, shape, toggled: 0 }
        }
    }

    impl dmi_gui::GuiApp for MiniApp {
        fn name(&self) -> &str {
            "Mini"
        }
        fn tree(&self) -> &dmi_gui::UiTree {
            &self.tree
        }
        fn tree_mut(&mut self) -> &mut dmi_gui::UiTree {
            &mut self.tree
        }
        fn dispatch(
            &mut self,
            _src: dmi_gui::WidgetId,
            b: &dmi_gui::CommandBinding,
        ) -> Result<(), dmi_gui::AppError> {
            if b.command == "mutate" {
                self.toggled += 1; // A document mutation.
            }
            Ok(())
        }
        fn reset(&mut self) {
            *self = MiniApp::new(self.shape);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn esc_recovery_skips_restarts_for_transient_ui() {
        // Menus and their items only open/close popups: after the single
        // base-pass restart every sibling is reached by Esc recovery.
        let mut s = Session::new(Box::new(MiniApp::new(MiniShape::MenuOnly)));
        let (g, stats) = rip(&mut s, &RipConfig::default());
        assert_eq!(stats.restarts, 1, "only the base-pass restart");
        assert_eq!(stats.esc_recoveries, 4, "Menu + A, B, C recovered via Esc");
        assert!(g.ids().any(|i| g.node(i).name == "C"));
    }

    #[test]
    fn esc_recovery_refuses_after_document_mutating_click() {
        // The toggle click flips widget state (which is what moves the
        // epoch — the accompanying document mutation is tree-invisible
        // and detected only through its widget write): the planner must
        // refuse Esc recovery for the next candidate and fall back to a
        // full restart.
        let mut s = Session::new(Box::new(MiniApp::new(MiniShape::WithToggle)));
        let (_, stats) = rip(&mut s, &RipConfig::default());
        assert_eq!(stats.restarts, 2, "base-pass restart + post-mutation fallback");
        assert_eq!(stats.esc_recoveries, 4, "toggle + menu items still recover elsewhere");
    }

    #[test]
    fn esc_recovery_refuses_after_dialog_tab_click() {
        // Dialog-internal tab selection survives Esc-closing the dialog
        // and is not healed by replaying the path (the dialog reopens on
        // whatever tab was left selected), so any candidate explored
        // after a dialog tab click must fall back to a restart.
        let mut s = Session::new(Box::new(MiniApp::new(MiniShape::WithDialogTabs)));
        let (g_fast, fast) = rip(&mut s, &RipConfig::default());
        let legacy_cfg = RipConfig { esc_recovery: false, ..RipConfig::default() };
        let mut s2 = Session::new(Box::new(MiniApp::new(MiniShape::WithDialogTabs)));
        let (g_slow, slow) = rip(&mut s2, &legacy_cfg);
        assert_eq!(g_fast.node_count(), g_slow.node_count(), "UNG nodes match the oracle");
        assert_eq!(g_fast.edge_count(), g_slow.edge_count(), "UNG edges match the oracle");
        assert_eq!(fast.replay_failures, slow.replay_failures, "no stale-tab resolution misses");
        assert!(
            fast.restarts > 1,
            "candidates after a dialog tab click must restart (got {} restarts)",
            fast.restarts
        );
        assert!(fast.restarts < slow.restarts, "menu/dialog siblings still recover via Esc");
    }

    #[test]
    fn rip_is_deterministic() {
        let (g1, s1) = rip_small(AppKind::PowerPoint);
        let mut s = Session::new(AppKind::PowerPoint.launch_small());
        let (g2, s2) = rip(&mut s, &RipConfig::office("PowerPoint"));
        assert_eq!(g1.node_count(), g2.node_count());
        assert_eq!(g1.edge_count(), g2.edge_count());
        assert_eq!(s1, s2);
    }
}
