//! On-screen control labeling.
//!
//! Both the GUI baseline and DMI's interaction-related interfaces address
//! *currently visible* controls through short alphabetic labels ("A",
//! "HF"), assigned over the accessibility tree before each LLM call
//! (§5.1). Alphabetic labels are deliberately distinct from the numeric
//! ids of the navigation topology; interaction interfaces accept only
//! labels (§3.5).

use dmi_uia::{ControlType, PatternSet, Rect, RuntimeId, Snapshot};

/// One labeled on-screen control.
#[derive(Debug, Clone, PartialEq)]
pub struct ScreenEntry {
    /// Alphabetic label ("A", "B", ..., "AA", ...).
    pub label: String,
    /// Runtime id in the snapshot.
    pub runtime: RuntimeId,
    /// Control name.
    pub name: String,
    /// Control type.
    pub control_type: ControlType,
    /// Value (edits, cells).
    pub value: String,
    /// Supported patterns.
    pub patterns: PatternSet,
    /// Whether the control is enabled.
    pub enabled: bool,
    /// Bounding rectangle (for coordinate-based imperative input).
    pub rect: Rect,
}

/// The labeled view of one snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LabeledScreen {
    /// Labeled entries in document order.
    pub entries: Vec<ScreenEntry>,
}

/// Converts an index to an alphabetic label (0 -> "A", 25 -> "Z",
/// 26 -> "AA").
pub fn alpha_label(mut i: usize) -> String {
    let mut s = String::new();
    loop {
        s.insert(0, (b'A' + (i % 26) as u8) as char);
        i /= 26;
        if i == 0 {
            break;
        }
        i -= 1;
    }
    s
}

/// Renders the *full* exposed accessibility tree as prompt text — the
/// baseline's observation (§5.1 registers a UIA event handler so apps
/// expose complete control trees, so every exposed control, on-screen or
/// not, lands in the prompt).
pub fn full_tree_prompt_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (i, node) in snap.iter() {
        let p = &node.props;
        out.push_str(&format!(
            "{}: {}({}){}{}\n",
            alpha_label(i),
            p.name,
            p.control_type.as_str(),
            if p.value.is_empty() { String::new() } else { format!(" = '{}'", p.value) },
            if p.offscreen { " [offscreen]" } else { "" },
        ));
    }
    out
}

/// Labels every on-screen (not off-screen) control in the snapshot.
pub fn label_screen(snap: &Snapshot) -> LabeledScreen {
    let mut entries = Vec::new();
    for (idx, node) in snap.iter() {
        if node.props.offscreen {
            continue;
        }
        let label = alpha_label(entries.len());
        entries.push(ScreenEntry {
            label,
            runtime: node.runtime_id,
            name: node.props.name.clone(),
            control_type: node.props.control_type,
            value: node.props.value.clone(),
            patterns: node.props.patterns,
            enabled: node.props.enabled,
            rect: node.props.rect,
        });
        let _ = idx;
    }
    LabeledScreen { entries }
}

impl LabeledScreen {
    /// Resolves a label to the control's runtime id.
    pub fn resolve(&self, label: &str) -> Option<&ScreenEntry> {
        self.entries.iter().find(|e| e.label == label)
    }

    /// Finds the first entry with the given name.
    pub fn find_by_name(&self, name: &str) -> Option<&ScreenEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Renders the labeled controls as prompt text (one line each).
    pub fn to_prompt_text(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!(
                "{}: {}({}){}{}\n",
                e.label,
                e.name,
                e.control_type.as_str(),
                if e.value.is_empty() { String::new() } else { format!(" = '{}'", e.value) },
                if e.enabled { "" } else { " [disabled]" },
            ));
        }
        out
    }

    /// Number of labeled controls.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the screen has no labeled controls.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmi_uia::ControlProps;

    #[test]
    fn alpha_labels_roll_over() {
        assert_eq!(alpha_label(0), "A");
        assert_eq!(alpha_label(25), "Z");
        assert_eq!(alpha_label(26), "AA");
        assert_eq!(alpha_label(27), "AB");
        assert_eq!(alpha_label(26 * 27 + 25), "AAZ");
    }

    #[test]
    fn offscreen_controls_are_not_labeled() {
        let mut s = Snapshot::new();
        let w = s.push(ControlProps::new("W", ControlType::Window), None, 0);
        s.push_window_root(w);
        s.push(ControlProps::new("Visible", ControlType::Button), Some(w), 0);
        let mut hidden = ControlProps::new("Hidden", ControlType::Button);
        hidden.offscreen = true;
        s.push(hidden, Some(w), 0);
        let screen = label_screen(&s);
        assert_eq!(screen.len(), 2); // window + visible button
        assert!(screen.find_by_name("Hidden").is_none());
    }

    #[test]
    fn prompt_text_carries_value_and_disabled() {
        let mut s = Snapshot::new();
        let w = s.push(ControlProps::new("W", ControlType::Window), None, 0);
        s.push_window_root(w);
        let mut e = ControlProps::new("Name Box", ControlType::Edit);
        e.value = "A1".into();
        s.push(e, Some(w), 0);
        let mut d = ControlProps::new("Paste", ControlType::Button);
        d.enabled = false;
        s.push(d, Some(w), 0);
        let text = label_screen(&s).to_prompt_text();
        assert!(text.contains("= 'A1'"));
        assert!(text.contains("[disabled]"));
    }

    #[test]
    fn resolve_round_trips() {
        let mut s = Snapshot::new();
        let w = s.push(ControlProps::new("W", ControlType::Window), None, 0);
        s.push_window_root(w);
        s.push(ControlProps::new("B", ControlType::Button), Some(w), 0);
        let screen = label_screen(&s);
        let entry = screen.find_by_name("B").unwrap();
        assert_eq!(screen.resolve(&entry.label).unwrap().name, "B");
        assert!(screen.resolve("ZZZ").is_none());
    }
}
