//! Deterministic token accounting.
//!
//! The paper measures context cost in `o200k_base` tokens (§5.4: "each
//! control contributes 15 tokens on average"). We substitute a
//! deterministic approximation: whitespace-split words contribute
//! `ceil(word_len / 4)` tokens, plus one token per punctuation/structure
//! character run. This tracks BPE counts closely enough for relative
//! accounting, which is all the reproduction needs.

/// Approximate token count of a text.
///
/// # Examples
///
/// ```
/// use dmi_core::tokens::count;
///
/// assert_eq!(count(""), 0);
/// assert!(count("Font Color") >= 2);
/// let long = "x".repeat(40);
/// assert_eq!(count(&long), 10);
/// ```
pub fn count(text: &str) -> usize {
    let mut tokens = 0usize;
    let mut word_len = 0usize;
    let mut punct_run = false;
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            word_len += 1;
            punct_run = false;
        } else {
            if word_len > 0 {
                tokens += word_len.div_ceil(4);
                word_len = 0;
            }
            if !ch.is_whitespace() && !punct_run {
                tokens += 1;
                punct_run = true;
            }
            if ch.is_whitespace() {
                punct_run = false;
            }
        }
    }
    if word_len > 0 {
        tokens += word_len.div_ceil(4);
    }
    tokens
}

/// A running token/cost ledger for one task or session.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TokenLedger {
    /// Prompt tokens per LLM call.
    pub prompt: Vec<usize>,
    /// Output tokens per LLM call.
    pub output: Vec<usize>,
}

impl TokenLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one LLM call.
    pub fn record(&mut self, prompt_tokens: usize, output_tokens: usize) {
        self.prompt.push(prompt_tokens);
        self.output.push(output_tokens);
    }

    /// Number of calls recorded.
    pub fn calls(&self) -> usize {
        self.prompt.len()
    }

    /// Total prompt tokens.
    pub fn total_prompt(&self) -> usize {
        self.prompt.iter().sum()
    }

    /// Total output tokens.
    pub fn total_output(&self) -> usize {
        self.output.iter().sum()
    }

    /// Total tokens across prompt and output.
    pub fn total(&self) -> usize {
        self.total_prompt() + self.total_output()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_whitespace() {
        assert_eq!(count(""), 0);
        assert_eq!(count("   "), 0);
    }

    #[test]
    fn words_scale_by_quarter_length() {
        assert_eq!(count("abcd"), 1);
        assert_eq!(count("abcde"), 2);
        assert_eq!(count("ab cd"), 2);
    }

    #[test]
    fn punctuation_runs_count_once() {
        assert_eq!(count("a..b"), 3); // a, "..", b
        assert!(count("name(type)_17[") >= 4);
    }

    #[test]
    fn typical_control_description_is_about_15_tokens() {
        let desc =
            "Conditional Formatting(SplitButton)(Highlight interesting cells with rules.)_412";
        let t = count(desc);
        assert!((10..=25).contains(&t), "got {t}");
    }

    #[test]
    fn ledger_accumulates() {
        let mut l = TokenLedger::new();
        l.record(1000, 50);
        l.record(2000, 80);
        assert_eq!(l.calls(), 2);
        assert_eq!(l.total_prompt(), 3000);
        assert_eq!(l.total_output(), 130);
        assert_eq!(l.total(), 3130);
    }
}
