//! Graph → single-source DAG: back-edge removal (§3.2).
//!
//! Cycles in the UNG arise naturally — dialogs' Cancel/OK buttons re-reveal
//! the controls the dialog hid, tab items re-reveal each other's panels.
//! Decycling runs a DFS from the single source (the virtual root) and
//! removes every back edge (an edge into a node currently on the DFS
//! stack), yielding a DAG with the same reachable node set.

use crate::graph::{Ung, UngNodeId};

/// Statistics from a decycle pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecycleStats {
    /// Edges removed because they closed a cycle.
    pub back_edges_removed: usize,
    /// Edges surviving into the DAG.
    pub edges_kept: usize,
}

/// Removes back edges in place; returns statistics.
pub fn decycle(g: &mut Ung) -> DecycleStats {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let n = g.node_count();
    let mut color = vec![Color::White; n];
    let mut back: Vec<(UngNodeId, UngNodeId)> = Vec::new();

    // Iterative DFS with explicit edge cursor so Gray tracking is exact.
    let root = g.root();
    let mut stack: Vec<(UngNodeId, usize)> = vec![(root, 0)];
    color[root] = Color::Gray;
    while let Some(&mut (u, ref mut cursor)) = stack.last_mut() {
        let succs = g.successors(u);
        if *cursor < succs.len() {
            let v = succs[*cursor];
            *cursor += 1;
            match color[v] {
                Color::White => {
                    color[v] = Color::Gray;
                    stack.push((v, 0));
                }
                Color::Gray => back.push((u, v)),
                Color::Black => {}
            }
        } else {
            color[u] = Color::Black;
            stack.pop();
        }
    }

    g.remove_edges(&back);
    DecycleStats { back_edges_removed: back.len(), edges_kept: g.edge_count() }
}

/// Whether the reachable part of the graph is acyclic (test/verification
/// helper; runs Kahn's algorithm restricted to reachable nodes).
pub fn is_acyclic(g: &Ung) -> bool {
    let reach = g.reachable();
    let in_reach: std::collections::HashSet<_> = reach.iter().copied().collect();
    let mut indeg: std::collections::HashMap<UngNodeId, usize> =
        reach.iter().map(|&v| (v, 0)).collect();
    for &u in &reach {
        for &v in g.successors(u) {
            if in_reach.contains(&v) {
                *indeg.get_mut(&v).unwrap() += 1;
            }
        }
    }
    let mut queue: Vec<UngNodeId> =
        indeg.iter().filter(|(_, &d)| d == 0).map(|(&v, _)| v).collect();
    let mut seen = 0usize;
    while let Some(u) = queue.pop() {
        seen += 1;
        for &v in g.successors(u) {
            if let Some(d) = indeg.get_mut(&v) {
                *d -= 1;
                if *d == 0 {
                    queue.push(v);
                }
            }
        }
    }
    seen == reach.len()
}

/// Reverse topological order of the reachable DAG (children before
/// parents). Panics if the graph still has cycles.
pub fn reverse_topo(g: &Ung) -> Vec<UngNodeId> {
    assert!(is_acyclic(g), "reverse_topo requires an acyclic graph");
    let reach = g.reachable();
    let in_reach: std::collections::HashSet<_> = reach.iter().copied().collect();
    let mut visited = std::collections::HashSet::new();
    let mut order = Vec::with_capacity(reach.len());
    // Post-order DFS with explicit edge cursors.
    let mut stack: Vec<(UngNodeId, usize)> = vec![(g.root(), 0)];
    visited.insert(g.root());
    while let Some(&mut (u, ref mut cursor)) = stack.last_mut() {
        let succs = g.successors(u);
        if *cursor < succs.len() {
            let v = succs[*cursor];
            *cursor += 1;
            if in_reach.contains(&v) && visited.insert(v) {
                stack.push((v, 0));
            }
        } else {
            order.push(u);
            stack.pop();
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ung_from_parts;
    use dmi_uia::ControlType as CT;

    #[test]
    fn removes_simple_cycle() {
        // A -> B -> A.
        let mut g = ung_from_parts(&[("A", CT::Button), ("B", CT::Button)], &[(0, 1), (1, 0)]);
        assert!(!is_acyclic(&g));
        let stats = decycle(&mut g);
        assert_eq!(stats.back_edges_removed, 1);
        assert!(is_acyclic(&g));
    }

    #[test]
    fn keeps_cross_edges_merge_nodes() {
        // Diamond: A->B, A->C, B->D, C->D — acyclic, nothing removed.
        let mut g = ung_from_parts(
            &[("A", CT::Button), ("B", CT::Button), ("C", CT::Button), ("D", CT::Button)],
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
        );
        let stats = decycle(&mut g);
        assert_eq!(stats.back_edges_removed, 0);
        assert_eq!(g.merge_nodes().len(), 1);
    }

    #[test]
    fn dialog_cancel_back_edge_removed() {
        // root -> Opener -> Dialog -> Cancel -> Opener (cycle through close).
        let mut g = ung_from_parts(
            &[("Opener", CT::Button), ("Dialog", CT::Window), ("Cancel", CT::Button)],
            &[(0, 1), (1, 2), (2, 0)],
        );
        let stats = decycle(&mut g);
        assert_eq!(stats.back_edges_removed, 1);
        assert!(is_acyclic(&g));
        // Forward structure intact.
        assert_eq!(g.successors(1).len(), 1);
    }

    #[test]
    fn reverse_topo_children_first() {
        let mut g = ung_from_parts(
            &[("A", CT::Button), ("B", CT::Button), ("C", CT::Button)],
            &[(0, 1), (1, 2)],
        );
        decycle(&mut g);
        let order = reverse_topo(&g);
        let pos = |name: &str| {
            order
                .iter()
                .position(|&i| g.node(i).name == name)
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        assert!(pos("C") < pos("B"));
        assert!(pos("B") < pos("A"));
        assert!(pos("A") < pos("<root>"));
        assert_eq!(order.len(), g.reachable().len());
    }

    #[test]
    fn tab_mutual_reveal_cycle() {
        // Home -> Bold; Insert -> Table; Home <-> Insert mutual edges.
        let mut g = ung_from_parts(
            &[
                ("Home", CT::TabItem),
                ("Insert", CT::TabItem),
                ("Bold", CT::Button),
                ("Table", CT::Button),
            ],
            &[(0, 2), (1, 3), (0, 1), (1, 0)],
        );
        let r = g.root();
        g.add_edge(r, 2); // root -> Insert (arena id 2).
        decycle(&mut g);
        assert!(is_acyclic(&g));
        // Every control still reachable.
        assert_eq!(g.reachable().len(), 5);
    }
}
