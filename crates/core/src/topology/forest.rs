//! DAG → forest: cost-based selective externalization (§3.2).
//!
//! Merge nodes (multiple incoming edges) break path uniqueness. Naive
//! cloning of every merge node's substructure guarantees unique paths but
//! blows up exponentially on diamond chains. The paper's algorithm walks
//! nodes in reverse topological order and, per merge node, estimates the
//! substructure size and the *cloning cost* (extra nodes from duplicating
//! the substructure along all incoming edges). When that cost exceeds a
//! configurable threshold the node is **externalized** as a shared subtree
//! and incoming edges are redirected to fresh *reference nodes*; otherwise
//! the substructure is cloned per edge. The result is a main tree plus
//! shared subtrees with linear node growth, unique paths preserved.

use crate::graph::{Ung, UngNodeId};
use crate::topology::decycle::reverse_topo;
use dmi_uia::{ControlId, ControlKey, ControlType};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration for the externalization pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Externalize a merge node when `(indegree - 1) * subtree_size`
    /// exceeds this. `usize::MAX` forces full cloning (pure tree, the
    /// Figure 4 strawman); `0` externalizes every merge node.
    pub externalize_threshold: usize,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig { externalize_threshold: 12 }
    }
}

/// Node role in the forest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopoKind {
    /// The virtual root of the main tree.
    Root,
    /// A real UI control.
    Control,
    /// A reference node redirecting into a shared subtree.
    Reference {
        /// Forest id of the shared subtree's root.
        subtree_root: usize,
    },
}

/// One node of the forest (main tree or a shared subtree).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopoNode {
    /// Consecutive numeric id (the LLM-facing identifier, §4.2).
    pub id: usize,
    /// Role.
    pub kind: TopoKind,
    /// Underlying control identifier (reference nodes carry their target
    /// subtree's control id for readability).
    pub control: ControlId,
    /// Precomputed fingerprint of `control` (ROADMAP "Forest-side key
    /// interning"): the executor's exact-match pass probes snapshot
    /// identity indexes with it directly instead of re-hashing the
    /// identifier on every resolve.
    pub key: ControlKey,
    /// Display name.
    pub name: String,
    /// Control type.
    pub control_type: ControlType,
    /// Full description when available.
    pub help_text: String,
    /// Child forest ids.
    pub children: Vec<usize>,
    /// Parent forest id (`None` for the main root and shared roots).
    pub parent: Option<usize>,
}

/// The path-unambiguous navigation topology: one main tree plus shared
/// subtrees, connected through reference nodes (the shared subtree entry
/// map of §3.3).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Forest {
    /// All nodes; index == `TopoNode::id`.
    pub nodes: Vec<TopoNode>,
    /// Id of the main-tree root (the virtual root).
    pub main_root: usize,
    /// Roots of shared subtrees, in externalization order.
    pub shared_roots: Vec<usize>,
    /// Entry map: reference node id → shared subtree root id.
    pub entry_map: HashMap<usize, usize>,
}

/// Statistics from a forest transformation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForestStats {
    /// Nodes in the source DAG (reachable).
    pub dag_nodes: usize,
    /// Merge nodes found.
    pub merge_nodes: usize,
    /// Merge nodes externalized into shared subtrees.
    pub externalized: usize,
    /// Merge nodes cloned inline.
    pub cloned: usize,
    /// Total forest nodes (including reference nodes).
    pub forest_nodes: usize,
}

impl Forest {
    /// Number of nodes in the forest.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the forest is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrows a node by id.
    pub fn node(&self, id: usize) -> Option<&TopoNode> {
        self.nodes.get(id)
    }

    /// Whether a node is a functional leaf (no children, real control).
    pub fn is_functional_leaf(&self, id: usize) -> bool {
        self.node(id).is_some_and(|n| n.children.is_empty() && matches!(n.kind, TopoKind::Control))
    }

    /// The root (main or shared) above a node.
    pub fn root_of(&self, id: usize) -> usize {
        let mut cur = id;
        while let Some(p) = self.nodes[cur].parent {
            cur = p;
        }
        cur
    }

    /// Whether a node lives in a shared subtree (not the main tree).
    pub fn in_shared_subtree(&self, id: usize) -> Option<usize> {
        let root = self.root_of(id);
        (root != self.main_root).then_some(root)
    }

    /// Reference nodes that enter the given shared subtree root.
    pub fn references_to(&self, subtree_root: usize) -> Vec<usize> {
        let mut refs: Vec<usize> = self
            .entry_map
            .iter()
            .filter(|(_, &root)| root == subtree_root)
            .map(|(&r, _)| r)
            .collect();
        refs.sort_unstable();
        refs
    }

    /// The chain of node ids from the containing root down to `id`
    /// (inclusive), always unique — the point of the whole transformation.
    pub fn path_to(&self, id: usize) -> Vec<usize> {
        let mut path = vec![id];
        let mut cur = id;
        while let Some(p) = self.nodes[cur].parent {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Depth-first pre-order ids below `root` (inclusive).
    pub fn descendants(&self, root: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(u) = stack.pop() {
            out.push(u);
            for &c in self.nodes[u].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Verifies the path-uniqueness invariant: every node has exactly one
    /// parent link and is reachable from exactly one root.
    pub fn verify_unique_paths(&self) -> bool {
        let mut seen = vec![0u32; self.nodes.len()];
        let mut roots = vec![self.main_root];
        roots.extend(&self.shared_roots);
        for r in roots {
            for d in self.descendants(r) {
                seen[d] += 1;
            }
        }
        seen.iter().all(|&c| c == 1)
    }
}

/// Internal representation of a resolved DAG node during the bottom-up
/// pass.
#[derive(Clone, Copy)]
enum Repr {
    /// Inline the node's substructure wherever a parent needs it.
    Inline,
    /// The node was externalized; parents get a reference node.
    Shared,
}

/// Transforms a single-source DAG into a [`Forest`].
///
/// The input must already be acyclic (run
/// [`crate::topology::decycle::decycle`] first); panics otherwise.
pub fn build_forest(g: &Ung, config: &ForestConfig) -> (Forest, ForestStats) {
    let order = reverse_topo(g); // children before parents
    let reach: std::collections::HashSet<UngNodeId> = order.iter().copied().collect();

    let mut stats = ForestStats {
        dag_nodes: order.len(),
        merge_nodes: 0,
        externalized: 0,
        cloned: 0,
        forest_nodes: 0,
    };

    // Pass 1 (bottom-up): decide Inline vs Shared per node and compute the
    // *emitted* subtree size of each node's representation (shared children
    // count as one reference node).
    let mut repr: HashMap<UngNodeId, Repr> = HashMap::new();
    let mut size: HashMap<UngNodeId, usize> = HashMap::new();
    for &u in &order {
        let mut s = 1usize;
        for &v in g.successors(u) {
            if !reach.contains(&v) {
                continue;
            }
            s += match repr[&v] {
                Repr::Inline => size[&v],
                Repr::Shared => 1, // a reference node
            };
        }
        let indeg = g.predecessors(u).iter().filter(|p| reach.contains(p)).count();
        let r = if u != g.root() && indeg > 1 {
            stats.merge_nodes += 1;
            let clone_cost = (indeg - 1).saturating_mul(s);
            if clone_cost > config.externalize_threshold {
                stats.externalized += 1;
                Repr::Shared
            } else {
                stats.cloned += 1;
                Repr::Inline
            }
        } else {
            Repr::Inline
        };
        repr.insert(u, r);
        size.insert(u, s);
    }

    // Pass 2: materialize. Shared subtrees are emitted once; inline nodes
    // are emitted per occurrence (cloning).
    let mut forest = Forest::default();
    let mut shared_root_of: HashMap<UngNodeId, usize> = HashMap::new();
    let mut pending_refs: Vec<(usize, UngNodeId)> = Vec::new(); // (ref node id, target DAG node)

    // Emit shared subtrees in reverse topological order so that any
    // references *between* shared subtrees point to already-emitted roots
    // ... except references can point forward; fix them up afterwards.
    #[allow(clippy::too_many_arguments)]
    fn emit(
        g: &Ung,
        u: UngNodeId,
        parent: Option<usize>,
        repr: &HashMap<UngNodeId, Repr>,
        reach: &std::collections::HashSet<UngNodeId>,
        forest: &mut Forest,
        pending_refs: &mut Vec<(usize, UngNodeId)>,
        as_root: bool,
    ) -> usize {
        let n = g.node(u);
        let id = forest.nodes.len();
        let kind = if u == g.root() { TopoKind::Root } else { TopoKind::Control };
        forest.nodes.push(TopoNode {
            id,
            kind,
            control: n.control.clone(),
            key: ControlKey::of_id(&n.control),
            name: n.name.clone(),
            control_type: n.control_type,
            help_text: n.help_text.clone(),
            children: Vec::new(),
            parent,
        });
        if let Some(p) = parent {
            forest.nodes[p].children.push(id);
        }
        let _ = as_root;
        for &v in g.successors(u) {
            if !reach.contains(&v) {
                continue;
            }
            match repr[&v] {
                Repr::Inline => {
                    emit(g, v, Some(id), repr, reach, forest, pending_refs, false);
                }
                Repr::Shared => {
                    // Emit a reference node; target resolved in fix-up.
                    let rid = forest.nodes.len();
                    let tn = g.node(v);
                    forest.nodes.push(TopoNode {
                        id: rid,
                        kind: TopoKind::Reference { subtree_root: usize::MAX },
                        control: tn.control.clone(),
                        key: ControlKey::of_id(&tn.control),
                        name: format!("→{}", tn.name),
                        control_type: tn.control_type,
                        help_text: String::new(),
                        children: Vec::new(),
                        parent: Some(id),
                    });
                    forest.nodes[id].children.push(rid);
                    pending_refs.push((rid, v));
                }
            }
        }
        id
    }

    // Main tree.
    forest.main_root = emit(g, g.root(), None, &repr, &reach, &mut forest, &mut pending_refs, true);

    // Shared subtrees: every node marked Shared gets one body.
    let shared_nodes: Vec<UngNodeId> = order
        .iter()
        .rev() // top-down order for stable ids
        .copied()
        .filter(|u| matches!(repr[u], Repr::Shared))
        .collect();
    for u in shared_nodes {
        let root_id = emit(g, u, None, &repr, &reach, &mut forest, &mut pending_refs, true);
        forest.shared_roots.push(root_id);
        shared_root_of.insert(u, root_id);
    }

    // Fix up references and the entry map.
    for (rid, target) in pending_refs {
        let root = shared_root_of[&target];
        forest.nodes[rid].kind = TopoKind::Reference { subtree_root: root };
        forest.entry_map.insert(rid, root);
    }

    stats.forest_nodes = forest.nodes.len();
    (forest, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ung_from_parts;
    use crate::topology::decycle::decycle;
    use dmi_uia::ControlType as CT;

    /// Diamond with a big payload under the merge node.
    fn diamond(payload: usize) -> Ung {
        // 0:A 1:B 2:C 3:M then payload children of M.
        let mut names: Vec<(String, CT)> = vec![
            ("A".into(), CT::TabItem),
            ("B".into(), CT::Button),
            ("C".into(), CT::Button),
            ("M".into(), CT::Window),
        ];
        for i in 0..payload {
            names.push((format!("P{i}"), CT::Button));
        }
        let named: Vec<(&str, CT)> = names.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        let mut edges = vec![(0, 1), (0, 2), (1, 3), (2, 3)];
        for i in 0..payload {
            edges.push((3, 4 + i));
        }
        let mut g = ung_from_parts(&named, &edges);
        decycle(&mut g);
        g
    }

    #[test]
    fn small_merge_is_cloned() {
        let g = diamond(2);
        // clone_cost = (2-1)*3 = 3 <= threshold 12 -> cloned.
        let (forest, stats) = build_forest(&g, &ForestConfig::default());
        assert_eq!(stats.merge_nodes, 1);
        assert_eq!(stats.cloned, 1);
        assert_eq!(stats.externalized, 0);
        assert!(forest.shared_roots.is_empty());
        // M appears twice (once under B, once under C).
        let ms = forest.nodes.iter().filter(|n| n.name == "M").count();
        assert_eq!(ms, 2);
        assert!(forest.verify_unique_paths());
    }

    #[test]
    fn large_merge_is_externalized() {
        let g = diamond(30);
        let (forest, stats) = build_forest(&g, &ForestConfig::default());
        assert_eq!(stats.externalized, 1);
        assert_eq!(forest.shared_roots.len(), 1);
        // M body appears once; two reference nodes point at it.
        let ms = forest
            .nodes
            .iter()
            .filter(|n| n.name == "M" && matches!(n.kind, TopoKind::Control))
            .count();
        assert_eq!(ms, 1);
        let root = forest.shared_roots[0];
        assert_eq!(forest.references_to(root).len(), 2);
        assert!(forest.verify_unique_paths());
    }

    #[test]
    fn threshold_max_forces_full_tree() {
        let g = diamond(30);
        let cfg = ForestConfig { externalize_threshold: usize::MAX };
        let (forest, stats) = build_forest(&g, &cfg);
        assert_eq!(stats.externalized, 0);
        assert!(forest.shared_roots.is_empty());
        // Full cloning: the 31-node payload subtree is duplicated.
        assert!(stats.forest_nodes > stats.dag_nodes + 25);
        assert!(forest.verify_unique_paths());
    }

    #[test]
    fn threshold_zero_externalizes_everything() {
        let g = diamond(2);
        let cfg = ForestConfig { externalize_threshold: 0 };
        let (forest, stats) = build_forest(&g, &cfg);
        assert_eq!(stats.externalized, 1);
        assert_eq!(forest.shared_roots.len(), 1);
        assert!(forest.verify_unique_paths());
    }

    #[test]
    fn diamond_chain_blows_up_without_externalization() {
        // k chained diamonds: cloning doubles per stage; forest stays linear.
        let k = 8;
        let mut names: Vec<(String, CT)> = vec![("S".into(), CT::Button)];
        let mut edges: Vec<(usize, usize)> = Vec::new();
        let mut prev = 0usize;
        for i in 0..k {
            let b = names.len();
            names.push((format!("L{i}"), CT::Button));
            names.push((format!("R{i}"), CT::Button));
            names.push((format!("J{i}"), CT::Button));
            edges.push((prev, b));
            edges.push((prev, b + 1));
            edges.push((b, b + 2));
            edges.push((b + 1, b + 2));
            prev = b + 2;
        }
        let named: Vec<(&str, CT)> = names.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        let mut g = ung_from_parts(&named, &edges);
        decycle(&mut g);

        let (_tree, tree_stats) =
            build_forest(&g, &ForestConfig { externalize_threshold: usize::MAX });
        let (_forest, forest_stats) = build_forest(&g, &ForestConfig { externalize_threshold: 4 });
        assert!(
            tree_stats.forest_nodes > 2usize.pow(k as u32),
            "cloning should explode: {} nodes",
            tree_stats.forest_nodes
        );
        assert!(
            forest_stats.forest_nodes < 8 * forest_stats.dag_nodes,
            "forest should stay near-linear: {} nodes for {} dag nodes",
            forest_stats.forest_nodes,
            forest_stats.dag_nodes
        );
    }

    #[test]
    fn path_to_is_unique_and_root_first() {
        let g = diamond(30);
        let (forest, _) = build_forest(&g, &ForestConfig::default());
        let p0 = forest
            .nodes
            .iter()
            .find(|n| n.name == "P0" && matches!(n.kind, TopoKind::Control))
            .unwrap();
        let path = forest.path_to(p0.id);
        assert_eq!(*path.last().unwrap(), p0.id);
        // Path starts at the shared-subtree root (M).
        let root = forest.root_of(p0.id);
        assert_eq!(path[0], root);
        assert_eq!(forest.in_shared_subtree(p0.id), Some(root));
    }

    #[test]
    fn ids_are_consecutive() {
        let g = diamond(5);
        let (forest, _) = build_forest(&g, &ForestConfig::default());
        for (i, n) in forest.nodes.iter().enumerate() {
            assert_eq!(i, n.id);
        }
    }

    #[test]
    fn functional_leaf_classification() {
        let g = diamond(30);
        let (forest, _) = build_forest(&g, &ForestConfig::default());
        let p0 = forest.nodes.iter().find(|n| n.name == "P0").unwrap();
        assert!(forest.is_functional_leaf(p0.id));
        let m = forest
            .nodes
            .iter()
            .find(|n| n.name == "M" && matches!(n.kind, TopoKind::Control))
            .unwrap();
        assert!(!forest.is_functional_leaf(m.id));
        // Reference nodes are not functional leaves.
        let r = forest.nodes.iter().find(|n| matches!(n.kind, TopoKind::Reference { .. })).unwrap();
        assert!(!forest.is_functional_leaf(r.id));
    }
}
