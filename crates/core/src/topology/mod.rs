//! Path-unambiguous navigation topology (§3.2): decycling and the
//! cost-based forest transformation.

pub mod decycle;
pub mod forest;

pub use decycle::{decycle, is_acyclic, reverse_topo, DecycleStats};
pub use forest::{build_forest, Forest, ForestConfig, ForestStats, TopoKind, TopoNode};
