//! Click behaviors and command bindings.

use crate::widget::WidgetId;
use serde::{Deserialize, Serialize};

/// A binding from a UI control to an application-semantic command.
///
/// The `command` string is interpreted by the owning [`crate::GuiApp`];
/// `arg` carries a static argument (e.g. the color of a palette cell).
/// Path-dependent semantics (the paper's merge-node hazard) arise when the
/// command's effect depends on application state that earlier navigation
/// established — e.g. a shared color grid whose target property was chosen
/// by the menu it was opened from.
#[derive(Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommandBinding {
    /// Application command identifier.
    pub command: String,
    /// Optional static argument.
    pub arg: Option<String>,
}

impl Clone for CommandBinding {
    fn clone(&self) -> Self {
        CommandBinding { command: self.command.clone(), arg: self.arg.clone() }
    }

    // Recycles the destination's string buffers (pristine resets restore
    // thousands of bindings; see the manual `Widget` clone).
    fn clone_from(&mut self, src: &Self) {
        self.command.clone_from(&src.command);
        self.arg.clone_from(&src.arg);
    }
}

impl CommandBinding {
    /// Creates a binding without an argument.
    pub fn new(command: impl Into<String>) -> Self {
        CommandBinding { command: command.into(), arg: None }
    }

    /// Creates a binding with an argument.
    pub fn with_arg(command: impl Into<String>, arg: impl Into<String>) -> Self {
        CommandBinding { command: command.into(), arg: Some(arg.into()) }
    }
}

/// How a window-closing control commits pending changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommitKind {
    /// OK: apply pending edits, then close.
    Ok,
    /// Close: keep applied state, close.
    Close,
    /// Cancel: discard pending edits, close.
    Cancel,
}

/// What happens when a widget is clicked.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub enum Behavior {
    /// Inert control (labels, separators).
    None,
    /// Expand this popup container, revealing its children.
    OpenMenu,
    /// Select this tab item among its siblings, revealing its panel.
    SwitchTab,
    /// Open the dialog rooted at the given widget (modal).
    OpenDialog(WidgetId),
    /// Open a non-modal child window rooted at the given widget.
    OpenWindow(WidgetId),
    /// Close the containing window with the given commit semantics.
    CloseWindow(CommitKind),
    /// Run an application command.
    Command(CommandBinding),
    /// Run an application command, then close the containing popup chain.
    CommandAndDismiss(CommandBinding),
    /// SelectionItem select (list items, gallery cells that only select).
    Select,
    /// Toggle the widget's toggle state, then run an optional command.
    Toggle,
    /// Give the widget keyboard focus (edit fields).
    FocusEdit,
    /// Jump to an external application (paper §4.1: blocklist candidate,
    /// e.g. an "Account" button opening a web browser).
    OpenExternal,
    /// Enter a state that cannot be exited with Esc/Close (blocklist
    /// candidate).
    Trap,
}

impl Clone for Behavior {
    fn clone(&self) -> Self {
        match self {
            Behavior::None => Behavior::None,
            Behavior::OpenMenu => Behavior::OpenMenu,
            Behavior::SwitchTab => Behavior::SwitchTab,
            Behavior::OpenDialog(id) => Behavior::OpenDialog(*id),
            Behavior::OpenWindow(id) => Behavior::OpenWindow(*id),
            Behavior::CloseWindow(k) => Behavior::CloseWindow(*k),
            Behavior::Command(b) => Behavior::Command(b.clone()),
            Behavior::CommandAndDismiss(b) => Behavior::CommandAndDismiss(b.clone()),
            Behavior::Select => Behavior::Select,
            Behavior::Toggle => Behavior::Toggle,
            Behavior::FocusEdit => Behavior::FocusEdit,
            Behavior::OpenExternal => Behavior::OpenExternal,
            Behavior::Trap => Behavior::Trap,
        }
    }

    // Same-variant restores recycle the embedded binding's string buffers
    // (the dominant case: a pristine reset restores each widget onto its
    // own former self).
    fn clone_from(&mut self, src: &Self) {
        match (self, src) {
            (Behavior::Command(a), Behavior::Command(b))
            | (Behavior::CommandAndDismiss(a), Behavior::CommandAndDismiss(b)) => a.clone_from(b),
            (dst, src) => *dst = src.clone(),
        }
    }
}

impl Behavior {
    /// Whether this behavior reveals new controls (navigation edge source).
    pub fn is_navigational(&self) -> bool {
        matches!(
            self,
            Behavior::OpenMenu
                | Behavior::SwitchTab
                | Behavior::OpenDialog(_)
                | Behavior::OpenWindow(_)
        )
    }

    /// Whether this behavior should be blocklisted during ripping.
    pub fn is_rip_hazard(&self) -> bool {
        matches!(self, Behavior::OpenExternal | Behavior::Trap)
    }
}

/// Action bound to a keyboard shortcut at the tree level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ShortcutAction {
    /// Commit the focused edit control (dispatches its command with the
    /// current value) — the paper's Name Box example.
    CommitFocusedEdit,
    /// Close the topmost popup, else the topmost non-main window.
    Escape,
    /// Run an application command.
    Command(CommandBinding),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn navigational_classification() {
        assert!(Behavior::OpenMenu.is_navigational());
        assert!(Behavior::SwitchTab.is_navigational());
        assert!(Behavior::OpenDialog(WidgetId(3)).is_navigational());
        assert!(!Behavior::Toggle.is_navigational());
        assert!(!Behavior::Command(CommandBinding::new("x")).is_navigational());
    }

    #[test]
    fn rip_hazards() {
        assert!(Behavior::OpenExternal.is_rip_hazard());
        assert!(Behavior::Trap.is_rip_hazard());
        assert!(!Behavior::OpenMenu.is_rip_hazard());
    }

    #[test]
    fn binding_constructors() {
        let b = CommandBinding::with_arg("set_color", "Blue");
        assert_eq!(b.command, "set_color");
        assert_eq!(b.arg.as_deref(), Some("Blue"));
        assert_eq!(CommandBinding::new("undo").arg, None);
    }
}
