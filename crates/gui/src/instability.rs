//! UI instability injection (§3.4 "Handling unstable UI interaction").
//!
//! Real GUI execution is unstable in two ways the paper's executor must
//! tolerate: controls can load slowly (absent from the first snapshot after
//! an interaction) and control names can vary between the modeled topology
//! and the live UI. This module provides a deterministic, seeded model of
//! both, so robustness paths are exercised reproducibly.
//!
//! Both perturbations compose with the epoch-cached capture pipeline
//! (`crate::snapshot`) without weakening it: name variation is a pure
//! function of `(seed, widget)` — identical across rebuilds of the same
//! state, so cached bytes stay exact — and late loads, the one effect
//! keyed on the *query* clock rather than tree state, are resolved into
//! each window's capture key at build time (`UiTree::next_reveal_under`):
//! a cached window is never served at or past the query sequence where a
//! pending subtree would have appeared.

use crate::widget::WidgetId;

/// The SplitMix64 finalizer: the crate's standard 64-bit mixer (also used
/// by the capture-pool action-trace fingerprints in [`crate::session`]).
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic instability model.
///
/// All sampling is a pure function of `(seed, widget id)` (and the action
/// sequence for late loading), so a given seed reproduces the same
/// perturbations run after run.
#[derive(Debug, Clone)]
pub struct InstabilityModel {
    /// RNG seed.
    pub seed: u64,
    /// Probability a newly revealed container's children lag one snapshot.
    pub late_load_prob: f64,
    /// Number of extra snapshot queries a late-loading subtree needs.
    pub late_load_delay: u64,
    /// Probability a control's live name differs from its modeled name.
    pub name_variation_prob: f64,
}

impl InstabilityModel {
    /// No instability (probabilities zero).
    pub fn off() -> Self {
        InstabilityModel {
            seed: 0,
            late_load_prob: 0.0,
            late_load_delay: 0,
            name_variation_prob: 0.0,
        }
    }

    /// A model with the given seed and probabilities.
    pub fn new(seed: u64, late_load_prob: f64, name_variation_prob: f64) -> Self {
        InstabilityModel { seed, late_load_prob, late_load_delay: 1, name_variation_prob }
    }

    /// Whether anything can ever be perturbed.
    pub fn is_active(&self) -> bool {
        self.late_load_prob > 0.0 || self.name_variation_prob > 0.0
    }

    /// Hash-based uniform sample in `[0, 1)` for a (widget, salt) pair.
    fn unit(&self, id: WidgetId, salt: u64) -> f64 {
        let x = splitmix64(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((id.0 as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
                .wrapping_add(salt.wrapping_mul(0x94D0_49BB_1331_11EB)),
        );
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    /// How many extra snapshot queries the children of `container` need
    /// before appearing, for a reveal that happened at `action_seq`.
    /// Returns 0 when the subtree loads immediately.
    pub fn late_delay_for(&self, container: WidgetId, action_seq: u64) -> u64 {
        if self.late_load_prob <= 0.0 {
            return 0;
        }
        if self.unit(container, action_seq ^ 0xA5A5) < self.late_load_prob {
            self.late_load_delay.max(1)
        } else {
            0
        }
    }

    /// The live name for a widget: usually the modeled name, occasionally a
    /// sticky variation (per widget, stable within a session).
    pub fn live_name(&self, id: WidgetId, name: &str) -> String {
        if self.name_variation_prob <= 0.0 || name.is_empty() {
            return name.to_string();
        }
        if self.unit(id, 0x5EED) < self.name_variation_prob {
            match (self.unit(id, 0x7777) * 3.0) as u32 {
                0 => format!("{name}..."),
                1 => format!("{name} "),
                _ => {
                    // Drop a trailing word if multi-word, else suffix.
                    match name.rsplit_once(' ') {
                        Some((head, _)) if !head.is_empty() => head.to_string(),
                        _ => format!("{name}*"),
                    }
                }
            }
        } else {
            name.to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_model_is_identity() {
        let m = InstabilityModel::off();
        assert!(!m.is_active());
        assert_eq!(m.live_name(WidgetId(3), "Bold"), "Bold");
        assert_eq!(m.late_delay_for(WidgetId(3), 7), 0);
    }

    #[test]
    fn sampling_is_deterministic() {
        let m = InstabilityModel::new(42, 0.5, 0.5);
        let a = m.live_name(WidgetId(10), "Font Color");
        let b = m.live_name(WidgetId(10), "Font Color");
        assert_eq!(a, b);
        assert_eq!(m.late_delay_for(WidgetId(10), 3), m.late_delay_for(WidgetId(10), 3));
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let m1 = InstabilityModel::new(1, 0.0, 1.0);
        let m2 = InstabilityModel::new(2, 0.0, 1.0);
        let names: Vec<String> =
            (0..64).map(|i| m1.live_name(WidgetId(i), "Conditional Formatting")).collect();
        let names2: Vec<String> =
            (0..64).map(|i| m2.live_name(WidgetId(i), "Conditional Formatting")).collect();
        assert_ne!(names, names2);
    }

    #[test]
    fn full_probability_always_varies() {
        let m = InstabilityModel::new(7, 1.0, 1.0);
        for i in 0..32 {
            assert_ne!(m.live_name(WidgetId(i), "Apply to All"), "Apply to All");
            assert!(m.late_delay_for(WidgetId(i), i as u64) >= 1);
        }
    }

    #[test]
    fn variation_keeps_recognizable_prefix_or_head() {
        let m = InstabilityModel::new(9, 0.0, 1.0);
        for i in 0..32 {
            let v = m.live_name(WidgetId(i), "Format Background");
            // Every variant either starts with the original head word or is
            // a prefix extension.
            assert!(v.starts_with("Format"), "variant {v:?} lost its recognizable head");
        }
    }
}
