//! Deterministic layout: assigns bounding rectangles and off-screen flags.
//!
//! The layout is intentionally simple — the paper's claims concern
//! structure, not pixel aesthetics — but it is *consistent*: hit testing,
//! coordinate clicks, scrollbar drags, and off-screen computation all agree
//! with the rectangles produced here.
//!
//! Scheme: each open window gets a fixed rectangle (the main window fills
//! the virtual screen; dialogs cascade). Within a window, shown widgets are
//! stacked as 22-pixel rows in depth-first order, indented by depth.
//! Children of a scrollable container participate only while inside the
//! viewport window determined by `scroll_pos`; the rest are marked
//! off-screen (they stay in the accessibility tree, like real UIA).
//!
//! Rows are computed *per window* ([`compute_window`]) and shared through
//! [`Arc`]s: a [`LayoutCache`] keyed by the window's capture key (root,
//! stack position, [`UiTree::window_stamp`], popup chain, context epoch)
//! hands the same row set back until something inside the window actually
//! moves, so consecutive hit tests and snapshot rebuilds stop paying
//! O(arena) per query (see `crate::snapshot` for the capture pipeline).

use crate::tree::UiTree;
use crate::widget::WidgetId;
use dmi_uia::Rect;
use std::collections::HashMap;
use std::sync::Arc;

/// Virtual screen size.
pub const SCREEN_W: i32 = 1280;
/// Virtual screen height.
pub const SCREEN_H: i32 = 800;
/// Row height for laid-out widgets.
pub const ROW_H: i32 = 22;
/// Dialog size.
pub const DIALOG_W: i32 = 640;
/// Dialog height.
pub const DIALOG_H: i32 = 480;

/// The rows of one open window: rectangle and off-screen flag per shown
/// widget under that window's root (root included).
///
/// A window's rows depend only on its stack position (the window rect
/// cascade) and its own subtree — never on other windows — so they are
/// shared via [`Arc`] between a [`Layout`] and the [`LayoutCache`], and
/// reused wholesale while the window's capture key is unchanged.
#[derive(Debug, Clone, Default)]
pub struct WindowLayout {
    entries: HashMap<WidgetId, (Rect, bool)>,
}

impl WindowLayout {
    /// The rect assigned to a widget, if it was laid out in this window.
    pub fn rect(&self, id: WidgetId) -> Option<Rect> {
        self.entries.get(&id).map(|(r, _)| *r)
    }

    /// Whether the widget was laid out here but is off-screen.
    pub fn offscreen(&self, id: WidgetId) -> bool {
        self.entries.get(&id).map(|(_, o)| *o).unwrap_or(false)
    }

    /// Number of laid-out widgets in this window.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the window laid out nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Layout result: one [`WindowLayout`] per open window, bottom to top.
///
/// Widgets belong to exactly one arena root, so the per-window maps are
/// disjoint and lookups simply probe each window in turn (there are at
/// most a handful of open windows).
#[derive(Debug, Clone, Default)]
pub struct Layout {
    windows: Vec<Arc<WindowLayout>>,
}

impl Layout {
    /// The rect assigned to a widget, if it was laid out.
    pub fn rect(&self, id: WidgetId) -> Option<Rect> {
        self.windows.iter().find_map(|w| w.rect(id))
    }

    /// Whether the widget was laid out but is off-screen.
    pub fn offscreen(&self, id: WidgetId) -> bool {
        self.windows.iter().any(|w| w.offscreen(id))
    }

    /// Number of laid-out widgets.
    pub fn len(&self) -> usize {
        self.windows.iter().map(|w| w.len()).sum()
    }

    /// Whether nothing was laid out.
    pub fn is_empty(&self) -> bool {
        self.windows.iter().all(|w| w.is_empty())
    }

    /// The per-window layouts, bottom to top.
    pub fn windows(&self) -> &[Arc<WindowLayout>] {
        &self.windows
    }
}

/// The window rectangle for the `i`-th open window (0 = main).
pub fn window_rect(i: usize) -> Rect {
    if i == 0 {
        Rect::new(0, 0, SCREEN_W, SCREEN_H)
    } else {
        let off = (i as i32 - 1) * 24;
        Rect::new(
            (SCREEN_W - DIALOG_W) / 2 + off,
            (SCREEN_H - DIALOG_H) / 2 + off,
            DIALOG_W,
            DIALOG_H,
        )
    }
}

/// Computes the rows of the window rooted at `root` sitting at stack
/// position `wi`.
pub fn compute_window(tree: &UiTree, root: WidgetId, wi: usize) -> WindowLayout {
    let mut wl = WindowLayout::default();
    let wrect = window_rect(wi);
    wl.entries.insert(root, (wrect, false));
    let mut row = 1i32; // row 0 is the window chrome
    place_children(tree, root, wrect, &mut row, 1, &mut wl, false);
    wl
}

/// Computes the layout for every widget shown in an open window.
pub fn compute(tree: &UiTree) -> Layout {
    Layout {
        windows: tree
            .open_windows()
            .iter()
            .enumerate()
            .map(|(wi, win)| Arc::new(compute_window(tree, win.root, wi)))
            .collect(),
    }
}

/// Reuses per-window rows across consecutive layouts while a window's
/// capture key — root, stack position, [`UiTree::window_stamp`], the popup
/// chain under the root, and the context epoch — is unchanged. One cache
/// serves both the input paths (hit testing, drags, wheel) and the
/// snapshot builder's dirty-window rebuilds.
#[derive(Debug, Default)]
pub struct LayoutCache {
    slots: Vec<Option<LayoutSlot>>,
    context_epoch: u64,
}

#[derive(Debug)]
struct LayoutSlot {
    root: WidgetId,
    stamp: u64,
    popups: Vec<WidgetId>,
    rows: Arc<WindowLayout>,
}

impl LayoutCache {
    /// Drops every cached row set (restart, lineage change).
    pub fn clear(&mut self) {
        self.slots.clear();
    }

    /// The rows of the window rooted at `root` at stack position `wi`,
    /// reused from the cache when the window's key is unchanged.
    pub fn window(&mut self, tree: &UiTree, root: WidgetId, wi: usize) -> Arc<WindowLayout> {
        if self.context_epoch != tree.context_epoch() {
            self.slots.clear();
            self.context_epoch = tree.context_epoch();
        }
        let stamp = tree.window_stamp(root);
        let popups = tree.popups_under(root);
        if let Some(Some(slot)) = self.slots.get(wi) {
            if slot.root == root && slot.stamp == stamp && slot.popups == popups {
                return Arc::clone(&slot.rows);
            }
        }
        let rows = Arc::new(compute_window(tree, root, wi));
        if self.slots.len() <= wi {
            self.slots.resize_with(wi + 1, || None);
        }
        self.slots[wi] = Some(LayoutSlot { root, stamp, popups, rows: Arc::clone(&rows) });
        rows
    }

    /// Computes the full layout, reusing unchanged windows.
    pub fn compute(&mut self, tree: &UiTree) -> Layout {
        let windows = tree
            .open_windows()
            .iter()
            .enumerate()
            .map(|(wi, win)| self.window(tree, win.root, wi))
            .collect();
        self.slots.truncate(tree.open_windows().len());
        Layout { windows }
    }
}

/// Recursively places the shown children of `parent`.
#[allow(clippy::too_many_arguments)]
fn place_children(
    tree: &UiTree,
    parent: WidgetId,
    wrect: Rect,
    row: &mut i32,
    depth: i32,
    layout: &mut WindowLayout,
    forced_off: bool,
) {
    let pw = tree.widget(parent);
    let kids: Vec<WidgetId> = pw.children.iter().copied().filter(|&c| tree.is_shown(c)).collect();

    // Viewport window for scrollable containers.
    let viewport: Option<(usize, usize)> = if pw.scrollable && !kids.is_empty() {
        let rows = pw.viewport_rows.min(kids.len());
        let max_start = kids.len() - rows;
        let start = ((pw.scroll_pos / 100.0) * max_start as f64).round() as usize;
        Some((start.min(max_start), rows))
    } else {
        None
    };

    for (i, &c) in kids.iter().enumerate() {
        let cw = tree.widget(c);
        let in_viewport = match viewport {
            Some((start, rows)) => i >= start && i < start + rows,
            None => true,
        };
        let off = forced_off || !in_viewport;

        let rect = if cw.control_type == dmi_uia::ControlType::ScrollBar {
            // Scrollbars hug the right edge of their window, full height.
            Rect::new(wrect.x + wrect.w - 18, wrect.y, 18, wrect.h)
        } else if off {
            Rect::new(0, 0, 0, 0)
        } else {
            let y = wrect.y + (*row % ((wrect.h / ROW_H).max(1))) * ROW_H;
            let x = wrect.x + depth * 8;
            *row += 1;
            Rect::new(x, y, (wrect.w - depth * 16).max(40), ROW_H - 2)
        };
        layout.entries.insert(c, (rect, off));
        place_children(tree, c, wrect, row, depth + 1, layout, off);
    }
}

/// Converts a y-coordinate on a scrollbar track to a scroll percentage.
pub fn scrollbar_percent(track: Rect, y: i32) -> f64 {
    if track.h <= 0 {
        return 0.0;
    }
    let rel = (y - track.y).clamp(0, track.h) as f64 / track.h as f64;
    (rel * 100.0).clamp(0.0, 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::widget::{Widget, WidgetBuilder};
    use dmi_uia::ControlType as CT;

    #[test]
    fn window_rects_cascade() {
        assert_eq!(window_rect(0), Rect::new(0, 0, SCREEN_W, SCREEN_H));
        let d1 = window_rect(1);
        let d2 = window_rect(2);
        assert_eq!(d2.x - d1.x, 24);
    }

    #[test]
    fn shown_widgets_get_rects() {
        let mut t = UiTree::new();
        let main = t.add_root(Widget::new("Main", CT::Window));
        let a = t.add(main, Widget::new("A", CT::Button));
        let menu = t.add(main, WidgetBuilder::new("M", CT::Menu).popup().build());
        let hidden = t.add(menu, Widget::new("H", CT::MenuItem));
        let l = compute(&t);
        assert!(l.rect(a).is_some());
        assert!(l.rect(hidden).is_none());
        assert!(l.rect(main).is_some());
    }

    #[test]
    fn scroll_viewport_marks_offscreen() {
        let mut t = UiTree::new();
        let main = t.add_root(Widget::new("Main", CT::Window));
        let doc = t.add(main, WidgetBuilder::new("Doc", CT::Document).scrollable(3).build());
        let items: Vec<WidgetId> =
            (0..10).map(|i| t.add(doc, Widget::new(format!("P{i}"), CT::Text))).collect();
        let l = compute(&t);
        assert!(!l.offscreen(items[0]));
        assert!(!l.offscreen(items[2]));
        assert!(l.offscreen(items[5]));
        assert!(l.offscreen(items[9]));

        // Scroll to the end: last items become visible, first off-screen.
        t.widget_mut(doc).scroll_pos = 100.0;
        let l = compute(&t);
        assert!(l.offscreen(items[0]));
        assert!(!l.offscreen(items[9]));
    }

    #[test]
    fn scrollbar_hugs_right_edge_and_percent_maps() {
        let mut t = UiTree::new();
        let main = t.add_root(Widget::new("Main", CT::Window));
        let doc = t.add(main, WidgetBuilder::new("Doc", CT::Document).scrollable(3).build());
        let sb =
            t.add(main, WidgetBuilder::new("Vertical", CT::ScrollBar).scroll_target(doc).build());
        let l = compute(&t);
        let r = l.rect(sb).unwrap();
        assert_eq!(r.x, SCREEN_W - 18);
        assert_eq!(r.h, SCREEN_H);
        assert!((scrollbar_percent(r, r.y) - 0.0).abs() < 1e-9);
        assert!((scrollbar_percent(r, r.y + r.h) - 100.0).abs() < 1e-9);
        assert!((scrollbar_percent(r, r.y + r.h / 2) - 50.0).abs() < 1.0);
    }

    #[test]
    fn descendants_of_offscreen_rows_are_offscreen() {
        let mut t = UiTree::new();
        let main = t.add_root(Widget::new("Main", CT::Window));
        let doc = t.add(main, WidgetBuilder::new("Doc", CT::Document).scrollable(1).build());
        let p0 = t.add(doc, Widget::new("P0", CT::Text));
        let p1 = t.add(doc, Widget::new("P1", CT::Text));
        let run = t.add(p1, Widget::new("Run", CT::Text));
        let l = compute(&t);
        assert!(!l.offscreen(p0));
        assert!(l.offscreen(p1));
        assert!(l.offscreen(run));
    }
}
