//! Simulated GUI toolkit and application runtime.
//!
//! This crate is the substrate substitution for the Windows GUI stack: it
//! hosts widget trees with the structural properties the paper's evaluation
//! depends on (deep nesting, popups and modal dialogs, tab-scoped panels,
//! context-conditional controls, scrollable viewports with off-screen
//! content), executes real input events (clicks, drags, wheel, keyboard),
//! and publishes [`dmi_uia::Snapshot`]s after every event.
//!
//! The key types are:
//!
//! - [`Widget`] / [`UiTree`]: the mutable provider-side control tree,
//! - [`Behavior`]: what a click on a widget does (open a menu, switch a tab,
//!   open a dialog, run an application command, ...),
//! - [`GuiApp`]: the trait applications implement (see `dmi-apps`),
//! - [`Session`]: the event loop — input in, epoch-cached shared snapshots
//!   ([`Capture`], `Arc<Snapshot>`) and UIA events out,
//! - [`InstabilityModel`]: injectable UI instability (late-loading controls,
//!   name variation) exercising DMI's robustness mechanisms (§3.4).

pub mod behavior;
pub mod instability;
pub mod layout;
pub mod session;
pub mod snapshot;
pub mod tree;
pub mod widget;

pub use behavior::{Behavior, CommandBinding, CommitKind, ShortcutAction};
pub use instability::InstabilityModel;
pub use session::{AppError, Capture, CaptureConfig, GuiApp, Session};
pub use snapshot::{CapturePool, CaptureStats, PooledCapture};
pub use tree::{OpenWindow, UiTree};
pub use widget::{Widget, WidgetBuilder, WidgetId};
