//! The interactive session: input events in, snapshots and events out.
//!
//! [`Session`] owns a boxed [`GuiApp`] and executes input the way an OS
//! input stack would: coordinate clicks resolve by hit testing, widget
//! clicks run the widget's [`Behavior`], modal windows swallow outside
//! input, popups dismiss when clicking elsewhere, keyboard input goes to
//! focus. It also exposes the UIA *pattern* operations (`set_value`,
//! `set_toggle`, `scroll_to`, ...) that real accessibility clients can call
//! directly — the foundation DMI's state/observation declarations build on.

use crate::behavior::{Behavior, CommandBinding, CommitKind, ShortcutAction};
use crate::instability::{splitmix64 as mix64, InstabilityModel};
use crate::layout;
use crate::snapshot::{self, CaptureCache, CapturePool, CaptureStats};
use crate::tree::UiTree;
use crate::widget::WidgetId;
use dmi_uia::event::EventLog;
use dmi_uia::{ControlType, PatternKind, Snapshot, ToggleState, UiaEvent};
use std::sync::Arc;

/// Errors surfaced by application command dispatch or input handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppError {
    /// The widget cannot be interacted with right now.
    NotInteractable {
        /// Why (hidden, disabled, blocked by a modal window, trapped...).
        reason: String,
    },
    /// The application rejected a command.
    Command {
        /// The command that failed.
        command: String,
        /// Why.
        reason: String,
    },
    /// The requested pattern operation is unsupported by the widget.
    PatternUnsupported {
        /// The widget's name.
        name: String,
        /// The pattern.
        pattern: PatternKind,
    },
    /// An argument was out of range.
    InvalidArgument {
        /// Description.
        message: String,
    },
}

impl std::fmt::Display for AppError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AppError::NotInteractable { reason } => write!(f, "not interactable: {reason}"),
            AppError::Command { command, reason } => {
                write!(f, "command '{command}' failed: {reason}")
            }
            AppError::PatternUnsupported { name, pattern } => {
                write!(f, "'{name}' does not support {pattern}")
            }
            AppError::InvalidArgument { message } => write!(f, "invalid argument: {message}"),
        }
    }
}

impl std::error::Error for AppError {}

/// The trait simulated applications implement (see `dmi-apps`).
///
/// `Send` is a supertrait: simulated applications are plain data (a widget
/// arena plus a document model), and the parallel ripping engine moves
/// forked instances onto worker threads — mirroring real UIA, where every
/// provider lives in its own process anyway.
pub trait GuiApp: Send {
    /// Application display name (window title).
    fn name(&self) -> &str;

    /// Owning process id (used for new-window attribution).
    fn process_id(&self) -> u32 {
        1000
    }

    /// The provider-side control tree.
    fn tree(&self) -> &UiTree;

    /// Mutable access to the control tree.
    fn tree_mut(&mut self) -> &mut UiTree;

    /// Executes a semantic command bound to `source`.
    fn dispatch(&mut self, source: WidgetId, binding: &CommandBinding) -> Result<(), AppError>;

    /// Notification that a window is closing with the given commit kind.
    fn on_window_close(&mut self, _root: WidgetId, _commit: CommitKind) -> Result<(), AppError> {
        Ok(())
    }

    /// Restores the application to its launch state (document and UI).
    fn reset(&mut self);

    /// Forks a fresh launch-state instance of this application, sharing
    /// the immutable pristine launch image (no widget-tree
    /// reconstruction). Deterministic simulations make a fork equivalent
    /// to launching another copy of the same build, so forks can explore
    /// independently on other threads. Returns `None` when the app keeps
    /// no shareable launch image (the default).
    fn fork(&self) -> Option<Box<dyn GuiApp>> {
        None
    }

    /// An identity token for the pristine launch image [`GuiApp::reset`]
    /// restores, if — and only if — every reset restores that one fixed
    /// image bit-for-bit (tree and document). The token keys restart-
    /// surviving capture reuse: two restarts reporting the same token
    /// provably reach byte-identical UI states. Apps whose reset is
    /// partial or stateful must return `None` (the default).
    fn pristine_token(&self) -> Option<u64> {
        None
    }

    /// Downcast support (task verifiers inspect concrete app models).
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// How [`Session::capture`] builds snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaptureConfig {
    /// Serve epoch-keyed cached captures (the default). Off, every capture
    /// is an eager full rebuild — the equivalence oracle: both settings
    /// are observably identical (byte-identical snapshots and UNGs).
    pub cached: bool,
    /// How many recent captures the MRU cache retains. The rip loop keeps
    /// alternating between a base state and a handful of transient states,
    /// so a short history converts most captures into O(1) hits.
    pub depth: usize,
}

impl Default for CaptureConfig {
    fn default() -> Self {
        CaptureConfig { cached: true, depth: 4 }
    }
}

impl CaptureConfig {
    /// Forces an eager full rebuild on every capture (the oracle setting).
    pub fn full_rebuild() -> Self {
        CaptureConfig { cached: false, ..CaptureConfig::default() }
    }
}

/// A lightweight handle to one capture: the shared snapshot plus the
/// query sequence it was taken at and whether the cache served it.
#[derive(Debug, Clone)]
pub struct Capture {
    snap: Arc<Snapshot>,
    query_seq: u64,
    cache_hit: bool,
}

impl Capture {
    /// The shared snapshot.
    pub fn snap(&self) -> &Arc<Snapshot> {
        &self.snap
    }

    /// Consumes the handle, returning the shared snapshot.
    pub fn into_snap(self) -> Arc<Snapshot> {
        self.snap
    }

    /// The query sequence number this capture was taken at.
    pub fn query_seq(&self) -> u64 {
        self.query_seq
    }

    /// Whether the capture was served in O(1) from the cache (same `Arc`,
    /// same already-built identity index).
    pub fn is_cache_hit(&self) -> bool {
        self.cache_hit
    }
}

impl std::ops::Deref for Capture {
    type Target = Snapshot;

    fn deref(&self) -> &Snapshot {
        &self.snap
    }
}

/// An interactive session over one application.
pub struct Session {
    app: Box<dyn GuiApp>,
    inst: InstabilityModel,
    events: EventLog,
    /// Capture pipeline configuration.
    capture_cfg: CaptureConfig,
    /// Recent captures + per-window layout rows (see [`CaptureCache`]).
    cache: CaptureCache,
    /// Cache-effectiveness counters.
    capture_stats: CaptureStats,
    /// Snapshot counter (late-load clocks compare against this).
    query_seq: u64,
    /// Input action counter.
    action_seq: u64,
    /// Restart counter. Restarts are state restoration, not input: they
    /// are counted separately so action counts reported by the modeling
    /// experiments reflect actual user-level input.
    restart_seq: u64,
    /// Number of jumps to external applications (blocklist hazards).
    external_jumps: u64,
    /// Whether the UI entered an un-exitable state.
    trapped: bool,
    /// Restart-surviving capture stash: the snapshot of the pristine
    /// launch state, keyed by [`GuiApp::pristine_token`]. Unlike the MRU
    /// cache (whose stamp lineage a reset breaks), this survives
    /// [`Session::restart`]: a restart back to an unchanged pristine image
    /// is an O(1) snapshot hit instead of a cold rebuild.
    pristine_snap: Option<(u64, Arc<Snapshot>)>,
    /// Proof obligations recorded at the last restart under which the
    /// current UI state still equals the pristine launch image.
    pristine_mark: Option<PristineMark>,
    /// Optional cross-session capture pool shared with sibling sessions
    /// forked from the same pristine image (see [`CapturePool`]).
    pool: Option<Arc<CapturePool>>,
    /// The pristine-relative action trace keying pool captures.
    trace: ActionTrace,
    /// Tree counters recorded at the last restart: while they (and the
    /// window/popup structure) read back unchanged, the tree provably
    /// equals the pristine image again and the trace re-floors to empty.
    trace_floor: Option<TraceFloor>,
}

/// The pristine-relative input trace: fingerprints of every input action
/// executed since the session state last provably equaled the pristine
/// launch image. On a deterministic application the widget tree is a pure
/// function of `(pristine image, trace)`, which is what makes the trace a
/// sound cross-session capture key (see [`CapturePool`]).
///
/// Only actions with a precise fingerprint (widget clicks, key presses)
/// keep the trace valid; any other input — and any direct application
/// access via [`Session::app_mut`] — *poisons* it until the next restart,
/// so an unfingerprinted mutation can never alias a pooled capture.
#[derive(Debug, Clone, Default)]
struct ActionTrace {
    valid: bool,
    fps: Vec<u64>,
    hash: u64,
}

const TRACE_HASH_BASE: u64 = 0x9E37_79B9_7F4A_7C15;

impl ActionTrace {
    /// Starts a fresh trace at a restart; valid only when the application
    /// attests a pristine token (otherwise there is no image to be
    /// relative to).
    fn rebase(&mut self, valid: bool) {
        self.valid = valid;
        self.fps.clear();
        self.hash = TRACE_HASH_BASE;
    }

    /// The state provably returned to the pristine image: the trace keys
    /// it as empty again.
    fn refloor(&mut self) {
        self.fps.clear();
        self.hash = TRACE_HASH_BASE;
    }

    /// Invalidates the trace until the next restart.
    fn poison(&mut self) {
        self.valid = false;
        self.fps.clear();
    }

    /// Appends one action fingerprint.
    fn record(&mut self, fp: u64) {
        if self.valid {
            self.fps.push(fp);
            self.hash = mix64(self.hash ^ fp);
        }
    }
}

/// The tree counters a valid trace compares against to detect a provable
/// return to the pristine image (all O(1) reads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TraceFloor {
    state_epoch: u64,
    context_epoch: u64,
    main_stamp: u64,
}

/// Everything that must still hold for the session state to equal the
/// pristine image captured at the last restart. All components are O(1)
/// reads: any input action, snapshot-visible main-window mutation, context
/// change, or transient window/popup invalidates the mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PristineMark {
    token: u64,
    action_seq: u64,
    state_epoch: u64,
    context_epoch: u64,
    main_stamp: u64,
}

impl Session {
    /// Starts a session with no instability.
    pub fn new(app: Box<dyn GuiApp>) -> Self {
        Session::with_instability(app, InstabilityModel::off())
    }

    /// Starts a session with the given instability model.
    pub fn with_instability(app: Box<dyn GuiApp>, inst: InstabilityModel) -> Self {
        Session {
            app,
            inst,
            events: EventLog::new(),
            capture_cfg: CaptureConfig::default(),
            cache: CaptureCache::default(),
            capture_stats: CaptureStats::default(),
            query_seq: 0,
            action_seq: 0,
            restart_seq: 0,
            external_jumps: 0,
            trapped: false,
            pristine_snap: None,
            pristine_mark: None,
            pool: None,
            trace: ActionTrace::default(),
            trace_floor: None,
        }
    }

    /// Forks a fresh worker session off the application's shared pristine
    /// launch image (see [`GuiApp::fork`]): a launch-state app instance,
    /// the same instability model and capture configuration, and fresh
    /// event log, caches, and counters. Deterministic simulations make the
    /// fork behaviorally equivalent to launching another instance of the
    /// same build, so forks can explore independently — the parallel
    /// ripping engine runs one per worker thread. `None` when the
    /// application does not support forking.
    pub fn fork_from_pristine(&self) -> Option<Session> {
        let app = self.app.fork()?;
        let mut s = Session::with_instability(app, self.inst.clone());
        s.capture_cfg = self.capture_cfg;
        // Forks share the parent's capture pool: they attest the same
        // pristine token, so their pristine-relative traces are mutually
        // comparable — the whole point of the pool.
        s.pool = self.pool.clone();
        Some(s)
    }

    /// Returns the session to a just-launched state under a new
    /// instability model, so a pooled session can serve its next tenant
    /// indistinguishably from a fresh launch. This is what makes online
    /// session reuse trace-sound: every counter the instability model
    /// keys off (action, query, external-jump clocks) is zeroed, the
    /// event log and all cached captures — the pristine stash included,
    /// since it was captured under the *previous* tenant's instability —
    /// are dropped, and the application resets to its launch image. The
    /// attached [`CapturePool`] is deliberately kept: pool serving is
    /// capture-transparent and its keys fingerprint the instability
    /// model, so captures shared across tenants can never alias.
    ///
    /// Returns whether the application attested a pristine launch image
    /// for the reset ([`GuiApp::pristine_token`]); a caller pooling
    /// sessions should forfeit the session when it did not, because
    /// nothing then proves the next tenant starts from launch state.
    pub fn recycle(&mut self, inst: InstabilityModel) -> bool {
        self.inst = inst;
        self.events = EventLog::new();
        self.capture_stats = CaptureStats::default();
        self.query_seq = 0;
        self.external_jumps = 0;
        self.pristine_snap = None;
        // Zeroed *before* `restart` so the pristine mark records the
        // same action clock a fresh launch would.
        self.action_seq = 0;
        self.restart();
        self.restart_seq = 0;
        self.pristine_mark.is_some()
    }

    /// Replaces the instability model on a session that has not yet been
    /// driven (all perturbation clocks at zero and no cached captures) —
    /// the gateway retargets a just-forked session to its tenant's model
    /// this way, making the fork bitwise-equivalent to a fresh
    /// [`Session::with_instability`] launch under that model. On a
    /// session that *has* been driven, use [`Session::recycle`] instead:
    /// swapping models mid-flight would desynchronize the perturbation
    /// clocks from the captures already taken under the old model.
    pub fn set_instability(&mut self, inst: InstabilityModel) {
        debug_assert!(
            self.query_seq == 0 && self.action_seq == 0 && self.pristine_snap.is_none(),
            "set_instability is only sound on an undriven session"
        );
        self.inst = inst;
    }

    /// Attaches (or detaches) a cross-session [`CapturePool`]. Sessions
    /// sharing one pool serve each other's captures whenever their state
    /// provably matches — see the pool's docs for the soundness argument.
    /// Forks created after attachment inherit the pool.
    pub fn set_capture_pool(&mut self, pool: Option<Arc<CapturePool>>) {
        self.pool = pool;
    }

    /// The attached cross-session capture pool, if any.
    pub fn capture_pool(&self) -> Option<&Arc<CapturePool>> {
        self.pool.as_ref()
    }

    /// Replaces the capture configuration (drops any cached captures,
    /// the pristine stash included).
    pub fn set_capture_config(&mut self, cfg: CaptureConfig) {
        self.capture_cfg = cfg;
        self.cache.clear();
        self.pristine_snap = None;
        self.pristine_mark = None;
    }

    /// The capture configuration in effect.
    pub fn capture_config(&self) -> CaptureConfig {
        self.capture_cfg
    }

    /// Capture-cache effectiveness counters.
    pub fn capture_stats(&self) -> CaptureStats {
        self.capture_stats
    }

    /// Capture statistics since the last recycle or take, zeroing the
    /// session's accumulator. Harvest points (e.g. gateway check-in) use
    /// this so each capture event is counted exactly once no matter how
    /// often the same idle session is swept.
    pub fn take_capture_stats(&mut self) -> CaptureStats {
        std::mem::take(&mut self.capture_stats)
    }

    /// The application.
    pub fn app(&self) -> &dyn GuiApp {
        self.app.as_ref()
    }

    /// Mutable application access. Poisons the pristine-relative action
    /// trace until the next restart: direct application mutations are
    /// invisible to the trace, so pooled captures must never alias them.
    pub fn app_mut(&mut self) -> &mut dyn GuiApp {
        self.trace.poison();
        self.app.as_mut()
    }

    /// The UIA event log.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Number of input actions executed so far.
    pub fn action_count(&self) -> u64 {
        self.action_seq
    }

    /// Number of snapshot queries taken so far.
    pub fn query_count(&self) -> u64 {
        self.query_seq
    }

    /// Number of application restarts so far.
    pub fn restart_count(&self) -> u64 {
        self.restart_seq
    }

    /// Number of jumps into external applications.
    pub fn external_jumps(&self) -> u64 {
        self.external_jumps
    }

    /// Whether the UI is in an un-exitable state.
    pub fn is_trapped(&self) -> bool {
        self.trapped
    }

    /// Takes an accessibility snapshot (increments the query clock).
    ///
    /// The snapshot is shared: while the UI is unchanged since a recent
    /// capture — same per-window mutation stamps, popup chain, window
    /// stack, contexts, and no late-load reveal crossing — the same
    /// [`Arc`] is returned in O(1), identity index included. See
    /// [`Session::capture`] for the handle carrying cache metadata and
    /// [`CaptureConfig::full_rebuild`] for the eager oracle path.
    pub fn snapshot(&mut self) -> Arc<Snapshot> {
        self.capture().into_snap()
    }

    /// Takes an accessibility snapshot, returning the full [`Capture`]
    /// handle (query sequence, cache-hit flag).
    ///
    /// Serving order: restart-surviving pristine stash, per-session MRU
    /// cache, cross-session [`CapturePool`] (when attached), then a
    /// partial rebuild — every path produces the same bytes.
    pub fn capture(&mut self) -> Capture {
        self.query_seq += 1;
        self.capture_stats.captures += 1;
        dmi_obs::tally("capture.captures", 1);
        if !self.capture_cfg.cached {
            let snap = Arc::new(snapshot::build(self.app.tree(), &self.inst, self.query_seq));
            return Capture { snap, query_seq: self.query_seq, cache_hit: false };
        }
        // Restart-surviving fast path: while the pristine mark holds, the
        // state is byte-for-byte the launch image, so the stashed snapshot
        // of a *previous* restart is exact — the MRU cache cannot help
        // here because a reset re-floors every window stamp.
        let pristine_token = self.pristine_mark_holds();
        if let Some(token) = pristine_token {
            if let Some((t, snap)) = &self.pristine_snap {
                if *t == token {
                    let snap = Arc::clone(snap);
                    self.capture_stats.full_hits += 1;
                    self.capture_stats.pristine_hits += 1;
                    dmi_obs::tally("capture.full_hits", 1);
                    dmi_obs::tally("capture.pristine_hits", 1);
                    // Re-key the stash against the current tree so the
                    // next (post-click) capture can copy clean windows
                    // from it instead of re-walking everything.
                    snapshot::adopt(
                        &mut self.cache,
                        self.app.tree(),
                        &snap,
                        self.query_seq,
                        self.capture_cfg.depth,
                    );
                    return Capture { snap, query_seq: self.query_seq, cache_hit: true };
                }
            }
        }
        // Per-session MRU cache: O(1) full hits, no locking.
        let keys = match snapshot::probe(self.app.tree(), self.query_seq, &mut self.cache) {
            Ok(snap) => {
                self.capture_stats.full_hits += 1;
                dmi_obs::tally("capture.full_hits", 1);
                if let Some(token) = pristine_token {
                    self.pristine_snap = Some((token, Arc::clone(&snap)));
                }
                return Capture { snap, query_seq: self.query_seq, cache_hit: true };
            }
            Err(keys) => keys,
        };
        // Cross-session pool: a sibling session may have built this exact
        // state already (keyed by the pristine-relative action trace).
        let pool_key = self.pool_key();
        if let Some((token, model)) = pool_key {
            let pool = Arc::clone(self.pool.as_ref().expect("pool_key requires an attached pool"));
            if let Some(snap) =
                pool.lookup(token, model, self.trace.hash, &self.trace.fps, &mut self.capture_stats)
            {
                self.capture_stats.pool_hits += 1;
                dmi_obs::tally("capture.pool_hits", 1);
                dmi_obs::instant(dmi_obs::Cat::Capture, "pool_hit", 0);
                // Adopt as a donor so the next partial rebuild can copy
                // clean windows (re-keyed against this session's stamps).
                snapshot::adopt(
                    &mut self.cache,
                    self.app.tree(),
                    &snap,
                    self.query_seq,
                    self.capture_cfg.depth,
                );
                if let Some(token) = pristine_token {
                    self.pristine_snap = Some((token, Arc::clone(&snap)));
                }
                return Capture { snap, query_seq: self.query_seq, cache_hit: true };
            }
            self.capture_stats.pool_misses += 1;
            dmi_obs::tally("capture.pool_misses", 1);
        }
        // Partial rebuild: clean windows copied from donors, dirty
        // windows re-walked.
        let rebuild_span = dmi_obs::span(dmi_obs::Cat::Capture, "rebuild", 0);
        let snap = snapshot::rebuild(
            self.app.tree(),
            &self.inst,
            self.query_seq,
            self.capture_cfg.depth,
            keys,
            &mut self.cache,
            &mut self.capture_stats,
        );
        drop(rebuild_span);
        if let Some((token, model)) = pool_key {
            let pool = Arc::clone(self.pool.as_ref().expect("pool_key requires an attached pool"));
            pool.insert(
                token,
                model,
                self.trace.hash,
                &self.trace.fps,
                &snap,
                &mut self.capture_stats,
            );
        }
        if let Some(token) = pristine_token {
            self.pristine_snap = Some((token, Arc::clone(&snap)));
        }
        Capture { snap, query_seq: self.query_seq, cache_hit: false }
    }

    /// The cross-session pool key for the current state, when pooling is
    /// sound right now: a pool is attached, the trace is valid (pristine
    /// token attested at the last restart, every action since fingerprint-
    /// able), late-load instability is off (its reveals are keyed on
    /// session-local clocks the trace cannot see), and no subtree is
    /// pending reveal. Name variation stays poolable — it is a pure
    /// function of `(seed, widget)`, fingerprinted into the model key.
    fn pool_key(&self) -> Option<(u64, u64)> {
        self.pool.as_ref()?;
        if !self.trace.valid || self.inst.late_load_prob > 0.0 {
            return None;
        }
        let tree = self.app.tree();
        if tree
            .open_windows()
            .iter()
            .any(|w| tree.next_reveal_under(w.root, self.query_seq) != u64::MAX)
        {
            return None;
        }
        let token = self.app.pristine_token()?;
        let model = mix64(self.inst.seed ^ self.inst.name_variation_prob.to_bits());
        Some((token, model))
    }

    /// The session's capture-pool identity — `(pristine token, instability
    /// model fingerprint)` — independent of the current trace state.
    /// Persistence layers use it to export this session's pool entries
    /// and to re-key imported ones; `None` when the app does not attest a
    /// pristine image or late-load instability is configured (such
    /// sessions never pool, so there is nothing to export or import).
    pub fn pool_identity(&self) -> Option<(u64, u64)> {
        if self.inst.late_load_prob > 0.0 {
            return None;
        }
        let token = self.app.pristine_token()?;
        let model = mix64(self.inst.seed ^ self.inst.name_variation_prob.to_bits());
        Some((token, model))
    }

    /// Exports this session's shareable capture-pool entries (those keyed
    /// to its pristine token) for persistence. Empty when the session has
    /// no pool attached or cannot pool at all.
    pub fn export_pool_captures(&self) -> Vec<crate::snapshot::PooledCapture> {
        match (self.pool_identity(), &self.pool) {
            (Some((token, _)), Some(pool)) => pool.export(token),
            _ => Vec::new(),
        }
    }

    /// Imports persisted captures into this session's shared pool,
    /// re-keyed to the live pristine token and marked warm. Eviction and
    /// warm-hit accounting land in this session's [`CaptureStats`]. The
    /// caller must have attested that the entries were captured against a
    /// structurally identical pristine image (`dmi_store::warm_session`
    /// refuses otherwise) — importing foreign captures would serve wrong
    /// bytes. Returns the number of entries added.
    pub fn import_pool_captures(&mut self, captures: Vec<crate::snapshot::PooledCapture>) -> usize {
        let (Some((token, _)), Some(pool)) = (self.pool_identity(), self.pool.clone()) else {
            return 0;
        };
        pool.import(token, captures, &mut self.capture_stats)
    }

    /// Post-action trace maintenance: if the state provably returned to
    /// the pristine image (floor counters and window/popup structure
    /// unchanged since the last restart), the trace re-floors to empty —
    /// re-keying this state as pristine, exactly the launch-equivalence
    /// argument Esc-based recovery rests on. Tree-invisible document
    /// state is deliberately outside the check: snapshots (the only thing
    /// pooled) observe the tree alone.
    fn trace_refloor(&mut self) {
        if !self.trace.valid {
            return;
        }
        let Some(floor) = self.trace_floor else { return };
        let t = self.app.tree();
        if t.open_windows().len() == 1
            && t.open_popups().is_empty()
            && t.state_epoch() == floor.state_epoch
            && t.context_epoch() == floor.context_epoch
            && t.window_stamp(t.main_root()) == floor.main_stamp
        {
            self.trace.refloor();
        }
    }

    /// Fingerprint of a widget click.
    fn fp_click(id: WidgetId) -> u64 {
        mix64(0xC11C ^ (id.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Fingerprint of a key press.
    fn fp_press(keys: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64 ^ 0x9E55;
        for b in keys.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        mix64(h)
    }

    /// Whether the UI state still equals the pristine image captured at
    /// the last restart; returns the image token when it does. Sound
    /// because every snapshot-visible divergence trips a component: input
    /// actions bump `action_seq` (even failed ones), main-window widget
    /// mutations move its stamp, contexts move the context epoch, and
    /// extra windows or popups fail the structural checks.
    fn pristine_mark_holds(&self) -> Option<u64> {
        let m = self.pristine_mark?;
        let t = self.app.tree();
        (self.app.pristine_token() == Some(m.token)
            && self.action_seq == m.action_seq
            && t.open_windows().len() == 1
            && t.open_popups().is_empty()
            && t.state_epoch() == m.state_epoch
            && t.context_epoch() == m.context_epoch
            && t.window_stamp(t.main_root()) == m.main_stamp)
            .then_some(m.token)
    }

    /// The current layout, served from the per-window layout cache when
    /// enabled (input paths: hit testing, drags, wheel).
    fn layout(&mut self) -> layout::Layout {
        if self.capture_cfg.cached {
            self.cache.layout(self.app.tree())
        } else {
            layout::compute(self.app.tree())
        }
    }

    /// Maps a snapshot runtime id to the provider widget.
    pub fn widget_of(&self, rt: dmi_uia::RuntimeId) -> WidgetId {
        snapshot::widget_of(rt)
    }

    /// Resets the application and session UI state (like a restart), as
    /// the ripper does between exploration branches when recovery fails.
    /// Counted as a restart, not an input action.
    pub fn restart(&mut self) {
        self.app.reset();
        self.app.tree_mut().reset_ui_state();
        self.trapped = false;
        self.restart_seq += 1;
        // An application `reset` may swap its tree wholesale (breaking
        // stamp lineage), so cached captures cannot be trusted across it.
        // The pristine stash survives instead: when the app attests (via
        // `pristine_token`) that resets restore one fixed launch image,
        // the post-restart capture is served from the stash in O(1).
        self.cache.clear();
        self.pristine_mark = self.app.pristine_token().map(|token| {
            let t = self.app.tree();
            PristineMark {
                token,
                action_seq: self.action_seq,
                state_epoch: t.state_epoch(),
                context_epoch: t.context_epoch(),
                main_stamp: t.window_stamp(t.main_root()),
            }
        });
        // The state equals the attested pristine image again: rebase the
        // pool trace (and record the counters a later provable return to
        // this image will read back unchanged).
        self.trace.rebase(self.pristine_mark.is_some());
        self.trace_floor = self.pristine_mark.as_ref().map(|m| TraceFloor {
            state_epoch: m.state_epoch,
            context_epoch: m.context_epoch,
            main_stamp: m.main_stamp,
        });
    }

    // ------------------------------------------------------------------
    // State-restoration support (§4.1 Esc-based fast recovery)
    // ------------------------------------------------------------------

    /// The tree's persistent-mutation epoch (see [`UiTree::state_epoch`]).
    /// Recovery planners record it at a known-base state; an unchanged
    /// reading later proves no widget property, arena, selection, focus,
    /// or context change happened in between, so collapsing transient
    /// windows and popups with Esc restores that base exactly.
    pub fn ui_state_epoch(&self) -> u64 {
        self.app.tree().state_epoch()
    }

    /// Number of open windows (main window included).
    pub fn window_depth(&self) -> usize {
        self.app.tree().open_windows().len()
    }

    /// Number of open popups (nested menu chain length).
    pub fn popup_depth(&self) -> usize {
        self.app.tree().open_popups().len()
    }

    /// Presses Esc until only the main window remains and every popup is
    /// collapsed — the paper's standard-command state restoration. Returns
    /// whether the base was reached, plus the number of presses spent
    /// (counted even on failure, so effort accounting stays honest when
    /// Esc stops making progress — trapped UI, a window that refuses to
    /// close).
    pub fn escape_to_base(&mut self) -> (bool, u64) {
        let mut presses = 0u64;
        while self.window_depth() > 1 || self.popup_depth() > 0 {
            let before = (self.window_depth(), self.popup_depth());
            if self.press("Esc").is_err() {
                return (false, presses);
            }
            presses += 1;
            if (self.window_depth(), self.popup_depth()) == before {
                return (false, presses);
            }
        }
        (true, presses)
    }

    // ------------------------------------------------------------------
    // Pointer input
    // ------------------------------------------------------------------

    /// Clicks a widget (the primary interaction).
    pub fn click(&mut self, id: WidgetId) -> Result<(), AppError> {
        self.trace.record(Self::fp_click(id));
        let r = self.click_inner(id);
        self.trace_refloor();
        r
    }

    fn click_inner(&mut self, id: WidgetId) -> Result<(), AppError> {
        self.action_seq += 1;
        self.check_interactable(id)?;
        self.app.tree_mut().close_popups_not_containing(id);
        let behavior = self.app.tree().widget(id).on_click.clone();
        self.run_behavior(id, behavior)
    }

    /// Clicks at screen coordinates (hit-tests the current layout).
    pub fn click_at(&mut self, x: i32, y: i32) -> Result<(), AppError> {
        let lay = self.layout();
        let target = self.hit_test(&lay, x, y);
        match target {
            Some(id) => self.click(id),
            None => {
                self.action_seq += 1;
                Err(AppError::NotInteractable { reason: format!("nothing at ({x}, {y})") })
            }
        }
    }

    /// Drags from one point to another (scrollbar manipulation, text
    /// selection on document surfaces).
    pub fn drag(&mut self, from: (i32, i32), to: (i32, i32)) -> Result<(), AppError> {
        self.action_seq += 1;
        self.trace.poison();
        if self.trapped {
            return Err(AppError::NotInteractable { reason: "UI trapped".into() });
        }
        let lay = self.layout();
        let Some(hit) = self.hit_test(&lay, from.0, from.1) else {
            return Err(AppError::NotInteractable { reason: "drag source empty".into() });
        };
        // Walk up to the nearest draggable ancestor (a drag that starts on
        // a paragraph still drags the enclosing document surface).
        let mut src = hit;
        loop {
            let w = self.app.tree().widget(src);
            if w.text_surface
                || w.control_type == ControlType::ScrollBar
                || w.control_type == ControlType::Thumb
            {
                break;
            }
            match w.parent {
                Some(p) => src = p,
                None => {
                    src = hit;
                    break;
                }
            }
        }
        let w = self.app.tree().widget(src);
        if w.control_type == ControlType::ScrollBar || w.control_type == ControlType::Thumb {
            let track = lay.rect(src).unwrap_or_default();
            let pct = layout::scrollbar_percent(track, to.1);
            let target = w.scroll_target;
            if let Some(t) = target {
                self.app.tree_mut().widget_mut(t).scroll_pos = pct;
                self.app.tree_mut().widget_mut(src).value = format!("{pct:.0}");
                return Ok(());
            }
            return Err(AppError::NotInteractable { reason: "scrollbar has no target".into() });
        }
        if w.text_surface {
            // Line-range selection by drag: row indices relative to the
            // surface's own rectangle (self-consistent with how callers
            // compute drag coordinates from the surface rect).
            let rect = lay.rect(src).unwrap_or_default();
            let row_a = ((from.1 - rect.y) / layout::ROW_H).max(0) as usize;
            let row_b = ((to.1 - rect.y) / layout::ROW_H).max(0) as usize;
            let (a, b) = if row_a <= row_b { (row_a, row_b) } else { (row_b, row_a) };
            // Viewport-relative rows: the application resolves them against
            // its scroll position (absolute selection goes through
            // `select_lines`).
            let binding = CommandBinding::with_arg("ui.select_lines_viewport", format!("{a}..{b}"));
            return self.app.dispatch(src, &binding);
        }
        Err(AppError::NotInteractable { reason: format!("'{}' is not draggable", w.name) })
    }

    /// Scrolls the wheel over a point.
    pub fn wheel(&mut self, x: i32, y: i32, delta_percent: f64) -> Result<(), AppError> {
        self.action_seq += 1;
        self.trace.poison();
        let lay = self.layout();
        let Some(mut cur) = self.hit_test(&lay, x, y) else {
            return Err(AppError::NotInteractable { reason: "nothing under wheel".into() });
        };
        // Walk up to the nearest scrollable container.
        loop {
            if self.app.tree().widget(cur).scrollable {
                let w = self.app.tree_mut().widget_mut(cur);
                w.scroll_pos = (w.scroll_pos + delta_percent).clamp(0.0, 100.0);
                return Ok(());
            }
            match self.app.tree().widget(cur).parent {
                Some(p) => cur = p,
                None => {
                    return Err(AppError::NotInteractable {
                        reason: "no scrollable ancestor".into(),
                    })
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Keyboard input
    // ------------------------------------------------------------------

    /// Types text into the focused edit control.
    pub fn type_text(&mut self, text: &str) -> Result<(), AppError> {
        self.action_seq += 1;
        self.trace.poison();
        if self.trapped {
            return Err(AppError::NotInteractable { reason: "UI trapped".into() });
        }
        let Some(f) = self.app.tree().focus() else {
            return Err(AppError::NotInteractable { reason: "no focused edit".into() });
        };
        let w = self.app.tree().widget(f);
        if !w.patterns.supports(PatternKind::Value) && !w.patterns.supports(PatternKind::Text) {
            let name = w.name.clone();
            return Err(AppError::PatternUnsupported { name, pattern: PatternKind::Value });
        }
        if w.value == text {
            // Typing the text already present changes nothing: no value
            // write, no event — the logs the robustness and late-load
            // clocks compare against must not record phantom changes.
            return Ok(());
        }
        self.app.tree_mut().widget_mut(f).value = text.to_string();
        self.events.push(UiaEvent::PropertyChanged {
            control: snapshot::runtime_of(f),
            property: "Value.Value".into(),
        });
        Ok(())
    }

    /// Presses a key or key combination (e.g. `"Enter"`, `"Esc"`,
    /// `"Ctrl+B"`).
    pub fn press(&mut self, keys: &str) -> Result<(), AppError> {
        self.trace.record(Self::fp_press(keys));
        let r = self.press_inner(keys);
        self.trace_refloor();
        r
    }

    fn press_inner(&mut self, keys: &str) -> Result<(), AppError> {
        self.action_seq += 1;
        if self.trapped && keys != "Esc" {
            return Err(AppError::NotInteractable { reason: "UI trapped".into() });
        }
        match keys {
            "Esc" => {
                if self.trapped {
                    // Esc does not rescue a trapped UI (that is the point
                    // of the blocklist).
                    return Err(AppError::NotInteractable { reason: "UI trapped".into() });
                }
                let t = self.app.tree_mut();
                if let Some(&outer) = t.open_popups().first() {
                    t.collapse_popup(outer);
                    return Ok(());
                }
                if let Some(root) = t.close_top_window() {
                    let title = self.app.tree().widget(root).name.clone();
                    let _ = self.app.on_window_close(root, CommitKind::Cancel);
                    self.events
                        .push(UiaEvent::WindowClosed { window: snapshot::runtime_of(root), title });
                }
                Ok(())
            }
            "Enter" => self.commit_focused_edit(),
            other => {
                let action = self.app.tree().shortcut(other).cloned();
                match action {
                    Some(ShortcutAction::CommitFocusedEdit) => self.commit_focused_edit(),
                    Some(ShortcutAction::Escape) => self.press("Esc"),
                    Some(ShortcutAction::Command(b)) => {
                        let src = self.app.tree().main_root();
                        self.app.dispatch(src, &b)
                    }
                    None => Err(AppError::NotInteractable {
                        reason: format!("no binding for shortcut '{other}'"),
                    }),
                }
            }
        }
    }

    fn commit_focused_edit(&mut self) -> Result<(), AppError> {
        let Some(f) = self.app.tree().focus() else {
            return Err(AppError::NotInteractable { reason: "no focused edit".into() });
        };
        let binding = self.app.tree().widget(f).binding.clone();
        match binding {
            Some(b) => self.app.dispatch(f, &b),
            None => Ok(()), // Edits without a commit binding just keep their value.
        }
    }

    // ------------------------------------------------------------------
    // UIA pattern operations (client-invocable, like real UIA)
    // ------------------------------------------------------------------

    /// `ScrollPattern.SetScrollPercent` on a scrollable container (or the
    /// container driven by a scrollbar).
    pub fn scroll_to(&mut self, id: WidgetId, percent: f64) -> Result<(), AppError> {
        self.action_seq += 1;
        self.trace.poison();
        if !(0.0..=100.0).contains(&percent) {
            return Err(AppError::InvalidArgument {
                message: format!("scroll percent {percent} outside 0..=100"),
            });
        }
        let w = self.app.tree().widget(id);
        let target = if w.scrollable {
            id
        } else if let Some(t) = w.scroll_target {
            t
        } else {
            return Err(AppError::PatternUnsupported {
                name: w.name.clone(),
                pattern: PatternKind::Scroll,
            });
        };
        self.app.tree_mut().widget_mut(target).scroll_pos = percent;
        Ok(())
    }

    /// `TogglePattern.Toggle` to a specific state.
    pub fn set_toggle(&mut self, id: WidgetId, on: bool) -> Result<(), AppError> {
        self.action_seq += 1;
        self.trace.poison();
        self.check_interactable(id)?;
        let w = self.app.tree().widget(id);
        if !w.patterns.supports(PatternKind::Toggle) {
            return Err(AppError::PatternUnsupported {
                name: w.name.clone(),
                pattern: PatternKind::Toggle,
            });
        }
        let desired = if on { ToggleState::On } else { ToggleState::Off };
        if self.app.tree().widget(id).toggle == Some(desired) {
            return Ok(()); // Already in the requested state.
        }
        self.app.tree_mut().widget_mut(id).toggle = Some(desired);
        let binding = self.app.tree().widget(id).binding.clone();
        if let Some(b) = binding {
            self.app.dispatch(id, &b)?;
        }
        Ok(())
    }

    /// `SelectionItemPattern.Select` / `AddToSelection`.
    pub fn select(&mut self, id: WidgetId, additive: bool) -> Result<(), AppError> {
        self.action_seq += 1;
        self.trace.poison();
        self.check_interactable(id)?;
        let w = self.app.tree().widget(id);
        if !w.patterns.supports(PatternKind::SelectionItem) {
            return Err(AppError::PatternUnsupported {
                name: w.name.clone(),
                pattern: PatternKind::SelectionItem,
            });
        }
        self.app.tree_mut().select_item(id, additive);
        let binding = self.app.tree().widget(id).binding.clone();
        if let Some(b) = binding {
            self.app.dispatch(id, &b)?;
        }
        Ok(())
    }

    /// `ValuePattern.SetValue`.
    pub fn set_value(&mut self, id: WidgetId, value: &str) -> Result<(), AppError> {
        self.action_seq += 1;
        self.trace.poison();
        self.check_interactable(id)?;
        let w = self.app.tree().widget(id);
        if !w.patterns.supports(PatternKind::Value) {
            return Err(AppError::PatternUnsupported {
                name: w.name.clone(),
                pattern: PatternKind::Value,
            });
        }
        self.app.tree_mut().widget_mut(id).value = value.to_string();
        Ok(())
    }

    /// `ExpandCollapsePattern.Expand` / `Collapse`.
    pub fn set_expanded(&mut self, id: WidgetId, expanded: bool) -> Result<(), AppError> {
        self.action_seq += 1;
        self.trace.poison();
        self.check_interactable(id)?;
        let w = self.app.tree().widget(id);
        if !w.popup && !w.patterns.supports(PatternKind::ExpandCollapse) {
            return Err(AppError::PatternUnsupported {
                name: w.name.clone(),
                pattern: PatternKind::ExpandCollapse,
            });
        }
        if expanded {
            self.app.tree_mut().open_popup(id);
            self.maybe_delay_children(id);
        } else {
            self.app.tree_mut().collapse_popup(id);
        }
        Ok(())
    }

    /// `TextPattern` line-range selection on a text surface (the DMI
    /// `select_lines` state declaration bottoms out here).
    pub fn select_lines(&mut self, id: WidgetId, start: usize, end: usize) -> Result<(), AppError> {
        self.action_seq += 1;
        self.trace.poison();
        self.check_interactable(id)?;
        let w = self.app.tree().widget(id);
        if !w.text_surface {
            return Err(AppError::PatternUnsupported {
                name: w.name.clone(),
                pattern: PatternKind::Text,
            });
        }
        if start > end {
            return Err(AppError::InvalidArgument {
                message: format!("line range {start}..{end} is inverted"),
            });
        }
        let binding = CommandBinding::with_arg("ui.select_lines", format!("{start}..{end}"));
        self.app.dispatch(id, &binding)
    }

    /// `TextPattern` paragraph-range selection on a text surface.
    pub fn select_paragraphs(
        &mut self,
        id: WidgetId,
        start: usize,
        end: usize,
    ) -> Result<(), AppError> {
        self.action_seq += 1;
        self.trace.poison();
        self.check_interactable(id)?;
        let w = self.app.tree().widget(id);
        if !w.text_surface {
            return Err(AppError::PatternUnsupported {
                name: w.name.clone(),
                pattern: PatternKind::Text,
            });
        }
        if start > end {
            return Err(AppError::InvalidArgument {
                message: format!("paragraph range {start}..{end} is inverted"),
            });
        }
        let binding = CommandBinding::with_arg("ui.select_paragraphs", format!("{start}..{end}"));
        self.app.dispatch(id, &binding)
    }

    /// `TextPattern`/`ValuePattern` structured read: the control's text.
    pub fn get_text(&self, id: WidgetId) -> String {
        let w = self.app.tree().widget(id);
        if !w.value.is_empty() {
            w.value.clone()
        } else {
            w.name.clone()
        }
    }

    // ------------------------------------------------------------------
    // Behavior execution
    // ------------------------------------------------------------------

    fn check_interactable(&self, id: WidgetId) -> Result<(), AppError> {
        if self.trapped {
            return Err(AppError::NotInteractable { reason: "UI trapped".into() });
        }
        let t = self.app.tree();
        if !t.is_shown(id) {
            return Err(AppError::NotInteractable {
                reason: format!("'{}' is not on screen", t.widget(id).name),
            });
        }
        if !t.widget(id).enabled {
            return Err(AppError::NotInteractable {
                reason: format!("'{}' is disabled", t.widget(id).name),
            });
        }
        // Modal windows swallow outside clicks.
        let top = t.top_window();
        if top.modal && t.window_root_of(id) != Some(top.root) {
            return Err(AppError::NotInteractable {
                reason: format!(
                    "'{}' is blocked by modal window '{}'",
                    t.widget(id).name,
                    t.widget(top.root).name
                ),
            });
        }
        Ok(())
    }

    fn maybe_delay_children(&mut self, container: WidgetId) {
        let delay = self.inst.late_delay_for(container, self.action_seq);
        if delay > 0 {
            // The next `delay` snapshots still miss the children; they
            // appear on snapshot `query_seq + delay + 1`.
            let ready = self.query_seq + delay + 1;
            self.app.tree_mut().set_pending_children(container, ready);
        }
    }

    fn run_behavior(&mut self, id: WidgetId, behavior: Behavior) -> Result<(), AppError> {
        match behavior {
            Behavior::None => Ok(()),
            Behavior::OpenMenu => {
                self.app.tree_mut().open_popup(id);
                self.maybe_delay_children(id);
                self.events.push(UiaEvent::StructureChanged { subtree: snapshot::runtime_of(id) });
                Ok(())
            }
            Behavior::SwitchTab => {
                self.app.tree_mut().select_tab(id);
                self.events.push(UiaEvent::StructureChanged { subtree: snapshot::runtime_of(id) });
                Ok(())
            }
            Behavior::OpenDialog(root) => {
                self.app.tree_mut().close_all_popups();
                self.app.tree_mut().open_window(root, true);
                self.maybe_delay_children(root);
                let title = self.app.tree().widget(root).name.clone();
                self.events.push(UiaEvent::WindowOpened {
                    window: snapshot::runtime_of(root),
                    title,
                    process_id: self.app.process_id(),
                    modal: true,
                });
                Ok(())
            }
            Behavior::OpenWindow(root) => {
                self.app.tree_mut().open_window(root, false);
                self.maybe_delay_children(root);
                let title = self.app.tree().widget(root).name.clone();
                self.events.push(UiaEvent::WindowOpened {
                    window: snapshot::runtime_of(root),
                    title,
                    process_id: self.app.process_id(),
                    modal: false,
                });
                Ok(())
            }
            Behavior::CloseWindow(commit) => {
                let t = self.app.tree_mut();
                if let Some(root) = t.close_top_window() {
                    let title = self.app.tree().widget(root).name.clone();
                    self.app.on_window_close(root, commit)?;
                    self.events
                        .push(UiaEvent::WindowClosed { window: snapshot::runtime_of(root), title });
                }
                Ok(())
            }
            Behavior::Command(b) => self.app.dispatch(id, &b),
            Behavior::CommandAndDismiss(b) => {
                let r = self.app.dispatch(id, &b);
                self.app.tree_mut().close_all_popups();
                r
            }
            Behavior::Select => {
                self.app.tree_mut().select_item(id, false);
                let binding = self.app.tree().widget(id).binding.clone();
                if let Some(b) = binding {
                    self.app.dispatch(id, &b)?;
                }
                Ok(())
            }
            Behavior::Toggle => {
                let cur = self.app.tree().widget(id).toggle.unwrap_or(ToggleState::Off);
                let next = match cur {
                    ToggleState::On => ToggleState::Off,
                    _ => ToggleState::On,
                };
                self.app.tree_mut().widget_mut(id).toggle = Some(next);
                let binding = self.app.tree().widget(id).binding.clone();
                if let Some(b) = binding {
                    self.app.dispatch(id, &b)?;
                }
                Ok(())
            }
            Behavior::FocusEdit => {
                self.app.tree_mut().set_focus(Some(id));
                self.events.push(UiaEvent::FocusChanged { control: snapshot::runtime_of(id) });
                Ok(())
            }
            Behavior::OpenExternal => {
                self.external_jumps += 1;
                Ok(())
            }
            Behavior::Trap => {
                self.trapped = true;
                Ok(())
            }
        }
    }

    fn hit_test(&self, lay: &layout::Layout, x: i32, y: i32) -> Option<WidgetId> {
        // Deepest shown widget whose rect contains the point, preferring
        // widgets in the topmost window.
        let t = self.app.tree();
        for win in t.open_windows().iter().rev() {
            let mut best: Option<(WidgetId, usize)> = None;
            for id in t.descendants(win.root) {
                if !t.is_shown(id) || lay.offscreen(id) {
                    continue;
                }
                if let Some(r) = lay.rect(id) {
                    if r.contains(x, y) {
                        let depth = {
                            let mut d = 0;
                            let mut cur = id;
                            while let Some(p) = t.widget(cur).parent {
                                d += 1;
                                cur = p;
                            }
                            d
                        };
                        if best.is_none_or(|(_, bd)| depth >= bd) {
                            best = Some((id, depth));
                        }
                    }
                }
            }
            if let Some((id, _)) = best {
                return Some(id);
            }
            if t.top_window().modal {
                // Modal window swallows the click even on a miss.
                return None;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::widget::{Widget, WidgetBuilder};
    use dmi_uia::ControlType as CT;

    /// A minimal test application: a counter bumped by a ribbon button,
    /// a dialog with an edit, and a color picker merge-node structure.
    struct TestApp {
        tree: UiTree,
        counter: u32,
        committed: Option<String>,
        last_color: Option<(String, String)>, // (target, color)
        color_target: String,
    }

    struct TestIds {
        bump: WidgetId,
        dlg_open: WidgetId,
        dlg_edit: WidgetId,
        dlg_ok: WidgetId,
        font_menu: WidgetId,
        outline_menu: WidgetId,
        blue_font: WidgetId,
        blue_outline: WidgetId,
        doc: WidgetId,
        sbar: WidgetId,
    }

    fn build() -> (TestApp, TestIds) {
        let mut t = UiTree::new();
        let main = t.add_root(Widget::new("TestApp", CT::Window));
        let bump = t.add(
            main,
            WidgetBuilder::new("Bump", CT::Button)
                .on_click(Behavior::Command(CommandBinding::new("bump")))
                .build(),
        );
        let dlg = t.add_root(Widget::new("Settings", CT::Window));
        let dlg_edit = t.add(
            dlg,
            WidgetBuilder::new("Name", CT::Edit)
                .on_click(Behavior::FocusEdit)
                .binding(CommandBinding::new("commit_name"))
                .build(),
        );
        let dlg_ok = t.add(
            dlg,
            WidgetBuilder::new("OK", CT::Button)
                .on_click(Behavior::CloseWindow(CommitKind::Ok))
                .build(),
        );
        let dlg_open = t.add(
            main,
            WidgetBuilder::new("Open Settings", CT::Button)
                .on_click(Behavior::OpenDialog(dlg))
                .build(),
        );
        // Merge-node color picker: two menus leading to "the same" color.
        let font_menu = t.add(
            main,
            WidgetBuilder::new("Font Color", CT::SplitButton)
                .popup()
                .on_click(Behavior::OpenMenu)
                .build(),
        );
        let blue_font = t.add(
            font_menu,
            WidgetBuilder::new("Blue", CT::ListItem)
                .on_click(Behavior::CommandAndDismiss(CommandBinding::with_arg(
                    "set_color",
                    "Blue",
                )))
                .build(),
        );
        let outline_menu = t.add(
            main,
            WidgetBuilder::new("Outline Color", CT::SplitButton)
                .popup()
                .on_click(Behavior::OpenMenu)
                .build(),
        );
        let blue_outline = t.add(
            outline_menu,
            WidgetBuilder::new("Blue", CT::ListItem)
                .on_click(Behavior::CommandAndDismiss(CommandBinding::with_arg(
                    "set_color",
                    "Blue",
                )))
                .build(),
        );
        let doc = t.add(main, WidgetBuilder::new("Doc", CT::Document).scrollable(3).build());
        for i in 0..12 {
            t.add(doc, Widget::new(format!("Para {i}"), CT::Text));
        }
        let sbar =
            t.add(main, WidgetBuilder::new("Vertical", CT::ScrollBar).scroll_target(doc).build());
        (
            TestApp {
                tree: t,
                counter: 0,
                committed: None,
                last_color: None,
                color_target: "font".into(),
            },
            TestIds {
                bump,
                dlg_open,
                dlg_edit,
                dlg_ok,
                font_menu,
                outline_menu,
                blue_font,
                blue_outline,
                doc,
                sbar,
            },
        )
    }

    impl GuiApp for TestApp {
        fn name(&self) -> &str {
            "TestApp"
        }
        fn tree(&self) -> &UiTree {
            &self.tree
        }
        fn tree_mut(&mut self) -> &mut UiTree {
            &mut self.tree
        }
        fn dispatch(&mut self, src: WidgetId, b: &CommandBinding) -> Result<(), AppError> {
            match b.command.as_str() {
                "bump" => {
                    self.counter += 1;
                    Ok(())
                }
                "commit_name" => {
                    self.committed = Some(self.tree.widget(src).value.clone());
                    Ok(())
                }
                "set_color" => {
                    // Path-dependent semantics: the target property depends
                    // on which menu is (or was) open.
                    let target = if self
                        .tree
                        .widget(src)
                        .parent
                        .is_some_and(|p| self.tree.widget(p).name.starts_with("Outline"))
                    {
                        "outline"
                    } else {
                        &self.color_target
                    };
                    self.last_color = Some((target.to_string(), b.arg.clone().unwrap_or_default()));
                    Ok(())
                }
                other => Err(AppError::Command { command: other.into(), reason: "unknown".into() }),
            }
        }
        fn reset(&mut self) {
            self.counter = 0;
            self.committed = None;
            self.last_color = None;
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn session() -> (Session, TestIds) {
        let (app, ids) = build();
        (Session::new(Box::new(app)), ids)
    }

    fn counter(s: &Session) -> u32 {
        s.app().as_any().downcast_ref::<TestApp>().unwrap().counter
    }

    #[test]
    fn click_dispatches_command() {
        let (mut s, ids) = session();
        s.click(ids.bump).unwrap();
        s.click(ids.bump).unwrap();
        assert_eq!(counter(&s), 2);
    }

    #[test]
    fn hidden_control_click_fails() {
        let (mut s, ids) = session();
        let e = s.click(ids.blue_font).unwrap_err();
        assert!(matches!(e, AppError::NotInteractable { .. }));
    }

    #[test]
    fn menu_click_then_item() {
        let (mut s, ids) = session();
        s.click(ids.font_menu).unwrap();
        s.click(ids.blue_font).unwrap();
        let app = s.app().as_any().downcast_ref::<TestApp>().unwrap();
        assert_eq!(app.last_color, Some(("font".into(), "Blue".into())));
        // CommandAndDismiss closed the popup chain.
        assert!(s.app().tree().open_popups().is_empty());
    }

    #[test]
    fn merge_node_paths_have_distinct_semantics() {
        let (mut s, ids) = session();
        s.click(ids.outline_menu).unwrap();
        s.click(ids.blue_outline).unwrap();
        let app = s.app().as_any().downcast_ref::<TestApp>().unwrap();
        assert_eq!(app.last_color, Some(("outline".into(), "Blue".into())));
    }

    #[test]
    fn modal_dialog_blocks_outside_clicks() {
        let (mut s, ids) = session();
        s.click(ids.dlg_open).unwrap();
        let e = s.click(ids.bump).unwrap_err();
        assert!(matches!(e, AppError::NotInteractable { .. }));
        // OK closes; then the ribbon is interactable again.
        s.click(ids.dlg_ok).unwrap();
        s.click(ids.bump).unwrap();
        assert_eq!(counter(&s), 1);
    }

    #[test]
    fn edit_focus_type_enter_commits() {
        let (mut s, ids) = session();
        s.click(ids.dlg_open).unwrap();
        s.click(ids.dlg_edit).unwrap();
        s.type_text("Quarterly Report").unwrap();
        s.press("Enter").unwrap();
        let app = s.app().as_any().downcast_ref::<TestApp>().unwrap();
        assert_eq!(app.committed.as_deref(), Some("Quarterly Report"));
    }

    #[test]
    fn esc_closes_popup_then_dialog() {
        let (mut s, ids) = session();
        s.click(ids.dlg_open).unwrap();
        assert_eq!(s.app().tree().open_windows().len(), 2);
        s.press("Esc").unwrap();
        assert_eq!(s.app().tree().open_windows().len(), 1);
        s.click(ids.font_menu).unwrap();
        assert_eq!(s.app().tree().open_popups().len(), 1);
        s.press("Esc").unwrap();
        assert!(s.app().tree().open_popups().is_empty());
    }

    #[test]
    fn scrollbar_drag_sets_scroll() {
        let (mut s, ids) = session();
        let snap = s.snapshot();
        let sb_idx = snap.find_by_name("Vertical").unwrap();
        let r = snap.node(sb_idx).props.rect;
        s.drag(r.center(), (r.center().0, r.y + (r.h as f64 * 0.8) as i32)).unwrap();
        let pos = s.app().tree().widget(ids.doc).scroll_pos;
        assert!((pos - 80.0).abs() < 2.0, "scroll pos {pos}");
    }

    #[test]
    fn scroll_pattern_direct() {
        let (mut s, ids) = session();
        s.scroll_to(ids.sbar, 55.0).unwrap();
        assert!((s.app().tree().widget(ids.doc).scroll_pos - 55.0).abs() < 1e-9);
        assert!(s.scroll_to(ids.doc, 120.0).is_err());
    }

    #[test]
    fn wheel_scrolls_document() {
        let (mut s, ids) = session();
        let snap = s.snapshot();
        let doc_idx = snap.index_of_runtime(snapshot::runtime_of(ids.doc)).unwrap();
        let (cx, cy) = snap.node(doc_idx).props.rect.center();
        s.wheel(cx, cy, 30.0).unwrap();
        assert!((s.app().tree().widget(ids.doc).scroll_pos - 30.0).abs() < 1e-9);
    }

    #[test]
    fn click_at_coordinates_resolves() {
        let (mut s, ids) = session();
        let snap = s.snapshot();
        let idx = snap.index_of_runtime(snapshot::runtime_of(ids.bump)).unwrap();
        let (x, y) = snap.node(idx).props.rect.center();
        s.click_at(x, y).unwrap();
        assert_eq!(counter(&s), 1);
    }

    #[test]
    fn set_toggle_is_idempotent_and_pattern_checked() {
        let (mut s, ids) = session();
        assert!(s.set_toggle(ids.bump, true).is_err()); // No Toggle pattern.
        let _ = ids;
    }

    #[test]
    fn restart_resets_everything() {
        let (mut s, ids) = session();
        s.click(ids.bump).unwrap();
        s.click(ids.dlg_open).unwrap();
        s.restart();
        assert_eq!(counter(&s), 0);
        assert_eq!(s.app().tree().open_windows().len(), 1);
    }

    #[test]
    fn restart_is_not_an_input_action() {
        let (mut s, ids) = session();
        s.click(ids.bump).unwrap();
        let actions = s.action_count();
        s.restart();
        s.restart();
        assert_eq!(s.action_count(), actions, "restarts must not skew action counts");
        assert_eq!(s.restart_count(), 2);
    }

    #[test]
    fn type_text_noop_write_is_event_free() {
        let (mut s, ids) = session();
        s.click(ids.dlg_open).unwrap();
        s.click(ids.dlg_edit).unwrap();
        s.type_text("Report").unwrap();
        let events_after_first = s.events().all().len();
        s.type_text("Report").unwrap();
        assert_eq!(
            s.events().all().len(),
            events_after_first,
            "unchanged text must not log an event"
        );
        s.type_text("Report 2").unwrap();
        assert_eq!(s.events().all().len(), events_after_first + 1, "a real change still logs");
    }

    #[test]
    fn escape_to_base_collapses_windows_and_popups() {
        let (mut s, ids) = session();
        s.click(ids.dlg_open).unwrap();
        s.press("Esc").unwrap();
        s.click(ids.font_menu).unwrap();
        assert_eq!(s.popup_depth(), 1);
        let epoch = s.ui_state_epoch();
        assert_eq!(s.escape_to_base(), (true, 1));
        assert_eq!((s.window_depth(), s.popup_depth()), (1, 0));
        assert_eq!(s.ui_state_epoch(), epoch, "popup collapse is transient, not a mutation");
        // Already at base: nothing to press.
        assert_eq!(s.escape_to_base(), (true, 0));
    }

    #[test]
    fn snapshot_reflects_viewport() {
        let (mut s, ids) = session();
        let snap = s.snapshot();
        let p0 = snap.find_by_name("Para 0").unwrap();
        let p9 = snap.find_by_name("Para 9").unwrap();
        assert!(!snap.node(p0).props.offscreen);
        assert!(snap.node(p9).props.offscreen);
        s.scroll_to(ids.doc, 100.0).unwrap();
        let snap = s.snapshot();
        let p0 = snap.find_by_name("Para 0").unwrap();
        let p11 = snap.find_by_name("Para 11").unwrap();
        assert!(snap.node(p0).props.offscreen);
        assert!(!snap.node(p11).props.offscreen);
    }

    #[test]
    fn events_record_window_lifecycle() {
        let (mut s, ids) = session();
        let c = s.events().cursor();
        s.click(ids.dlg_open).unwrap();
        assert!(s.events().window_opened_since(c).is_some());
    }

    #[test]
    fn late_loading_children_need_retry() {
        let (app, ids) = build();
        let mut s = Session::with_instability(Box::new(app), InstabilityModel::new(5, 1.0, 0.0));
        s.click(ids.font_menu).unwrap();
        let first = s.snapshot();
        assert!(first.find_by_name("Blue").is_none(), "children should lag one query");
        let second = s.snapshot();
        assert!(second.find_by_name("Blue").is_some());
    }

    // ------------------------------------------------------------------
    // Epoch-cached capture semantics
    // ------------------------------------------------------------------

    #[test]
    fn transient_popup_open_close_returns_to_a_cache_hit() {
        let (mut s, ids) = session();
        let base = s.capture();
        assert!(!base.is_cache_hit(), "first capture is a cold build");
        s.click(ids.font_menu).unwrap();
        let open = s.capture();
        assert!(!open.is_cache_hit(), "popup open changes the visible tree");
        assert!(open.find_by_name("Blue").is_some());
        s.press("Esc").unwrap();
        let back = s.capture();
        assert!(back.is_cache_hit(), "popup close returns to the cached base");
        assert!(Arc::ptr_eq(base.snap(), back.snap()), "same shared snapshot, index included");
    }

    #[test]
    fn transient_dialog_open_close_returns_to_a_cache_hit() {
        let (mut s, ids) = session();
        let base = s.capture();
        s.click(ids.dlg_open).unwrap();
        let dlg = s.capture();
        assert!(!dlg.is_cache_hit());
        assert_eq!(dlg.windows().len(), 2);
        s.press("Esc").unwrap();
        let back = s.capture();
        assert!(back.is_cache_hit(), "dialog close restores the cached base");
        assert!(Arc::ptr_eq(base.snap(), back.snap()));
        // Reopening also hits: the open-dialog state is still in the MRU.
        s.click(ids.dlg_open).unwrap();
        let again = s.capture();
        assert!(again.is_cache_hit(), "reopened dialog state is still cached");
        assert!(Arc::ptr_eq(dlg.snap(), again.snap()));
    }

    #[test]
    fn widget_write_invalidates_exactly_the_owning_window() {
        let (mut s, ids) = session();
        s.click(ids.dlg_open).unwrap();
        let _warm = s.capture();
        let before = s.capture_stats();
        // Write inside the dialog window only.
        s.set_value(ids.dlg_edit, "Quarterly").unwrap();
        let snap = s.capture();
        assert!(!snap.is_cache_hit());
        let after = s.capture_stats();
        assert_eq!(after.windows_reused - before.windows_reused, 1, "main window copied");
        assert_eq!(after.windows_rebuilt - before.windows_rebuilt, 1, "dialog re-walked");
        let edit = snap.find_by_name("Name").unwrap();
        assert_eq!(snap.node(edit).props.value, "Quarterly");
        // And the main window write invalidates only the main window.
        let before = s.capture_stats();
        s.press("Esc").unwrap(); // back to main only
        s.scroll_to(ids.doc, 40.0).unwrap();
        let _snap = s.capture();
        let after = s.capture_stats();
        assert_eq!(after.windows_rebuilt - before.windows_rebuilt, 1, "main re-walked");
    }

    #[test]
    fn late_load_reveals_on_the_correct_query_under_caching() {
        let (app, ids) = build();
        let mut s = Session::with_instability(Box::new(app), InstabilityModel::new(5, 1.0, 0.0));
        let (app2, ids2) = build();
        let mut oracle =
            Session::with_instability(Box::new(app2), InstabilityModel::new(5, 1.0, 0.0));
        oracle.set_capture_config(CaptureConfig::full_rebuild());
        assert_eq!(ids.font_menu, ids2.font_menu);
        s.click(ids.font_menu).unwrap();
        oracle.click(ids2.font_menu).unwrap();
        // The lagging capture misses the children; a repeat before the
        // reveal is a cache hit with the children still hidden; the reveal
        // query itself must rebuild and match the eager oracle.
        let lag = s.capture();
        assert!(!lag.is_cache_hit());
        assert!(lag.find_by_name("Blue").is_none());
        assert_eq!(*lag.snap().as_ref(), *oracle.snapshot(), "lagging capture matches oracle");
        let revealed = s.capture();
        assert!(!revealed.is_cache_hit(), "the reveal query must not be served from cache");
        assert!(revealed.find_by_name("Blue").is_some());
        assert_eq!(*revealed.snap().as_ref(), *oracle.snapshot(), "reveal matches oracle");
        let warm = s.capture();
        assert!(warm.is_cache_hit(), "post-reveal state is stable and cacheable");
        assert_eq!(*warm.snap().as_ref(), *oracle.snapshot());
    }

    #[test]
    fn cached_and_full_rebuild_captures_are_byte_identical() {
        // A scripted action mix — popups, dialogs, edits, toggles, scroll,
        // tab-free clicks — must produce identical snapshots either way.
        let (app_a, ids) = build();
        let (app_b, _) = build();
        let mut cached = Session::new(Box::new(app_a));
        let mut eager = Session::new(Box::new(app_b));
        eager.set_capture_config(CaptureConfig::full_rebuild());
        type Step = Box<dyn Fn(&mut Session) -> Result<(), AppError>>;
        let script: Vec<Step> = vec![
            Box::new(move |s| s.click(ids.bump)),
            Box::new(move |s| s.click(ids.font_menu)),
            Box::new(move |s| s.click(ids.blue_font)),
            Box::new(move |s| s.click(ids.dlg_open)),
            Box::new(move |s| s.click(ids.dlg_edit)),
            Box::new(move |s| s.type_text("Report")),
            Box::new(move |s| s.press("Esc")),
            Box::new(move |s| s.scroll_to(ids.doc, 60.0)),
            Box::new(move |s| s.click(ids.outline_menu)),
            Box::new(move |s| s.press("Esc")),
        ];
        assert_eq!(*cached.snapshot(), *eager.snapshot());
        for step in &script {
            step(&mut cached).unwrap();
            step(&mut eager).unwrap();
            assert_eq!(*cached.snapshot(), *eager.snapshot());
            // Double-capture: the repeat is a hit and still identical.
            assert_eq!(*cached.snapshot(), *eager.snapshot());
        }
        assert!(cached.capture_stats().full_hits > 0, "the cache did serve hits");
    }

    #[test]
    fn restart_drops_cached_captures() {
        let (mut s, ids) = session();
        let base = s.capture();
        s.click(ids.bump).unwrap();
        s.restart();
        let fresh = s.capture();
        assert!(!fresh.is_cache_hit(), "restart must invalidate the cache");
        assert!(!Arc::ptr_eq(base.snap(), fresh.snap()));
    }

    // ------------------------------------------------------------------
    // Pristine-image forks and restart-surviving capture reuse
    // ------------------------------------------------------------------

    /// A pristine-image app in the `office::Pristine` mold: reset clones
    /// one fixed launch image, so it can attest a pristine token and
    /// fork.
    struct ImageApp {
        tree: UiTree,
        counter: u32,
        pristine: Arc<(UiTree, u32)>,
    }

    struct ImageIds {
        bump: WidgetId,
        menu: WidgetId,
        label: WidgetId,
    }

    fn image_app() -> (ImageApp, ImageIds) {
        let mut t = UiTree::new();
        let main = t.add_root(Widget::new("Image", CT::Window));
        let bump = t.add(
            main,
            WidgetBuilder::new("Bump", CT::Button)
                .on_click(Behavior::Command(CommandBinding::new("bump")))
                .build(),
        );
        let menu = t.add(
            main,
            WidgetBuilder::new("Menu", CT::SplitButton)
                .popup()
                .on_click(Behavior::OpenMenu)
                .build(),
        );
        t.add(menu, Widget::new("Item", CT::ListItem));
        let label = t.add(main, Widget::new("Label", CT::Text));
        let pristine = Arc::new((t.clone(), 0));
        (ImageApp { tree: t, counter: 0, pristine }, ImageIds { bump, menu, label })
    }

    impl GuiApp for ImageApp {
        fn name(&self) -> &str {
            "Image"
        }
        fn tree(&self) -> &UiTree {
            &self.tree
        }
        fn tree_mut(&mut self) -> &mut UiTree {
            &mut self.tree
        }
        fn dispatch(&mut self, _src: WidgetId, b: &CommandBinding) -> Result<(), AppError> {
            if b.command == "bump" {
                self.counter += 1;
            }
            Ok(())
        }
        fn reset(&mut self) {
            let pristine = Arc::clone(&self.pristine);
            self.tree.clone_from(&pristine.0);
            self.counter = pristine.1;
        }
        fn fork(&self) -> Option<Box<dyn GuiApp>> {
            let pristine = Arc::clone(&self.pristine);
            Some(Box::new(ImageApp { tree: pristine.0.clone(), counter: pristine.1, pristine }))
        }
        fn pristine_token(&self) -> Option<u64> {
            Some(Arc::as_ptr(&self.pristine) as u64)
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn restart_to_unchanged_pristine_image_is_a_snapshot_hit() {
        let (app, ids) = image_app();
        let mut s = Session::new(Box::new(app));
        s.restart();
        let first = s.capture();
        assert!(!first.is_cache_hit(), "first post-restart capture builds and stashes");
        s.click(ids.bump).unwrap();
        s.restart();
        let again = s.capture();
        assert!(again.is_cache_hit(), "restart back to the pristine image is O(1)");
        assert!(Arc::ptr_eq(first.snap(), again.snap()), "same stashed snapshot");
        assert!(s.capture_stats().pristine_hits >= 1);
        // The stash matches an eager rebuild byte-for-byte.
        let mut oracle = Session::new(Box::new(image_app().0));
        oracle.set_capture_config(CaptureConfig::full_rebuild());
        oracle.restart();
        assert_eq!(*again.snap().as_ref(), *oracle.snapshot());
    }

    #[test]
    fn pristine_stash_seeds_partial_rebuilds_after_a_click() {
        let (app, ids) = image_app();
        let mut s = Session::new(Box::new(app));
        s.restart();
        let _stash = s.capture();
        s.restart();
        let hit = s.capture();
        assert!(hit.is_cache_hit());
        // The adopted stash acts as a donor: opening a popup dirties only
        // the main window, but the snapshot after closing it again is the
        // stash itself (structural popup keying).
        s.click(ids.menu).unwrap();
        let open = s.capture();
        assert!(!open.is_cache_hit());
        assert!(open.find_by_name("Item").is_some());
        s.press("Esc").unwrap();
        let back = s.capture();
        assert!(back.is_cache_hit(), "collapse returns to the adopted stash");
        assert!(Arc::ptr_eq(hit.snap(), back.snap()));
    }

    #[test]
    fn pristine_mark_invalidates_on_any_divergence() {
        let (app, ids) = image_app();
        let mut s = Session::new(Box::new(app));
        s.restart();
        let _stash = s.capture();
        // Input action after restart: no pristine hit.
        s.restart();
        s.click(ids.bump).unwrap();
        assert!(!s.capture().is_cache_hit());
        // Direct tree mutation (no input action): the main-window stamp
        // moves, so the mark cannot hold.
        s.restart();
        s.app_mut().tree_mut().widget_mut(ids.label).name.push('!');
        let diverged = s.capture();
        assert!(!diverged.is_cache_hit());
        assert_eq!(diverged.find_by_name("Label!").map(|_| ()), Some(()));
        // The oracle configuration never serves the stash.
        s.set_capture_config(CaptureConfig::full_rebuild());
        s.restart();
        s.restart();
        assert!(!s.capture().is_cache_hit());
    }

    #[test]
    fn fork_from_pristine_is_an_independent_launch_state_session() {
        let (app, ids) = image_app();
        let mut s = Session::new(Box::new(app));
        s.click(ids.bump).unwrap();
        s.click(ids.menu).unwrap();
        let mut fork = s.fork_from_pristine().expect("image app forks");
        // The fork is at launch state, unaffected by the parent's drift.
        assert_eq!(fork.app().as_any().downcast_ref::<ImageApp>().unwrap().counter, 0);
        assert_eq!(fork.popup_depth(), 0);
        assert_eq!(fork.action_count(), 0);
        // Same pristine token: fork restarts share the parent's identity.
        assert_eq!(fork.app().pristine_token(), s.app().pristine_token());
        // Mutating the fork leaves the parent untouched (and vice versa).
        fork.click(ids.bump).unwrap();
        fork.click(ids.bump).unwrap();
        assert_eq!(fork.app().as_any().downcast_ref::<ImageApp>().unwrap().counter, 2);
        assert_eq!(s.app().as_any().downcast_ref::<ImageApp>().unwrap().counter, 1);
        assert_eq!(s.popup_depth(), 1, "parent popup state untouched by the fork");
        // Forks produce byte-identical snapshots to a fresh launch.
        fork.restart();
        let mut fresh = Session::new(Box::new(image_app().0));
        fresh.restart();
        assert_eq!(*fork.snapshot(), *fresh.snapshot());
        // Sessions (and their forks) are Send: workers move them across
        // threads.
        fn assert_send<T: Send>(_: &T) {}
        assert_send(&fork);
    }

    // ------------------------------------------------------------------
    // Cross-session capture pool + index carry-forward
    // ------------------------------------------------------------------

    #[test]
    fn capture_pool_shares_snapshots_across_forked_sessions() {
        let (app, ids) = image_app();
        let mut a = Session::new(Box::new(app));
        let pool = CapturePool::shared();
        a.set_capture_pool(Some(Arc::clone(&pool)));
        let mut b = a.fork_from_pristine().expect("image app forks");
        assert!(b.capture_pool().is_some(), "forks inherit the pool");
        a.restart();
        b.restart();
        let base_a = a.capture();
        assert!(!base_a.is_cache_hit(), "first capture anywhere is a build");
        assert_eq!(a.capture_stats().pool_misses, 1, "probed and offered to the pool");
        let base_b = b.capture();
        assert!(base_b.is_cache_hit(), "sibling state served from the pool");
        assert!(Arc::ptr_eq(base_a.snap(), base_b.snap()), "one shared snapshot across sessions");
        assert_eq!(b.capture_stats().pool_hits, 1);
        // The same click path from pristine shares again — on both sides.
        a.click(ids.menu).unwrap();
        b.click(ids.menu).unwrap();
        let m_a = a.capture();
        let m_b = b.capture();
        assert!(!m_a.is_cache_hit());
        assert!(m_b.is_cache_hit());
        assert!(Arc::ptr_eq(m_a.snap(), m_b.snap()));
        // Byte-identity against an eager rebuild of the same state.
        let (oracle_app, oracle_ids) = image_app();
        let mut oracle = Session::new(Box::new(oracle_app));
        oracle.set_capture_config(CaptureConfig::full_rebuild());
        oracle.restart();
        assert_eq!(oracle_ids.menu, ids.menu);
        oracle.click(oracle_ids.menu).unwrap();
        assert_eq!(*m_b.snap().as_ref(), *oracle.snapshot());
    }

    #[test]
    fn capture_pool_keys_on_the_divergence_and_refloors_at_base() {
        let (app, ids) = image_app();
        let mut a = Session::new(Box::new(app));
        a.set_capture_pool(Some(CapturePool::shared()));
        let mut b = a.fork_from_pristine().unwrap();
        a.restart();
        b.restart();
        let base_a = a.capture();
        // Divergent traces never alias: A opens the menu, B clicks the
        // (tree-invisible) bump command — B's state re-floors to pristine.
        a.click(ids.menu).unwrap();
        b.click(ids.bump).unwrap();
        let menu_a = a.capture();
        let base_b = b.capture();
        assert!(base_b.is_cache_hit(), "B provably returned to pristine: base is shared");
        assert!(Arc::ptr_eq(base_a.snap(), base_b.snap()));
        assert!(!Arc::ptr_eq(menu_a.snap(), base_b.snap()));
        // Esc re-floors A too: its next base capture rides the pool entry.
        a.press("Esc").unwrap();
        let back_a = a.capture();
        assert!(Arc::ptr_eq(back_a.snap(), base_a.snap()));
    }

    #[test]
    fn unfingerprinted_input_poisons_the_pool_trace_until_restart() {
        let (app, ids) = image_app();
        let mut s = Session::new(Box::new(app));
        let pool = CapturePool::shared();
        s.set_capture_pool(Some(Arc::clone(&pool)));
        s.restart();
        let _ = s.capture();
        assert_eq!(pool.len(), 1, "pristine base pooled");
        // A pattern operation has no trace fingerprint: captures stop
        // touching the pool (no hits, no inserts) until the next restart.
        s.scroll_to(ids.label, 0.0).unwrap_err(); // label is not scrollable, but the attempt poisons
        s.click(ids.menu).unwrap();
        let before = s.capture_stats();
        let _ = s.capture();
        assert_eq!(pool.len(), 1, "poisoned session must not insert");
        assert_eq!(s.capture_stats().pool_misses, before.pool_misses, "nor probe");
        // app_mut poisons too.
        s.restart();
        s.app_mut();
        let before = s.capture_stats();
        let _ = s.capture();
        assert_eq!(s.capture_stats().pool_misses, before.pool_misses);
        // A restart re-arms the trace: the next non-pristine state is
        // pooled again (the pristine state itself rides the stash, which
        // outranks the pool inside one session).
        s.restart();
        s.click(ids.menu).unwrap();
        let _ = s.capture();
        assert_eq!(pool.len(), 2, "re-armed trace offers new states to the pool");
        assert!(s.capture_stats().pool_misses > 0);
    }

    #[test]
    fn late_load_instability_disables_pooling() {
        let (app, _) = image_app();
        let mut s = Session::with_instability(Box::new(app), InstabilityModel::new(5, 1.0, 0.0));
        let pool = CapturePool::shared();
        s.set_capture_pool(Some(Arc::clone(&pool)));
        s.restart();
        let _ = s.capture();
        assert!(pool.is_empty(), "late-load models are keyed on session clocks: never pooled");
        assert_eq!(s.capture_stats().pool_misses, 0, "the pool is not even probed");
    }

    #[test]
    fn partial_rebuild_splices_donor_index_for_clean_windows() {
        let (mut s, ids) = session();
        s.click(ids.dlg_open).unwrap();
        let first = s.capture();
        first.index().key_multimap(); // materialize the donor's index
        let donor_ix = first.snap().index_if_built().expect("materialized");
        // Dirty only the dialog window: the main window's node block is
        // copied forward and its index columns spliced.
        s.set_value(ids.dlg_edit, "Quarterly").unwrap();
        let second = s.capture();
        assert!(!second.is_cache_hit());
        let spliced = second.index();
        let main_end = second.windows()[1];
        for i in 0..main_end {
            assert!(
                std::ptr::eq(spliced.path(i).as_ptr(), donor_ix.path(i).as_ptr()),
                "node {i}: spliced path must alias the donor allocation"
            );
        }
        // The spliced index is indistinguishable from a from-scratch build.
        let fresh = dmi_uia::SnapIndex::build(second.snap());
        for (i, n) in second.iter() {
            assert_eq!(spliced.path(i), fresh.path(i), "node {i}");
            assert_eq!(spliced.key(i), fresh.key(i), "node {i}");
            assert_eq!(spliced.depth(i), fresh.depth(i), "node {i}");
            assert_eq!(spliced.index_of_runtime(n.runtime_id), Some(i));
            let cid = spliced.control_id(&second, i);
            assert_eq!(spliced.resolve(&second, &cid), fresh.resolve(&second, &cid), "node {i}");
        }
    }

    #[test]
    fn partial_reset_apps_never_serve_pristine_hits() {
        // TestApp's reset is partial (tree values persist), so it
        // correctly attests no pristine token and restarts always rebuild.
        let (mut s, _) = session();
        assert_eq!(s.app().pristine_token(), None);
        assert!(s.fork_from_pristine().is_none());
        s.restart();
        let a = s.capture();
        s.restart();
        let b = s.capture();
        assert!(!b.is_cache_hit());
        assert!(!Arc::ptr_eq(a.snap(), b.snap()));
        assert_eq!(s.capture_stats().pristine_hits, 0);
    }
}
