//! The cached capture pipeline: epoch-keyed [`dmi_uia::Snapshot`]s built
//! from a live [`UiTree`] and shared behind [`Arc`]s.
//!
//! The snapshot is the *client view*: only revealed widgets appear (closed
//! menus contribute nothing, mirroring lazy UIA providers), instability
//! perturbations (late loads, name variation) are applied here, and layout
//! rectangles and off-screen flags come from [`crate::layout`].
//!
//! # Why a cache
//!
//! With restart-replay gone (PR 2), snapshot construction dominates rip
//! cost: ~8.9k captures on the small Word app, each re-walking the full
//! arena, recomputing layout, and discarding the previous snapshot's
//! lazily built `SnapIndex`. Most of those captures see a UI that is
//! byte-identical to one captured moments earlier — the ripper's hot loop
//! (escape to base → walk → pre-click capture → click → post-click
//! capture) keeps returning to the same handful of states.
//!
//! # How validity is decided
//!
//! A capture is fully determined by per-window keys plus two global
//! components:
//!
//! - **per window**: the arena root, its modality and stack position, the
//!   root's [`UiTree::window_stamp`] (bumped by every snapshot-visible
//!   mutation under that root), and the open-popup chain under the root
//!   (popup expansion is keyed *structurally* instead of stamped, so a
//!   transient open+close compares equal again — the same reasoning as
//!   PR 2's Esc recovery);
//! - **globally**: [`UiTree::context_epoch`] (contexts gate `visible_when`
//!   widgets in any window) and the query clock's position relative to
//!   each window's *next reveal* — the earliest pending-children schedule
//!   still hidden at build time ([`UiTree::next_reveal_under`]). Late-load
//!   instability is thereby resolved into the key at build time: a cached
//!   window is served only while an eager rebuild would produce the same
//!   bytes, and the reveal query itself always misses and rebuilds.
//!
//! [`CaptureCache`] keeps a short MRU list of past captures. A capture
//! whose every component matches is returned in O(1) as the same
//! [`Arc<Snapshot>`] — including its already-materialized `SnapIndex`
//! (cached ancestor paths, key multimap, runtime-id table), which the
//! eager path rebuilt per query. On a miss, each clean window's node
//! block is copied wholesale from the best donor capture
//! ([`Snapshot::append_window_from`]) and only dirty windows are
//! re-walked, with their layout rows served by the shared
//! [`layout::LayoutCache`]. Copied blocks also carry the donor's
//! identity-index columns forward ([`Snapshot::seed_index_window`]): when
//! the new snapshot's `SnapIndex` materializes, clean windows splice the
//! donor's shared path `Arc`s and key columns, so only dirty windows pay
//! index construction.
//!
//! Between the MRU probe and a rebuild, sessions attached to a
//! [`CapturePool`] additionally probe a **cross-session** pool: sibling
//! sessions forked from the same pristine image (the fleet ripper's
//! worker shards) serve each other's captures, keyed by pristine-relative
//! action traces — see [`CapturePool`] for the soundness argument.
//!
//! The eager [`build`] stays as the uncached oracle;
//! `CaptureConfig::full_rebuild` (see [`crate::session`]) routes every
//! capture through it, and the release-gated equivalence tests assert
//! byte-identical UNGs either way.

use crate::instability::InstabilityModel;
use crate::layout::{self, LayoutCache, WindowLayout};
use crate::tree::UiTree;
use crate::widget::WidgetId;
use dmi_uia::{ControlProps, RuntimeId, Snapshot};
use std::sync::{Arc, Mutex};

/// Builds a snapshot of every open window (eager, uncached).
///
/// `query_seq` is the monotonically increasing snapshot counter maintained
/// by the session; late-loading subtrees compare against it.
pub fn build(tree: &UiTree, inst: &InstabilityModel, query_seq: u64) -> Snapshot {
    let mut snap = Snapshot::new();
    for (wi, win) in tree.open_windows().iter().enumerate() {
        let lay = layout::compute_window(tree, win.root, wi);
        push_window(tree, inst, query_seq, win.root, win.modal, wi, &lay, &mut snap);
    }
    snap
}

/// Walks one window into `snap`, registering its root in z-order.
#[allow(clippy::too_many_arguments)]
fn push_window(
    tree: &UiTree,
    inst: &InstabilityModel,
    query_seq: u64,
    root: WidgetId,
    modal: bool,
    wi: usize,
    lay: &WindowLayout,
    snap: &mut Snapshot,
) {
    let root_idx = add_subtree(tree, inst, query_seq, root, None, wi, lay, snap);
    if let Some(r) = root_idx {
        if modal {
            snap.push_modal_window_root(r);
        } else {
            snap.push_window_root(r);
        }
    }
}

/// The capture key of one open window, read off the live tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct WindowKey {
    root: WidgetId,
    modal: bool,
    stamp: u64,
    popups: Vec<WidgetId>,
}

impl WindowKey {
    fn of(tree: &UiTree, root: WidgetId, modal: bool) -> WindowKey {
        WindowKey { root, modal, stamp: tree.window_stamp(root), popups: tree.popups_under(root) }
    }
}

/// Per-window record of a cached capture.
#[derive(Debug, Clone)]
struct WindowMeta {
    key: WindowKey,
    /// Node range `[start, end)` this window occupies in the snapshot
    /// arena (`start == end` when the window root was hidden).
    start: usize,
    end: usize,
    /// Whether a window root was registered for this range.
    rooted: bool,
    /// First query sequence at which a pending-children schedule under
    /// this root reveals a subtree hidden at build time (`u64::MAX` when
    /// none): the cached bytes are valid strictly before it.
    next_reveal: u64,
}

impl WindowMeta {
    fn valid_for(&self, key: &WindowKey, query_seq: u64) -> bool {
        self.key == *key && query_seq < self.next_reveal
    }
}

/// One cached capture: the shared snapshot plus the keys it was built
/// under.
#[derive(Debug, Clone)]
struct CachedCapture {
    snap: Arc<Snapshot>,
    context_epoch: u64,
    windows: Vec<WindowMeta>,
}

impl CachedCapture {
    fn matches(&self, keys: &[WindowKey], context_epoch: u64, query_seq: u64) -> bool {
        self.context_epoch == context_epoch
            && self.windows.len() == keys.len()
            && self.windows.iter().zip(keys).all(|(m, k)| m.valid_for(k, query_seq))
    }
}

/// MRU cache of recent captures plus the shared per-window layout cache.
/// Owned by `Session`; cleared on restart (an application `reset` may
/// swap the tree wholesale, which would break stamp lineage).
#[derive(Debug, Default)]
pub struct CaptureCache {
    entries: Vec<CachedCapture>,
    layout: LayoutCache,
}

/// Counters for capture-cache effectiveness (see `Session::capture_stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaptureStats {
    /// Captures taken (cache hits included).
    pub captures: u64,
    /// Captures served in O(1) as a shared `Arc` to a previous build.
    pub full_hits: u64,
    /// Subset of `full_hits` served from the restart-surviving pristine
    /// stash (post-restart captures of an unchanged launch image).
    pub pristine_hits: u64,
    /// Windows whose node block was copied from a donor capture during a
    /// partial rebuild.
    pub windows_reused: u64,
    /// Windows re-walked from the widget tree.
    pub windows_rebuilt: u64,
    /// Captures served from a shared cross-session [`CapturePool`] (a
    /// sibling session built the identical snapshot first).
    pub pool_hits: u64,
    /// Pool probes that found no matching entry (the capture then built
    /// locally and was offered to the pool).
    pub pool_misses: u64,
    /// Times a poisoned [`CapturePool`] lock was recovered: the pooled
    /// entries are discarded (a sibling session died while holding the
    /// lock) and the capture falls back to a fresh rebuild instead of
    /// propagating the panic into this session's checkout path.
    pub poison_recoveries: u64,
    /// Subset of `pool_hits` served from *warm* entries — captures
    /// imported from a persistent store rather than built by a live
    /// sibling session this process.
    pub pool_warm_hits: u64,
    /// Entries evicted from the shared pool under the frequency × cost
    /// retention policy while this session inserted.
    pub pool_evictions: u64,
}

impl CaptureCache {
    /// Drops every cached capture and layout row set.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.layout.clear();
    }

    /// The shared layout for the current tree state, reusing unchanged
    /// windows (used by the session's input paths).
    pub fn layout(&mut self, tree: &UiTree) -> layout::Layout {
        self.layout.compute(tree)
    }
}

/// Probes the MRU cache for an O(1) full hit against the current tree
/// state. On a miss, returns the per-window capture keys so the caller
/// can pass them to [`rebuild`] without recomputing them.
pub(crate) fn probe(
    tree: &UiTree,
    query_seq: u64,
    cache: &mut CaptureCache,
) -> Result<Arc<Snapshot>, Vec<WindowKey>> {
    let context_epoch = tree.context_epoch();
    let keys: Vec<WindowKey> =
        tree.open_windows().iter().map(|win| WindowKey::of(tree, win.root, win.modal)).collect();

    // O(1) path: any recent capture whose every key component matches is
    // byte-identical to what an eager rebuild would produce.
    if let Some(pos) = cache.entries.iter().position(|e| e.matches(&keys, context_epoch, query_seq))
    {
        let entry = cache.entries.remove(pos);
        let snap = Arc::clone(&entry.snap);
        cache.entries.insert(0, entry);
        return Ok(snap);
    }
    Err(keys)
}

/// Builds the capture for the current tree state after [`probe`] missed:
/// clean windows are copied from the best donor capture (their identity-
/// index columns seeded for carry-forward when the donor's index is
/// already materialized), dirty windows are re-walked.
pub(crate) fn rebuild(
    tree: &UiTree,
    inst: &InstabilityModel,
    query_seq: u64,
    depth: usize,
    keys: Vec<WindowKey>,
    cache: &mut CaptureCache,
    stats: &mut CaptureStats,
) -> Arc<Snapshot> {
    let context_epoch = tree.context_epoch();
    let mut snap = Snapshot::new();
    let mut metas = Vec::with_capacity(keys.len());
    for (wi, key) in keys.iter().enumerate() {
        let donor = cache.entries.iter().find_map(|e| {
            if e.context_epoch != context_epoch {
                return None;
            }
            let m = e.windows.get(wi)?;
            m.valid_for(key, query_seq).then(|| (Arc::clone(&e.snap), m.clone()))
        });
        let meta = match donor {
            Some((donor_snap, m)) => {
                let start = snap.append_window_from(&donor_snap, m.start, m.end, wi);
                let end = snap.len();
                if m.rooted {
                    if key.modal {
                        snap.push_modal_window_root(start);
                    } else {
                        snap.push_window_root(start);
                    }
                }
                // Subtree carry-forward: the copied block is byte-
                // identical to the donor range, so the donor's per-node
                // index columns (shared path `Arc`s, keys, depths) can be
                // spliced instead of rebuilt — but only when the donor
                // index already exists; splicing must never force one.
                if let Some(donor_ix) = donor_snap.index_if_built() {
                    snap.seed_index_window(start, end, donor_ix, m.start);
                }
                stats.windows_reused += 1;
                dmi_obs::tally("capture.windows_reused", 1);
                WindowMeta {
                    key: key.clone(),
                    start,
                    end,
                    rooted: m.rooted,
                    next_reveal: m.next_reveal,
                }
            }
            None => {
                let lay = cache.layout.window(tree, key.root, wi);
                let start = snap.len();
                push_window(tree, inst, query_seq, key.root, key.modal, wi, &lay, &mut snap);
                let end = snap.len();
                stats.windows_rebuilt += 1;
                dmi_obs::tally("capture.windows_rebuilt", 1);
                WindowMeta {
                    key: key.clone(),
                    start,
                    end,
                    rooted: end > start,
                    next_reveal: tree.next_reveal_under(key.root, query_seq),
                }
            }
        };
        metas.push(meta);
    }

    let snap = Arc::new(snap);
    cache
        .entries
        .insert(0, CachedCapture { snap: Arc::clone(&snap), context_epoch, windows: metas });
    cache.entries.truncate(depth.max(1));
    snap
}

/// A shared, read-mostly pool of captures keyed by pristine-relative
/// action traces, serving snapshot hits **across sessions** forked from
/// one pristine launch image (see `Session::set_capture_pool`).
///
/// # Why sharing across sessions is sound
///
/// Per-session capture keys (window mutation stamps, state epochs) are
/// monotonic counters whose absolute values depend on each session's
/// history, so they are meaningless across sessions. What *is* comparable
/// is the action trace: on a deterministic application, the widget tree —
/// and hence the snapshot bytes — is a pure function of `(pristine image,
/// input actions since the state provably equaled that image)`. Sessions
/// attest the image via `GuiApp::pristine_token` and track the trace as a
/// fingerprint sequence (reset whenever the state provably returns to
/// pristine, poisoned by any input the trace cannot fingerprint), so two
/// sessions with the same `(token, trace)` hold byte-identical trees and
/// may share one snapshot `Arc` — identity index included.
///
/// Entries additionally key on an instability-model fingerprint (name
/// variation is a pure function of `(seed, widget)`, so equal models
/// perturb forks identically), and sessions skip the pool entirely while
/// late-load instability is configured — the one perturbation keyed on
/// session-local clocks rather than tree state.
///
/// # Locking discipline
///
/// One flat `Mutex` around a small MRU vector. Every operation is a short
/// critical section — a key scan plus an `Arc` clone or a bounded insert;
/// no snapshot is ever *built* under the lock, so contention costs a few
/// compares while a hit saves a full O(arena) walk and index build.
#[derive(Debug, Default)]
pub struct CapturePool {
    capacity: usize,
    entries: Mutex<Vec<PoolEntry>>,
}

#[derive(Debug)]
struct PoolEntry {
    /// `GuiApp::pristine_token` of the image the trace is relative to.
    token: u64,
    /// Instability-model fingerprint (seed + name-variation setting).
    model: u64,
    /// Chained hash of the action trace (fast reject).
    hash: u64,
    /// The full fingerprint trace, compared element-wise on a hash match
    /// — this guards against chained-hash collisions for free. The
    /// per-action fingerprints themselves are unconfirmed 64-bit digests
    /// (two *different* actions colliding on every fingerprint would
    /// alias), which is weaker than the ControlKey hash+confirm
    /// discipline but over ~a dozen independent 64-bit draws per trace,
    /// not a practical concern.
    trace: Vec<u64>,
    snap: Arc<Snapshot>,
    /// Times this entry served a lookup (the frequency half of the
    /// retention score).
    hits: u64,
    /// Whether the entry was imported from a persistent store (a *warm*
    /// entry) rather than built by a live session this process.
    warm: bool,
}

impl PoolEntry {
    /// Retention score under the frequency × cost policy: how many
    /// node-walks the entry has saved, weighted by how many it would
    /// cost to rebuild. `hits + 1` counts the build itself, so a large
    /// never-hit capture still outranks a tiny never-hit one.
    fn retention_score(&self) -> u128 {
        (self.hits as u128 + 1) * self.snap.len().max(1) as u128
    }
}

/// One exported pool entry, ready for persistence. The pristine token is
/// deliberately absent: it attests an in-process allocation and does not
/// survive serialization — importers re-key entries to the live session's
/// token after attesting the pristine image structurally (see
/// `dmi_core::incremental::pristine_signature`).
#[derive(Debug, Clone)]
pub struct PooledCapture {
    /// Instability-model fingerprint the entry was built under.
    pub model: u64,
    /// Chained action-trace hash (fast reject key).
    pub hash: u64,
    /// The full fingerprint trace (hash-collision confirm key).
    pub trace: Vec<u64>,
    /// The pooled snapshot.
    pub snap: Arc<Snapshot>,
    /// Lookup count carried across processes so the retention policy
    /// keeps historically hot entries.
    pub hits: u64,
}

impl CapturePool {
    /// A pool retaining up to `capacity` captures (frequency × cost
    /// retention, see [`PoolEntry::retention_score`]).
    pub fn new(capacity: usize) -> CapturePool {
        CapturePool { capacity: capacity.max(1), entries: Mutex::new(Vec::new()) }
    }

    /// A pool with the default capacity, ready to share across sessions.
    pub fn shared() -> Arc<CapturePool> {
        Arc::new(CapturePool::new(64))
    }

    /// Number of pooled captures.
    pub fn len(&self) -> usize {
        match self.entries.lock() {
            Ok(g) => g.len(),
            Err(p) => p.into_inner().len(),
        }
    }

    /// Whether the pool holds no captures.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Locks the entry list, recovering from poisoning: a sibling session
    /// that panicked while holding the lock forfeits every pooled entry
    /// (sharing degrades to fresh rebuilds, counted in
    /// `CaptureStats::poison_recoveries`), but never takes the surviving
    /// sessions down with it.
    fn entries_recovered(
        &self,
        stats: &mut CaptureStats,
    ) -> std::sync::MutexGuard<'_, Vec<PoolEntry>> {
        match self.entries.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                let mut g = poisoned.into_inner();
                g.clear();
                self.entries.clear_poison();
                stats.poison_recoveries += 1;
                dmi_obs::tally("capture.poison_recoveries", 1);
                g
            }
        }
    }

    /// Serves the capture for `(token, model, trace)` if a sibling session
    /// already built it (hash fast-path, full-trace confirm).
    pub(crate) fn lookup(
        &self,
        token: u64,
        model: u64,
        hash: u64,
        trace: &[u64],
        stats: &mut CaptureStats,
    ) -> Option<Arc<Snapshot>> {
        let mut entries = self.entries_recovered(stats);
        let pos = entries.iter().position(|e| {
            e.token == token && e.model == model && e.hash == hash && e.trace == trace
        })?;
        let mut entry = entries.remove(pos);
        entry.hits += 1;
        if entry.warm {
            stats.pool_warm_hits += 1;
            dmi_obs::tally("capture.pool_warm_hits", 1);
        }
        let snap = Arc::clone(&entry.snap);
        entries.insert(0, entry);
        Some(snap)
    }

    /// Offers a freshly built capture to the pool. If a racing sibling
    /// already inserted the same key, the existing entry wins (both are
    /// byte-identical; keeping one maximizes sharing).
    pub(crate) fn insert(
        &self,
        token: u64,
        model: u64,
        hash: u64,
        trace: &[u64],
        snap: &Arc<Snapshot>,
        stats: &mut CaptureStats,
    ) {
        let mut entries = self.entries_recovered(stats);
        if let Some(pos) = entries.iter().position(|e| {
            e.token == token && e.model == model && e.hash == hash && e.trace == trace
        }) {
            let entry = entries.remove(pos);
            entries.insert(0, entry);
            return;
        }
        entries.insert(
            0,
            PoolEntry {
                token,
                model,
                hash,
                trace: trace.to_vec(),
                snap: Arc::clone(snap),
                hits: 0,
                warm: false,
            },
        );
        Self::evict_over_capacity(&mut entries, self.capacity, stats);
    }

    /// Frequency × cost eviction: while over capacity, drop the entry
    /// with the lowest [`PoolEntry::retention_score`], breaking ties
    /// toward the least recently used (largest MRU index). Replaces the
    /// original pure-MRU truncate: a rarely-hit pool (Word's ~1% rate)
    /// used to cycle expensive captures out in insertion order, while
    /// hot pools (Excel/PowerPoint ~20%) never got to weigh a cheap
    /// popup snapshot against a full dialog one.
    fn evict_over_capacity(
        entries: &mut Vec<PoolEntry>,
        capacity: usize,
        stats: &mut CaptureStats,
    ) {
        while entries.len() > capacity {
            let victim = entries
                .iter()
                .enumerate()
                .min_by_key(|(i, e)| (e.retention_score(), std::cmp::Reverse(*i)))
                .map(|(i, _)| i)
                .expect("over-capacity pool is non-empty");
            entries.remove(victim);
            stats.pool_evictions += 1;
            dmi_obs::tally("capture.pool_evictions", 1);
        }
    }

    /// Exports every entry keyed to `token` for persistence, MRU order
    /// preserved. Snapshots travel as shared `Arc`s — exporting copies
    /// nothing.
    pub fn export(&self, token: u64) -> Vec<PooledCapture> {
        let mut scratch = CaptureStats::default();
        let entries = self.entries_recovered(&mut scratch);
        entries
            .iter()
            .filter(|e| e.token == token)
            .map(|e| PooledCapture {
                model: e.model,
                hash: e.hash,
                trace: e.trace.clone(),
                snap: Arc::clone(&e.snap),
                hits: e.hits,
            })
            .collect()
    }

    /// Imports persisted captures, re-keyed to the live session's
    /// `token`, marked *warm* (hits on them are reported separately in
    /// [`CaptureStats::pool_warm_hits`]). The caller is responsible for
    /// pristine attestation: entries must come from a store whose
    /// pristine signature matches the live app (see
    /// `dmi_store::warm_session`). Existing live entries win duplicate
    /// keys; the retention policy applies immediately, so importing more
    /// than the capacity keeps the highest-scoring captures. Returns the
    /// number of entries actually added.
    pub fn import(
        &self,
        token: u64,
        captures: Vec<PooledCapture>,
        stats: &mut CaptureStats,
    ) -> usize {
        let mut entries = self.entries_recovered(stats);
        let mut added = 0usize;
        for c in captures {
            let dup = entries.iter().any(|e| {
                e.token == token && e.model == c.model && e.hash == c.hash && e.trace == c.trace
            });
            if dup {
                continue;
            }
            entries.push(PoolEntry {
                token,
                model: c.model,
                hash: c.hash,
                trace: c.trace,
                snap: c.snap,
                hits: c.hits,
                warm: true,
            });
            added += 1;
        }
        Self::evict_over_capacity(&mut entries, self.capacity, stats);
        added
    }
}

/// Re-keys a restart-surviving pristine capture against the *current*
/// tree (whose stamps a reset re-floored) and inserts it at the MRU head,
/// so the next (post-click) partial rebuild can copy clean windows from
/// it as a donor. The caller guarantees the snapshot is byte-identical to
/// what an eager build of the current tree would produce (the pristine
/// mark held when it was served).
///
/// Window blocks are recovered from the snapshot's window-root indices
/// (each open window's DFS emits one contiguous block starting at its
/// root); adoption is skipped when the shapes cannot be aligned (a hidden
/// window root contributed no block).
pub(crate) fn adopt(
    cache: &mut CaptureCache,
    tree: &UiTree,
    snap: &Arc<Snapshot>,
    query_seq: u64,
    depth: usize,
) {
    let open = tree.open_windows();
    if snap.windows().len() != open.len() {
        return;
    }
    // Drop a stale entry for the same snapshot (its keys pre-date the
    // reset and can never validate again) before re-inserting fresh.
    cache.entries.retain(|e| !Arc::ptr_eq(&e.snap, snap));
    let mut metas = Vec::with_capacity(open.len());
    for (wi, win) in open.iter().enumerate() {
        let start = snap.windows()[wi];
        let end = snap.windows().get(wi + 1).copied().unwrap_or(snap.len());
        if start > end {
            return;
        }
        metas.push(WindowMeta {
            key: WindowKey::of(tree, win.root, win.modal),
            start,
            end,
            rooted: true,
            next_reveal: tree.next_reveal_under(win.root, query_seq),
        });
    }
    cache.entries.insert(
        0,
        CachedCapture {
            snap: Arc::clone(snap),
            context_epoch: tree.context_epoch(),
            windows: metas,
        },
    );
    cache.entries.truncate(depth.max(1));
}

/// Maps a snapshot runtime id back to the widget it was built from.
///
/// Runtime ids encode the widget arena index (`index + 1`), which keeps the
/// provider/client correspondence trivial while remaining opaque to DMI
/// (which never relies on it across restarts).
pub fn widget_of(rt: RuntimeId) -> WidgetId {
    WidgetId((rt.0 - 1) as usize)
}

/// The runtime id a widget will carry in snapshots.
pub fn runtime_of(id: WidgetId) -> RuntimeId {
    RuntimeId(id.0 as u64 + 1)
}

#[allow(clippy::too_many_arguments)]
fn add_subtree(
    tree: &UiTree,
    inst: &InstabilityModel,
    query_seq: u64,
    id: WidgetId,
    parent: Option<usize>,
    window: usize,
    lay: &WindowLayout,
    snap: &mut Snapshot,
) -> Option<usize> {
    if !tree.is_shown(id) {
        return None;
    }
    let w = tree.widget(id);
    let mut props = ControlProps::new(inst.live_name(id, &w.name), w.control_type);
    props.automation_id = w.automation_id.clone();
    props.class_name = w.class_name.clone();
    props.help_text = w.help_text.clone();
    props.patterns = w.patterns;
    props.enabled = w.enabled;
    props.value = w.value.clone();
    props.toggle = w.toggle;
    props.selected = w.selected;
    props.expanded = if w.popup { Some(w.expanded) } else { None };
    props.rect = lay.rect(id).unwrap_or_default();
    props.offscreen = lay.offscreen(id);

    let idx = snap.push(props, parent, window);
    // Snapshot runtime ids must track the widget arena, not insertion order.
    debug_assert!(idx < snap.len());
    override_runtime_id(snap, idx, id);

    if !tree.children_pending(id, query_seq) {
        for &c in &tree.widget(id).children {
            add_subtree(tree, inst, query_seq, c, Some(idx), window, lay, snap);
        }
    }
    Some(idx)
}

/// Replaces the sequential runtime id assigned by `Snapshot::push` with the
/// widget-derived one.
fn override_runtime_id(snap: &mut Snapshot, idx: usize, id: WidgetId) {
    // Snapshot nodes are immutable through the public API; we rebuild the
    // runtime id through a dedicated setter to keep the arena consistent.
    snap.set_runtime_id(idx, runtime_of(id));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::widget::{Widget, WidgetBuilder};
    use dmi_uia::ControlType as CT;

    fn tree() -> (UiTree, WidgetId, WidgetId, WidgetId) {
        let mut t = UiTree::new();
        let main = t.add_root(Widget::new("Main", CT::Window));
        let menu = t.add(main, WidgetBuilder::new("Colors", CT::SplitButton).popup().build());
        let item = t.add(menu, Widget::new("Blue", CT::ListItem));
        (t, main, menu, item)
    }

    #[test]
    fn closed_menus_contribute_nothing() {
        let (t, _, _, _) = tree();
        let s = build(&t, &InstabilityModel::off(), 0);
        assert!(s.find_by_name("Colors").is_some());
        assert!(s.find_by_name("Blue").is_none());
    }

    #[test]
    fn open_menus_reveal_children() {
        let (mut t, _, menu, _) = tree();
        t.open_popup(menu);
        let s = build(&t, &InstabilityModel::off(), 0);
        assert!(s.find_by_name("Blue").is_some());
    }

    #[test]
    fn runtime_ids_track_widget_ids() {
        let (mut t, _, menu, item) = tree();
        t.open_popup(menu);
        let s = build(&t, &InstabilityModel::off(), 0);
        let idx = s.find_by_name("Blue").unwrap();
        assert_eq!(widget_of(s.node(idx).runtime_id), item);
    }

    #[test]
    fn late_loading_children_absent_then_present() {
        let (mut t, _, menu, _) = tree();
        t.open_popup(menu);
        t.set_pending_children(menu, 5);
        let s4 = build(&t, &InstabilityModel::off(), 4);
        assert!(s4.find_by_name("Blue").is_none());
        let s5 = build(&t, &InstabilityModel::off(), 5);
        assert!(s5.find_by_name("Blue").is_some());
    }

    #[test]
    fn poisoned_pool_lock_degrades_to_a_rebuild() {
        let pool = std::sync::Arc::new(CapturePool::new(4));
        let (t, ..) = tree();
        let snap = std::sync::Arc::new(build(&t, &InstabilityModel::off(), 0));
        let mut stats = CaptureStats::default();
        pool.insert(7, 1, 99, &[1, 2], &snap, &mut stats);
        assert_eq!(pool.len(), 1);
        assert_eq!(stats.poison_recoveries, 0);

        // A sibling session dies while holding the entry lock.
        let p2 = std::sync::Arc::clone(&pool);
        let _ = std::thread::spawn(move || {
            let _guard = p2.entries.lock().unwrap();
            panic!("injected fault: die holding the pool lock");
        })
        .join();

        // Every path recovers: the poisoned entries are forfeited, the
        // recovery is counted, and the pool keeps working afterwards.
        assert!(pool.lookup(7, 1, 99, &[1, 2], &mut stats).is_none(), "entries forfeited");
        assert_eq!(stats.poison_recoveries, 1);
        pool.insert(7, 1, 99, &[1, 2], &snap, &mut stats);
        assert_eq!(stats.poison_recoveries, 1, "the lock heals after one recovery");
        assert!(pool.lookup(7, 1, 99, &[1, 2], &mut stats).is_some());
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn name_variation_applies_in_snapshot_only() {
        let (mut t, _, menu, _) = tree();
        t.open_popup(menu);
        let inst = InstabilityModel::new(3, 0.0, 1.0);
        let s = build(&t, &inst, 0);
        // The provider-side name is unchanged.
        assert_eq!(t.widget(menu).name, "Colors");
        // The snapshot name is the varied one.
        let snap_names: Vec<String> = s.iter().map(|(_, n)| n.props.name.clone()).collect();
        assert!(snap_names
            .iter()
            .any(|n| n != "Colors" && n.starts_with("Colors") || n == "Colors*"));
    }

    #[test]
    fn multiple_windows_in_z_order() {
        let (mut t, ..) = tree();
        let dlg = t.add_root(Widget::new("Format Cells", CT::Window));
        t.add(dlg, Widget::new("OK", CT::Button));
        t.open_window(dlg, true);
        let s = build(&t, &InstabilityModel::off(), 0);
        assert_eq!(s.windows().len(), 2);
        let top = s.top_window().unwrap();
        assert_eq!(s.node(top).props.name, "Format Cells");
    }
}
