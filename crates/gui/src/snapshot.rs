//! Builds [`dmi_uia::Snapshot`]s from a live [`UiTree`].
//!
//! The snapshot is the *client view*: only revealed widgets appear (closed
//! menus contribute nothing, mirroring lazy UIA providers), instability
//! perturbations (late loads, name variation) are applied here, and layout
//! rectangles and off-screen flags come from [`crate::layout`].

use crate::instability::InstabilityModel;
use crate::layout;
use crate::tree::UiTree;
use crate::widget::WidgetId;
use dmi_uia::{ControlProps, RuntimeId, Snapshot};

/// Builds a snapshot of every open window.
///
/// `query_seq` is the monotonically increasing snapshot counter maintained
/// by the session; late-loading subtrees compare against it.
pub fn build(tree: &UiTree, inst: &InstabilityModel, query_seq: u64) -> Snapshot {
    let lay = layout::compute(tree);
    let mut snap = Snapshot::new();
    for (wi, win) in tree.open_windows().iter().enumerate() {
        let root_idx = add_subtree(tree, inst, query_seq, win.root, None, wi, &lay, &mut snap);
        if let Some(r) = root_idx {
            if win.modal {
                snap.push_modal_window_root(r);
            } else {
                snap.push_window_root(r);
            }
        }
    }
    snap
}

/// Maps a snapshot runtime id back to the widget it was built from.
///
/// Runtime ids encode the widget arena index (`index + 1`), which keeps the
/// provider/client correspondence trivial while remaining opaque to DMI
/// (which never relies on it across restarts).
pub fn widget_of(rt: RuntimeId) -> WidgetId {
    WidgetId((rt.0 - 1) as usize)
}

/// The runtime id a widget will carry in snapshots.
pub fn runtime_of(id: WidgetId) -> RuntimeId {
    RuntimeId(id.0 as u64 + 1)
}

#[allow(clippy::too_many_arguments)]
fn add_subtree(
    tree: &UiTree,
    inst: &InstabilityModel,
    query_seq: u64,
    id: WidgetId,
    parent: Option<usize>,
    window: usize,
    lay: &layout::Layout,
    snap: &mut Snapshot,
) -> Option<usize> {
    if !tree.is_shown(id) {
        return None;
    }
    let w = tree.widget(id);
    let mut props = ControlProps::new(inst.live_name(id, &w.name), w.control_type);
    props.automation_id = w.automation_id.clone();
    props.class_name = w.class_name.clone();
    props.help_text = w.help_text.clone();
    props.patterns = w.patterns;
    props.enabled = w.enabled;
    props.value = w.value.clone();
    props.toggle = w.toggle;
    props.selected = w.selected;
    props.expanded = if w.popup { Some(w.expanded) } else { None };
    props.rect = lay.rect(id).unwrap_or_default();
    props.offscreen = lay.offscreen(id);

    let idx = snap.push(props, parent, window);
    // Snapshot runtime ids must track the widget arena, not insertion order.
    debug_assert!(idx < snap.len());
    override_runtime_id(snap, idx, id);

    if !tree.children_pending(id, query_seq) {
        for &c in &tree.widget(id).children {
            add_subtree(tree, inst, query_seq, c, Some(idx), window, lay, snap);
        }
    }
    Some(idx)
}

/// Replaces the sequential runtime id assigned by `Snapshot::push` with the
/// widget-derived one.
fn override_runtime_id(snap: &mut Snapshot, idx: usize, id: WidgetId) {
    // Snapshot nodes are immutable through the public API; we rebuild the
    // runtime id through a dedicated setter to keep the arena consistent.
    snap.set_runtime_id(idx, runtime_of(id));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::widget::{Widget, WidgetBuilder};
    use dmi_uia::ControlType as CT;

    fn tree() -> (UiTree, WidgetId, WidgetId, WidgetId) {
        let mut t = UiTree::new();
        let main = t.add_root(Widget::new("Main", CT::Window));
        let menu = t.add(main, WidgetBuilder::new("Colors", CT::SplitButton).popup().build());
        let item = t.add(menu, Widget::new("Blue", CT::ListItem));
        (t, main, menu, item)
    }

    #[test]
    fn closed_menus_contribute_nothing() {
        let (t, _, _, _) = tree();
        let s = build(&t, &InstabilityModel::off(), 0);
        assert!(s.find_by_name("Colors").is_some());
        assert!(s.find_by_name("Blue").is_none());
    }

    #[test]
    fn open_menus_reveal_children() {
        let (mut t, _, menu, _) = tree();
        t.open_popup(menu);
        let s = build(&t, &InstabilityModel::off(), 0);
        assert!(s.find_by_name("Blue").is_some());
    }

    #[test]
    fn runtime_ids_track_widget_ids() {
        let (mut t, _, menu, item) = tree();
        t.open_popup(menu);
        let s = build(&t, &InstabilityModel::off(), 0);
        let idx = s.find_by_name("Blue").unwrap();
        assert_eq!(widget_of(s.node(idx).runtime_id), item);
    }

    #[test]
    fn late_loading_children_absent_then_present() {
        let (mut t, _, menu, _) = tree();
        t.open_popup(menu);
        t.set_pending_children(menu, 5);
        let s4 = build(&t, &InstabilityModel::off(), 4);
        assert!(s4.find_by_name("Blue").is_none());
        let s5 = build(&t, &InstabilityModel::off(), 5);
        assert!(s5.find_by_name("Blue").is_some());
    }

    #[test]
    fn name_variation_applies_in_snapshot_only() {
        let (mut t, _, menu, _) = tree();
        t.open_popup(menu);
        let inst = InstabilityModel::new(3, 0.0, 1.0);
        let s = build(&t, &inst, 0);
        // The provider-side name is unchanged.
        assert_eq!(t.widget(menu).name, "Colors");
        // The snapshot name is the varied one.
        let snap_names: Vec<String> = s.iter().map(|(_, n)| n.props.name.clone()).collect();
        assert!(snap_names
            .iter()
            .any(|n| n != "Colors" && n.starts_with("Colors") || n == "Colors*"));
    }

    #[test]
    fn multiple_windows_in_z_order() {
        let (mut t, ..) = tree();
        let dlg = t.add_root(Widget::new("Format Cells", CT::Window));
        t.add(dlg, Widget::new("OK", CT::Button));
        t.open_window(dlg, true);
        let s = build(&t, &InstabilityModel::off(), 0);
        assert_eq!(s.windows().len(), 2);
        let top = s.top_window().unwrap();
        assert_eq!(s.node(top).props.name, "Format Cells");
    }
}
