//! The mutable provider-side control tree.
//!
//! A [`UiTree`] is an arena of widgets plus the runtime UI state the
//! toolkit manages: the open-window stack (main window, dialogs, child
//! windows), the open-popup chain (menus, dropdowns), keyboard focus,
//! active UI contexts (e.g. "image-selected"), and shortcut bindings.
//!
//! Widgets are never removed from the arena — hidden instead — so
//! [`WidgetId`]s are stable for the lifetime of the application instance.

use crate::behavior::{CommandBinding, ShortcutAction};
use crate::widget::{Widget, WidgetId};
use dmi_uia::ControlType;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// An entry in the open-window stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpenWindow {
    /// Arena root of the window.
    pub root: WidgetId,
    /// Whether input outside the window is blocked.
    pub modal: bool,
}

/// The provider-side control tree and its runtime UI state.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct UiTree {
    widgets: Vec<Widget>,
    /// Arena root of the main application window.
    main_root: Option<WidgetId>,
    /// Open windows, bottom to top; index 0 is the main window.
    open_windows: Vec<OpenWindow>,
    /// Open popup containers, in open order (a chain for nested menus).
    open_popups: Vec<WidgetId>,
    /// Keyboard focus.
    focus: Option<WidgetId>,
    /// Active UI contexts gating `visible_when` widgets.
    contexts: BTreeSet<String>,
    /// Tree-level keyboard shortcuts.
    shortcuts: BTreeMap<String, ShortcutAction>,
    /// Widgets whose children are still "loading": hidden from snapshots
    /// until the given query sequence number (instability injection).
    pending_children: BTreeMap<WidgetId, u64>,
    /// Monotonic counter of *persistent* state mutations: widget property
    /// writes, arena growth, selection, focus, and context changes — the
    /// state a freshly launched application would not have. Deliberately
    /// NOT bumped by window/popup open/close (transient UI, undone by Esc)
    /// or tab selection (self-healing: selecting a tab deselects its
    /// siblings). The ripper's recovery planner compares epochs to decide
    /// whether pressing Esc can reach a launch-equivalent state or a full
    /// restart is required (§4.1 state restoration).
    #[serde(skip)]
    state_epoch: u64,
    /// Monotonic clock issuing per-window mutation stamps (see
    /// [`UiTree::window_stamp`]). Shared across roots so stamps are
    /// totally ordered within one tree lineage.
    #[serde(skip)]
    view_clock: u64,
    /// Stamp of the last *snapshot-visible* mutation per arena root:
    /// widget property writes, arena growth, tab/item selection, and
    /// pending-children schedules under that root. Popup expansion and
    /// the window stack are deliberately NOT stamped — they are keyed
    /// structurally (open-popup chain, open-window stack) by the capture
    /// cache, so transient open+close sequences return to a cache hit.
    #[serde(skip)]
    window_stamps: BTreeMap<WidgetId, u64>,
    /// Floor value reported for roots with no stamp on record. Advanced
    /// past every issued stamp on `clone_from` (a wholesale restore), so
    /// capture keys recorded before a reset can never validate after it.
    #[serde(skip)]
    stamp_floor: u64,
    /// Bumped whenever the active-context set changes. Contexts gate
    /// `visible_when` widgets in *any* window, so this is a global key
    /// component rather than a per-root stamp.
    #[serde(skip)]
    context_epoch: u64,
}

impl Clone for UiTree {
    fn clone(&self) -> UiTree {
        UiTree {
            widgets: self.widgets.clone(),
            main_root: self.main_root,
            open_windows: self.open_windows.clone(),
            open_popups: self.open_popups.clone(),
            focus: self.focus,
            contexts: self.contexts.clone(),
            shortcuts: self.shortcuts.clone(),
            pending_children: self.pending_children.clone(),
            state_epoch: self.state_epoch,
            view_clock: self.view_clock,
            window_stamps: self.window_stamps.clone(),
            stamp_floor: self.stamp_floor,
            context_epoch: self.context_epoch,
        }
    }

    /// Allocation-recycling restore: reuses the destination arena's
    /// `String`/`Vec` buffers widget-by-widget (see [`Widget`]'s manual
    /// `clone_from`), so an `office::Pristine` reset is O(live mutations)
    /// in allocations instead of re-allocating every widget name.
    ///
    /// The epochs are NOT copied from the source: a wholesale restore is
    /// one big mutation, so every counter advances monotonically past both
    /// trees. Capture keys recorded against the old state (or against the
    /// pristine image's own counters) can therefore never validate against
    /// the restored tree.
    // The source is destructured exhaustively so adding a field without
    // deciding its restore semantics is a compile error.
    fn clone_from(&mut self, src: &UiTree) {
        let UiTree {
            widgets,
            main_root,
            open_windows,
            open_popups,
            focus,
            contexts,
            shortcuts,
            pending_children,
            state_epoch,
            view_clock,
            window_stamps: _, // Superseded: every stamp re-floors below.
            stamp_floor: _,
            context_epoch,
        } = src;
        self.widgets.clone_from(widgets);
        self.main_root = *main_root;
        self.open_windows.clone_from(open_windows);
        self.open_popups.clone_from(open_popups);
        self.focus = *focus;
        // Equality pre-checks: these maps are almost always identical to
        // the pristine image (shortcuts never change at runtime), and the
        // compare is allocation-free where a blind clone is not.
        if self.contexts != *contexts {
            self.contexts = contexts.clone();
        }
        if self.shortcuts != *shortcuts {
            self.shortcuts = shortcuts.clone();
        }
        if self.pending_children != *pending_children {
            self.pending_children = pending_children.clone();
        }
        self.state_epoch = self.state_epoch.max(*state_epoch) + 1;
        self.view_clock = self.view_clock.max(*view_clock) + 1;
        self.stamp_floor = self.view_clock;
        self.window_stamps.clear();
        self.context_epoch = self.context_epoch.max(*context_epoch) + 1;
    }
}

impl UiTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        UiTree::default()
    }

    /// Stamps the window (arena root) containing `id` with a fresh view
    /// tick: any snapshot or layout of that window cached against an
    /// earlier stamp is stale.
    fn stamp(&mut self, id: WidgetId) {
        let root = self.root_of(id);
        self.view_clock += 1;
        self.window_stamps.insert(root, self.view_clock);
    }

    /// Adds a root widget (no parent). The first root added becomes the
    /// main window and is opened immediately; later roots are dialog or
    /// child-window roots, closed until opened.
    pub fn add_root(&mut self, w: Widget) -> WidgetId {
        let id = WidgetId(self.widgets.len());
        let mut w = w;
        w.parent = None;
        self.state_epoch += 1;
        self.widgets.push(w);
        self.stamp(id);
        if self.main_root.is_none() {
            self.main_root = Some(id);
            self.open_windows.push(OpenWindow { root: id, modal: false });
        }
        id
    }

    /// Adds a child widget under `parent` and returns its id.
    pub fn add(&mut self, parent: WidgetId, w: Widget) -> WidgetId {
        let id = WidgetId(self.widgets.len());
        let mut w = w;
        w.parent = Some(parent);
        self.state_epoch += 1;
        self.widgets.push(w);
        self.widgets[parent.0].children.push(id);
        self.stamp(parent);
        id
    }

    /// Number of widgets in the arena.
    pub fn len(&self) -> usize {
        self.widgets.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.widgets.is_empty()
    }

    /// Borrows a widget.
    pub fn widget(&self, id: WidgetId) -> &Widget {
        &self.widgets[id.0]
    }

    /// Mutably borrows a widget. Counts as a persistent state mutation
    /// (see [`UiTree::state_epoch`]): callers hold a write handle, and the
    /// tree must assume a property changed.
    pub fn widget_mut(&mut self, id: WidgetId) -> &mut Widget {
        self.state_epoch += 1;
        self.stamp(id);
        &mut self.widgets[id.0]
    }

    /// Renames a widget WITHOUT bumping the state epoch or the window
    /// stamp — the tree's change-tracking invariant is deliberately
    /// violated. Fault-injection hook for the fuzzer: a provider whose
    /// properties drift while its stamps claim nothing changed models a
    /// real app lying to the capture cache. Never call this from
    /// production code; every capture layer is entitled to trust stamps.
    #[doc(hidden)]
    pub fn relabel_unstamped(&mut self, id: WidgetId, name: impl Into<String>) {
        self.widgets[id.0].name = name.into();
    }

    /// The persistent-mutation epoch. Two equal readings bracket a span in
    /// which no widget property, arena, selection, focus, or context
    /// changed — transient window/popup state and tab selection excluded —
    /// so pressing Esc back to the base window provably restores a
    /// launch-equivalent UI.
    pub fn state_epoch(&self) -> u64 {
        self.state_epoch
    }

    /// The stamp of the last snapshot-visible mutation inside the window
    /// rooted at `root` (widget writes, arena growth, tab/item selection,
    /// pending-children schedules). Popup expansion and the window stack
    /// move no stamp — capture caches key them structurally, so transient
    /// open+close sequences compare equal again. Two equal readings (with
    /// equal popup chains and context epoch) prove the window's snapshot
    /// subtree and layout rows are byte-identical.
    pub fn window_stamp(&self, root: WidgetId) -> u64 {
        self.window_stamps.get(&root).copied().unwrap_or(self.stamp_floor)
    }

    /// The active-context epoch: bumped whenever the context set changes
    /// (contexts gate `visible_when` widgets in any window).
    pub fn context_epoch(&self) -> u64 {
        self.context_epoch
    }

    /// The open popups whose subtrees live under `root`, in chain order.
    /// Part of every per-window capture key: expansion state is kept in
    /// lockstep with the chain by [`UiTree::open_popup`] and
    /// [`UiTree::collapse_popup`].
    pub fn popups_under(&self, root: WidgetId) -> Vec<WidgetId> {
        self.open_popups.iter().copied().filter(|&p| self.root_of(p) == root).collect()
    }

    /// The earliest query sequence at which a pending-children schedule
    /// under `root` will reveal a subtree that is hidden at `query_seq`
    /// (`u64::MAX` when none is outstanding). A snapshot of this window
    /// built at `query_seq` stays observably identical to an eager rebuild
    /// for every query strictly before the returned value.
    pub fn next_reveal_under(&self, root: WidgetId, query_seq: u64) -> u64 {
        self.pending_children
            .iter()
            .filter(|&(&id, &ready)| ready > query_seq && self.root_of(id) == root)
            .map(|(_, &ready)| ready)
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Iterates over all widgets with ids.
    pub fn iter(&self) -> impl Iterator<Item = (WidgetId, &Widget)> {
        self.widgets.iter().enumerate().map(|(i, w)| (WidgetId(i), w))
    }

    /// The main window root.
    pub fn main_root(&self) -> WidgetId {
        self.main_root.expect("tree has no main root")
    }

    /// The open-window stack, bottom to top.
    pub fn open_windows(&self) -> &[OpenWindow] {
        &self.open_windows
    }

    /// The topmost open window.
    pub fn top_window(&self) -> OpenWindow {
        *self.open_windows.last().expect("window stack empty")
    }

    /// The chain of open popups, outermost first.
    pub fn open_popups(&self) -> &[WidgetId] {
        &self.open_popups
    }

    /// The focused widget, if any.
    pub fn focus(&self) -> Option<WidgetId> {
        self.focus
    }

    /// Sets keyboard focus.
    pub fn set_focus(&mut self, id: Option<WidgetId>) {
        if self.focus != id {
            self.state_epoch += 1;
        }
        self.focus = id;
    }

    /// Registers a tree-level keyboard shortcut (e.g. `"Ctrl+B"`).
    pub fn bind_shortcut(&mut self, keys: impl Into<String>, action: ShortcutAction) {
        self.shortcuts.insert(keys.into(), action);
    }

    /// Looks up a shortcut.
    pub fn shortcut(&self, keys: &str) -> Option<&ShortcutAction> {
        self.shortcuts.get(keys)
    }

    /// Activates or deactivates a UI context (e.g. `"image-selected"`).
    pub fn set_context(&mut self, ctx: &str, on: bool) {
        let changed =
            if on { self.contexts.insert(ctx.to_string()) } else { self.contexts.remove(ctx) };
        if changed {
            self.state_epoch += 1;
            self.context_epoch += 1;
        }
    }

    /// Whether a context is active.
    pub fn context_active(&self, ctx: &str) -> bool {
        self.contexts.contains(ctx)
    }

    /// Active contexts in sorted order.
    pub fn active_contexts(&self) -> impl Iterator<Item = &str> {
        self.contexts.iter().map(|s| s.as_str())
    }

    /// Whether the window rooted at `root` is open.
    pub fn is_window_open(&self, root: WidgetId) -> bool {
        self.open_windows.iter().any(|w| w.root == root)
    }

    /// Opens the window rooted at `root` (push on top of the stack).
    pub fn open_window(&mut self, root: WidgetId, modal: bool) {
        if !self.is_window_open(root) {
            self.open_windows.push(OpenWindow { root, modal });
        }
    }

    /// Closes the topmost window (never the main window). Returns its root.
    pub fn close_top_window(&mut self) -> Option<WidgetId> {
        if self.open_windows.len() > 1 {
            // Close any popups that live inside the window being closed.
            let root = self.open_windows.pop().map(|w| w.root);
            if let Some(r) = root {
                let inside: Vec<WidgetId> = self
                    .open_popups
                    .iter()
                    .copied()
                    .filter(|&p| self.window_root_of(p) == Some(r))
                    .collect();
                for p in inside {
                    self.collapse_popup(p);
                }
            }
            root
        } else {
            None
        }
    }

    /// Opens a popup container (marks expanded, appends to the chain).
    pub fn open_popup(&mut self, id: WidgetId) {
        if !self.open_popups.contains(&id) {
            self.widgets[id.0].expanded = true;
            self.open_popups.push(id);
        }
    }

    /// Closes one popup (and any popups opened after it).
    pub fn collapse_popup(&mut self, id: WidgetId) {
        if let Some(pos) = self.open_popups.iter().position(|&p| p == id) {
            for &p in &self.open_popups[pos..] {
                // Collapse later popups too; they are nested under this one.
                let _ = p;
            }
            let closing: Vec<WidgetId> = self.open_popups.drain(pos..).collect();
            for p in closing {
                self.widgets[p.0].expanded = false;
            }
        }
    }

    /// Closes every open popup.
    pub fn close_all_popups(&mut self) {
        let all: Vec<WidgetId> = self.open_popups.drain(..).collect();
        for p in all {
            self.widgets[p.0].expanded = false;
        }
    }

    /// Closes popups that do not contain `id` in their subtree (clicking
    /// elsewhere dismisses unrelated menus).
    pub fn close_popups_not_containing(&mut self, id: WidgetId) {
        let keep: Vec<WidgetId> = self
            .open_popups
            .iter()
            .copied()
            .take_while(|&p| self.is_descendant_or_self(id, p))
            .collect();
        let to_close: Vec<WidgetId> = self.open_popups[keep.len()..].to_vec();
        if let Some(&first) = to_close.first() {
            self.collapse_popup(first);
        }
    }

    /// Whether `id` is `anc` or inside `anc`'s subtree.
    pub fn is_descendant_or_self(&self, id: WidgetId, anc: WidgetId) -> bool {
        let mut cur = Some(id);
        while let Some(c) = cur {
            if c == anc {
                return true;
            }
            cur = self.widgets[c.0].parent;
        }
        false
    }

    /// The arena root above `id`.
    pub fn root_of(&self, id: WidgetId) -> WidgetId {
        let mut cur = id;
        while let Some(p) = self.widgets[cur.0].parent {
            cur = p;
        }
        cur
    }

    /// The open-window root containing `id`, if its root is open.
    pub fn window_root_of(&self, id: WidgetId) -> Option<WidgetId> {
        let root = self.root_of(id);
        self.is_window_open(root).then_some(root)
    }

    /// Whether a widget is currently revealed (its window open, every
    /// popup ancestor expanded, every tab ancestor selected, context
    /// conditions met, and static visibility on).
    pub fn is_shown(&self, id: WidgetId) -> bool {
        let w = &self.widgets[id.0];
        if !w.visible {
            return false;
        }
        if let Some(ctx) = &w.visible_when {
            if !self.contexts.contains(ctx) {
                return false;
            }
        }
        match w.parent {
            None => self.is_window_open(id),
            Some(p) => {
                let pw = &self.widgets[p.0];
                if pw.popup && !pw.expanded {
                    return false;
                }
                if pw.control_type == ControlType::TabItem && !pw.selected {
                    return false;
                }
                self.is_shown(p)
            }
        }
    }

    /// Selects a tab item, deselecting its sibling tab items.
    pub fn select_tab(&mut self, id: WidgetId) {
        self.stamp(id);
        let parent = self.widgets[id.0].parent;
        if let Some(p) = parent {
            let siblings: Vec<WidgetId> = self.widgets[p.0]
                .children
                .iter()
                .copied()
                .filter(|&c| self.widgets[c.0].control_type == ControlType::TabItem)
                .collect();
            for s in siblings {
                self.widgets[s.0].selected = s == id;
            }
        } else {
            self.widgets[id.0].selected = true;
        }
    }

    /// Selects a selection item; when not `additive`, deselects siblings.
    pub fn select_item(&mut self, id: WidgetId, additive: bool) {
        self.state_epoch += 1;
        self.stamp(id);
        if !additive {
            if let Some(p) = self.widgets[id.0].parent {
                let siblings = self.widgets[p.0].children.clone();
                for s in siblings {
                    self.widgets[s.0].selected = false;
                }
            }
        }
        self.widgets[id.0].selected = true;
    }

    /// Marks a container's children as still loading until `ready_query`.
    pub fn set_pending_children(&mut self, id: WidgetId, ready_query: u64) {
        self.state_epoch += 1;
        self.stamp(id);
        self.pending_children.insert(id, ready_query);
    }

    /// Whether a container's children are hidden at query `query_seq`.
    pub fn children_pending(&self, id: WidgetId, query_seq: u64) -> bool {
        self.pending_children.get(&id).is_some_and(|&r| query_seq < r)
    }

    /// Depth-first pre-order ids below `root` (inclusive), *structural*
    /// (ignores visibility).
    pub fn descendants(&self, root: WidgetId) -> Vec<WidgetId> {
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(i) = stack.pop() {
            out.push(i);
            for &c in self.widgets[i.0].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Finds the first widget with the given name (structural search).
    pub fn find_by_name(&self, name: &str) -> Option<WidgetId> {
        self.iter().find(|(_, w)| w.name == name).map(|(i, _)| i)
    }

    /// Finds the first widget with the given automation id.
    pub fn find_by_automation_id(&self, auto: &str) -> Option<WidgetId> {
        self.iter().find(|(_, w)| w.automation_id == auto).map(|(i, _)| i)
    }

    /// The semantic command binding attached to a widget through its
    /// click behavior, if any.
    pub fn command_of(&self, id: WidgetId) -> Option<&CommandBinding> {
        use crate::behavior::Behavior;
        match &self.widgets[id.0].on_click {
            Behavior::Command(b) | Behavior::CommandAndDismiss(b) => Some(b),
            _ => None,
        }
    }

    /// Restores the runtime UI state to "freshly launched": only the main
    /// window open, no popups, no focus, contexts cleared. Widget state
    /// (values, toggles) is left to the application's own reset.
    pub fn reset_ui_state(&mut self) {
        self.close_all_popups();
        while self.open_windows.len() > 1 {
            self.open_windows.pop();
        }
        self.focus = None;
        if !self.contexts.is_empty() {
            self.contexts.clear();
            self.context_epoch += 1;
        }
        if !self.pending_children.is_empty() {
            // Dropping a schedule re-reveals hidden subtrees: stamp every
            // window that had one outstanding.
            let roots: Vec<WidgetId> =
                self.pending_children.keys().map(|&id| self.root_of(id)).collect();
            self.pending_children.clear();
            for root in roots {
                self.stamp(root);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::widget::WidgetBuilder;
    use dmi_uia::ControlType as CT;

    fn tree() -> (UiTree, WidgetId, WidgetId, WidgetId, WidgetId) {
        let mut t = UiTree::new();
        let main = t.add_root(Widget::new("Main", CT::Window));
        let tabs = t.add(main, Widget::new("Ribbon", CT::Tab));
        let home = t.add(tabs, WidgetBuilder::new("Home", CT::TabItem).selected().build());
        let insert = t.add(tabs, Widget::new("Insert", CT::TabItem));
        (t, main, tabs, home, insert)
    }

    #[test]
    fn first_root_is_open_main_window() {
        let (t, main, ..) = tree();
        assert_eq!(t.main_root(), main);
        assert!(t.is_window_open(main));
        assert_eq!(t.open_windows().len(), 1);
    }

    #[test]
    fn tab_scoping_hides_unselected_panels() {
        let (mut t, _, _, home, insert) = tree();
        let bold = t.add(home, Widget::new("Bold", CT::Button));
        let table = t.add(insert, Widget::new("Table", CT::Button));
        assert!(t.is_shown(bold));
        assert!(!t.is_shown(table));
        t.select_tab(insert);
        assert!(!t.is_shown(bold));
        assert!(t.is_shown(table));
    }

    #[test]
    fn popup_chain_open_and_collapse() {
        let (mut t, main, ..) = tree();
        let menu = t.add(main, WidgetBuilder::new("Colors", CT::SplitButton).popup().build());
        let sub = t.add(menu, WidgetBuilder::new("More", CT::MenuItem).popup().build());
        let cell = t.add(sub, Widget::new("Blue", CT::ListItem));
        assert!(!t.is_shown(cell));
        t.open_popup(menu);
        t.open_popup(sub);
        assert!(t.is_shown(cell));
        assert_eq!(t.open_popups().len(), 2);
        t.collapse_popup(menu);
        assert!(t.open_popups().is_empty());
        assert!(!t.is_shown(cell));
    }

    #[test]
    fn close_popups_not_containing_keeps_own_chain() {
        let (mut t, main, ..) = tree();
        let menu = t.add(main, WidgetBuilder::new("Colors", CT::SplitButton).popup().build());
        let item = t.add(menu, Widget::new("Blue", CT::ListItem));
        let other = t.add(main, Widget::new("Paste", CT::Button));
        t.open_popup(menu);
        t.close_popups_not_containing(item);
        assert_eq!(t.open_popups().len(), 1);
        t.close_popups_not_containing(other);
        assert!(t.open_popups().is_empty());
    }

    #[test]
    fn dialog_windows_stack_and_close() {
        let (mut t, main, ..) = tree();
        let dlg = t.add_root(Widget::new("Format", CT::Window));
        let ok = t.add(dlg, Widget::new("OK", CT::Button));
        assert!(!t.is_shown(ok));
        t.open_window(dlg, true);
        assert!(t.is_shown(ok));
        assert!(t.top_window().modal);
        assert_eq!(t.close_top_window(), Some(dlg));
        assert!(!t.is_shown(ok));
        // The main window never closes.
        assert_eq!(t.close_top_window(), None);
        assert!(t.is_window_open(main));
    }

    #[test]
    fn context_gated_visibility() {
        let (mut t, main, ..) = tree();
        let pic = t.add(
            main,
            WidgetBuilder::new("Picture Format", CT::TabItem)
                .visible_when("image-selected")
                .build(),
        );
        assert!(!t.is_shown(pic));
        t.set_context("image-selected", true);
        assert!(t.is_shown(pic));
        t.set_context("image-selected", false);
        assert!(!t.is_shown(pic));
    }

    #[test]
    fn window_root_of_walks_up() {
        let (mut t, main, _, home, _) = tree();
        let bold = t.add(home, Widget::new("Bold", CT::Button));
        assert_eq!(t.window_root_of(bold), Some(main));
        let dlg = t.add_root(Widget::new("Dialog", CT::Window));
        let btn = t.add(dlg, Widget::new("OK", CT::Button));
        assert_eq!(t.window_root_of(btn), None);
        t.open_window(dlg, true);
        assert_eq!(t.window_root_of(btn), Some(dlg));
    }

    #[test]
    fn pending_children_window() {
        let (mut t, main, ..) = tree();
        t.set_pending_children(main, 5);
        assert!(t.children_pending(main, 4));
        assert!(!t.children_pending(main, 5));
    }

    #[test]
    fn reset_ui_state_restores_launch_shape() {
        let (mut t, ..) = tree();
        let dlg = t.add_root(Widget::new("Dialog", CT::Window));
        t.open_window(dlg, true);
        t.set_context("image-selected", true);
        t.reset_ui_state();
        assert_eq!(t.open_windows().len(), 1);
        assert!(!t.context_active("image-selected"));
    }

    #[test]
    fn state_epoch_tracks_persistent_mutations_only() {
        let (mut t, main, _, home, insert) = tree();
        let dlg = t.add_root(Widget::new("Dialog", CT::Window));
        let menu = t.add(main, WidgetBuilder::new("Colors", CT::SplitButton).popup().build());
        let epoch = t.state_epoch();
        // Transient UI: windows and popups do not move the epoch.
        t.open_window(dlg, true);
        t.close_top_window();
        t.open_popup(menu);
        t.collapse_popup(menu);
        // Tab selection is self-healing (selecting deselects siblings).
        t.select_tab(insert);
        t.select_tab(home);
        assert_eq!(t.state_epoch(), epoch, "transient state must not move the epoch");
        // Persistent mutations do.
        t.widget_mut(home).enabled = false;
        assert!(t.state_epoch() > epoch, "widget writes move the epoch");
        let epoch = t.state_epoch();
        t.set_context("image-selected", true);
        assert!(t.state_epoch() > epoch, "context changes move the epoch");
        let epoch = t.state_epoch();
        t.set_context("image-selected", true); // Already active: no change.
        assert_eq!(t.state_epoch(), epoch);
    }

    #[test]
    fn window_stamps_track_visible_mutations_per_root() {
        let (mut t, main, _, home, insert) = tree();
        let dlg = t.add_root(Widget::new("Dialog", CT::Window));
        let btn = t.add(dlg, Widget::new("OK", CT::Button));
        let menu = t.add(main, WidgetBuilder::new("Colors", CT::SplitButton).popup().build());
        let (m0, d0) = (t.window_stamp(main), t.window_stamp(dlg));
        // Transient structure: popups and the window stack move no stamp
        // (capture caches key them structurally).
        t.open_window(dlg, true);
        t.open_popup(menu);
        t.collapse_popup(menu);
        t.close_top_window();
        assert_eq!((t.window_stamp(main), t.window_stamp(dlg)), (m0, d0));
        // A widget write stamps exactly its owning window.
        t.widget_mut(btn).enabled = false;
        assert_eq!(t.window_stamp(main), m0, "main window untouched");
        assert!(t.window_stamp(dlg) > d0, "dialog window stamped");
        // Tab selection stamps the window but not the persistent epoch.
        let epoch = t.state_epoch();
        t.select_tab(insert);
        t.select_tab(home);
        assert_eq!(t.state_epoch(), epoch, "tab selection stays transient for recovery");
        assert!(t.window_stamp(main) > m0, "tab selection is snapshot-visible");
    }

    #[test]
    fn context_epoch_moves_only_on_actual_changes() {
        let (mut t, ..) = tree();
        let c0 = t.context_epoch();
        t.set_context("image-selected", true);
        assert!(t.context_epoch() > c0);
        let c1 = t.context_epoch();
        t.set_context("image-selected", true); // Already active.
        assert_eq!(t.context_epoch(), c1);
        t.set_context("image-selected", false);
        assert!(t.context_epoch() > c1);
    }

    #[test]
    fn clone_from_recycles_buffers_and_advances_epochs() {
        let (mut t, main, ..) = tree();
        let label = t.add(main, Widget::new("A label with a long name", CT::Text));
        let pristine = t.clone();
        // Mutate, then restore.
        t.widget_mut(label).name.push_str(" (edited)");
        t.widget_mut(label).enabled = false;
        let ptr_before = t.widget(label).name.as_ptr();
        let (e0, s0, c0) = (t.state_epoch(), t.window_stamp(main), t.context_epoch());
        t.clone_from(&pristine);
        assert_eq!(t.widget(label).name, "A label with a long name");
        assert!(t.widget(label).enabled);
        assert_eq!(
            t.widget(label).name.as_ptr(),
            ptr_before,
            "restore must reuse the existing string buffer"
        );
        // Every epoch advanced past both trees: no capture key recorded
        // before the restore can validate after it.
        assert!(t.state_epoch() > e0.max(pristine.state_epoch()));
        assert!(t.window_stamp(main) > s0);
        assert!(t.context_epoch() > c0.max(pristine.context_epoch()));
    }

    #[test]
    fn next_reveal_under_scopes_to_the_owning_root() {
        let (mut t, main, ..) = tree();
        let dlg = t.add_root(Widget::new("Dialog", CT::Window));
        let menu = t.add(main, WidgetBuilder::new("Colors", CT::SplitButton).popup().build());
        t.set_pending_children(menu, 7);
        assert_eq!(t.next_reveal_under(main, 3), 7);
        assert_eq!(t.next_reveal_under(main, 7), u64::MAX, "already revealed");
        assert_eq!(t.next_reveal_under(dlg, 3), u64::MAX, "other windows unaffected");
    }

    #[test]
    fn select_item_exclusive_and_additive() {
        let (mut t, main, ..) = tree();
        let list = t.add(main, Widget::new("List", CT::List));
        let a = t.add(list, Widget::new("A", CT::ListItem));
        let b = t.add(list, Widget::new("B", CT::ListItem));
        t.select_item(a, false);
        t.select_item(b, true);
        assert!(t.widget(a).selected && t.widget(b).selected);
        t.select_item(a, false);
        assert!(t.widget(a).selected);
        assert!(!t.widget(b).selected);
    }
}
