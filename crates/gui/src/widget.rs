//! Widgets: the provider-side control representation.

use crate::behavior::Behavior;
use dmi_uia::{ControlType, PatternSet, ToggleState};
use serde::{Deserialize, Serialize};

/// Index of a widget in a [`crate::UiTree`] arena.
///
/// Stable for the lifetime of the application instance (widgets are never
/// removed from the arena, only hidden), so it doubles as the basis of the
/// snapshot [`dmi_uia::RuntimeId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WidgetId(pub usize);

impl std::fmt::Display for WidgetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "w{}", self.0)
    }
}

// Widget ids key serialized maps (e.g. pending-children schedules).
impl serde::SerKey for WidgetId {
    fn to_key(&self) -> String {
        self.0.to_string()
    }

    fn from_key(s: &str) -> Result<Self, serde::Error> {
        s.parse().map(WidgetId).map_err(|_| serde::Error::msg(format!("bad widget id `{s}`")))
    }
}

/// One control in the provider tree.
#[derive(Debug, Serialize, Deserialize)]
pub struct Widget {
    /// UIA name.
    pub name: String,
    /// UIA automation id (possibly empty; not guaranteed unique).
    pub automation_id: String,
    /// Control type.
    pub control_type: ControlType,
    /// Provider class name.
    pub class_name: String,
    /// Help text / full description.
    pub help_text: String,
    /// Patterns the control supports.
    pub patterns: PatternSet,
    /// What a click does.
    pub on_click: Behavior,
    /// Parent in the arena.
    pub parent: Option<WidgetId>,
    /// Children in document order.
    pub children: Vec<WidgetId>,
    /// Whether the control is enabled.
    pub enabled: bool,
    /// Static visibility flag (context-conditional widgets toggle this
    /// through `visible_when`).
    pub visible: bool,
    /// Context key; when set, the widget is shown only while that context
    /// is active on the tree (e.g. `"image-selected"` for PowerPoint's
    /// Picture Format tab).
    pub visible_when: Option<String>,
    /// Whether children are revealed only while `expanded` (popup
    /// containers: menus, split buttons, combo boxes).
    pub popup: bool,
    /// ExpandCollapse state.
    pub expanded: bool,
    /// SelectionItem state (tab items, list items).
    pub selected: bool,
    /// Toggle state.
    pub toggle: Option<ToggleState>,
    /// Value (edit fields, cells, name box).
    pub value: String,
    /// Vertical scroll position in percent (0..=100) for scrollable
    /// containers.
    pub scroll_pos: f64,
    /// Whether the widget is a scrollable viewport over its children.
    pub scrollable: bool,
    /// How many children are visible in the viewport at once (scrollable
    /// containers only).
    pub viewport_rows: usize,
    /// Whether the widget is a text-document surface supporting line and
    /// paragraph selection.
    pub text_surface: bool,
    /// Semantic command dispatched on toggle, edit commit (Enter), or
    /// item selection, independent of the click behavior.
    pub binding: Option<crate::behavior::CommandBinding>,
    /// For scrollbars: the scrollable container this scrollbar drives.
    pub scroll_target: Option<WidgetId>,
}

impl Clone for Widget {
    fn clone(&self) -> Widget {
        Widget {
            name: self.name.clone(),
            automation_id: self.automation_id.clone(),
            control_type: self.control_type,
            class_name: self.class_name.clone(),
            help_text: self.help_text.clone(),
            patterns: self.patterns,
            on_click: self.on_click.clone(),
            parent: self.parent,
            children: self.children.clone(),
            enabled: self.enabled,
            visible: self.visible,
            visible_when: self.visible_when.clone(),
            popup: self.popup,
            expanded: self.expanded,
            selected: self.selected,
            toggle: self.toggle,
            value: self.value.clone(),
            scroll_pos: self.scroll_pos,
            scrollable: self.scrollable,
            viewport_rows: self.viewport_rows,
            text_surface: self.text_surface,
            binding: self.binding.clone(),
            scroll_target: self.scroll_target,
        }
    }

    // Field-wise restore that recycles the destination's `String`/`Vec`
    // buffers (`String::clone_from` keeps capacity; `Option::clone_from`
    // reuses the inner value when both sides are `Some`). A pristine
    // reset restores each widget onto its own former self, so every
    // buffer fits and the reset allocates nothing for unchanged widgets.
    // The source is destructured exhaustively so adding a field without
    // restoring it is a compile error, not silent state leakage.
    fn clone_from(&mut self, src: &Widget) {
        let Widget {
            name,
            automation_id,
            control_type,
            class_name,
            help_text,
            patterns,
            on_click,
            parent,
            children,
            enabled,
            visible,
            visible_when,
            popup,
            expanded,
            selected,
            toggle,
            value,
            scroll_pos,
            scrollable,
            viewport_rows,
            text_surface,
            binding,
            scroll_target,
        } = src;
        self.name.clone_from(name);
        self.automation_id.clone_from(automation_id);
        self.control_type = *control_type;
        self.class_name.clone_from(class_name);
        self.help_text.clone_from(help_text);
        self.patterns = *patterns;
        self.on_click.clone_from(on_click);
        self.parent = *parent;
        self.children.clone_from(children);
        self.enabled = *enabled;
        self.visible = *visible;
        self.visible_when.clone_from(visible_when);
        self.popup = *popup;
        self.expanded = *expanded;
        self.selected = *selected;
        self.toggle = *toggle;
        self.value.clone_from(value);
        self.scroll_pos = *scroll_pos;
        self.scrollable = *scrollable;
        self.viewport_rows = *viewport_rows;
        self.text_surface = *text_surface;
        self.binding.clone_from(binding);
        self.scroll_target = *scroll_target;
    }
}

impl Widget {
    /// Creates a widget with type-default patterns and no behavior.
    pub fn new(name: impl Into<String>, control_type: ControlType) -> Self {
        Widget {
            name: name.into(),
            automation_id: String::new(),
            control_type,
            class_name: String::new(),
            help_text: String::new(),
            patterns: PatternSet::defaults_for(control_type),
            on_click: Behavior::None,
            parent: None,
            children: Vec::new(),
            enabled: true,
            visible: true,
            visible_when: None,
            popup: false,
            expanded: false,
            selected: false,
            toggle: None,
            value: String::new(),
            scroll_pos: 0.0,
            scrollable: false,
            viewport_rows: 0,
            text_surface: false,
            binding: None,
            scroll_target: None,
        }
    }

    /// The primary identifier (automation id, else name, else `[Unnamed]`).
    pub fn primary_id(&self) -> &str {
        if !self.automation_id.is_empty() {
            &self.automation_id
        } else if !self.name.is_empty() {
            &self.name
        } else {
            "[Unnamed]"
        }
    }
}

/// Fluent builder used by applications to declare widget subtrees.
///
/// # Examples
///
/// ```
/// use dmi_gui::{WidgetBuilder, Behavior};
/// use dmi_uia::ControlType;
///
/// let w = WidgetBuilder::new("Bold", ControlType::Button)
///     .automation_id("FontBold")
///     .help("Make your text bold.")
///     .on_click(Behavior::Toggle)
///     .build();
/// assert_eq!(w.primary_id(), "FontBold");
/// ```
#[derive(Debug, Clone)]
pub struct WidgetBuilder {
    w: Widget,
}

impl WidgetBuilder {
    /// Starts a builder for a named control.
    pub fn new(name: impl Into<String>, ct: ControlType) -> Self {
        WidgetBuilder { w: Widget::new(name, ct) }
    }

    /// Sets the automation id.
    pub fn automation_id(mut self, id: impl Into<String>) -> Self {
        self.w.automation_id = id.into();
        self
    }

    /// Sets the help text / description.
    pub fn help(mut self, h: impl Into<String>) -> Self {
        self.w.help_text = h.into();
        self
    }

    /// Sets the class name.
    pub fn class(mut self, c: impl Into<String>) -> Self {
        self.w.class_name = c.into();
        self
    }

    /// Sets the click behavior.
    pub fn on_click(mut self, b: Behavior) -> Self {
        self.w.on_click = b;
        self
    }

    /// Marks the widget as a popup container (children shown only while
    /// expanded).
    pub fn popup(mut self) -> Self {
        self.w.popup = true;
        self
    }

    /// Marks the widget disabled.
    pub fn disabled(mut self) -> Self {
        self.w.enabled = false;
        self
    }

    /// Makes visibility conditional on an active context key.
    pub fn visible_when(mut self, ctx: impl Into<String>) -> Self {
        self.w.visible_when = Some(ctx.into());
        self
    }

    /// Sets the initial value.
    pub fn value(mut self, v: impl Into<String>) -> Self {
        self.w.value = v.into();
        self
    }

    /// Sets the toggle state (and implies the Toggle pattern).
    pub fn toggle_state(mut self, on: bool) -> Self {
        self.w.toggle = Some(if on { ToggleState::On } else { ToggleState::Off });
        self.w.patterns.insert(dmi_uia::PatternKind::Toggle);
        self
    }

    /// Marks the widget as initially selected.
    pub fn selected(mut self) -> Self {
        self.w.selected = true;
        self
    }

    /// Makes the widget a scrollable viewport showing `rows` children.
    pub fn scrollable(mut self, rows: usize) -> Self {
        self.w.scrollable = true;
        self.w.viewport_rows = rows.max(1);
        self.w.patterns.insert(dmi_uia::PatternKind::Scroll);
        self
    }

    /// Marks the widget as a text surface (documents).
    pub fn text_surface(mut self) -> Self {
        self.w.text_surface = true;
        self.w.patterns.insert(dmi_uia::PatternKind::Text);
        self
    }

    /// Adds a pattern.
    pub fn pattern(mut self, p: dmi_uia::PatternKind) -> Self {
        self.w.patterns.insert(p);
        self
    }

    /// Attaches a semantic command binding (dispatched on toggle, edit
    /// commit, or selection).
    pub fn binding(mut self, b: crate::behavior::CommandBinding) -> Self {
        self.w.binding = Some(b);
        self
    }

    /// For scrollbars: sets the scrollable container this scrollbar drives.
    pub fn scroll_target(mut self, t: WidgetId) -> Self {
        self.w.scroll_target = Some(t);
        self.w.patterns.insert(dmi_uia::PatternKind::RangeValue);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> Widget {
        self.w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::Behavior;
    use dmi_uia::PatternKind;

    #[test]
    fn builder_sets_fields() {
        let w = WidgetBuilder::new("Font Color", ControlType::SplitButton)
            .automation_id("FontColorPicker")
            .help("Change the color of your text.")
            .popup()
            .on_click(Behavior::OpenMenu)
            .build();
        assert_eq!(w.name, "Font Color");
        assert_eq!(w.automation_id, "FontColorPicker");
        assert!(w.popup);
        assert!(matches!(w.on_click, Behavior::OpenMenu));
    }

    #[test]
    fn toggle_state_implies_pattern() {
        let w = WidgetBuilder::new("Bold", ControlType::Button).toggle_state(false).build();
        assert!(w.patterns.supports(PatternKind::Toggle));
        assert_eq!(w.toggle, Some(ToggleState::Off));
    }

    #[test]
    fn scrollable_implies_scroll_pattern() {
        let w = WidgetBuilder::new("Document", ControlType::Document).scrollable(20).build();
        assert!(w.patterns.supports(PatternKind::Scroll));
        assert_eq!(w.viewport_rows, 20);
    }

    #[test]
    fn primary_id_fallback() {
        let w = Widget::new("", ControlType::Pane);
        assert_eq!(w.primary_id(), "[Unnamed]");
    }

    #[test]
    fn clone_from_recycles_string_buffers() {
        let src = WidgetBuilder::new("Conditional Formatting", ControlType::SplitButton)
            .automation_id("CondFormat")
            .help("Highlight interesting cells.")
            .on_click(Behavior::Command(crate::behavior::CommandBinding::with_arg("open", "menu")))
            .build();
        let mut dst = src.clone();
        dst.value.push_str("dirty");
        let ptrs = (dst.name.as_ptr(), dst.help_text.as_ptr(), dst.automation_id.as_ptr());
        dst.clone_from(&src);
        assert_eq!(dst.name, src.name);
        assert_eq!(dst.value, "");
        assert_eq!(
            (dst.name.as_ptr(), dst.help_text.as_ptr(), dst.automation_id.as_ptr()),
            ptrs,
            "restoring a widget onto its former self must reuse its buffers"
        );
        // Same-variant behaviors recycle the binding's buffers too.
        match (&dst.on_click, &src.on_click) {
            (Behavior::Command(a), Behavior::Command(b)) => assert_eq!(a, b),
            other => panic!("behavior variant changed: {other:?}"),
        }
    }
}
