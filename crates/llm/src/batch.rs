//! Batched plan-call accounting: overlapping simulated model latency
//! across concurrent tasks.
//!
//! One agent task serializes its own LLM calls on its private virtual
//! clock ([`crate::sim::SimLlm::clock_secs`]) — that per-task accounting
//! is part of the task's trace identity and never changes. What a
//! multi-tenant gateway adds is *cross-task* accounting: while one
//! tenant's plan call is in flight, sibling tenants' calls run in the
//! same provider round, so the fleet pays `max` of the batch, not `sum`.
//! [`LlmBatch`] models exactly that: each scheduling round collects the
//! calls issued by every task stepped in the round, and the round's
//! wall-clock contribution is the slowest call — deterministically, from
//! each task's own deterministic latency, independent of real thread
//! timing.
//!
//! The serialized sum is kept too: the `sum / max-sum` ratio is the
//! latency-overlap factor the `serve/*` benches report.

/// One scheduling round's worth of concurrent plan calls.
#[derive(Debug, Clone, Default)]
pub struct LlmBatch {
    /// Per-call simulated latencies collected this round.
    calls: Vec<f64>,
}

impl LlmBatch {
    /// An empty round.
    pub fn new() -> LlmBatch {
        LlmBatch::default()
    }

    /// Adds one task's in-flight call (its deterministic simulated
    /// latency in seconds) to the round.
    pub fn push(&mut self, secs: f64) {
        self.calls.push(secs);
    }

    /// Number of calls in the round.
    pub fn len(&self) -> usize {
        self.calls.len()
    }

    /// Whether the round is empty.
    pub fn is_empty(&self) -> bool {
        self.calls.is_empty()
    }

    /// The round's wall-clock contribution with batching: the calls ride
    /// one provider round, so the round costs its slowest call.
    pub fn overlapped_secs(&self) -> f64 {
        self.calls.iter().copied().fold(0.0, f64::max)
    }

    /// The round's cost had the calls run back to back (the sequential
    /// gateway-of-one baseline).
    pub fn serialized_secs(&self) -> f64 {
        self.calls.iter().sum()
    }

    /// Drains the round for reuse, returning `(overlapped, serialized)`.
    pub fn settle(&mut self) -> (f64, f64) {
        let out = (self.overlapped_secs(), self.serialized_secs());
        if !self.calls.is_empty() {
            dmi_obs::tally("llm.calls", self.calls.len() as u64);
            dmi_obs::tally("llm.overlapped_us", (out.0 * 1e6).round() as u64);
            dmi_obs::tally("llm.serialized_us", (out.1 * 1e6).round() as u64);
            dmi_obs::instant(dmi_obs::Cat::Llm, "batch.settle", self.calls.len() as u64);
        }
        self.calls.clear();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_round_costs_nothing() {
        let b = LlmBatch::new();
        assert!(b.is_empty());
        assert_eq!(b.overlapped_secs(), 0.0);
        assert_eq!(b.serialized_secs(), 0.0);
    }

    #[test]
    fn overlap_is_max_serial_is_sum() {
        let mut b = LlmBatch::new();
        b.push(30.0);
        b.push(45.0);
        b.push(12.5);
        assert_eq!(b.len(), 3);
        assert_eq!(b.overlapped_secs(), 45.0);
        assert_eq!(b.serialized_secs(), 87.5);
    }

    #[test]
    fn settle_drains_for_the_next_round() {
        let mut b = LlmBatch::new();
        b.push(10.0);
        b.push(20.0);
        assert_eq!(b.settle(), (20.0, 30.0));
        assert!(b.is_empty());
        assert_eq!(b.settle(), (0.0, 0.0));
    }
}
