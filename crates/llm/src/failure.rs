//! The paper's failure taxonomy (§5.6, Figure 6).
//!
//! Failures are classified as **policy-level** (semantic planning errors —
//! the LLM's responsibility) or **mechanism-level** (navigation and
//! interaction errors — what DMI eliminates). The reproduction injects
//! these causes with per-profile rates and reports the same distribution
//! the paper's Figure 6 shows.

use serde::{Deserialize, Serialize};

/// Policy vs mechanism classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureLevel {
    /// Semantic planning (the LLM's job under DMI).
    Policy,
    /// Navigation / interaction (DMI's job).
    Mechanism,
}

/// A failure cause, following §5.6's categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FailureCause {
    /// Ambiguous task description misread (42.9% of GUI+DMI failures).
    AmbiguousTask,
    /// Misinterpretation of control semantics (e.g. Find & Replace's
    /// subscript; conditional formatting including blanks) — 28.6%.
    ControlSemanticsMisread,
    /// Misunderstanding of subtle task semantics — 9.5%.
    SubtleTaskSemantics,
    /// Weak visual-semantic understanding of screen payloads — 14.3%.
    WeakVisualSemantic,
    /// Navigation topology / modeling inaccuracies (e.g. the dynamically
    /// renamed "Next" button) — 4.8%.
    TopologyInaccuracy,
    /// Control localization / navigation error (GUI baseline: 14/45).
    ControlLocalization,
    /// Composite interaction error (drags, multi-step selections; 7/45).
    CompositeInteraction,
    /// Ran out of the 30-step budget while recovering.
    StepLimitExceeded,
}

impl FailureCause {
    /// The §5.6 classification used by Figure 6.
    pub fn level(self) -> FailureLevel {
        match self {
            FailureCause::AmbiguousTask
            | FailureCause::ControlSemanticsMisread
            | FailureCause::SubtleTaskSemantics => FailureLevel::Policy,
            FailureCause::WeakVisualSemantic
            | FailureCause::TopologyInaccuracy
            | FailureCause::ControlLocalization
            | FailureCause::CompositeInteraction
            | FailureCause::StepLimitExceeded => FailureLevel::Mechanism,
        }
    }

    /// Short display name.
    pub fn as_str(self) -> &'static str {
        match self {
            FailureCause::AmbiguousTask => "ambiguous task description",
            FailureCause::ControlSemanticsMisread => "control semantics misread",
            FailureCause::SubtleTaskSemantics => "subtle task semantics",
            FailureCause::WeakVisualSemantic => "weak visual-semantic understanding",
            FailureCause::TopologyInaccuracy => "topology/modeling inaccuracy",
            FailureCause::ControlLocalization => "control localization/navigation",
            FailureCause::CompositeInteraction => "composite interaction",
            FailureCause::StepLimitExceeded => "step limit exceeded",
        }
    }

    /// The policy-type causes an LLM can commit regardless of interface.
    pub const POLICY: [FailureCause; 3] = [
        FailureCause::AmbiguousTask,
        FailureCause::ControlSemanticsMisread,
        FailureCause::SubtleTaskSemantics,
    ];
}

impl std::fmt::Display for FailureCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_match_figure_6() {
        assert_eq!(FailureCause::AmbiguousTask.level(), FailureLevel::Policy);
        assert_eq!(FailureCause::ControlSemanticsMisread.level(), FailureLevel::Policy);
        assert_eq!(FailureCause::WeakVisualSemantic.level(), FailureLevel::Mechanism);
        assert_eq!(FailureCause::TopologyInaccuracy.level(), FailureLevel::Mechanism);
        assert_eq!(FailureCause::ControlLocalization.level(), FailureLevel::Mechanism);
        assert_eq!(FailureCause::CompositeInteraction.level(), FailureLevel::Mechanism);
    }

    #[test]
    fn policy_list_is_policy() {
        for c in FailureCause::POLICY {
            assert_eq!(c.level(), FailureLevel::Policy);
        }
    }
}
