//! Simulated LLM latency (the paper's Time column).
//!
//! Per-call latency is modeled as a reasoning-effort base plus linear
//! prompt- and output-token terms, accumulated on a virtual clock.
//! §2.1 motivates this: LLM round-trips cost 10–120+ seconds, which is
//! what makes high-frequency observe–act loops prohibitive.

use serde::{Deserialize, Serialize};

/// Reasoning effort levels of the simulated API (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReasoningEffort {
    Minimal,
    Low,
    Medium,
    High,
}

impl ReasoningEffort {
    /// Display name matching the paper's tables.
    pub fn as_str(self) -> &'static str {
        match self {
            ReasoningEffort::Minimal => "Minimal",
            ReasoningEffort::Low => "Low",
            ReasoningEffort::Medium => "Medium",
            ReasoningEffort::High => "High",
        }
    }
}

/// Linear latency model: `base + prompt_tokens/1000 * per_1k_prompt +
/// output_tokens * per_output_token`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Fixed seconds per call (dominated by reasoning).
    pub base_secs: f64,
    /// Seconds per 1000 prompt tokens.
    pub per_1k_prompt_secs: f64,
    /// Seconds per output token.
    pub per_output_token_secs: f64,
}

impl LatencyModel {
    /// Latency of one call in simulated seconds.
    pub fn call_secs(&self, prompt_tokens: usize, output_tokens: usize) -> f64 {
        self.base_secs
            + prompt_tokens as f64 / 1000.0 * self.per_1k_prompt_secs
            + output_tokens as f64 * self.per_output_token_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_monotone_in_tokens() {
        let m =
            LatencyModel { base_secs: 30.0, per_1k_prompt_secs: 0.4, per_output_token_secs: 0.02 };
        let small = m.call_secs(1_000, 50);
        let big = m.call_secs(30_000, 50);
        assert!(big > small);
        assert!((small - (30.0 + 0.4 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn effort_names() {
        assert_eq!(ReasoningEffort::Medium.as_str(), "Medium");
        assert_eq!(ReasoningEffort::Minimal.as_str(), "Minimal");
    }
}
