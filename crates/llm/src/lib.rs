//! Simulated LLM: capability profiles, failure injection, token and
//! latency accounting.
//!
//! This crate is the substrate substitution for GPT-5 / GPT-5-mini (see
//! `DESIGN.md`). The paper's comparative results derive from *which
//! failure modes each OS interface exposes an LLM to*; the simulator
//! injects exactly the paper's §5.6 taxonomy at calibrated rates, with all
//! stochasticity seeded for reproducibility:
//!
//! - [`profile::CapabilityProfile`]: policy error, grounding error,
//!   composite-interaction error, recovery, instruction-following noise,
//!   bundling horizon, and the latency model;
//! - [`plan`]: semantic oracle plans in both DMI and GUI lowerings, plus
//!   the plausible-but-wrong [`plan::PlanMutation`]s verifiers catch;
//! - [`sim::SimLlm`]: the per-run simulator with its token/latency ledger;
//! - [`failure::FailureCause`]: Figure 6's policy/mechanism taxonomy.

pub mod batch;
pub mod failure;
pub mod latency;
pub mod plan;
pub mod profile;
pub mod sim;

pub use batch::LlmBatch;
pub use failure::{FailureCause, FailureLevel};
pub use latency::{LatencyModel, ReasoningEffort};
pub use plan::{GuiStep, PlanMutation, PlanStep, TargetQuery, TaskPlan, VisitTarget};
pub use profile::CapabilityProfile;
pub use sim::{InterfaceMode, SimLlm};
