//! Semantic task plans: the policy layer.
//!
//! A [`TaskPlan`] is the oracle decomposition of a benchmark task into
//! semantic steps, in two lowerings: the declarative DMI form (one
//! [`PlanStep`] per LLM turn) and the imperative GUI form (a flat action
//! list the baseline must schedule over *visible* controls). Plans are
//! what the simulated LLM "knows"; error injection corrupts them through
//! [`PlanMutation`]s, producing the verifiable wrong behaviours of §5.6.

use serde::{Deserialize, Serialize};

/// How the LLM names an intended control (resolved against the topology
/// under DMI or against the screen under GUI).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TargetQuery {
    /// Control name as the LLM would write it.
    pub name: String,
    /// Optional ancestor-name disambiguator ("Blue" under "Font Color").
    pub under: Option<String>,
}

impl TargetQuery {
    /// A query by bare name.
    pub fn name(n: impl Into<String>) -> Self {
        TargetQuery { name: n.into(), under: None }
    }

    /// A query disambiguated by an ancestor name.
    pub fn under(n: impl Into<String>, anc: impl Into<String>) -> Self {
        TargetQuery { name: n.into(), under: Some(anc.into()) }
    }
}

/// One `visit` target with optional text input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VisitTarget {
    /// The control.
    pub query: TargetQuery,
    /// Text for access-and-input commands.
    pub text: Option<String>,
    /// Follow with this shortcut (e.g. `"Enter"` to commit an edit).
    pub then_shortcut: Option<String>,
}

impl VisitTarget {
    /// A plain access target.
    pub fn click(q: TargetQuery) -> Self {
        VisitTarget { query: q, text: None, then_shortcut: None }
    }

    /// An access-and-input target.
    pub fn input(q: TargetQuery, text: impl Into<String>) -> Self {
        VisitTarget { query: q, text: Some(text.into()), then_shortcut: None }
    }

    /// An access-and-input target committed with Enter.
    pub fn input_enter(q: TargetQuery, text: impl Into<String>) -> Self {
        VisitTarget { query: q, text: Some(text.into()), then_shortcut: Some("Enter".into()) }
    }
}

/// One DMI-mode LLM turn.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlanStep {
    /// One `visit([...])` call (multiple commands bundled).
    Visit(Vec<VisitTarget>),
    /// `set_scrollbar_pos` on a named scrollbar/surface.
    StateScrollbar {
        /// Scrollbar or surface name on screen.
        surface: String,
        /// Target position percent.
        percent: f64,
    },
    /// `select_lines` on a named text surface.
    StateSelectLines {
        /// Surface name.
        surface: String,
        /// First line.
        start: usize,
        /// Last line (inclusive).
        end: usize,
    },
    /// `select_controls` over named on-screen controls.
    StateSelectControls {
        /// Control names to select (multi-select when several).
        names: Vec<String>,
    },
    /// `set_toggle_state` on a named control.
    StateToggle {
        /// Control name.
        name: String,
        /// Desired state.
        on: bool,
    },
    /// Active `get_texts` over named controls (observation round).
    ObserveTexts {
        /// Control names to read.
        names: Vec<String>,
    },
}

/// One imperative GUI action (the baseline's vocabulary).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GuiStep {
    /// Click a control located visually.
    Click(TargetQuery),
    /// Click an edit control and type text.
    ClickAndType {
        /// The edit control.
        target: TargetQuery,
        /// Text to type.
        text: String,
    },
    /// Press a key combination.
    Press(String),
    /// Drag a scrollbar to a position (composite interaction).
    DragScrollbarTo {
        /// Scrollbar name.
        name: String,
        /// Target percent.
        percent: f64,
    },
    /// Drag-select a line range on a text surface (composite).
    DragSelectLines {
        /// Surface name.
        surface: String,
        /// First viewport row.
        start: usize,
        /// Last viewport row.
        end: usize,
    },
}

impl GuiStep {
    /// Whether the action is a composite interaction (exposed to the
    /// composite-error rate rather than the grounding-error rate).
    pub fn is_composite(&self) -> bool {
        matches!(self, GuiStep::DragScrollbarTo { .. } | GuiStep::DragSelectLines { .. })
    }
}

/// The two lowerings of a task's oracle plan.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TaskPlan {
    /// Declarative steps (one LLM turn each).
    pub dmi: Vec<PlanStep>,
    /// Imperative actions (scheduled over visibility by the baseline).
    pub gui: Vec<GuiStep>,
}

impl TaskPlan {
    /// Number of `visit` targets across the DMI plan.
    pub fn dmi_targets(&self) -> usize {
        self.dmi
            .iter()
            .map(|s| match s {
                PlanStep::Visit(v) => v.len(),
                _ => 0,
            })
            .sum()
    }
}

/// A plausible-but-wrong plan edit, used to inject policy failures the
/// verifier can catch (§5.6 failure analysis).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlanMutation {
    /// Replace every target named `from` with `to` (a real control with
    /// the wrong semantics, e.g. the Find & Replace subscript).
    ReplaceTarget {
        /// Intended control name.
        from: String,
        /// Wrong control name.
        to: String,
    },
    /// Drop the DMI step / GUI action that references this name.
    DropStepWith {
        /// Name referenced by the dropped step.
        name: String,
    },
    /// Drop the final step/action (incomplete task).
    DropLast,
    /// Perturb a numeric argument (scroll percent, line index) by delta.
    PerturbNumber {
        /// Added to percents; line ranges shift by its sign.
        delta: f64,
    },
    /// Re-point a target's ancestor disambiguator — the exact §5.6
    /// failure where a control with the *same name* under a different
    /// path has different semantics (Find & Replace's Subscript).
    RetargetUnder {
        /// Target name whose `under` changes.
        name: String,
        /// The wrong ancestor.
        under: String,
    },
    /// Replace a text payload (misread value; weak visual-semantic
    /// understanding of structured data).
    ReplaceText {
        /// Intended text.
        from: String,
        /// Wrong text.
        to: String,
    },
}

fn mutate_query(q: &mut TargetQuery, from: &str, to: &str) {
    if q.name == from {
        q.name = to.to_string();
    }
}

/// Applies a mutation to both lowerings of a plan.
pub fn apply_mutation(plan: &mut TaskPlan, m: &PlanMutation) {
    match m {
        PlanMutation::ReplaceTarget { from, to } => {
            for step in &mut plan.dmi {
                match step {
                    PlanStep::Visit(targets) => {
                        for t in targets {
                            mutate_query(&mut t.query, from, to);
                        }
                    }
                    PlanStep::StateToggle { name, .. } if name == from => {
                        *name = to.clone();
                    }
                    PlanStep::StateSelectControls { names } | PlanStep::ObserveTexts { names } => {
                        for n in names {
                            if n == from {
                                *n = to.clone();
                            }
                        }
                    }
                    _ => {}
                }
            }
            for a in &mut plan.gui {
                match a {
                    GuiStep::Click(q) | GuiStep::ClickAndType { target: q, .. } => {
                        mutate_query(q, from, to)
                    }
                    _ => {}
                }
            }
        }
        PlanMutation::DropStepWith { name } => {
            plan.dmi.retain(|s| !step_mentions(s, name));
            plan.gui.retain(|a| !action_mentions(a, name));
        }
        PlanMutation::DropLast => {
            plan.dmi.pop();
            plan.gui.pop();
        }
        PlanMutation::RetargetUnder { name, under } => {
            for step in &mut plan.dmi {
                if let PlanStep::Visit(targets) = step {
                    for t in targets {
                        if t.query.name == *name {
                            t.query.under = Some(under.clone());
                        }
                    }
                }
            }
            for a in &mut plan.gui {
                if let GuiStep::Click(q) | GuiStep::ClickAndType { target: q, .. } = a {
                    if q.name == *name {
                        q.under = Some(under.clone());
                    }
                }
            }
        }
        PlanMutation::ReplaceText { from, to } => {
            for step in &mut plan.dmi {
                if let PlanStep::Visit(targets) = step {
                    for t in targets {
                        if t.text.as_deref() == Some(from.as_str()) {
                            t.text = Some(to.clone());
                        }
                    }
                }
            }
            for a in &mut plan.gui {
                if let GuiStep::ClickAndType { text, .. } = a {
                    if text == from {
                        *text = to.clone();
                    }
                }
            }
        }
        PlanMutation::PerturbNumber { delta } => {
            for step in &mut plan.dmi {
                match step {
                    PlanStep::StateScrollbar { percent, .. } => {
                        *percent = (*percent + delta).clamp(0.0, 100.0)
                    }
                    PlanStep::StateSelectLines { start, end, .. } => {
                        if *delta >= 0.0 {
                            *start += 1;
                            *end += 1;
                        } else {
                            *start = start.saturating_sub(1);
                            *end = end.saturating_sub(1);
                        }
                    }
                    _ => {}
                }
            }
            for a in &mut plan.gui {
                match a {
                    GuiStep::DragScrollbarTo { percent, .. } => {
                        *percent = (*percent + delta).clamp(0.0, 100.0)
                    }
                    GuiStep::DragSelectLines { start, end, .. } => {
                        if *delta >= 0.0 {
                            *start += 1;
                            *end += 1;
                        } else {
                            *start = start.saturating_sub(1);
                            *end = end.saturating_sub(1);
                        }
                    }
                    _ => {}
                }
            }
        }
    }
}

fn step_mentions(s: &PlanStep, name: &str) -> bool {
    match s {
        PlanStep::Visit(ts) => ts.iter().any(|t| t.query.name == name),
        PlanStep::StateToggle { name: n, .. } => n == name,
        PlanStep::StateScrollbar { surface, .. } | PlanStep::StateSelectLines { surface, .. } => {
            surface == name
        }
        PlanStep::StateSelectControls { names } | PlanStep::ObserveTexts { names } => {
            names.iter().any(|n| n == name)
        }
    }
}

fn action_mentions(a: &GuiStep, name: &str) -> bool {
    match a {
        GuiStep::Click(q) | GuiStep::ClickAndType { target: q, .. } => q.name == name,
        GuiStep::DragScrollbarTo { name: n, .. } => n == name,
        GuiStep::DragSelectLines { surface, .. } => surface == name,
        GuiStep::Press(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> TaskPlan {
        TaskPlan {
            dmi: vec![
                PlanStep::StateSelectLines { surface: "Document".into(), start: 2, end: 4 },
                PlanStep::Visit(vec![
                    VisitTarget::click(TargetQuery::under("Blue", "Font Color")),
                    VisitTarget::click(TargetQuery::name("Bold")),
                ]),
            ],
            gui: vec![
                GuiStep::DragSelectLines { surface: "Document".into(), start: 2, end: 4 },
                GuiStep::Click(TargetQuery::name("Font Color")),
                GuiStep::Click(TargetQuery::under("Blue", "Font Color")),
                GuiStep::Click(TargetQuery::name("Bold")),
            ],
        }
    }

    #[test]
    fn replace_target_hits_both_lowerings() {
        let mut p = sample_plan();
        apply_mutation(
            &mut p,
            &PlanMutation::ReplaceTarget { from: "Bold".into(), to: "Italic".into() },
        );
        match &p.dmi[1] {
            PlanStep::Visit(ts) => assert_eq!(ts[1].query.name, "Italic"),
            other => panic!("{other:?}"),
        }
        assert!(matches!(&p.gui[3], GuiStep::Click(q) if q.name == "Italic"));
    }

    #[test]
    fn drop_last_shortens_both() {
        let mut p = sample_plan();
        apply_mutation(&mut p, &PlanMutation::DropLast);
        assert_eq!(p.dmi.len(), 1);
        assert_eq!(p.gui.len(), 3);
    }

    #[test]
    fn perturb_number_shifts_ranges() {
        let mut p = sample_plan();
        apply_mutation(&mut p, &PlanMutation::PerturbNumber { delta: 1.0 });
        match &p.dmi[0] {
            PlanStep::StateSelectLines { start, end, .. } => assert_eq!((*start, *end), (3, 5)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn drop_step_with_name() {
        let mut p = sample_plan();
        apply_mutation(&mut p, &PlanMutation::DropStepWith { name: "Document".into() });
        assert_eq!(p.dmi.len(), 1);
        assert!(matches!(&p.dmi[0], PlanStep::Visit(_)));
    }

    #[test]
    fn dmi_targets_counts_visits() {
        assert_eq!(sample_plan().dmi_targets(), 2);
    }

    #[test]
    fn composite_classification() {
        assert!(GuiStep::DragScrollbarTo { name: "V".into(), percent: 50.0 }.is_composite());
        assert!(!GuiStep::Click(TargetQuery::name("X")).is_composite());
    }
}
