//! Capability profiles for the simulated LLMs (§5.1's model settings).
//!
//! A profile captures, as rates, the LLM characteristics the paper argues
//! determine interface fit (§2.1, §8): policy (semantic) error rates,
//! visual grounding weakness, composite-interaction fragility, recovery
//! ability, instruction-following noise, and the latency model. The three
//! presets are calibrated so the *relative* results of Table 3 reproduce;
//! see `EXPERIMENTS.md` for calibration notes.

use crate::latency::{LatencyModel, ReasoningEffort};
use serde::{Deserialize, Serialize};

/// A simulated LLM capability profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapabilityProfile {
    /// Display name ("GPT-5", "GPT-5-mini").
    pub model: String,
    /// Configured reasoning effort.
    pub reasoning: ReasoningEffort,
    /// Per-task probability of a policy-level (semantic) error when the
    /// LLM can focus on policy alone (the DMI condition).
    pub policy_err: f64,
    /// Multiplier on `policy_err` when the LLM must also plan mechanism
    /// (§5.6: splitting attention causes more semantic mistakes).
    pub gui_attention_mult: f64,
    /// Per-task probability of a DMI-side mechanism failure
    /// (topology inaccuracy / weak visual reading of structured payloads).
    pub dmi_mech_err: f64,
    /// Per-action probability of a visual grounding error (clicking the
    /// wrong control) under GUI interaction.
    pub grounding_err: f64,
    /// Per-action probability of botching a composite interaction
    /// (drag-based scroll/selection) under GUI interaction.
    pub composite_err: f64,
    /// Probability a mechanism error is noticed and recovered (costing an
    /// extra LLM round trip).
    pub recover_prob: f64,
    /// Probability a `visit` call includes navigation nodes or omits an
    /// entry reference (DMI filters / reports; §3.4).
    pub instruction_noise: f64,
    /// Maximum `visit` targets the model reliably bundles per call
    /// (reasoning-dependent; minimal reasoning plans shorter horizons).
    pub bundle_limit: usize,
    /// Maximum imperative actions bundled per GUI action sequence
    /// (visibility already bounds sequences; this is the planning
    /// horizon on top).
    pub gui_bundle_limit: usize,
    /// Multiplier on `policy_err` when the prompt carries the navigation
    /// forest as static knowledge (ablation §5.5): < 1.0 only for models
    /// that benefit from supplementary topology knowledge.
    pub forest_knowledge_gain: f64,
    /// Latency model.
    pub latency: LatencyModel,
}

impl CapabilityProfile {
    /// GPT-5, medium reasoning (the paper's core setting).
    pub fn gpt5_medium() -> Self {
        CapabilityProfile {
            model: "GPT-5".into(),
            reasoning: ReasoningEffort::Medium,
            policy_err: 0.22,
            gui_attention_mult: 1.24,
            dmi_mech_err: 0.06,
            grounding_err: 0.30,
            composite_err: 0.35,
            recover_prob: 0.75,
            instruction_noise: 0.12,
            bundle_limit: 8,
            gui_bundle_limit: 1,
            forest_knowledge_gain: 1.0,
            latency: LatencyModel {
                base_secs: 42.0,
                per_1k_prompt_secs: 0.25,
                per_output_token_secs: 0.03,
            },
        }
    }

    /// GPT-5, minimal reasoning (non-reasoning emulation).
    pub fn gpt5_minimal() -> Self {
        CapabilityProfile {
            model: "GPT-5".into(),
            reasoning: ReasoningEffort::Minimal,
            policy_err: 0.55,
            gui_attention_mult: 1.24,
            dmi_mech_err: 0.17,
            grounding_err: 0.17,
            composite_err: 0.40,
            recover_prob: 0.45,
            instruction_noise: 0.22,
            bundle_limit: 1,
            gui_bundle_limit: 1,
            forest_knowledge_gain: 1.0,
            latency: LatencyModel {
                base_secs: 22.0,
                per_1k_prompt_secs: 0.20,
                per_output_token_secs: 0.03,
            },
        }
    }

    /// GPT-5-mini, medium reasoning.
    pub fn gpt5_mini_medium() -> Self {
        CapabilityProfile {
            model: "GPT-5-mini".into(),
            reasoning: ReasoningEffort::Medium,
            policy_err: 0.50,
            gui_attention_mult: 1.24,
            dmi_mech_err: 0.12,
            grounding_err: 0.38,
            composite_err: 0.45,
            recover_prob: 0.50,
            instruction_noise: 0.18,
            bundle_limit: 6,
            gui_bundle_limit: 1,
            forest_knowledge_gain: 0.70,
            latency: LatencyModel {
                base_secs: 18.0,
                per_1k_prompt_secs: 0.45,
                per_output_token_secs: 0.03,
            },
        }
    }

    /// All three evaluation profiles, in Table 3 order.
    pub fn evaluation_set() -> Vec<CapabilityProfile> {
        vec![Self::gpt5_medium(), Self::gpt5_minimal(), Self::gpt5_mini_medium()]
    }

    /// Table row label, e.g. `"GPT-5 (Medium)"`.
    pub fn label(&self) -> String {
        format!("{} ({})", self.model, self.reasoning.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_capability() {
        let med = CapabilityProfile::gpt5_medium();
        let min = CapabilityProfile::gpt5_minimal();
        let mini = CapabilityProfile::gpt5_mini_medium();
        assert!(med.policy_err < min.policy_err);
        assert!(med.policy_err < mini.policy_err);
        assert!(med.grounding_err < mini.grounding_err);
        assert!(mini.forest_knowledge_gain < 1.0);
        assert!((med.forest_knowledge_gain - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn labels_match_table3() {
        assert_eq!(CapabilityProfile::gpt5_medium().label(), "GPT-5 (Medium)");
        assert_eq!(CapabilityProfile::gpt5_minimal().label(), "GPT-5 (Minimal)");
        assert_eq!(CapabilityProfile::gpt5_mini_medium().label(), "GPT-5-mini (Medium)");
    }

    #[test]
    fn probabilities_are_valid() {
        for p in CapabilityProfile::evaluation_set() {
            for v in [
                p.policy_err,
                p.dmi_mech_err,
                p.grounding_err,
                p.composite_err,
                p.recover_prob,
                p.instruction_noise,
            ] {
                assert!((0.0..=1.0).contains(&v));
            }
            assert!(p.bundle_limit >= 1);
        }
    }
}
