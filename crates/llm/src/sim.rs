//! The simulated LLM.
//!
//! `SimLlm` plays the role of GPT-5/GPT-5-mini in the evaluation loop: it
//! "knows" each task's semantic oracle plan and executes it subject to a
//! [`CapabilityProfile`]'s error rates. All stochastic choices flow from a
//! seed derived from `(task, seed, mode, model)`, so every experiment is
//! reproducible. Policy-level failures corrupt the *plan* (producing the
//! verifiable wrong behaviours of §5.6); mechanism-level failures are
//! sampled per GUI action by the agent through the `sample_*` methods.

use crate::failure::FailureCause;
use crate::plan::{apply_mutation, PlanMutation, TaskPlan};
use crate::profile::CapabilityProfile;
use dmi_core::tokens::TokenLedger;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The interface condition under evaluation (Table 3 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InterfaceMode {
    /// UFO2-as baseline: imperative GUI only.
    GuiOnly,
    /// Ablation: GUI only, navigation forest supplied as prompt knowledge.
    GuiPlusForest,
    /// GUI + the declarative DMI interfaces.
    GuiPlusDmi,
}

impl InterfaceMode {
    /// Table 3 row label.
    pub fn label(self) -> &'static str {
        match self {
            InterfaceMode::GuiOnly => "GUI-only",
            InterfaceMode::GuiPlusForest => "GUI-only+Nav.forest",
            InterfaceMode::GuiPlusDmi => "GUI+DMI",
        }
    }

    /// Whether the prompt carries the navigation forest.
    pub fn has_forest_knowledge(self) -> bool {
        matches!(self, InterfaceMode::GuiPlusForest | InterfaceMode::GuiPlusDmi)
    }

    /// Whether the declarative interfaces are available.
    pub fn has_dmi(self) -> bool {
        matches!(self, InterfaceMode::GuiPlusDmi)
    }
}

/// A deterministic seed from run coordinates.
fn derive_seed(task_id: &str, seed: u64, mode: InterfaceMode, model: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in task_id.bytes().chain(model.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^= seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= (mode as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h
}

/// The simulated LLM for one task run.
#[derive(Debug, Clone)]
pub struct SimLlm {
    /// The capability profile in force.
    pub profile: CapabilityProfile,
    /// The interface condition.
    pub mode: InterfaceMode,
    rng: SmallRng,
    /// Token ledger across calls.
    pub ledger: TokenLedger,
    /// Simulated wall clock (seconds).
    pub clock_secs: f64,
    /// Policy/DMI-side failure injected at plan time, if any.
    pub injected: Option<FailureCause>,
}

impl SimLlm {
    /// Creates the simulated LLM for one `(task, seed)` run.
    pub fn new(profile: CapabilityProfile, mode: InterfaceMode, task_id: &str, seed: u64) -> Self {
        let s = derive_seed(task_id, seed, mode, &profile.model);
        SimLlm {
            profile,
            mode,
            rng: SmallRng::seed_from_u64(s),
            ledger: TokenLedger::new(),
            clock_secs: 0.0,
            injected: None,
        }
    }

    /// The effective policy-error probability under this mode (§5.5/§5.6:
    /// attention splitting and forest knowledge shift semantic error
    /// rates).
    pub fn effective_policy_err(&self) -> f64 {
        let p = &self.profile;
        match self.mode {
            InterfaceMode::GuiOnly => p.policy_err * p.gui_attention_mult,
            InterfaceMode::GuiPlusForest => {
                p.policy_err * p.gui_attention_mult * p.forest_knowledge_gain
            }
            InterfaceMode::GuiPlusDmi => p.policy_err,
        }
    }

    /// Decides this run's plan: possibly corrupted by a policy-level
    /// failure (any mode) or a DMI-side mechanism failure (DMI mode).
    pub fn prepare_plan(&mut self, plan: &TaskPlan, mutations: &[PlanMutation]) -> TaskPlan {
        let mut plan = plan.clone();
        let roll: f64 = self.rng.gen();
        if roll < self.effective_policy_err() {
            // Weighted by the paper's policy-failure mix (9 : 6 : 2).
            let cause = match self.rng.gen_range(0..17u32) {
                0..=8 => FailureCause::AmbiguousTask,
                9..=14 => FailureCause::ControlSemanticsMisread,
                _ => FailureCause::SubtleTaskSemantics,
            };
            self.injected = Some(cause);
            self.corrupt(&mut plan, mutations);
            return plan;
        }
        if self.mode.has_dmi() {
            let roll: f64 = self.rng.gen();
            if roll < self.profile.dmi_mech_err {
                // 3 : 1 weak-visual to topology (Fig. 6a's mechanism mix).
                let cause = if self.rng.gen_range(0..4u32) < 3 {
                    FailureCause::WeakVisualSemantic
                } else {
                    FailureCause::TopologyInaccuracy
                };
                self.injected = Some(cause);
                self.corrupt(&mut plan, mutations);
            }
        }
        plan
    }

    fn corrupt(&mut self, plan: &mut TaskPlan, mutations: &[PlanMutation]) {
        let m = if mutations.is_empty() {
            PlanMutation::DropLast
        } else {
            mutations[self.rng.gen_range(0..mutations.len())].clone()
        };
        apply_mutation(plan, &m);
    }

    /// Records one LLM call: token accounting plus simulated latency.
    pub fn record_call(&mut self, prompt_tokens: usize, output_tokens: usize) {
        self.ledger.record(prompt_tokens, output_tokens);
        self.clock_secs += self.profile.latency.call_secs(prompt_tokens, output_tokens);
    }

    /// Total calls recorded (the paper's Steps metric counts these).
    pub fn calls(&self) -> usize {
        self.ledger.calls()
    }

    /// Samples a visual-grounding error for one GUI click. Topology
    /// knowledge in the prompt helps weaker models localize controls
    /// (§5.5: supplementary knowledge aids models with less
    /// general-purpose knowledge).
    pub fn sample_grounding_error(&mut self) -> bool {
        let mut p = self.profile.grounding_err;
        if self.mode == InterfaceMode::GuiPlusForest {
            p *= self.profile.forest_knowledge_gain;
        }
        self.rng.gen::<f64>() < p
    }

    /// Samples a composite-interaction error for one drag.
    pub fn sample_composite_error(&mut self) -> bool {
        self.rng.gen::<f64>() < self.profile.composite_err
    }

    /// Samples whether a mechanism error is noticed and recovered.
    pub fn sample_recover(&mut self) -> bool {
        self.rng.gen::<f64>() < self.profile.recover_prob
    }

    /// Samples imperfect instruction following for one DMI call.
    pub fn sample_instruction_noise(&mut self) -> bool {
        self.rng.gen::<f64>() < self.profile.instruction_noise
    }

    /// A fair coin from the run's RNG stream.
    pub fn coin(&mut self) -> bool {
        self.rng.gen::<bool>()
    }

    /// Picks a wrong option index (mis-grounding target), avoiding
    /// `correct` when possible.
    pub fn wrong_index(&mut self, len: usize, correct: usize) -> usize {
        if len <= 1 {
            return correct;
        }
        let mut i = self.rng.gen_range(0..len);
        if i == correct {
            i = (i + 1) % len;
        }
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlanStep, TargetQuery, VisitTarget};

    fn plan() -> TaskPlan {
        TaskPlan {
            dmi: vec![PlanStep::Visit(vec![VisitTarget::click(TargetQuery::name("Bold"))])],
            gui: vec![crate::plan::GuiStep::Click(TargetQuery::name("Bold"))],
        }
    }

    #[test]
    fn same_coordinates_same_behaviour() {
        let p = CapabilityProfile::gpt5_medium();
        let mut a = SimLlm::new(p.clone(), InterfaceMode::GuiPlusDmi, "t1", 7);
        let mut b = SimLlm::new(p, InterfaceMode::GuiPlusDmi, "t1", 7);
        let pa = a.prepare_plan(&plan(), &[]);
        let pb = b.prepare_plan(&plan(), &[]);
        assert_eq!(pa, pb);
        assert_eq!(a.injected, b.injected);
    }

    #[test]
    fn different_seeds_eventually_differ() {
        let p = CapabilityProfile::gpt5_mini_medium();
        let outcomes: Vec<bool> = (0..64)
            .map(|s| {
                let mut llm = SimLlm::new(p.clone(), InterfaceMode::GuiOnly, "t1", s);
                llm.prepare_plan(&plan(), &[]);
                llm.injected.is_some()
            })
            .collect();
        assert!(outcomes.iter().any(|&x| x));
        assert!(outcomes.iter().any(|&x| !x));
    }

    #[test]
    fn policy_err_is_higher_under_gui() {
        let p = CapabilityProfile::gpt5_medium();
        let dmi = SimLlm::new(p.clone(), InterfaceMode::GuiPlusDmi, "t", 0);
        let gui = SimLlm::new(p, InterfaceMode::GuiOnly, "t", 0);
        assert!(gui.effective_policy_err() > dmi.effective_policy_err());
    }

    #[test]
    fn forest_knowledge_helps_small_models_only() {
        let mini = CapabilityProfile::gpt5_mini_medium();
        let m_gui = SimLlm::new(mini.clone(), InterfaceMode::GuiOnly, "t", 0);
        let m_abl = SimLlm::new(mini, InterfaceMode::GuiPlusForest, "t", 0);
        assert!(m_abl.effective_policy_err() < m_gui.effective_policy_err());
        let big = CapabilityProfile::gpt5_medium();
        let b_gui = SimLlm::new(big.clone(), InterfaceMode::GuiOnly, "t", 0);
        let b_abl = SimLlm::new(big, InterfaceMode::GuiPlusForest, "t", 0);
        assert!((b_abl.effective_policy_err() - b_gui.effective_policy_err()).abs() < 1e-12);
    }

    #[test]
    fn corrupted_plans_differ_and_cause_recorded() {
        let mut p = CapabilityProfile::gpt5_medium();
        p.policy_err = 1.0; // Force a policy failure.
        let mut llm = SimLlm::new(p, InterfaceMode::GuiPlusDmi, "t", 3);
        let corrupted = llm.prepare_plan(&plan(), &[]);
        assert!(corrupted.dmi.is_empty(), "DropLast removed the only step");
        assert!(llm.injected.is_some());
        assert_eq!(llm.injected.unwrap().level(), crate::failure::FailureLevel::Policy);
    }

    #[test]
    fn record_call_advances_clock_and_ledger() {
        let p = CapabilityProfile::gpt5_medium();
        let mut llm = SimLlm::new(p, InterfaceMode::GuiOnly, "t", 0);
        llm.record_call(3_000, 100);
        llm.record_call(3_000, 100);
        assert_eq!(llm.calls(), 2);
        assert!(llm.clock_secs > 80.0);
        assert_eq!(llm.ledger.total_prompt(), 6_000);
    }

    #[test]
    fn wrong_index_avoids_correct() {
        let p = CapabilityProfile::gpt5_medium();
        let mut llm = SimLlm::new(p, InterfaceMode::GuiOnly, "t", 0);
        for _ in 0..32 {
            let w = llm.wrong_index(10, 4);
            assert_ne!(w, 4);
            assert!(w < 10);
        }
        assert_eq!(llm.wrong_index(1, 0), 0);
    }

    #[test]
    fn mode_labels() {
        assert_eq!(InterfaceMode::GuiOnly.label(), "GUI-only");
        assert!(InterfaceMode::GuiPlusDmi.has_dmi());
        assert!(!InterfaceMode::GuiPlusForest.has_dmi());
        assert!(InterfaceMode::GuiPlusForest.has_forest_knowledge());
    }
}
